//! Multi-process backend: length-prefixed frames over TCP socket meshes.
//!
//! Every pair of PEs shares one full-duplex `TcpStream`; each PE runs one
//! **reader thread per socket** that decodes frames and feeds them into a
//! single event channel — the same unbounded-queue shape as the local
//! backend, so [`crate::Comm`]'s selective receive works unmodified.
//!
//! ## Frame format
//!
//! Frames reuse the [`crate::wire`] codec (the codec the payloads
//! themselves use, keeping the byte layout predictable end to end):
//!
//! ```text
//! header  := wire::encode(&(src: u64, tag: u64, len: u64))   // 24 bytes LE
//! frame   := header ++ payload (len bytes)
//! ```
//!
//! Everything read from a socket is **untrusted input** from another
//! process: malformed, truncated, or oversized frames surface as
//! [`NetError::Frame`] values naming the peer rank — never panics — and
//! are covered by negative tests below.
//!
//! ## Teardown
//!
//! [`Transport::shutdown`] half-closes every socket (`Shutdown::Write`)
//! and then joins the reader threads, which exit when the *peer's* write
//! side closes. TCP delivers all written bytes before the FIN, so no
//! in-flight message is lost: teardown behaves like a barrier.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::comm::Tag;
use crate::error::{NetError, Result};
use crate::transport::{Packet, Transport, TransportSender};
use crate::wire::{self, Wire};

/// Encoded size of a frame header: `(src, tag, len)` as three `u64`s.
pub const FRAME_HEADER_LEN: usize = 24;

/// Upper bound on a single frame's payload (1 GiB). A header claiming
/// more is rejected as malformed before any allocation happens.
pub const MAX_FRAME_PAYLOAD: u64 = 1 << 30;

/// How long mesh construction waits for peers before giving up.
pub(crate) const CONNECT_TIMEOUT: Duration = Duration::from_secs(30);

/// Serialize one frame (header + payload) into a single buffer so the
/// socket sees one write per message.
pub(crate) fn frame_bytes(src: usize, tag: Tag, payload: &[u8]) -> Vec<u8> {
    let header = (src as u64, tag.0, payload.len() as u64);
    let mut buf = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    header.write(&mut buf);
    buf.extend_from_slice(payload);
    buf
}

/// Read one frame from `reader`, attributing malformed input to `peer`.
///
/// Returns `Ok(None)` on clean end-of-stream (the peer shut down its
/// write side between frames). Every other shortfall — truncation inside
/// a header or payload, a header naming the wrong source rank, an
/// oversized length — is a [`NetError::Frame`] with peer context.
pub fn read_frame<R: Read>(reader: &mut R, peer: usize) -> Result<Option<Packet>> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    let mut filled = 0usize;
    while filled < FRAME_HEADER_LEN {
        let n = match reader.read(&mut header[filled..]) {
            Ok(n) => n,
            // A signal mid-read (EINTR) is not a transport fault; retry
            // like `read_exact` does.
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => {
                return Err(NetError::io(
                    format!("reading frame header from PE {peer}"),
                    &e,
                ))
            }
        };
        if n == 0 {
            return if filled == 0 {
                Ok(None) // clean EOF on a frame boundary
            } else {
                Err(NetError::frame(
                    peer,
                    format!("truncated frame header ({filled} of {FRAME_HEADER_LEN} bytes)"),
                ))
            };
        }
        filled += n;
    }
    let (src, tag, len) = wire::decode::<(u64, u64, u64)>(&header)
        .ok_or_else(|| NetError::frame(peer, "undecodable frame header"))?;
    if src != peer as u64 {
        return Err(NetError::frame(
            peer,
            format!("frame header claims source rank {src}"),
        ));
    }
    if len > MAX_FRAME_PAYLOAD {
        return Err(NetError::frame(
            peer,
            format!("oversized frame: {len} bytes exceeds the {MAX_FRAME_PAYLOAD} byte cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            NetError::frame(
                peer,
                format!("truncated frame payload (expected {len} bytes)"),
            )
        } else {
            NetError::io(format!("reading frame payload from PE {peer}"), &e)
        }
    })?;
    Ok(Some(Packet {
        src: src as usize,
        tag: Tag(tag),
        payload,
    }))
}

/// What a reader thread pushes into the shared event queue.
enum Event {
    Packet(Packet),
    /// Peer closed its write side cleanly; no more packets from it.
    Closed {
        peer: usize,
    },
    /// Unrecoverable transport fault on this peer's connection.
    Fatal(NetError),
}

fn spawn_reader(stream: TcpStream, peer: usize, events: Sender<Event>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("ccheck-net-rx-{peer}"))
        .spawn(move || {
            let mut stream = stream;
            loop {
                match read_frame(&mut stream, peer) {
                    Ok(Some(pkt)) => {
                        if events.send(Event::Packet(pkt)).is_err() {
                            return; // owning transport dropped mid-run
                        }
                    }
                    Ok(None) => {
                        let _ = events.send(Event::Closed { peer });
                        return;
                    }
                    Err(err) => {
                        let _ = events.send(Event::Fatal(err));
                        return;
                    }
                }
            }
        })
        .expect("spawn reader thread")
}

/// TCP-socket-mesh transport for one PE.
pub struct TcpTransport {
    rank: usize,
    size: usize,
    /// Write halves, indexed by peer rank (`None` at our own rank).
    writers: Vec<Option<TcpStream>>,
    events: Receiver<Event>,
    closed: Vec<bool>,
    readers: Vec<JoinHandle<()>>,
    down: bool,
    detached: bool,
}

/// The detached sending side of a [`TcpTransport`]: the write halves of
/// the socket mesh, moved out of the transport. Closing half-closes
/// every socket (`Shutdown::Write`), which the peers' reader threads
/// observe as clean end-of-stream after all in-flight frames.
struct TcpSender {
    rank: usize,
    writers: Vec<Option<TcpStream>>,
}

impl TransportSender for TcpSender {
    fn send(&mut self, dest: usize, tag: Tag, payload: Vec<u8>) -> Result<()> {
        let frame = frame_bytes(self.rank, tag, &payload);
        let writer = self.writers[dest]
            .as_mut()
            .ok_or(NetError::Disconnected { peer: dest })?;
        writer.write_all(&frame).map_err(|e| {
            if e.kind() == std::io::ErrorKind::BrokenPipe {
                NetError::Disconnected { peer: dest }
            } else {
                NetError::io(format!("sending frame to PE {dest}"), &e)
            }
        })
    }

    fn close(&mut self) {
        for writer in &mut self.writers {
            if let Some(writer) = writer.take() {
                let _ = writer.shutdown(Shutdown::Write);
            }
        }
    }
}

impl TcpTransport {
    /// Wire up this rank's corner of a fully-connected mesh.
    ///
    /// `listener` must already be bound to `peer_addrs[rank]`. The scheme
    /// is deterministic: rank `i` *connects* to every rank `j < i`
    /// (announcing itself with an 8-byte hello) and *accepts* from every
    /// rank `j > i`. Connection attempts retry until `CONNECT_TIMEOUT`
    /// so process startup order does not matter; use
    /// [`Self::connect_mesh_with_timeout`] for a caller-chosen bound
    /// (the bootstrap path passes the launcher-configured timeout).
    pub fn connect_mesh(
        rank: usize,
        size: usize,
        listener: TcpListener,
        peer_addrs: &[SocketAddr],
    ) -> Result<TcpTransport> {
        Self::connect_mesh_with_timeout(rank, size, listener, peer_addrs, CONNECT_TIMEOUT)
    }

    /// [`Self::connect_mesh`] with an explicit bound on how long to wait
    /// for peers.
    pub fn connect_mesh_with_timeout(
        rank: usize,
        size: usize,
        listener: TcpListener,
        peer_addrs: &[SocketAddr],
        timeout: Duration,
    ) -> Result<TcpTransport> {
        assert!(size > 0, "need at least one PE");
        assert!(rank < size, "rank {rank} out of range 0..{size}");
        assert_eq!(peer_addrs.len(), size, "one address per rank required");

        let deadline = Instant::now() + timeout;
        let mut sockets: Vec<Option<TcpStream>> = Vec::new();
        sockets.resize_with(size, || None);

        // Active side: connect to all lower ranks and say hello.
        for (peer, addr) in peer_addrs.iter().enumerate().take(rank) {
            let mut stream = connect_with_retry(*addr, deadline)?;
            stream
                .write_all(&wire::encode(&(rank as u64)))
                .map_err(|e| NetError::io(format!("sending hello to PE {peer}"), &e))?;
            configure(&stream)?;
            sockets[peer] = Some(stream);
        }
        // Passive side: accept one connection per higher rank, identified
        // by its hello (arrival order is arbitrary). Accepting and the
        // hello read are both deadline-bounded so a peer that died after
        // rendezvous (or a stray silent client) cannot wedge the mesh.
        listener
            .set_nonblocking(true)
            .map_err(|e| NetError::io("making mesh listener nonblocking", &e))?;
        let mut accepted = 0usize;
        while accepted < size - rank - 1 {
            if Instant::now() >= deadline {
                return Err(NetError::bootstrap(format!(
                    "rank {rank}: timed out waiting for higher-rank peers \
                     ({accepted} of {} connected)",
                    size - rank - 1
                )));
            }
            let (mut stream, remote) = match listener.accept() {
                Ok(conn) => conn,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                    continue;
                }
                Err(e) => return Err(NetError::io(format!("accepting peer on rank {rank}"), &e)),
            };
            stream
                .set_nonblocking(false)
                .map_err(|e| NetError::io("configuring accepted socket", &e))?;
            let remaining = deadline
                .saturating_duration_since(Instant::now())
                .max(Duration::from_millis(10));
            stream
                .set_read_timeout(Some(remaining))
                .map_err(|e| NetError::io("setting hello timeout", &e))?;
            let mut hello = [0u8; 8];
            stream
                .read_exact(&mut hello)
                .map_err(|e| NetError::io(format!("reading hello from {remote}"), &e))?;
            // Reader threads must block indefinitely once the mesh is up.
            stream
                .set_read_timeout(None)
                .map_err(|e| NetError::io("clearing hello timeout", &e))?;
            let peer = wire::decode::<u64>(&hello)
                .ok_or_else(|| NetError::bootstrap(format!("undecodable hello from {remote}")))?
                as usize;
            if peer <= rank || peer >= size {
                return Err(NetError::bootstrap(format!(
                    "unexpected hello rank {peer} on rank {rank} (world size {size})"
                )));
            }
            if sockets[peer].is_some() {
                return Err(NetError::bootstrap(format!(
                    "duplicate connection from rank {peer}"
                )));
            }
            configure(&stream)?;
            sockets[peer] = Some(stream);
            accepted += 1;
        }

        // One reader thread per socket, all feeding one event queue. The
        // transport keeps no Sender of its own, so an empty queue with
        // all readers gone is observable as disconnection.
        let (tx, events) = unbounded::<Event>();
        let mut writers: Vec<Option<TcpStream>> = Vec::new();
        writers.resize_with(size, || None);
        let mut readers = Vec::new();
        for (peer, socket) in sockets.into_iter().enumerate() {
            let Some(socket) = socket else { continue };
            let read_half = socket
                .try_clone()
                .map_err(|e| NetError::io(format!("cloning socket of PE {peer}"), &e))?;
            readers.push(spawn_reader(read_half, peer, tx.clone()));
            writers[peer] = Some(socket);
        }
        drop(tx);

        Ok(TcpTransport {
            rank,
            size,
            writers,
            events,
            closed: vec![false; size],
            readers,
            down: false,
            detached: false,
        })
    }

    /// Build a complete in-process TCP world on `127.0.0.1` — `p`
    /// transports over real sockets, rank order. Used by tests and the
    /// [`crate::transport::Backend::TcpLoopback`] runner to exercise the
    /// full socket path without spawning processes.
    pub fn loopback_world(p: usize) -> Result<Vec<TcpTransport>> {
        assert!(p > 0, "need at least one PE");
        let mut listeners = Vec::with_capacity(p);
        let mut addrs = Vec::with_capacity(p);
        for rank in 0..p {
            let listener = TcpListener::bind("127.0.0.1:0")
                .map_err(|e| NetError::io(format!("binding listener for rank {rank}"), &e))?;
            addrs.push(
                listener
                    .local_addr()
                    .map_err(|e| NetError::io("reading listener address", &e))?,
            );
            listeners.push(listener);
        }
        // Mesh construction blocks on peers, so each rank wires up on its
        // own thread.
        let mut handles = Vec::with_capacity(p);
        for (rank, listener) in listeners.into_iter().enumerate() {
            let addrs = addrs.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("ccheck-net-mesh-{rank}"))
                    .spawn(move || TcpTransport::connect_mesh(rank, p, listener, &addrs))
                    .expect("spawn mesh thread"),
            );
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("mesh thread panicked"))
            .collect()
    }
}

fn configure(stream: &TcpStream) -> Result<()> {
    // Collectives exchange many latency-bound small frames; Nagle's
    // algorithm would serialize them at ~40ms each.
    stream
        .set_nodelay(true)
        .map_err(|e| NetError::io("setting TCP_NODELAY", &e))
}

fn connect_with_retry(addr: SocketAddr, deadline: Instant) -> Result<TcpStream> {
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) if Instant::now() < deadline => {
                // Peer's listener may not be up yet (process startup
                // order is unconstrained); back off briefly and retry.
                let _ = e;
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                return Err(NetError::io(
                    format!("connecting to peer at {addr} (timed out)"),
                    &e,
                ))
            }
        }
    }
}

impl Transport for TcpTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&mut self, dest: usize, tag: Tag, payload: Vec<u8>) -> Result<()> {
        if self.detached {
            return Err(NetError::bootstrap(
                "send side detached via split_sender; send through the handle",
            ));
        }
        let frame = frame_bytes(self.rank, tag, &payload);
        let writer = self.writers[dest]
            .as_mut()
            .ok_or(NetError::Disconnected { peer: dest })?;
        writer.write_all(&frame).map_err(|e| {
            if e.kind() == std::io::ErrorKind::BrokenPipe {
                NetError::Disconnected { peer: dest }
            } else {
                NetError::io(format!("sending frame to PE {dest}"), &e)
            }
        })
    }

    fn recv(&mut self) -> Result<Packet> {
        match self.events.recv() {
            Ok(Event::Packet(pkt)) => Ok(pkt),
            Ok(Event::Closed { peer }) => {
                self.closed[peer] = true;
                Err(NetError::Disconnected { peer })
            }
            Ok(Event::Fatal(err)) => Err(err),
            Err(_) => Err(NetError::TornDown),
        }
    }

    fn is_closed(&self, peer: usize) -> bool {
        self.closed[peer]
    }

    fn shutdown(&mut self) -> Result<()> {
        if self.down {
            return Ok(());
        }
        self.down = true;
        for writer in self.writers.iter().flatten() {
            // Half-close: our FIN travels behind all written data; the
            // read side stays open so late messages from slower peers
            // still drain into the queue.
            let _ = writer.shutdown(Shutdown::Write);
        }
        for reader in self.readers.drain(..) {
            // Readers exit on the *peer's* FIN, i.e. once every peer has
            // reached its own shutdown — an implicit teardown barrier.
            let _ = reader.join();
        }
        Ok(())
    }

    fn split_sender(&mut self) -> Result<Box<dyn TransportSender>> {
        if self.detached {
            return Err(NetError::bootstrap("send side already detached"));
        }
        self.detached = true;
        Ok(Box::new(TcpSender {
            rank: self.rank,
            writers: std::mem::take(&mut self.writers),
        }))
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrips_through_reader() {
        let buf = frame_bytes(2, Tag(77), &[1, 2, 3]);
        assert_eq!(buf.len(), FRAME_HEADER_LEN + 3);
        let mut cursor = &buf[..];
        let pkt = read_frame(&mut cursor, 2).unwrap().unwrap();
        assert_eq!((pkt.src, pkt.tag, pkt.payload), (2, Tag(77), vec![1, 2, 3]));
        // And a clean EOF right after a complete frame:
        assert!(read_frame(&mut cursor, 2).unwrap().is_none());
    }

    #[test]
    fn empty_payload_frame_roundtrips() {
        let buf = frame_bytes(0, Tag(0), &[]);
        let pkt = read_frame(&mut &buf[..], 0).unwrap().unwrap();
        assert!(pkt.payload.is_empty());
    }

    #[test]
    fn truncated_header_is_frame_error() {
        let buf = frame_bytes(1, Tag(5), &[9]);
        let err = read_frame(&mut &buf[..FRAME_HEADER_LEN - 4], 1).unwrap_err();
        match err {
            NetError::Frame { peer, reason } => {
                assert_eq!(peer, 1);
                assert!(reason.contains("truncated frame header"), "{reason}");
            }
            other => panic!("expected Frame error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_payload_is_frame_error() {
        let buf = frame_bytes(4, Tag(5), &[1, 2, 3, 4]);
        let err = read_frame(&mut &buf[..buf.len() - 2], 4).unwrap_err();
        match err {
            NetError::Frame { peer, reason } => {
                assert_eq!(peer, 4);
                assert!(reason.contains("truncated frame payload"), "{reason}");
            }
            other => panic!("expected Frame error, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        // Header claims 2^60 payload bytes; must fail fast, not OOM.
        let mut buf = wire::encode(&(3u64, 0u64, 1u64 << 60));
        buf.extend_from_slice(&[0; 16]);
        let err = read_frame(&mut &buf[..], 3).unwrap_err();
        match err {
            NetError::Frame { peer, reason } => {
                assert_eq!(peer, 3);
                assert!(reason.contains("oversized"), "{reason}");
            }
            other => panic!("expected Frame error, got {other:?}"),
        }
    }

    #[test]
    fn source_rank_spoofing_rejected() {
        // Connection belongs to peer 1 but the header claims rank 2.
        let buf = frame_bytes(2, Tag(0), &[]);
        let err = read_frame(&mut &buf[..], 1).unwrap_err();
        match err {
            NetError::Frame { peer, reason } => {
                assert_eq!(peer, 1);
                assert!(reason.contains("claims source rank 2"), "{reason}");
            }
            other => panic!("expected Frame error, got {other:?}"),
        }
    }

    #[test]
    fn clean_eof_is_none_not_error() {
        assert!(read_frame(&mut &[][..], 0).unwrap().is_none());
    }

    #[test]
    fn loopback_world_sends_and_receives() {
        let mut world = TcpTransport::loopback_world(3).unwrap();
        let mut t2 = world.pop().unwrap();
        let mut t1 = world.pop().unwrap();
        let mut t0 = world.pop().unwrap();
        t0.send(2, Tag(7), vec![1, 2, 3]).unwrap();
        t1.send(2, Tag(8), vec![4]).unwrap();
        let mut got = Vec::new();
        for _ in 0..2 {
            let pkt = t2.recv().unwrap();
            got.push((pkt.src, pkt.tag.0, pkt.payload));
        }
        got.sort();
        assert_eq!(got, vec![(0, 7, vec![1, 2, 3]), (1, 8, vec![4])]);
        // Teardown in arbitrary order must not deadlock: shutdown joins
        // readers only after every side half-closes.
        let teardown: Vec<_> = [t2, t0, t1]
            .into_iter()
            .map(|mut t| {
                std::thread::spawn(move || {
                    t.shutdown().unwrap();
                })
            })
            .collect();
        for h in teardown {
            h.join().unwrap();
        }
    }

    #[test]
    fn peer_close_reported_once_then_tracked() {
        let mut world = TcpTransport::loopback_world(2).unwrap();
        let t1 = world.pop().unwrap();
        let mut t0 = world.pop().unwrap();
        // Rank 1 goes away entirely (drop runs shutdown on a thread so
        // the join inside doesn't need rank 0's cooperation... it does:
        // shutdown joins readers which wait for rank 0's FIN, so drop it
        // concurrently).
        let closer = std::thread::spawn(move || drop(t1));
        match t0.recv() {
            Err(NetError::Disconnected { peer }) => assert_eq!(peer, 1),
            other => panic!("expected Disconnected, got {other:?}"),
        }
        assert!(t0.is_closed(1));
        assert!(!t0.is_closed(0));
        t0.shutdown().unwrap();
        closer.join().unwrap();
    }

    #[test]
    fn garbage_on_the_wire_surfaces_as_fatal_error() {
        // Hand-build a 2-rank world, then write a corrupt frame directly
        // onto the raw socket: the reader thread must turn it into a
        // NetError::Frame event, never a panic.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let listener2 = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr2 = listener2.local_addr().unwrap();
        let addrs = vec![addr, addr2];
        let addrs2 = addrs.clone();
        let h = std::thread::spawn(move || {
            // Rank 1 side, raw: accept nothing, connect to rank 0.
            let mut stream = TcpStream::connect(addrs2[0]).unwrap();
            stream.write_all(&wire::encode(&1u64)).unwrap(); // hello
                                                             // A frame header claiming an oversized payload.
            stream
                .write_all(&wire::encode(&(1u64, 0u64, u64::MAX)))
                .unwrap();
            stream
        });
        let mut t0 = TcpTransport::connect_mesh(0, 2, listener, &addrs).unwrap();
        let raw = h.join().unwrap();
        match t0.recv() {
            Err(NetError::Frame { peer, reason }) => {
                assert_eq!(peer, 1);
                assert!(reason.contains("oversized"), "{reason}");
            }
            other => panic!("expected Frame error, got {other:?}"),
        }
        drop(raw);
        // Readers are gone after the fatal error; further receives report
        // closure/teardown rather than hanging. (The faulty peer's reader
        // exited without a Closed event, so the queue just drains empty.)
        match t0.recv() {
            Err(NetError::TornDown) | Err(NetError::Disconnected { .. }) => {}
            other => panic!("expected teardown, got {other:?}"),
        }
        t0.shutdown().unwrap();
    }

    #[test]
    fn single_pe_world_is_trivial() {
        let mut world = TcpTransport::loopback_world(1).unwrap();
        let mut t = world.pop().unwrap();
        assert_eq!((t.rank(), t.size()), (0, 1));
        t.shutdown().unwrap();
    }
}

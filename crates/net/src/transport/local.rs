//! In-process backend: one unbounded crossbeam channel per PE.
//!
//! This is the seed runtime's original data path, now behind the
//! [`Transport`] trait: each transport holds a sender into every *peer's*
//! mailbox (`None` at its own rank — self-sends short-circuit in `Comm`)
//! and owns its own receiver. Sends never block (channels are unbounded),
//! so the tree collectives cannot deadlock; once every peer transport is
//! dropped the receiver disconnects, which surfaces as
//! [`NetError::TornDown`].

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::comm::Tag;
use crate::error::{NetError, Result};
use crate::transport::{Packet, Transport, TransportSender};

/// Channel-backed transport for one PE of an in-process run.
pub struct LocalTransport {
    rank: usize,
    size: usize,
    senders: Vec<Option<Sender<Packet>>>,
    receiver: Receiver<Packet>,
    detached: bool,
}

impl LocalTransport {
    /// Create the transports of a `p`-PE in-process world, rank order.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    pub fn world(p: usize) -> Vec<LocalTransport> {
        assert!(p > 0, "need at least one PE");
        let mut senders = Vec::with_capacity(p);
        let mut receivers = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded::<Packet>();
            senders.push(tx);
            receivers.push(rx);
        }
        receivers
            .into_iter()
            .enumerate()
            .map(|(rank, receiver)| LocalTransport {
                rank,
                size: p,
                senders: senders
                    .iter()
                    .enumerate()
                    .map(|(peer, tx)| (peer != rank).then(|| tx.clone()))
                    .collect(),
                receiver,
                detached: false,
            })
            .collect()
    }
}

/// The detached sending side of a [`LocalTransport`]: the per-peer
/// channel senders, moved out of the transport. Closing drops them,
/// which (once every PE does the same) disconnects the peers' receivers.
struct LocalSender {
    rank: usize,
    senders: Vec<Option<Sender<Packet>>>,
}

impl TransportSender for LocalSender {
    fn send(&mut self, dest: usize, tag: Tag, payload: Vec<u8>) -> Result<()> {
        let sender = self.senders[dest]
            .as_ref()
            .ok_or(NetError::Disconnected { peer: dest })?;
        sender
            .send(Packet {
                src: self.rank,
                tag,
                payload,
            })
            .map_err(|_| NetError::Disconnected { peer: dest })
    }

    fn close(&mut self) {
        for sender in &mut self.senders {
            *sender = None;
        }
    }
}

impl Transport for LocalTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&mut self, dest: usize, tag: Tag, payload: Vec<u8>) -> Result<()> {
        if self.detached {
            return Err(NetError::bootstrap(
                "send side detached via split_sender; send through the handle",
            ));
        }
        let sender = self.senders[dest]
            .as_ref()
            .expect("self-sends are handled in Comm, never by the transport");
        sender
            .send(Packet {
                src: self.rank,
                tag,
                payload,
            })
            .map_err(|_| NetError::Disconnected { peer: dest })
    }

    fn recv(&mut self) -> Result<Packet> {
        // A channel error means every sender handle is gone, i.e. all
        // other PEs (which share the `Arc`) have been torn down.
        self.receiver.recv().map_err(|_| NetError::TornDown)
    }

    fn is_closed(&self, _peer: usize) -> bool {
        // Channel senders live in a shared Arc: individual peers cannot
        // close, the domain only goes down as a whole (-> `TornDown`).
        false
    }

    fn shutdown(&mut self) -> Result<()> {
        // Nothing to flush: unbounded channels deliver synchronously and
        // the Arc'd senders drop with the transport.
        Ok(())
    }

    fn split_sender(&mut self) -> Result<Box<dyn TransportSender>> {
        if self.detached {
            return Err(NetError::bootstrap("send side already detached"));
        }
        self.detached = true;
        Ok(Box::new(LocalSender {
            rank: self.rank,
            senders: std::mem::take(&mut self.senders),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_builds_rank_ordered_transports() {
        let world = LocalTransport::world(3);
        assert_eq!(world.len(), 3);
        for (i, t) in world.iter().enumerate() {
            assert_eq!(t.rank(), i);
            assert_eq!(t.size(), 3);
            assert!(!t.is_closed(0));
        }
    }

    #[test]
    fn send_recv_crosses_transports() {
        let mut world = LocalTransport::world(2);
        let mut t1 = world.pop().unwrap();
        let mut t0 = world.pop().unwrap();
        t0.send(1, Tag(5), vec![9, 9]).unwrap();
        let pkt = t1.recv().unwrap();
        assert_eq!((pkt.src, pkt.tag, pkt.payload), (0, Tag(5), vec![9, 9]));
        t0.shutdown().unwrap();
        t1.shutdown().unwrap();
    }

    #[test]
    fn recv_after_teardown_errors() {
        let mut world = LocalTransport::world(2);
        let mut t1 = world.pop().unwrap();
        drop(world); // drops rank 0's transport and with it the senders Arc
        assert_eq!(t1.recv().unwrap_err(), NetError::TornDown);
    }

    #[test]
    #[should_panic(expected = "at least one PE")]
    fn zero_world_rejected() {
        let _ = LocalTransport::world(0);
    }
}

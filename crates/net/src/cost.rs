//! α-β (latency/bandwidth) cost model.
//!
//! The paper analyzes running times as `O(x + β·y + α·z)` where `x` is
//! local work, `y` communication volume (bits), and `z` message rounds
//! (§2). The threaded runtime measures `y` and `z` exactly
//! ([`crate::stats`]) and local work can be timed per element; this module
//! turns those three measured quantities into predicted wall-clock times
//! for arbitrary machine parameters and PE counts — the mechanism behind
//! the weak-scaling extrapolation (Fig. 4 reproduction).

/// Machine parameters of the α-β model.
///
/// Defaults approximate a commodity cluster interconnect of the paper's
/// era (bwUniCluster: ~1.5 µs MPI latency, ~10 Gbit/s effective per-node
/// bandwidth ≈ 0.8 ns/byte).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Seconds to initiate one message (startup cost α).
    pub alpha: f64,
    /// Seconds to move one byte on an established connection (β, per byte
    /// rather than the paper's per bit; a constant factor of 8).
    pub beta_per_byte: f64,
    /// Effective minimum message size in bytes: messages smaller than this
    /// cost the same as one of this size (§4's parameter `b`, in bytes).
    pub min_message_bytes: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            alpha: 1.5e-6,
            beta_per_byte: 0.8e-9,
            min_message_bytes: 0,
        }
    }
}

impl CostModel {
    /// A model with the given latency (seconds) and bandwidth (bytes/sec).
    pub fn new(alpha: f64, bandwidth_bytes_per_sec: f64) -> Self {
        assert!(alpha >= 0.0 && bandwidth_bytes_per_sec > 0.0);
        Self {
            alpha,
            beta_per_byte: 1.0 / bandwidth_bytes_per_sec,
            min_message_bytes: 0,
        }
    }

    /// Builder: set the effective minimum message size in bytes.
    pub fn with_min_message(mut self, bytes: u64) -> Self {
        self.min_message_bytes = bytes;
        self
    }

    /// Predicted time for one message of `bytes` payload: `α + β·max(b,min)`.
    pub fn message_time(&self, bytes: u64) -> f64 {
        self.alpha + self.beta_per_byte * bytes.max(self.min_message_bytes) as f64
    }

    /// Predicted time of a phase given its critical-path profile:
    /// `local_work_secs + β·bottleneck_bytes + α·rounds`.
    pub fn phase_time(&self, local_work_secs: f64, bottleneck_bytes: u64, rounds: u64) -> f64 {
        local_work_secs
            + self.beta_per_byte
                * bottleneck_bytes.max(self.min_message_bytes * rounds.min(1)) as f64
            + self.alpha * rounds as f64
    }

    /// Predicted time of a collective on a `k`-byte payload over `p` PEs
    /// using a binomial tree: `(α + β·k)·⌈log₂ p⌉` (the `T_coll` of §2).
    pub fn tree_collective_time(&self, payload_bytes: u64, p: usize) -> f64 {
        let rounds = usize::BITS - p.saturating_sub(1).leading_zeros();
        self.message_time(payload_bytes) * f64::from(rounds)
    }

    /// Predicted time of a direct-delivery all-to-all moving `k` bytes to
    /// each of the `p−1` peers: `(p−1)·(α + β·k)`.
    pub fn all_to_all_time(&self, payload_bytes_per_peer: u64, p: usize) -> f64 {
        self.message_time(payload_bytes_per_peer) * (p.saturating_sub(1)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_time_is_affine() {
        let m = CostModel::new(1e-6, 1e9);
        let t0 = m.message_time(0);
        let t1 = m.message_time(1000);
        assert!((t0 - 1e-6).abs() < 1e-12);
        assert!((t1 - (1e-6 + 1e-6)).abs() < 1e-12);
    }

    #[test]
    fn min_message_size_floors_cost() {
        let m = CostModel::new(0.0, 1e9).with_min_message(1024);
        assert_eq!(m.message_time(10), m.message_time(1024));
        assert!(m.message_time(2048) > m.message_time(1024));
    }

    #[test]
    fn tree_collective_scales_logarithmically() {
        let m = CostModel::new(1e-6, 1e9);
        let t2 = m.tree_collective_time(100, 2);
        let t1024 = m.tree_collective_time(100, 1024);
        assert!((t1024 / t2 - 10.0).abs() < 1e-9); // log2(1024)/log2(2) = 10
    }

    #[test]
    fn tree_collective_single_pe_is_free() {
        let m = CostModel::default();
        assert_eq!(m.tree_collective_time(100, 1), 0.0);
    }

    #[test]
    fn all_to_all_scales_linearly() {
        let m = CostModel::new(1e-6, 1e9);
        let t4 = m.all_to_all_time(100, 4);
        let t8 = m.all_to_all_time(100, 8);
        assert!((t8 / t4 - 7.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn phase_time_combines_terms() {
        let m = CostModel::new(2.0, 0.5); // α=2s, β=2 s/byte
        let t = m.phase_time(1.0, 3, 4);
        assert!((t - (1.0 + 6.0 + 8.0)).abs() < 1e-12);
    }

    #[test]
    fn default_is_sane() {
        let m = CostModel::default();
        assert!(m.alpha > 0.0 && m.beta_per_byte > 0.0);
        // Latency-dominated small message, bandwidth-dominated big one.
        assert!(m.message_time(8) < 2.0 * m.alpha);
        assert!(m.message_time(100_000_000) > 0.01);
    }
}

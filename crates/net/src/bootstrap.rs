//! Multi-process bootstrap: how `p` OS processes find each other and
//! become one TCP communication domain.
//!
//! Two rendezvous styles, both env/flag driven:
//!
//! 1. **Launcher rendezvous** (the default; what `ccheck-launch` does).
//!    The launcher binds one TCP rendezvous socket and exports
//!    [`ENV_RANK`], [`ENV_WORLD`], [`ENV_RENDEZVOUS`] to each child.
//!    Every child binds its own data listener on an ephemeral port,
//!    reports `(rank, data_addr)` to the rendezvous socket, and receives
//!    the complete rank-ordered address table back. No port guessing, no
//!    bind races.
//! 2. **Static peer table** ([`ENV_PEERS`]): a comma-separated,
//!    rank-ordered list of `host:port` addresses, for manual multi-host
//!    deployment. Each process binds the address at its own rank.
//!
//! After rendezvous, [`connect`] wires the socket mesh
//! ([`TcpTransport::connect_mesh`]) and returns a ready [`Comm`]. The
//! process's [`crate::CommStats`] registry covers all `p` ranks but only
//! the local rank's counters move; use [`Comm::gather_stats`] for the
//! global table.
//!
//! All failures surface as [`NetError::Bootstrap`]/[`NetError::Io`] —
//! a missing peer or a malformed handshake must produce a diagnosable
//! error, not a panic or a hang (rendezvous serving is deadline-bounded).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::comm::Comm;
use crate::error::{NetError, Result};
use crate::stats::CommStats;
use crate::transport::tcp::TcpTransport;
use crate::wire::{self, Wire};

/// Env var: this process's rank, `0..world`.
pub const ENV_RANK: &str = "CCHECK_RANK";
/// Env var: total number of processes in the run.
pub const ENV_WORLD: &str = "CCHECK_WORLD";
/// Env var: `host:port` of the launcher's rendezvous socket.
pub const ENV_RENDEZVOUS: &str = "CCHECK_RENDEZVOUS";
/// Env var: comma-separated rank-ordered peer `host:port` list
/// (alternative to [`ENV_RENDEZVOUS`] for static deployments).
pub const ENV_PEERS: &str = "CCHECK_PEERS";
/// Env var: handshake timeout in seconds for the worker side of
/// bootstrap (rendezvous reply and mesh construction). `ccheck-launch`
/// exports its `--timeout` here so workers wait exactly as long as the
/// launcher does, instead of a hard-coded 30s undercutting a longer
/// `--timeout` on a slow or loaded machine.
pub const ENV_TIMEOUT: &str = "CCHECK_TIMEOUT";

/// How long a process waits for the rendezvous handshake.
const RENDEZVOUS_TIMEOUT: Duration = Duration::from_secs(30);

/// Worker-side handshake timeout: [`ENV_TIMEOUT`] seconds when set (and
/// parseable), else the 30s default.
pub fn handshake_timeout() -> Duration {
    std::env::var(ENV_TIMEOUT)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_secs)
        .unwrap_or(RENDEZVOUS_TIMEOUT)
}

/// Configuration of one process's place in a TCP world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpConfig {
    /// This process's rank.
    pub rank: usize,
    /// Total number of processes.
    pub world: usize,
    /// Launcher rendezvous address (style 1).
    pub rendezvous: Option<String>,
    /// Static rank-ordered peer table (style 2).
    pub peers: Option<Vec<String>>,
}

impl TcpConfig {
    /// Read the configuration from the environment.
    ///
    /// Returns `Ok(None)` when [`ENV_RANK`] is unset (the process was not
    /// started under a launcher), `Err` when the variables are present
    /// but inconsistent.
    pub fn from_env() -> Result<Option<TcpConfig>> {
        let Ok(rank) = std::env::var(ENV_RANK) else {
            return Ok(None);
        };
        let rank: usize = rank
            .parse()
            .map_err(|_| NetError::bootstrap(format!("{ENV_RANK} is not a number: {rank:?}")))?;
        let world: usize = std::env::var(ENV_WORLD)
            .map_err(|_| NetError::bootstrap(format!("{ENV_WORLD} unset while {ENV_RANK} is set")))?
            .parse()
            .map_err(|_| NetError::bootstrap(format!("{ENV_WORLD} is not a number")))?;
        if world == 0 || rank >= world {
            return Err(NetError::bootstrap(format!(
                "rank {rank} out of range for world size {world}"
            )));
        }
        let rendezvous = std::env::var(ENV_RENDEZVOUS).ok();
        let peers = std::env::var(ENV_PEERS).ok().map(|s| {
            s.split(',')
                .map(|a| a.trim().to_string())
                .collect::<Vec<_>>()
        });
        if let Some(ref peers) = peers {
            if peers.len() != world {
                return Err(NetError::bootstrap(format!(
                    "{ENV_PEERS} lists {} addresses for world size {world}",
                    peers.len()
                )));
            }
        }
        if rendezvous.is_none() && peers.is_none() {
            return Err(NetError::bootstrap(format!(
                "neither {ENV_RENDEZVOUS} nor {ENV_PEERS} is set"
            )));
        }
        Ok(Some(TcpConfig {
            rank,
            world,
            rendezvous,
            peers,
        }))
    }
}

/// Length-prefixed control message on a rendezvous connection:
/// `u64 length ++ wire payload`.
fn send_msg<T: Wire>(stream: &mut TcpStream, value: &T) -> Result<()> {
    let payload = wire::encode(value);
    let mut buf = Vec::with_capacity(8 + payload.len());
    (payload.len() as u64).write(&mut buf);
    buf.extend_from_slice(&payload);
    stream
        .write_all(&buf)
        .map_err(|e| NetError::io("sending rendezvous message", &e))
}

fn recv_msg<T: Wire>(stream: &mut TcpStream) -> Result<T> {
    let mut len = [0u8; 8];
    stream
        .read_exact(&mut len)
        .map_err(|e| NetError::io("reading rendezvous message length", &e))?;
    let len = u64::from_le_bytes(len);
    if len > 1 << 20 {
        return Err(NetError::bootstrap(format!(
            "rendezvous message of {len} bytes exceeds the 1 MiB cap"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    stream
        .read_exact(&mut payload)
        .map_err(|e| NetError::io("reading rendezvous message", &e))?;
    wire::decode(&payload).ok_or_else(|| NetError::bootstrap("undecodable rendezvous message"))
}

fn resolve(addr: &str) -> Result<SocketAddr> {
    addr.to_socket_addrs()
        .map_err(|e| NetError::io(format!("resolving {addr}"), &e))?
        .next()
        .ok_or_else(|| NetError::bootstrap(format!("address {addr} resolves to nothing")))
}

/// Establish this process's communicator according to `config`.
///
/// Blocks until all `world` processes have joined (bounded by the
/// rendezvous/connect timeouts). The returned [`Comm`] owns a fresh
/// [`CommStats`] registry; its handle is reachable via [`Comm::stats`].
pub fn connect(config: &TcpConfig) -> Result<Comm> {
    let (listener, peer_addrs) = if let Some(ref peers) = config.peers {
        // Static table: bind our preassigned address.
        let mine = resolve(&peers[config.rank])?;
        let listener = TcpListener::bind(mine)
            .map_err(|e| NetError::io(format!("binding data listener on {mine}"), &e))?;
        let addrs = peers
            .iter()
            .map(|a| resolve(a))
            .collect::<Result<Vec<_>>>()?;
        (listener, addrs)
    } else {
        let rendezvous = config
            .rendezvous
            .as_deref()
            .ok_or_else(|| NetError::bootstrap("no rendezvous address and no peer table"))?;
        // Ephemeral data listener on the same interface family as the
        // rendezvous server (loopback for ccheck-launch).
        let listener = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| NetError::io("binding ephemeral data listener", &e))?;
        let my_addr = listener
            .local_addr()
            .map_err(|e| NetError::io("reading data listener address", &e))?;
        let mut stream = TcpStream::connect(resolve(rendezvous)?)
            .map_err(|e| NetError::io(format!("connecting to rendezvous at {rendezvous}"), &e))?;
        stream
            .set_read_timeout(Some(handshake_timeout()))
            .map_err(|e| NetError::io("setting rendezvous timeout", &e))?;
        send_msg(&mut stream, &(config.rank as u64, my_addr.to_string()))?;
        let table: Vec<String> = recv_msg(&mut stream)?;
        if table.len() != config.world {
            return Err(NetError::bootstrap(format!(
                "rendezvous returned {} addresses for world size {}",
                table.len(),
                config.world
            )));
        }
        let addrs = table
            .iter()
            .map(|a| resolve(a))
            .collect::<Result<Vec<_>>>()?;
        (listener, addrs)
    };
    let transport = TcpTransport::connect_mesh_with_timeout(
        config.rank,
        config.world,
        listener,
        &peer_addrs,
        handshake_timeout(),
    )?;
    Ok(Comm::over(
        Box::new(transport),
        CommStats::new(config.world),
    ))
}

/// Initialize from the environment: `Ok(Some(comm))` when launched under
/// `ccheck-launch` (or with the bootstrap env set manually), `Ok(None)`
/// for plain single-process invocations.
pub fn init_from_env() -> Result<Option<Comm>> {
    match TcpConfig::from_env()? {
        Some(config) => connect(&config).map(Some),
        None => Ok(None),
    }
}

/// Launcher side of rendezvous style 1: collect `(rank, addr)` from all
/// `world` processes on `listener`, then send every one of them the
/// complete rank-ordered address table.
///
/// `abort` is polled between accepts (e.g. "has any child died?"); when
/// it returns true, serving stops with an error instead of hanging until
/// `deadline`.
pub fn serve_rendezvous(
    listener: &TcpListener,
    world: usize,
    deadline: Instant,
    mut abort: impl FnMut() -> Option<String>,
) -> Result<()> {
    listener
        .set_nonblocking(true)
        .map_err(|e| NetError::io("making rendezvous listener nonblocking", &e))?;
    let mut joined: Vec<Option<(TcpStream, String)>> = Vec::new();
    joined.resize_with(world, || None);
    let mut count = 0usize;
    while count < world {
        if let Some(reason) = abort() {
            return Err(NetError::bootstrap(format!(
                "aborted while waiting for workers ({count}/{world} joined): {reason}"
            )));
        }
        if Instant::now() >= deadline {
            return Err(NetError::bootstrap(format!(
                "timed out waiting for workers ({count}/{world} joined)"
            )));
        }
        match listener.accept() {
            Ok((mut stream, _)) => {
                stream
                    .set_nonblocking(false)
                    .map_err(|e| NetError::io("configuring rendezvous connection", &e))?;
                // Never block a handshake read past the caller's
                // deadline (a connected-but-silent client must not
                // stretch a 5s --timeout to 30s).
                let remaining = deadline
                    .saturating_duration_since(Instant::now())
                    .min(RENDEZVOUS_TIMEOUT)
                    .max(Duration::from_millis(10));
                stream
                    .set_read_timeout(Some(remaining))
                    .map_err(|e| NetError::io("setting rendezvous timeout", &e))?;
                let (rank, addr): (u64, String) = recv_msg(&mut stream)?;
                let rank = rank as usize;
                if rank >= world {
                    return Err(NetError::bootstrap(format!(
                        "worker announced rank {rank}, world size is {world}"
                    )));
                }
                if joined[rank].is_some() {
                    return Err(NetError::bootstrap(format!(
                        "two workers announced rank {rank}"
                    )));
                }
                joined[rank] = Some((stream, addr));
                count += 1;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(NetError::io("accepting rendezvous connection", &e)),
        }
    }
    let table: Vec<String> = joined
        .iter()
        .map(|j| j.as_ref().expect("all joined").1.clone())
        .collect();
    for (rank, slot) in joined.into_iter().enumerate() {
        let (mut stream, _) = slot.expect("all joined");
        send_msg(&mut stream, &table)
            .map_err(|_| NetError::bootstrap(format!("worker {rank} left before the table")))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Tag;

    /// Full in-process rehearsal of the multi-process flow: a rendezvous
    /// server plus `p` worker threads, each bootstrapping its own `Comm`
    /// via the same code path real processes use, then exchanging a ring
    /// of messages and tearing down gracefully.
    #[test]
    fn rendezvous_bootstrap_end_to_end() {
        let p = 4;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            serve_rendezvous(
                &listener,
                p,
                Instant::now() + Duration::from_secs(30),
                || None,
            )
        });
        let workers: Vec<_> = (0..p)
            .map(|rank| {
                let config = TcpConfig {
                    rank,
                    world: p,
                    rendezvous: Some(addr.clone()),
                    peers: None,
                };
                std::thread::spawn(move || {
                    let mut comm = connect(&config).unwrap();
                    let next = (comm.rank() + 1) % comm.size();
                    let prev = (comm.rank() + comm.size() - 1) % comm.size();
                    comm.send(next, Tag::user(1), &(comm.rank() as u64));
                    let got: u64 = comm.recv(prev, Tag::user(1));
                    (comm.rank(), got)
                })
            })
            .collect();
        server.join().unwrap().unwrap();
        for w in workers {
            let (rank, got) = w.join().unwrap();
            assert_eq!(got as usize, (rank + p - 1) % p);
        }
    }

    #[test]
    fn static_peer_table_bootstrap() {
        let p = 2;
        // Reserve two ephemeral ports, then re-bind them as the static
        // table. (Tiny race, fine for a test.)
        let probes: Vec<TcpListener> = (0..p)
            .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
            .collect();
        let peers: Vec<String> = probes
            .iter()
            .map(|l| l.local_addr().unwrap().to_string())
            .collect();
        drop(probes);
        let workers: Vec<_> = (0..p)
            .map(|rank| {
                let config = TcpConfig {
                    rank,
                    world: p,
                    rendezvous: None,
                    peers: Some(peers.clone()),
                };
                std::thread::spawn(move || {
                    let mut comm = connect(&config).unwrap();
                    let partner = 1 - comm.rank();
                    comm.exchange(partner, Tag::user(2), &(comm.rank() as u64))
                })
            })
            .collect();
        let results: Vec<u64> = workers.into_iter().map(|w| w.join().unwrap()).collect();
        assert_eq!(results, vec![1, 0]);
    }

    #[test]
    fn serve_rendezvous_honors_abort() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let err = serve_rendezvous(
            &listener,
            2,
            Instant::now() + Duration::from_secs(30),
            || Some("worker 1 exited with code 1".into()),
        )
        .unwrap_err();
        assert!(err.to_string().contains("worker 1 exited"), "{err}");
    }

    #[test]
    fn serve_rendezvous_times_out() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let err = serve_rendezvous(&listener, 1, Instant::now(), || None).unwrap_err();
        assert!(err.to_string().contains("timed out"), "{err}");
    }

    #[test]
    fn config_from_env_roundtrip() {
        // Env-var tests must not run concurrently with each other; this
        // single test covers all the parse branches sequentially.
        let clear = || {
            for k in [ENV_RANK, ENV_WORLD, ENV_RENDEZVOUS, ENV_PEERS] {
                std::env::remove_var(k);
            }
        };
        clear();
        assert_eq!(TcpConfig::from_env().unwrap(), None);

        std::env::set_var(ENV_RANK, "1");
        std::env::set_var(ENV_WORLD, "4");
        std::env::set_var(ENV_RENDEZVOUS, "127.0.0.1:9999");
        let cfg = TcpConfig::from_env().unwrap().unwrap();
        assert_eq!((cfg.rank, cfg.world), (1, 4));
        assert_eq!(cfg.rendezvous.as_deref(), Some("127.0.0.1:9999"));

        std::env::set_var(ENV_PEERS, "a:1,b:2,c:3");
        assert!(TcpConfig::from_env().is_err()); // 3 peers, world 4

        std::env::set_var(ENV_PEERS, "a:1, b:2, c:3, d:4");
        let cfg = TcpConfig::from_env().unwrap().unwrap();
        assert_eq!(cfg.peers.unwrap()[1], "b:2");

        std::env::set_var(ENV_RANK, "9");
        assert!(TcpConfig::from_env().is_err()); // rank >= world

        std::env::set_var(ENV_RANK, "0");
        std::env::remove_var(ENV_RENDEZVOUS);
        std::env::remove_var(ENV_PEERS);
        assert!(TcpConfig::from_env().is_err()); // no rendezvous style

        clear();
    }
}

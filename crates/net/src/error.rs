//! Error types for the networking substrate.

use std::fmt;

/// Errors surfaced by the message-passing layer.
///
/// Most APIs in this crate panic on programmer errors (rank out of bounds,
/// collective call-order mismatch) because an SPMD program that violates
/// them is unrecoverable, mirroring MPI semantics. `NetError` is reserved
/// for conditions a caller can meaningfully handle — in particular
/// everything that can go wrong at the transport boundary (malformed
/// frames from a remote peer, sockets closing, bootstrap failures), which
/// must *never* panic inside the transport itself: a remote process is
/// untrusted input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// A message payload failed to decode as the expected type.
    Decode {
        /// Rank of the sender of the malformed message.
        from: usize,
        /// Tag of the malformed message.
        tag: u64,
    },
    /// The peer's endpoint was dropped (a PE thread panicked, or a remote
    /// process closed its socket while messages were still expected).
    Disconnected {
        /// Rank whose mailbox is gone.
        peer: usize,
    },
    /// A malformed, truncated, or oversized frame arrived on a transport
    /// connection. Carries the rank of the peer the frame came from so
    /// multi-process runs can name the faulty process.
    Frame {
        /// Rank of the peer whose connection produced the bad frame.
        peer: usize,
        /// Human-readable description of what was wrong with the frame.
        reason: String,
    },
    /// An I/O error on a transport socket. The kind and message are
    /// captured as strings so the error stays `Clone + PartialEq`.
    Io {
        /// What the transport was doing when the error occurred.
        context: String,
        /// `std::io::Error` rendered to text.
        source: String,
    },
    /// Rank-rendezvous bootstrap failed (bad environment, handshake
    /// violation, or a peer that never showed up).
    Bootstrap {
        /// What went wrong.
        reason: String,
    },
    /// Every transport endpoint is gone: the run was torn down while a
    /// receive was still outstanding.
    TornDown,
}

impl NetError {
    /// Helper: wrap an `std::io::Error` with context.
    pub(crate) fn io(context: impl Into<String>, err: &std::io::Error) -> Self {
        NetError::Io {
            context: context.into(),
            source: err.to_string(),
        }
    }

    /// Helper: a malformed-frame error attributed to `peer`.
    pub(crate) fn frame(peer: usize, reason: impl Into<String>) -> Self {
        NetError::Frame {
            peer,
            reason: reason.into(),
        }
    }

    /// Helper: a bootstrap failure.
    pub(crate) fn bootstrap(reason: impl Into<String>) -> Self {
        NetError::Bootstrap {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Decode { from, tag } => {
                write!(f, "failed to decode message from PE {from} (tag {tag})")
            }
            NetError::Disconnected { peer } => {
                write!(f, "PE {peer} disconnected (thread or process exited early)")
            }
            NetError::Frame { peer, reason } => {
                write!(f, "bad frame from PE {peer}: {reason}")
            }
            NetError::Io { context, source } => {
                write!(f, "transport I/O error while {context}: {source}")
            }
            NetError::Bootstrap { reason } => {
                write!(f, "bootstrap failed: {reason}")
            }
            NetError::TornDown => {
                write!(f, "communication domain torn down during receive")
            }
        }
    }
}

impl std::error::Error for NetError {}

/// Result alias for fallible networking operations.
pub type Result<T> = std::result::Result<T, NetError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = NetError::Decode { from: 3, tag: 7 };
        assert!(e.to_string().contains("PE 3"));
        let e = NetError::Disconnected { peer: 1 };
        assert!(e.to_string().contains("PE 1"));
        let e = NetError::frame(2, "truncated header");
        assert!(e.to_string().contains("PE 2"));
        assert!(e.to_string().contains("truncated header"));
        let e = NetError::io(
            "reading frame payload",
            &std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof"),
        );
        assert!(e.to_string().contains("reading frame payload"));
        let e = NetError::bootstrap("rank 3 never connected");
        assert!(e.to_string().contains("rank 3"));
        assert!(NetError::TornDown.to_string().contains("torn down"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&NetError::Disconnected { peer: 0 });
    }

    #[test]
    fn errors_compare_and_clone() {
        let e = NetError::frame(1, "oversized");
        assert_eq!(e.clone(), e);
        assert_ne!(e, NetError::frame(2, "oversized"));
    }
}

//! Error types for the networking substrate.

use std::fmt;

/// Errors surfaced by the message-passing layer.
///
/// Most APIs in this crate panic on programmer errors (rank out of bounds,
/// collective call-order mismatch) because an SPMD program that violates
/// them is unrecoverable, mirroring MPI semantics. `NetError` is reserved
/// for conditions a caller can meaningfully handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// A message payload failed to decode as the expected type.
    Decode {
        /// Rank of the sender of the malformed message.
        from: usize,
        /// Tag of the malformed message.
        tag: u64,
    },
    /// The peer's channel endpoint was dropped (a PE thread panicked).
    Disconnected {
        /// Rank whose mailbox is gone.
        peer: usize,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Decode { from, tag } => {
                write!(f, "failed to decode message from PE {from} (tag {tag})")
            }
            NetError::Disconnected { peer } => {
                write!(f, "PE {peer} disconnected (thread exited early)")
            }
        }
    }
}

impl std::error::Error for NetError {}

/// Result alias for fallible networking operations.
pub type Result<T> = std::result::Result<T, NetError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = NetError::Decode { from: 3, tag: 7 };
        assert!(e.to_string().contains("PE 3"));
        let e = NetError::Disconnected { peer: 1 };
        assert!(e.to_string().contains("PE 1"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&NetError::Disconnected { peer: 0 });
    }
}

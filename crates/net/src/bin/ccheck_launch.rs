//! `ccheck-launch` — run an SPMD binary as `p` local processes over the
//! TCP transport backend.
//!
//! ```text
//! ccheck-launch -p 4 [--timeout 60] [--run-timeout 600] -- <command> [args...]
//! ```
//!
//! The launcher binds a rendezvous socket on loopback, spawns `p` copies
//! of `<command>` with the bootstrap environment set
//! (`CCHECK_RANK`, `CCHECK_WORLD`, `CCHECK_RENDEZVOUS`,
//! `CCHECK_TRANSPORT=tcp`, `CCHECK_TIMEOUT`), serves the rank/address
//! exchange, and waits for all workers. The exit code is 0 only if every
//! worker exited 0; if a worker dies during rendezvous the launcher
//! kills the rest and reports it instead of hanging. `--timeout` bounds
//! the bootstrap phase (rendezvous and mesh construction, worker side
//! included via `CCHECK_TIMEOUT`); `--run-timeout`, when given, bounds
//! the workers' run after bootstrap, so a collective deadlock kills the
//! world instead of hanging a CI job forever.
//!
//! Workers obtain their communicator with
//! [`ccheck_net::bootstrap::init_from_env`] (the `ccheck-bench`
//! experiment binaries do this when given `--transport tcp`).

use std::net::TcpListener;
use std::process::{Child, Command, ExitCode, Stdio};
use std::time::{Duration, Instant};

use ccheck_net::bootstrap::{self, ENV_RANK, ENV_RENDEZVOUS, ENV_TIMEOUT, ENV_WORLD};

struct Options {
    procs: usize,
    timeout: Duration,
    /// Bound on the run *after* bootstrap; `None` = wait forever.
    run_timeout: Option<Duration>,
    command: Vec<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: ccheck-launch [-p N | --procs N] [--timeout SECS] [--run-timeout SECS]\n\
         \u{20}                    -- <command> [args...]\n\
         \n\
         Runs <command> as N rank-numbered processes wired together over\n\
         loopback TCP (default N = 2). --timeout bounds bootstrap\n\
         (default 120s); --run-timeout additionally bounds the run after\n\
         bootstrap (default: unbounded). Example:\n\
         \n\
             ccheck-launch -p 4 -- target/release/table2 --transport tcp"
    );
    std::process::exit(2);
}

fn parse_args(args: &[String]) -> Options {
    let mut procs = 2usize;
    let mut timeout = Duration::from_secs(120);
    let mut run_timeout = None;
    let mut command = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-p" | "--procs" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                    usage()
                };
                procs = v;
            }
            "--timeout" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                    usage()
                };
                timeout = Duration::from_secs(v);
            }
            "--run-timeout" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                    usage()
                };
                run_timeout = Some(Duration::from_secs(v));
            }
            "--" => {
                command = it.cloned().collect();
                break;
            }
            "-h" | "--help" => usage(),
            other => {
                eprintln!("ccheck-launch: unknown option {other:?}");
                usage();
            }
        }
    }
    if command.is_empty() || procs == 0 {
        usage();
    }
    Options {
        procs,
        timeout,
        run_timeout,
        command,
    }
}

/// Check all children; `Some(reason)` if any has already exited. ANY
/// exit — even a clean one — during rendezvous is fatal: the table is
/// only broadcast once every rank has joined, so a rank that is gone
/// can never join and waiting out the full timeout would be pointless.
fn failed_child(children: &mut [(usize, Child)]) -> Option<String> {
    for (rank, child) in children.iter_mut() {
        if let Ok(Some(status)) = child.try_wait() {
            return Some(format!(
                "worker {rank} exited ({}) before rendezvous completed",
                describe_exit(&status)
            ));
        }
    }
    None
}

/// Human classification of a worker's exit: the signal that killed it
/// (named, for the common ones) or its exit code. The same vocabulary
/// the service's `health` command uses for its Dead state, so launcher
/// stderr and health reports read alike.
fn describe_exit(status: &std::process::ExitStatus) -> String {
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt;
        if let Some(sig) = status.signal() {
            let name = match sig {
                1 => " (SIGHUP)",
                2 => " (SIGINT)",
                4 => " (SIGILL)",
                6 => " (SIGABRT)",
                8 => " (SIGFPE)",
                9 => " (SIGKILL)",
                11 => " (SIGSEGV)",
                13 => " (SIGPIPE)",
                15 => " (SIGTERM)",
                _ => "",
            };
            return format!("killed by signal {sig}{name}");
        }
    }
    match status.code() {
        Some(code) => format!("exit code {code}"),
        None => format!("{status}"),
    }
}

fn main() -> ExitCode {
    ccheck_obs::log::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_args(&args);

    let listener = match TcpListener::bind("127.0.0.1:0") {
        Ok(l) => l,
        Err(e) => {
            eprintln!("ccheck-launch: cannot bind rendezvous socket: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rendezvous = listener
        .local_addr()
        .expect("listener has a local address")
        .to_string();

    let mut children: Vec<(usize, Child)> = Vec::with_capacity(opts.procs);
    for rank in 0..opts.procs {
        let spawned = Command::new(&opts.command[0])
            .args(&opts.command[1..])
            .env("CCHECK_TRANSPORT", "tcp")
            .env(ENV_RANK, rank.to_string())
            .env(ENV_WORLD, opts.procs.to_string())
            .env(ENV_RENDEZVOUS, &rendezvous)
            .env(ENV_TIMEOUT, opts.timeout.as_secs().to_string())
            .stdin(Stdio::null())
            .spawn();
        match spawned {
            Ok(child) => {
                ccheck_obs::debug!("launch", "spawned worker {rank} (pid {})", child.id());
                children.push((rank, child));
            }
            Err(e) => {
                eprintln!(
                    "ccheck-launch: failed to spawn worker {rank} ({}): {e}",
                    opts.command[0]
                );
                for (_, mut child) in children {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                return ExitCode::FAILURE;
            }
        }
    }

    let deadline = Instant::now() + opts.timeout;
    if let Err(e) = bootstrap::serve_rendezvous(&listener, opts.procs, deadline, || {
        failed_child(&mut children)
    }) {
        eprintln!("ccheck-launch: rendezvous failed: {e}");
        for (_, child) in children.iter_mut() {
            let _ = child.kill();
        }
        for (_, mut child) in children {
            let _ = child.wait();
        }
        return ExitCode::FAILURE;
    }

    // Bootstrap is done; wait for the workers' run, bounded by
    // --run-timeout when given so a collective deadlock in the workers
    // kills the world instead of hanging the launcher (and any CI job
    // above it) forever.
    let run_deadline = opts.run_timeout.map(|t| Instant::now() + t);
    let mut failures = 0usize;
    // The first worker to go down is usually the root cause — every
    // other rank then dies of collective disconnection. Remember who it
    // was and how it died, and lead the final report with it.
    let mut first_exit: Option<(usize, String)> = None;
    let mut pending = children;
    while !pending.is_empty() {
        let mut still_running = Vec::with_capacity(pending.len());
        for (rank, mut child) in pending {
            match child.try_wait() {
                Ok(Some(status)) if status.success() => {
                    ccheck_obs::info!("launch", "worker {rank} exited cleanly");
                    if first_exit.is_none() {
                        first_exit = Some((rank, describe_exit(&status)));
                    }
                }
                Ok(Some(status)) => {
                    let how = describe_exit(&status);
                    eprintln!("ccheck-launch: worker {rank} failed: {how}");
                    if first_exit.is_none() {
                        first_exit = Some((rank, how));
                    }
                    failures += 1;
                }
                Ok(None) => still_running.push((rank, child)),
                Err(e) => {
                    eprintln!("ccheck-launch: waiting for worker {rank}: {e}");
                    failures += 1;
                }
            }
        }
        pending = still_running;
        if pending.is_empty() {
            break;
        }
        if let Some(deadline) = run_deadline {
            if Instant::now() >= deadline {
                eprintln!(
                    "ccheck-launch: run timed out after {}s with {} workers still \
                     running; killing them",
                    opts.run_timeout
                        .expect("deadline implies timeout")
                        .as_secs(),
                    pending.len()
                );
                failures += pending.len();
                for (_, child) in pending.iter_mut() {
                    let _ = child.kill();
                }
                for (_, mut child) in pending {
                    let _ = child.wait();
                }
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    if failures > 0 {
        match &first_exit {
            Some((rank, how)) => eprintln!(
                "ccheck-launch: {failures}/{} workers failed; first to exit \
                 was worker {rank} ({how})",
                opts.procs
            ),
            None => eprintln!("ccheck-launch: {failures}/{} workers failed", opts.procs),
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

//! `ccheck-net-selftest` — SPMD worker that exercises the full
//! collective surface over whatever transport it was launched on.
//!
//! Run under the launcher:
//!
//! ```text
//! ccheck-launch -p 4 -- ccheck-net-selftest
//! ```
//!
//! or standalone (falls back to an in-process 4-PE run). Exits 0 iff
//! every check passed on every rank; rank 0 prints the gathered
//! communication-summary table so the multi-process accounting path is
//! exercised too.

use std::process::ExitCode;

use ccheck_net::{bootstrap, Comm, Tag};

/// The workload: point-to-point, selective receive, and one of each
/// collective family. Returns the number of checks performed.
fn exercise(comm: &mut Comm) -> u64 {
    let p = comm.size();
    let r = comm.rank();
    let mut checks = 0u64;

    // Ring exchange (point-to-point, user tags).
    let next = (r + 1) % p;
    let prev = (r + p - 1) % p;
    comm.send(next, Tag::user(1), &(r as u64));
    assert_eq!(comm.recv::<u64>(prev, Tag::user(1)) as usize, prev);
    checks += 1;

    // Out-of-order selective receive from the previous neighbor.
    comm.send(next, Tag::user(3), &33u64);
    comm.send(next, Tag::user(2), &22u64);
    assert_eq!(comm.recv::<u64>(prev, Tag::user(2)), 22);
    assert_eq!(comm.recv::<u64>(prev, Tag::user(3)), 33);
    checks += 1;

    // Collectives.
    assert_eq!(
        comm.allreduce(r as u64 + 1, |a, b| a + b),
        (p as u64) * (p as u64 + 1) / 2
    );
    checks += 1;
    let everyone = comm.allgather(r as u64);
    assert_eq!(everyone, (0..p as u64).collect::<Vec<_>>());
    checks += 1;
    let (prefix, total) = comm.exclusive_prefix_sum(2);
    assert_eq!((prefix, total), (2 * r as u64, 2 * p as u64));
    checks += 1;
    let incoming = comm.all_to_all((0..p as u64).map(|j| 100 * r as u64 + j).collect());
    for (src, v) in incoming.iter().enumerate() {
        assert_eq!(*v, 100 * src as u64 + r as u64);
    }
    checks += 1;
    assert!(comm.all_agree(true));
    comm.barrier();
    checks += 1;

    checks
}

fn main() -> ExitCode {
    let comm = match bootstrap::init_from_env() {
        Ok(comm) => comm,
        Err(e) => {
            eprintln!("ccheck-net-selftest: bootstrap failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    match comm {
        Some(mut comm) => {
            // Test hook: simulate a collective deadlock after bootstrap
            // (rank 0 parks; every other rank blocks in the barrier) so
            // the launcher's --run-timeout path can be exercised for
            // real in crates/net/tests/multiprocess.rs.
            if std::env::var("CCHECK_SELFTEST_HANG").is_ok() {
                if comm.rank() == 0 {
                    loop {
                        std::thread::park();
                    }
                }
                comm.barrier();
            }
            // Multi-process mode: this process is one rank.
            let checks = exercise(&mut comm);
            if let Some(stats) = comm.gather_stats() {
                println!(
                    "ccheck-net-selftest: {} ranks x {checks} checks OK over TCP",
                    comm.size()
                );
                print!("{}", stats.render_table());
            }
            ExitCode::SUCCESS
        }
        None => {
            // Standalone: in-process world, all ranks as threads.
            let p = 4;
            let checks = ccheck_net::run(p, exercise);
            println!(
                "ccheck-net-selftest: {p} ranks x {} checks OK in-process",
                checks[0]
            );
            ExitCode::SUCCESS
        }
    }
}

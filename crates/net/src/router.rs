//! Run harness: spawn `p` PE threads wired together through a shared
//! router (one unbounded mailbox per PE).

use std::sync::Arc;

use crossbeam::channel::{unbounded, Sender};

use crate::comm::{Comm, Packet};
use crate::stats::CommStats;

/// Builder for a `p`-PE communication domain.
///
/// Most users call [`run`]; `Router` is useful when the caller wants to
/// keep the [`CommStats`] handle to inspect traffic after the run, or to
/// drive PE threads with custom scheduling.
pub struct Router {
    comms: Vec<Comm>,
    stats: Arc<CommStats>,
}

impl Router {
    /// Create communicators for `p` PEs sharing one statistics registry.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    pub fn build(p: usize) -> Self {
        assert!(p > 0, "need at least one PE");
        let stats = CommStats::new(p);
        let mut senders = Vec::with_capacity(p);
        let mut receivers = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded::<Packet>();
            senders.push(tx);
            receivers.push(rx);
        }
        let senders: Arc<Vec<Sender<Packet>>> = Arc::new(senders);
        let comms = receivers
            .into_iter()
            .enumerate()
            .map(|(rank, rx)| Comm::new(rank, p, Arc::clone(&senders), rx, Arc::clone(&stats)))
            .collect();
        Self { comms, stats }
    }

    /// The statistics registry shared by all communicators.
    pub fn stats(&self) -> Arc<CommStats> {
        Arc::clone(&self.stats)
    }

    /// Take ownership of the per-PE communicators (rank order).
    pub fn into_comms(self) -> Vec<Comm> {
        self.comms
    }

    /// Run `f` on every PE, each on its own OS thread, and collect the
    /// per-rank results in rank order.
    pub fn run<R, F>(self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut Comm) -> R + Sync,
    {
        let f = &f;
        let mut results: Vec<Option<R>> = Vec::new();
        results.resize_with(self.comms.len(), || None);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for mut comm in self.comms {
                handles.push(scope.spawn(move || {
                    let r = f(&mut comm);
                    (comm.rank(), r)
                }));
            }
            for handle in handles {
                let (rank, r) = handle.join().expect("PE thread panicked");
                results[rank] = Some(r);
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("all ranks ran"))
            .collect()
    }
}

/// Spawn `p` PE threads, run `f` on each, and return the per-rank results.
///
/// This is the main entry point of the crate:
///
/// ```
/// let sums = ccheck_net::run(3, |comm| {
///     comm.allreduce(1u64, |a, b| a + b)
/// });
/// assert_eq!(sums, vec![3, 3, 3]);
/// ```
pub fn run<R, F>(p: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Sync,
{
    Router::build(p).run(f)
}

/// Like [`run`], but also returns the final communication statistics.
pub fn run_with_stats<R, F>(p: usize, f: F) -> (Vec<R>, crate::stats::StatsSnapshot)
where
    R: Send,
    F: Fn(&mut Comm) -> R + Sync,
{
    let router = Router::build(p);
    let stats = router.stats();
    let results = router.run(f);
    (results, stats.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Tag;

    #[test]
    fn results_in_rank_order() {
        let out = run(5, |comm| comm.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn single_pe_runs() {
        let out = run(1, |comm| comm.size());
        assert_eq!(out, vec![1]);
    }

    #[test]
    #[should_panic(expected = "at least one PE")]
    fn zero_pes_rejected() {
        let _ = Router::build(0);
    }

    #[test]
    fn run_with_stats_reports_traffic() {
        let (_, snap) = run_with_stats(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, Tag::user(0), &1u8);
            } else {
                let _: u8 = comm.recv(0, Tag::user(0));
            }
        });
        assert_eq!(snap.total_bytes(), 1);
        assert_eq!(snap.total_messages(), 1);
    }

    #[test]
    fn stats_handle_outlives_run() {
        let router = Router::build(2);
        let stats = router.stats();
        router.run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, Tag::user(0), &7u64);
            } else {
                let _: u64 = comm.recv(0, Tag::user(0));
            }
        });
        assert_eq!(stats.snapshot().total_bytes(), 8);
    }
}

//! Run harness: spawn `p` PE threads wired together through a pluggable
//! transport backend (crossbeam channels by default, real TCP loopback
//! sockets on request).

use std::sync::Arc;

use crate::comm::Comm;
use crate::stats::{CommStats, StatsSnapshot};
use crate::transport::local::LocalTransport;
use crate::transport::tcp::TcpTransport;
use crate::transport::{Backend, Transport};

/// Builder for a `p`-PE communication domain.
///
/// Most users call [`run`]; `Router` is useful when the caller wants to
/// keep the [`CommStats`] handle to inspect traffic after the run, to
/// pick a non-default [`Backend`], or to drive PE threads with custom
/// scheduling.
pub struct Router {
    comms: Vec<Comm>,
    stats: Arc<CommStats>,
}

impl Router {
    /// Create communicators for `p` PEs on the default in-process
    /// backend, sharing one statistics registry.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    pub fn build(p: usize) -> Self {
        Self::build_on(Backend::Local, p)
    }

    /// Create communicators for `p` PEs on the chosen backend.
    ///
    /// # Panics
    /// Panics if `p == 0`, or if the TCP loopback backend cannot set up
    /// its socket mesh (no loopback networking available).
    pub fn build_on(backend: Backend, p: usize) -> Self {
        assert!(p > 0, "need at least one PE");
        let stats = CommStats::new(p);
        let transports: Vec<Box<dyn Transport>> = match backend {
            Backend::Local => LocalTransport::world(p)
                .into_iter()
                .map(|t| Box::new(t) as Box<dyn Transport>)
                .collect(),
            Backend::TcpLoopback => TcpTransport::loopback_world(p)
                .expect("failed to build TCP loopback world")
                .into_iter()
                .map(|t| Box::new(t) as Box<dyn Transport>)
                .collect(),
        };
        let comms = transports
            .into_iter()
            .map(|t| Comm::over(t, Arc::clone(&stats)))
            .collect();
        Self { comms, stats }
    }

    /// The statistics registry shared by all communicators.
    pub fn stats(&self) -> Arc<CommStats> {
        Arc::clone(&self.stats)
    }

    /// Take ownership of the per-PE communicators (rank order).
    pub fn into_comms(self) -> Vec<Comm> {
        self.comms
    }

    /// Run `f` on every PE, each on its own OS thread, and collect the
    /// per-rank results in rank order.
    pub fn run<R, F>(self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut Comm) -> R + Sync,
    {
        let f = &f;
        let mut results: Vec<Option<R>> = Vec::new();
        results.resize_with(self.comms.len(), || None);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for mut comm in self.comms {
                handles.push(scope.spawn(move || {
                    let r = f(&mut comm);
                    (comm.rank(), r)
                }));
            }
            for handle in handles {
                let (rank, r) = handle.join().expect("PE thread panicked");
                results[rank] = Some(r);
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("all ranks ran"))
            .collect()
    }
}

/// Spawn `p` PE threads, run `f` on each, and return the per-rank results.
///
/// This is the main entry point of the crate:
///
/// ```
/// let sums = ccheck_net::run(3, |comm| {
///     comm.allreduce(1u64, |a, b| a + b)
/// });
/// assert_eq!(sums, vec![3, 3, 3]);
/// ```
pub fn run<R, F>(p: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Sync,
{
    Router::build(p).run(f)
}

/// Like [`run`], but on an explicit [`Backend`].
pub fn run_on<R, F>(backend: Backend, p: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Sync,
{
    Router::build_on(backend, p).run(f)
}

/// Like [`run`], but also returns the final communication statistics.
pub fn run_with_stats<R, F>(p: usize, f: F) -> (Vec<R>, StatsSnapshot)
where
    R: Send,
    F: Fn(&mut Comm) -> R + Sync,
{
    run_with_stats_on(Backend::Local, p, f)
}

/// Like [`run_on`], but also returns the final communication statistics.
pub fn run_with_stats_on<R, F>(backend: Backend, p: usize, f: F) -> (Vec<R>, StatsSnapshot)
where
    R: Send,
    F: Fn(&mut Comm) -> R + Sync,
{
    let router = Router::build_on(backend, p);
    let stats = router.stats();
    let results = router.run(f);
    (results, stats.snapshot())
}

/// Test support: run workloads on **every** in-process backend and insist
/// the observable behavior — results *and* exact per-PE communication
/// accounting — is identical.
///
/// This module is `pub` (not `#[cfg(test)]`) so integration tests across
/// the workspace can parameterize over backends; it is not intended for
/// production use.
pub mod testing {
    use super::*;

    /// All backends [`run_both`] exercises.
    pub const ALL_BACKENDS: [Backend; 2] = [Backend::Local, Backend::TcpLoopback];

    /// Run `f` on the local and the TCP loopback backend; assert the
    /// per-rank results agree, then return them.
    pub fn run_both<R, F>(p: usize, f: F) -> Vec<R>
    where
        R: Send + PartialEq + std::fmt::Debug,
        F: Fn(&mut Comm) -> R + Sync,
    {
        let (results, _) = run_both_with_stats(p, f);
        results
    }

    /// Run `f` on both backends; assert that per-rank results *and*
    /// per-PE byte/message/round counters are identical, then return the
    /// (shared) outcome.
    ///
    /// The stats assertion is the contract the paper's measurements rely
    /// on: moving from simulated channels to real sockets must not change
    /// a single counted byte.
    pub fn run_both_with_stats<R, F>(p: usize, f: F) -> (Vec<R>, StatsSnapshot)
    where
        R: Send + PartialEq + std::fmt::Debug,
        F: Fn(&mut Comm) -> R + Sync,
    {
        let (local_results, local_stats) = run_with_stats_on(Backend::Local, p, &f);
        let (tcp_results, tcp_stats) = run_with_stats_on(Backend::TcpLoopback, p, &f);
        assert_eq!(
            local_results, tcp_results,
            "local and tcp backends disagree on results (p={p})"
        );
        assert_eq!(
            local_stats.per_pe(),
            tcp_stats.per_pe(),
            "local and tcp backends disagree on communication accounting (p={p})"
        );
        (local_results, local_stats)
    }

    /// Like [`run_with_stats_on`], but every PE *owns* its communicator
    /// (`Fn(Comm)`, not `Fn(&mut Comm)`) — required to move it into a
    /// [`crate::scope::CommMux`]. The returned snapshot is taken from the
    /// shared registry after all PEs finish, so it includes any scoped
    /// children created during the run.
    pub fn run_owned_with_stats_on<R, F>(
        backend: Backend,
        p: usize,
        f: F,
    ) -> (Vec<R>, StatsSnapshot)
    where
        R: Send,
        F: Fn(Comm) -> R + Sync,
    {
        let router = Router::build_on(backend, p);
        let stats = router.stats();
        let comms = router.into_comms();
        let f = &f;
        let mut results: Vec<Option<R>> = Vec::new();
        results.resize_with(p, || None);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for comm in comms {
                let rank = comm.rank();
                handles.push(scope.spawn(move || (rank, f(comm))));
            }
            for handle in handles {
                let (rank, r) = handle.join().expect("PE thread panicked");
                results[rank] = Some(r);
            }
        });
        let results = results
            .into_iter()
            .map(|r| r.expect("all ranks ran"))
            .collect();
        (results, stats.snapshot())
    }

    /// [`run_both_with_stats`] for owned-communicator workloads: runs on
    /// both backends and asserts results *and* full statistics snapshots
    /// (including per-scope breakdowns) are identical.
    pub fn run_both_owned_with_stats<R, F>(p: usize, f: F) -> (Vec<R>, StatsSnapshot)
    where
        R: Send + PartialEq + std::fmt::Debug,
        F: Fn(Comm) -> R + Sync,
    {
        let (local_results, local_stats) = run_owned_with_stats_on(Backend::Local, p, &f);
        let (tcp_results, tcp_stats) = run_owned_with_stats_on(Backend::TcpLoopback, p, &f);
        assert_eq!(
            local_results, tcp_results,
            "local and tcp backends disagree on results (p={p})"
        );
        assert_eq!(
            local_stats, tcp_stats,
            "local and tcp backends disagree on communication accounting (p={p})"
        );
        (local_results, local_stats)
    }
}

#[cfg(test)]
mod tests {
    use super::testing::{run_both, run_both_with_stats};
    use super::*;
    use crate::comm::Tag;

    #[test]
    fn results_in_rank_order() {
        let out = run_both(5, |comm| comm.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn single_pe_runs() {
        let out = run_both(1, |comm| comm.size());
        assert_eq!(out, vec![1]);
    }

    #[test]
    #[should_panic(expected = "at least one PE")]
    fn zero_pes_rejected() {
        let _ = Router::build(0);
    }

    #[test]
    fn run_with_stats_reports_traffic() {
        let (_, snap) = run_both_with_stats(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, Tag::user(0), &1u8);
            } else {
                let _: u8 = comm.recv(0, Tag::user(0));
            }
        });
        assert_eq!(snap.total_bytes(), 1);
        assert_eq!(snap.total_messages(), 1);
    }

    #[test]
    fn stats_handle_outlives_run() {
        for backend in testing::ALL_BACKENDS {
            let router = Router::build_on(backend, 2);
            let stats = router.stats();
            router.run(|comm| {
                if comm.rank() == 0 {
                    comm.send(1, Tag::user(0), &7u64);
                } else {
                    let _: u64 = comm.recv(0, Tag::user(0));
                }
            });
            assert_eq!(stats.snapshot().total_bytes(), 8);
        }
    }
}

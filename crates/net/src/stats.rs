//! Exact communication accounting.
//!
//! Every byte that crosses the simulated network is recorded here, per PE,
//! with relaxed atomics (the counters are monotone and only read after a
//! barrier / at teardown, so no ordering is required). The paper's central
//! optimization criterion is *bottleneck communication volume* — the
//! maximum number of bytes sent or received by any single PE — so
//! [`StatsSnapshot`] exposes exactly that, alongside message counts and
//! collective round counts (the α term of the cost model).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-PE monotone counters. Updated by [`crate::Comm`] on every send and
/// receive, and by the collectives for latency rounds.
#[derive(Debug, Default)]
pub struct PeStats {
    /// Total payload bytes sent by this PE.
    pub bytes_sent: AtomicU64,
    /// Total payload bytes received by this PE.
    pub bytes_recv: AtomicU64,
    /// Number of point-to-point messages sent.
    pub msgs_sent: AtomicU64,
    /// Number of point-to-point messages received.
    pub msgs_recv: AtomicU64,
    /// Latency rounds attributed to this PE (each collective adds its
    /// critical-path round count; a single p2p message counts as one round).
    pub rounds: AtomicU64,
}

impl PeStats {
    #[inline]
    pub(crate) fn record_send(&self, bytes: usize) {
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
        self.msgs_sent.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_recv(&self, bytes: usize) {
        self.bytes_recv.fetch_add(bytes as u64, Ordering::Relaxed);
        self.msgs_recv.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_rounds(&self, rounds: u64) {
        self.rounds.fetch_add(rounds, Ordering::Relaxed);
    }

    fn load(&self) -> PeStatsSnapshot {
        PeStatsSnapshot {
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_recv: self.bytes_recv.load(Ordering::Relaxed),
            msgs_sent: self.msgs_sent.load(Ordering::Relaxed),
            msgs_recv: self.msgs_recv.load(Ordering::Relaxed),
            rounds: self.rounds.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value copy of one PE's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PeStatsSnapshot {
    pub bytes_sent: u64,
    pub bytes_recv: u64,
    pub msgs_sent: u64,
    pub msgs_recv: u64,
    pub rounds: u64,
}

impl PeStatsSnapshot {
    /// Communication volume of this PE: max(sent, received) bytes, per the
    /// single-ported full-duplex model of the paper (§2).
    pub fn volume(&self) -> u64 {
        self.bytes_sent.max(self.bytes_recv)
    }
}

/// Shared registry of all PEs' counters for one run.
#[derive(Debug)]
pub struct CommStats {
    per_pe: Vec<PeStats>,
}

impl CommStats {
    /// Create a registry for `p` PEs, all counters zero.
    pub fn new(p: usize) -> Arc<Self> {
        Arc::new(Self {
            per_pe: (0..p).map(|_| PeStats::default()).collect(),
        })
    }

    /// Number of PEs tracked.
    pub fn num_pes(&self) -> usize {
        self.per_pe.len()
    }

    /// Counters of one PE.
    pub fn pe(&self, rank: usize) -> &PeStats {
        &self.per_pe[rank]
    }

    /// Capture a consistent-enough snapshot (call after all PE threads have
    /// joined, or after a barrier, for exact numbers).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            per_pe: self.per_pe.iter().map(PeStats::load).collect(),
        }
    }
}

/// Immutable snapshot of a whole run's communication accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    per_pe: Vec<PeStatsSnapshot>,
}

impl StatsSnapshot {
    /// Assemble a snapshot from per-PE rows in rank order. Used by
    /// [`crate::Comm::gather_stats`] to rebuild the global view from
    /// counters gathered across processes.
    pub fn from_rows(per_pe: Vec<PeStatsSnapshot>) -> Self {
        StatsSnapshot { per_pe }
    }

    /// Per-PE values, indexed by rank.
    pub fn per_pe(&self) -> &[PeStatsSnapshot] {
        &self.per_pe
    }

    /// Total bytes sent across all PEs (equals total bytes received).
    pub fn total_bytes(&self) -> u64 {
        self.per_pe.iter().map(|s| s.bytes_sent).sum()
    }

    /// Total number of point-to-point messages.
    pub fn total_messages(&self) -> u64 {
        self.per_pe.iter().map(|s| s.msgs_sent).sum()
    }

    /// Bottleneck communication volume: `max_i max(sent_i, recv_i)`.
    /// This is the quantity the paper's checkers keep sublinear in `n/p`.
    pub fn bottleneck_volume(&self) -> u64 {
        self.per_pe
            .iter()
            .map(PeStatsSnapshot::volume)
            .max()
            .unwrap_or(0)
    }

    /// Maximum latency rounds on any PE (critical path for the α term).
    pub fn max_rounds(&self) -> u64 {
        self.per_pe.iter().map(|s| s.rounds).max().unwrap_or(0)
    }

    /// Render the whole snapshot as the standard communication-summary
    /// table: one row per PE (bytes/messages sent and received, rounds,
    /// volume) plus the totals and the paper's headline figure, the
    /// bottleneck communication volume. The experiment binaries and
    /// examples share this printer so their output stays comparable.
    pub fn render_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(
            out,
            "{:>6} {:>14} {:>14} {:>10} {:>10} {:>8} {:>14}",
            "PE", "bytes sent", "bytes recv", "msgs sent", "msgs recv", "rounds", "volume"
        )
        .expect("write to String");
        for (rank, pe) in self.per_pe.iter().enumerate() {
            writeln!(
                out,
                "{:>6} {:>14} {:>14} {:>10} {:>10} {:>8} {:>14}",
                rank,
                pe.bytes_sent,
                pe.bytes_recv,
                pe.msgs_sent,
                pe.msgs_recv,
                pe.rounds,
                pe.volume()
            )
            .expect("write to String");
        }
        writeln!(
            out,
            "{:>6} {:>14} {:>14} {:>10} {:>10} {:>8}",
            "total",
            self.total_bytes(),
            self.per_pe.iter().map(|s| s.bytes_recv).sum::<u64>(),
            self.total_messages(),
            self.per_pe.iter().map(|s| s.msgs_recv).sum::<u64>(),
            self.max_rounds(),
        )
        .expect("write to String");
        writeln!(
            out,
            "bottleneck communication volume: {} bytes (max over PEs of max(sent, recv))",
            self.bottleneck_volume()
        )
        .expect("write to String");
        out
    }

    /// Element-wise difference (`self` minus `earlier`); panics if the PE
    /// counts differ. Useful to attribute traffic to a program phase.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        assert_eq!(self.per_pe.len(), earlier.per_pe.len());
        StatsSnapshot {
            per_pe: self
                .per_pe
                .iter()
                .zip(&earlier.per_pe)
                .map(|(now, before)| PeStatsSnapshot {
                    bytes_sent: now.bytes_sent - before.bytes_sent,
                    bytes_recv: now.bytes_recv - before.bytes_recv,
                    msgs_sent: now.msgs_sent - before.msgs_sent,
                    msgs_recv: now.msgs_recv - before.msgs_recv,
                    rounds: now.rounds - before.rounds,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let stats = CommStats::new(2);
        stats.pe(0).record_send(100);
        stats.pe(0).record_send(50);
        stats.pe(1).record_recv(150);
        stats.pe(0).record_rounds(3);

        let snap = stats.snapshot();
        assert_eq!(snap.per_pe()[0].bytes_sent, 150);
        assert_eq!(snap.per_pe()[0].msgs_sent, 2);
        assert_eq!(snap.per_pe()[1].bytes_recv, 150);
        assert_eq!(snap.per_pe()[1].msgs_recv, 1);
        assert_eq!(snap.total_bytes(), 150);
        assert_eq!(snap.total_messages(), 2);
        assert_eq!(snap.max_rounds(), 3);
    }

    #[test]
    fn bottleneck_is_max_of_sent_and_received() {
        let stats = CommStats::new(3);
        stats.pe(0).record_send(10);
        stats.pe(1).record_recv(500);
        stats.pe(2).record_send(300);
        let snap = stats.snapshot();
        assert_eq!(snap.bottleneck_volume(), 500);
    }

    #[test]
    fn since_subtracts_phases() {
        let stats = CommStats::new(1);
        stats.pe(0).record_send(10);
        let a = stats.snapshot();
        stats.pe(0).record_send(32);
        let b = stats.snapshot();
        let delta = b.since(&a);
        assert_eq!(delta.per_pe()[0].bytes_sent, 32);
        assert_eq!(delta.per_pe()[0].msgs_sent, 1);
    }

    #[test]
    fn empty_snapshot_defaults() {
        let stats = CommStats::new(0);
        let snap = stats.snapshot();
        assert_eq!(snap.bottleneck_volume(), 0);
        assert_eq!(snap.max_rounds(), 0);
        assert_eq!(snap.total_bytes(), 0);
    }

    #[test]
    fn from_rows_roundtrips() {
        let rows = vec![
            PeStatsSnapshot {
                bytes_sent: 1,
                ..Default::default()
            },
            PeStatsSnapshot {
                bytes_recv: 2,
                ..Default::default()
            },
        ];
        let snap = StatsSnapshot::from_rows(rows.clone());
        assert_eq!(snap.per_pe(), &rows[..]);
    }

    #[test]
    fn render_table_lists_every_pe_and_totals() {
        let stats = CommStats::new(2);
        stats.pe(0).record_send(100);
        stats.pe(1).record_recv(100);
        stats.pe(0).record_rounds(2);
        let table = stats.snapshot().render_table();
        // Header, one row per PE, totals row, bottleneck line.
        assert_eq!(table.lines().count(), 5);
        assert!(table.contains("bytes sent"));
        assert!(table.contains("bottleneck communication volume: 100 bytes"));
        let totals = table.lines().nth(3).unwrap();
        assert!(totals.trim_start().starts_with("total"));
        assert!(totals.contains("100"));
    }

    #[test]
    fn volume_is_max_direction() {
        let s = PeStatsSnapshot {
            bytes_sent: 7,
            bytes_recv: 9,
            ..Default::default()
        };
        assert_eq!(s.volume(), 9);
    }
}

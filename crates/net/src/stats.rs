//! Exact communication accounting.
//!
//! Every byte that crosses the simulated network is recorded here, per PE,
//! with relaxed atomics (the counters are monotone and only read after a
//! barrier / at teardown, so no ordering is required). The paper's central
//! optimization criterion is *bottleneck communication volume* — the
//! maximum number of bytes sent or received by any single PE — so
//! [`StatsSnapshot`] exposes exactly that, alongside message counts and
//! collective round counts (the α term of the cost model).
//!
//! ## Scoped registries
//!
//! A registry can have labeled **child scopes** ([`CommStats::scoped`]):
//! independent registries whose counters are attributed to one unit of
//! work (a checking job of the `ccheck-service` runtime, a pipeline
//! phase, …). A parent [`CommStats::snapshot`] aggregates its children
//! into the per-PE totals *and* carries the per-scope breakdown, which
//! [`StatsSnapshot::render_table`] prints as one sub-table per scope —
//! so a multi-tenant run reports both the whole-world volume and each
//! job's own traffic, exactly as if the job had run alone.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Per-PE monotone counters. Updated by [`crate::Comm`] on every send and
/// receive, and by the collectives for latency rounds.
#[derive(Debug, Default)]
pub struct PeStats {
    /// Total payload bytes sent by this PE.
    pub bytes_sent: AtomicU64,
    /// Total payload bytes received by this PE.
    pub bytes_recv: AtomicU64,
    /// Number of point-to-point messages sent.
    pub msgs_sent: AtomicU64,
    /// Number of point-to-point messages received.
    pub msgs_recv: AtomicU64,
    /// Latency rounds attributed to this PE (each collective adds its
    /// critical-path round count; a single p2p message counts as one round).
    pub rounds: AtomicU64,
}

/// Cached handles into the global `ccheck-obs` registry. Every
/// [`PeStats`] record call — regardless of which scope registry it
/// lands in — also funnels through these process-wide series, so byte
/// accounting is *one* system: `CommStats` keeps the exact per-PE /
/// per-scope attribution, and the obs registry carries the same
/// traffic as world-mergeable `net.*` series (plus the frame-size
/// histogram, which scope totals cannot express).
struct NetObs {
    tx_bytes: Arc<ccheck_obs::Counter>,
    tx_msgs: Arc<ccheck_obs::Counter>,
    rx_bytes: Arc<ccheck_obs::Counter>,
    rx_msgs: Arc<ccheck_obs::Counter>,
    rounds: Arc<ccheck_obs::Counter>,
    /// Sizes of *sent* frames only, so a world-wide merge counts each
    /// frame once.
    frame_bytes: Arc<ccheck_obs::Histogram>,
}

fn net_obs() -> &'static NetObs {
    static OBS: OnceLock<NetObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let reg = ccheck_obs::registry();
        NetObs {
            tx_bytes: reg.counter("net.tx.bytes"),
            tx_msgs: reg.counter("net.tx.msgs"),
            rx_bytes: reg.counter("net.rx.bytes"),
            rx_msgs: reg.counter("net.rx.msgs"),
            rounds: reg.counter("net.rounds"),
            frame_bytes: reg.histogram("net.frame.bytes"),
        }
    })
}

impl PeStats {
    #[inline]
    pub(crate) fn record_send(&self, bytes: usize) {
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
        self.msgs_sent.fetch_add(1, Ordering::Relaxed);
        if ccheck_obs::enabled() {
            let obs = net_obs();
            obs.tx_bytes.add(bytes as u64);
            obs.tx_msgs.inc();
            obs.frame_bytes.observe(bytes as u64);
        }
    }

    #[inline]
    pub(crate) fn record_recv(&self, bytes: usize) {
        self.bytes_recv.fetch_add(bytes as u64, Ordering::Relaxed);
        self.msgs_recv.fetch_add(1, Ordering::Relaxed);
        if ccheck_obs::enabled() {
            let obs = net_obs();
            obs.rx_bytes.add(bytes as u64);
            obs.rx_msgs.inc();
        }
    }

    #[inline]
    pub(crate) fn record_rounds(&self, rounds: u64) {
        self.rounds.fetch_add(rounds, Ordering::Relaxed);
        if ccheck_obs::enabled() {
            net_obs().rounds.add(rounds);
        }
    }

    fn load(&self) -> PeStatsSnapshot {
        PeStatsSnapshot {
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_recv: self.bytes_recv.load(Ordering::Relaxed),
            msgs_sent: self.msgs_sent.load(Ordering::Relaxed),
            msgs_recv: self.msgs_recv.load(Ordering::Relaxed),
            rounds: self.rounds.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value copy of one PE's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PeStatsSnapshot {
    pub bytes_sent: u64,
    pub bytes_recv: u64,
    pub msgs_sent: u64,
    pub msgs_recv: u64,
    pub rounds: u64,
}

impl PeStatsSnapshot {
    /// Communication volume of this PE: max(sent, received) bytes, per the
    /// single-ported full-duplex model of the paper (§2).
    pub fn volume(&self) -> u64 {
        self.bytes_sent.max(self.bytes_recv)
    }
}

/// Shared registry of all PEs' counters for one run.
#[derive(Debug)]
pub struct CommStats {
    per_pe: Vec<PeStats>,
    /// Labeled child registries (one per scope of a multiplexed run),
    /// aggregated into this registry's [`CommStats::snapshot`].
    scopes: Mutex<Vec<(String, Arc<CommStats>)>>,
}

impl CommStats {
    /// Create a registry for `p` PEs, all counters zero.
    pub fn new(p: usize) -> Arc<Self> {
        Arc::new(Self {
            per_pe: (0..p).map(|_| PeStats::default()).collect(),
            scopes: Mutex::new(Vec::new()),
        })
    }

    /// Number of PEs tracked.
    pub fn num_pes(&self) -> usize {
        self.per_pe.len()
    }

    /// Counters of one PE.
    pub fn pe(&self, rank: usize) -> &PeStats {
        &self.per_pe[rank]
    }

    /// Get-or-create the child registry labeled `label` (same PE count as
    /// the parent). All callers passing the same label share one child —
    /// in in-process runs every PE's scoped communicator for one job
    /// therefore records into the same registry, mirroring how the PEs
    /// share the parent.
    pub fn scoped(self: &Arc<Self>, label: &str) -> Arc<CommStats> {
        let mut scopes = self.scopes.lock().expect("stats scope registry poisoned");
        if let Some((_, child)) = scopes.iter().find(|(l, _)| l == label) {
            return Arc::clone(child);
        }
        let child = CommStats::new(self.num_pes());
        scopes.push((label.to_string(), Arc::clone(&child)));
        child
    }

    /// Fold the child registry labeled `label` into this registry's own
    /// counters and drop it from the per-scope breakdown. Per-PE totals
    /// are preserved exactly; only the per-scope attribution is given
    /// up. Returns the retired scope's final snapshot — the last exact
    /// record of what that unit of work cost, which callers can hand to
    /// whatever consumes per-scope accounting (the service's scheduler
    /// feeds it into per-job summaries) — or `None` if there was
    /// nothing to retire.
    ///
    /// This is how a long-lived multi-tenant run (one scope per job,
    /// unbounded jobs) keeps the registry bounded: every worker calls it
    /// after dropping its scoped communicator, and the call only takes
    /// effect once the registry itself holds the last reference — so no
    /// still-live communicator can record into a retired child (returns
    /// `None`, leaving the scope in place, while any handle remains).
    pub fn retire_scope(&self, label: &str) -> Option<StatsSnapshot> {
        let mut scopes = self.scopes.lock().expect("stats scope registry poisoned");
        let pos = scopes.iter().position(|(l, _)| l == label)?;
        if Arc::strong_count(&scopes[pos].1) > 1 {
            return None; // a communicator still records into it
        }
        let (_, child) = scopes.remove(pos);
        drop(scopes);
        // The child snapshot aggregates its own children recursively, so
        // one fold per PE suffices.
        let snapshot = child.snapshot();
        for (pe, row) in self.per_pe.iter().zip(snapshot.per_pe()) {
            pe.bytes_sent.fetch_add(row.bytes_sent, Ordering::Relaxed);
            pe.bytes_recv.fetch_add(row.bytes_recv, Ordering::Relaxed);
            pe.msgs_sent.fetch_add(row.msgs_sent, Ordering::Relaxed);
            pe.msgs_recv.fetch_add(row.msgs_recv, Ordering::Relaxed);
            pe.rounds.fetch_add(row.rounds, Ordering::Relaxed);
        }
        Some(snapshot)
    }

    /// Capture a consistent-enough snapshot (call after all PE threads have
    /// joined, or after a barrier, for exact numbers). Child scopes are
    /// folded into the per-PE totals and reported individually in
    /// [`StatsSnapshot::scopes`], sorted by label so the breakdown is
    /// deterministic regardless of registration order.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut per_pe: Vec<PeStatsSnapshot> = self.per_pe.iter().map(PeStats::load).collect();
        let mut scopes: Vec<(String, StatsSnapshot)> = self
            .scopes
            .lock()
            .expect("stats scope registry poisoned")
            .iter()
            .map(|(label, child)| (label.clone(), child.snapshot()))
            .collect();
        scopes.sort_by(|a, b| a.0.cmp(&b.0));
        for (_, child) in &scopes {
            for (total, part) in per_pe.iter_mut().zip(child.per_pe()) {
                total.bytes_sent += part.bytes_sent;
                total.bytes_recv += part.bytes_recv;
                total.msgs_sent += part.msgs_sent;
                total.msgs_recv += part.msgs_recv;
                total.rounds += part.rounds;
            }
        }
        StatsSnapshot { per_pe, scopes }
    }
}

/// Immutable snapshot of a whole run's communication accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    per_pe: Vec<PeStatsSnapshot>,
    scopes: Vec<(String, StatsSnapshot)>,
}

impl StatsSnapshot {
    /// Assemble a snapshot from per-PE rows in rank order. Used by
    /// [`crate::Comm::gather_stats`] to rebuild the global view from
    /// counters gathered across processes.
    pub fn from_rows(per_pe: Vec<PeStatsSnapshot>) -> Self {
        StatsSnapshot {
            per_pe,
            scopes: Vec::new(),
        }
    }

    /// Per-PE values, indexed by rank. For a registry with child scopes
    /// these rows are the *totals* (own traffic plus every scope's).
    pub fn per_pe(&self) -> &[PeStatsSnapshot] {
        &self.per_pe
    }

    /// Per-scope breakdown, sorted by label (empty for unscoped runs).
    pub fn scopes(&self) -> &[(String, StatsSnapshot)] {
        &self.scopes
    }

    /// The snapshot of one labeled scope, if present.
    pub fn scope(&self, label: &str) -> Option<&StatsSnapshot> {
        self.scopes.iter().find(|(l, _)| l == label).map(|(_, s)| s)
    }

    /// Total bytes sent across all PEs (equals total bytes received).
    pub fn total_bytes(&self) -> u64 {
        self.per_pe.iter().map(|s| s.bytes_sent).sum()
    }

    /// Total number of point-to-point messages.
    pub fn total_messages(&self) -> u64 {
        self.per_pe.iter().map(|s| s.msgs_sent).sum()
    }

    /// Bottleneck communication volume: `max_i max(sent_i, recv_i)`.
    /// This is the quantity the paper's checkers keep sublinear in `n/p`.
    pub fn bottleneck_volume(&self) -> u64 {
        self.per_pe
            .iter()
            .map(PeStatsSnapshot::volume)
            .max()
            .unwrap_or(0)
    }

    /// Maximum latency rounds on any PE (critical path for the α term).
    pub fn max_rounds(&self) -> u64 {
        self.per_pe.iter().map(|s| s.rounds).max().unwrap_or(0)
    }

    /// Render the whole snapshot as the standard communication-summary
    /// table: one row per PE (bytes/messages sent and received, rounds,
    /// volume) plus the totals and the paper's headline figure, the
    /// bottleneck communication volume. The experiment binaries and
    /// examples share this printer so their output stays comparable.
    pub fn render_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(
            out,
            "{:>6} {:>14} {:>14} {:>10} {:>10} {:>8} {:>14}",
            "PE", "bytes sent", "bytes recv", "msgs sent", "msgs recv", "rounds", "volume"
        )
        .expect("write to String");
        for (rank, pe) in self.per_pe.iter().enumerate() {
            writeln!(
                out,
                "{:>6} {:>14} {:>14} {:>10} {:>10} {:>8} {:>14}",
                rank,
                pe.bytes_sent,
                pe.bytes_recv,
                pe.msgs_sent,
                pe.msgs_recv,
                pe.rounds,
                pe.volume()
            )
            .expect("write to String");
        }
        writeln!(
            out,
            "{:>6} {:>14} {:>14} {:>10} {:>10} {:>8}",
            "total",
            self.total_bytes(),
            self.per_pe.iter().map(|s| s.bytes_recv).sum::<u64>(),
            self.total_messages(),
            self.per_pe.iter().map(|s| s.msgs_recv).sum::<u64>(),
            self.max_rounds(),
        )
        .expect("write to String");
        writeln!(
            out,
            "bottleneck communication volume: {} bytes (max over PEs of max(sent, recv))",
            self.bottleneck_volume()
        )
        .expect("write to String");
        for (label, scope) in &self.scopes {
            writeln!(out, "\nscope [{label}]:").expect("write to String");
            out.push_str(&scope.render_table());
        }
        out
    }

    /// Export this snapshot's totals (and per-scope breakdown) as
    /// counters in a [`ccheck_obs::MetricsSnapshot`], under `prefix`:
    /// `{prefix}.bytes_sent`, `.bytes_recv`, `.msgs_sent`,
    /// `.msgs_recv`, `.rounds` (world totals; rounds is the max over
    /// PEs), `{prefix}.bottleneck_bytes`, and one
    /// `{prefix}.scope.{label}.bytes` series per child scope. This is
    /// how scope byte accounting joins the rest of the metrics system:
    /// the service daemon merges the gathered world snapshot through
    /// here, so a `metrics` response reports comm volume in the same
    /// namespace as everything else.
    pub fn to_metrics(&self, prefix: &str) -> ccheck_obs::MetricsSnapshot {
        let mut out = ccheck_obs::MetricsSnapshot::new(ccheck_obs::source_id());
        out.counters
            .insert(format!("{prefix}.bytes_sent"), self.total_bytes());
        out.counters.insert(
            format!("{prefix}.bytes_recv"),
            self.per_pe.iter().map(|s| s.bytes_recv).sum(),
        );
        out.counters
            .insert(format!("{prefix}.msgs_sent"), self.total_messages());
        out.counters.insert(
            format!("{prefix}.msgs_recv"),
            self.per_pe.iter().map(|s| s.msgs_recv).sum(),
        );
        out.counters
            .insert(format!("{prefix}.rounds"), self.max_rounds());
        out.counters.insert(
            format!("{prefix}.bottleneck_bytes"),
            self.bottleneck_volume(),
        );
        for (label, scope) in &self.scopes {
            out.counters
                .insert(format!("{prefix}.scope.{label}.bytes"), scope.total_bytes());
        }
        out
    }

    /// Element-wise difference (`self` minus `earlier`); panics if the PE
    /// counts differ. Useful to attribute traffic to a program phase.
    /// The result is a flat diff of the *totals* — per-scope breakdowns
    /// are not carried over (scopes may appear or vanish between the two
    /// snapshots; use [`StatsSnapshot::scope`] to diff one scope).
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        assert_eq!(self.per_pe.len(), earlier.per_pe.len());
        StatsSnapshot {
            per_pe: self
                .per_pe
                .iter()
                .zip(&earlier.per_pe)
                .map(|(now, before)| PeStatsSnapshot {
                    bytes_sent: now.bytes_sent - before.bytes_sent,
                    bytes_recv: now.bytes_recv - before.bytes_recv,
                    msgs_sent: now.msgs_sent - before.msgs_sent,
                    msgs_recv: now.msgs_recv - before.msgs_recv,
                    rounds: now.rounds - before.rounds,
                })
                .collect(),
            scopes: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let stats = CommStats::new(2);
        stats.pe(0).record_send(100);
        stats.pe(0).record_send(50);
        stats.pe(1).record_recv(150);
        stats.pe(0).record_rounds(3);

        let snap = stats.snapshot();
        assert_eq!(snap.per_pe()[0].bytes_sent, 150);
        assert_eq!(snap.per_pe()[0].msgs_sent, 2);
        assert_eq!(snap.per_pe()[1].bytes_recv, 150);
        assert_eq!(snap.per_pe()[1].msgs_recv, 1);
        assert_eq!(snap.total_bytes(), 150);
        assert_eq!(snap.total_messages(), 2);
        assert_eq!(snap.max_rounds(), 3);
    }

    #[test]
    fn bottleneck_is_max_of_sent_and_received() {
        let stats = CommStats::new(3);
        stats.pe(0).record_send(10);
        stats.pe(1).record_recv(500);
        stats.pe(2).record_send(300);
        let snap = stats.snapshot();
        assert_eq!(snap.bottleneck_volume(), 500);
    }

    #[test]
    fn since_subtracts_phases() {
        let stats = CommStats::new(1);
        stats.pe(0).record_send(10);
        let a = stats.snapshot();
        stats.pe(0).record_send(32);
        let b = stats.snapshot();
        let delta = b.since(&a);
        assert_eq!(delta.per_pe()[0].bytes_sent, 32);
        assert_eq!(delta.per_pe()[0].msgs_sent, 1);
    }

    #[test]
    fn empty_snapshot_defaults() {
        let stats = CommStats::new(0);
        let snap = stats.snapshot();
        assert_eq!(snap.bottleneck_volume(), 0);
        assert_eq!(snap.max_rounds(), 0);
        assert_eq!(snap.total_bytes(), 0);
    }

    #[test]
    fn from_rows_roundtrips() {
        let rows = vec![
            PeStatsSnapshot {
                bytes_sent: 1,
                ..Default::default()
            },
            PeStatsSnapshot {
                bytes_recv: 2,
                ..Default::default()
            },
        ];
        let snap = StatsSnapshot::from_rows(rows.clone());
        assert_eq!(snap.per_pe(), &rows[..]);
    }

    #[test]
    fn render_table_lists_every_pe_and_totals() {
        let stats = CommStats::new(2);
        stats.pe(0).record_send(100);
        stats.pe(1).record_recv(100);
        stats.pe(0).record_rounds(2);
        let table = stats.snapshot().render_table();
        // Header, one row per PE, totals row, bottleneck line.
        assert_eq!(table.lines().count(), 5);
        assert!(table.contains("bytes sent"));
        assert!(table.contains("bottleneck communication volume: 100 bytes"));
        let totals = table.lines().nth(3).unwrap();
        assert!(totals.trim_start().starts_with("total"));
        assert!(totals.contains("100"));
    }

    #[test]
    fn scoped_children_aggregate_into_parent() {
        let root = CommStats::new(2);
        root.pe(0).record_send(10);
        let job_a = root.scoped("job-a");
        let job_b = root.scoped("job-b");
        job_a.pe(0).record_send(100);
        job_a.pe(1).record_recv(100);
        job_b.pe(1).record_send(7);
        job_b.pe(1).record_rounds(2);

        let snap = root.snapshot();
        // Totals = own + children.
        assert_eq!(snap.per_pe()[0].bytes_sent, 110);
        assert_eq!(snap.per_pe()[1].bytes_sent, 7);
        assert_eq!(snap.per_pe()[1].bytes_recv, 100);
        assert_eq!(snap.max_rounds(), 2);
        // Per-scope breakdown, sorted by label.
        let labels: Vec<&str> = snap.scopes().iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, vec!["job-a", "job-b"]);
        assert_eq!(snap.scope("job-a").unwrap().per_pe()[0].bytes_sent, 100);
        assert_eq!(snap.scope("job-b").unwrap().per_pe()[1].bytes_sent, 7);
        assert!(snap.scope("job-c").is_none());
    }

    #[test]
    fn scoped_is_get_or_create() {
        let root = CommStats::new(1);
        let a1 = root.scoped("a");
        let a2 = root.scoped("a");
        a1.pe(0).record_send(5);
        // Same registry: the second handle observes the first's traffic.
        assert_eq!(a2.snapshot().per_pe()[0].bytes_sent, 5);
        assert_eq!(root.snapshot().scopes().len(), 1);
    }

    #[test]
    fn retire_scope_folds_into_parent_totals() {
        let root = CommStats::new(2);
        root.pe(0).record_send(5);
        let job = root.scoped("job-9");
        job.pe(0).record_send(100);
        job.pe(1).record_recv(100);
        let before = root.snapshot();

        // While a handle is live, retirement is refused (it could still
        // record) and the breakdown stays.
        assert!(root.retire_scope("job-9").is_none());
        assert_eq!(root.snapshot().scopes().len(), 1);

        drop(job);
        let retired = root.retire_scope("job-9").expect("scope retires");
        // The returned snapshot is the scope's final accounting.
        assert_eq!(retired.per_pe()[0].bytes_sent, 100);
        assert_eq!(retired.per_pe()[1].bytes_recv, 100);
        assert_eq!(retired.total_bytes(), 100);
        let after = root.snapshot();
        // Totals unchanged, breakdown gone, registry bounded again.
        assert_eq!(after.per_pe(), before.per_pe());
        assert!(after.scopes().is_empty());
        assert!(
            root.retire_scope("job-9").is_none(),
            "second retire is a no-op"
        );
    }

    #[test]
    fn render_table_includes_scope_sections() {
        let root = CommStats::new(1);
        root.scoped("job-3").pe(0).record_send(42);
        let table = root.snapshot().render_table();
        assert!(table.contains("scope [job-3]:"), "{table}");
        // Both the totals table and the scope table mention the traffic.
        assert!(table.matches("42").count() >= 2, "{table}");
    }

    #[test]
    fn volume_is_max_direction() {
        let s = PeStatsSnapshot {
            bytes_sent: 7,
            bytes_recv: 9,
            ..Default::default()
        };
        assert_eq!(s.volume(), 9);
    }
}

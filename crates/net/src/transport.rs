//! Pluggable transport layer: how tagged packets physically move
//! between PEs.
//!
//! [`crate::Comm`] implements MPI-style two-sided semantics (selective
//! receive, collectives, exact accounting) on top of a small [`Transport`]
//! trait that only knows how to move [`Packet`]s. Two backends ship with
//! the crate:
//!
//! * [`local`] — the original in-process backend: every PE is a thread
//!   and packets travel through unbounded crossbeam channels. Zero
//!   syscalls, deterministic, the default for tests and single-host runs.
//! * [`tcp`] — a real multi-process backend: every PE is an OS process
//!   and packets travel as length-prefixed frames over
//!   `std::net::TcpStream` meshes (one socket per peer pair, one reader
//!   thread per socket feeding the selective-receive queue).
//!
//! The byte/message counters of [`crate::CommStats`] are recorded *above*
//! this trait (in `Comm`), on payload bytes only, so the measured
//! communication volume — the paper's optimization target — is identical
//! across backends; TCP frame headers are bookkeeping, not payload.

pub mod local;
pub mod tcp;

use crate::comm::Tag;
use crate::error::Result;

/// One tagged message in flight.
#[derive(Debug)]
pub struct Packet {
    /// Rank of the sending PE.
    pub src: usize,
    /// Message tag (user or collective range).
    pub tag: Tag,
    /// Encoded payload bytes ([`crate::wire`] format).
    pub payload: Vec<u8>,
}

/// A backend that can move packets between the PEs of one run.
///
/// Implementations are owned by exactly one PE (one per `Comm`). All
/// methods return [`crate::NetError`] instead of panicking: everything
/// arriving from a transport is untrusted input (on the TCP backend it
/// crosses a process boundary), and the policy decision of whether an
/// error is fatal belongs to the layer above.
pub trait Transport: Send {
    /// Rank of the owning PE, in `0..size`.
    fn rank(&self) -> usize;

    /// Number of PEs in the communication domain.
    fn size(&self) -> usize;

    /// Deliver `payload` to `dest` under `tag`. `dest` is a valid rank
    /// other than `self.rank()` (self-sends short-circuit in `Comm` and
    /// never reach the transport).
    fn send(&mut self, dest: usize, tag: Tag, payload: Vec<u8>) -> Result<()>;

    /// Block until the next packet (any source, any tag) arrives.
    ///
    /// Errors are events, not necessarily fatal: `Disconnected { peer }`
    /// reports that one peer has closed its sending side (delivered once
    /// per peer); the caller may keep receiving from other peers.
    fn recv(&mut self) -> Result<Packet>;

    /// Whether `peer` has closed its sending side — no further packet
    /// from it can ever arrive.
    fn is_closed(&self, peer: usize) -> bool;

    /// Graceful teardown: flush and close this PE's sending sides, then
    /// wait for peers to do the same. Idempotent. Called automatically
    /// when the owning `Comm` is dropped.
    ///
    /// Because every PE keeps *receiving* until all peers have closed,
    /// teardown is barrier-safe: no in-flight message is cut off by an
    /// early `close()` on the receiving end.
    fn shutdown(&mut self) -> Result<()>;

    /// Detach this transport's **sending side** as an independently
    /// usable handle, leaving only the receiving side (`recv`,
    /// `is_closed`) with the transport. After detaching, `send` on the
    /// transport itself fails; a second detach fails too.
    ///
    /// This is the primitive behind [`crate::scope::CommMux`]: one pump
    /// thread owns the receive side while any number of scoped
    /// communicators share the detached sender (behind a mutex).
    /// Teardown inverts accordingly — the *sender* half-closes
    /// ([`TransportSender::close`]) and the receive side drains until
    /// every peer has done the same.
    fn split_sender(&mut self) -> Result<Box<dyn TransportSender>>;
}

/// The detached sending side of a [`Transport`]
/// (see [`Transport::split_sender`]).
pub trait TransportSender: Send {
    /// Deliver `payload` to `dest` under `tag`. Same contract as
    /// [`Transport::send`].
    fn send(&mut self, dest: usize, tag: Tag, payload: Vec<u8>) -> Result<()>;

    /// Half-close every sending side (the peer observes end-of-stream
    /// after all in-flight data). Idempotent; subsequent `send`s fail.
    fn close(&mut self);
}

/// Selector for the built-in backends usable within a single OS process.
///
/// Multi-process TCP worlds are not constructed through this enum — each
/// process builds its own communicator via [`crate::bootstrap`] (usually
/// under the `ccheck-launch` launcher).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Threads + crossbeam channels (the default).
    Local,
    /// Real TCP sockets over `127.0.0.1`, PEs still running as threads
    /// of this process. Exercises the full framing/reader-thread path;
    /// used to validate that accounting is backend-independent.
    TcpLoopback,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_debug_prints_fields() {
        let p = Packet {
            src: 3,
            tag: Tag(9),
            payload: vec![1, 2],
        };
        let s = format!("{p:?}");
        assert!(s.contains("src: 3"));
        assert!(s.contains("Tag(9)"));
    }

    #[test]
    fn backend_is_copy_eq() {
        let b = Backend::Local;
        let c = b;
        assert_eq!(b, c);
        assert_ne!(Backend::Local, Backend::TcpLoopback);
    }
}

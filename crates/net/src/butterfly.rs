//! Bandwidth-optimal allreduce: recursive-halving reduce-scatter followed
//! by recursive-doubling allgather.
//!
//! The binomial-tree allreduce of [`crate::collectives`] funnels the
//! whole k-word payload through the root `log p` times — bottleneck
//! volume and critical path `O(β·k·log p)`. The butterfly algorithm
//! implemented here achieves the `T_coll(k) = O(β·k + α·log p)` the
//! paper's analysis assumes (§2, citing the full-bandwidth collectives
//! literature): **every** PE sends and receives `2·k·(1 − 1/p)` words,
//! independent of `p`, and the rounds move geometrically shrinking
//! halves so the critical path is `O(β·k)`.
//!
//! Restricted to power-of-two `p` (the classic hypercube form);
//! [`crate::comm::Comm::allreduce`] covers general `p` and non-vector
//! payloads.

use crate::comm::Comm;
use crate::wire::Wire;

impl Comm {
    /// Element-wise allreduce of equal-length vectors over all PEs, with
    /// associative commutative `op`, using the butterfly algorithm.
    ///
    /// All PEs must pass vectors of the same length. Requires
    /// power-of-two `p`; panics otherwise (use [`Comm::allreduce`] for
    /// general `p`).
    pub fn allreduce_butterfly<T, F>(&mut self, mut data: Vec<T>, op: F) -> Vec<T>
    where
        T: Wire + Clone,
        F: Fn(&T, &T) -> T,
    {
        let p = self.size();
        assert!(
            p.is_power_of_two(),
            "butterfly allreduce requires power-of-two p"
        );
        if p == 1 {
            return data;
        }
        let tag = self.next_coll_tag(64 - 2); // dedicated op slot below the tag block size
        let r = self.rank();
        let n = data.len();

        // Segment boundaries: segment i of p covers [bound(i), bound(i+1)).
        let bound = |i: usize| -> usize { i * n / p };

        // Phase 1: recursive halving reduce-scatter. Invariant: at the
        // start of a round the PE owns the (still un-scattered) segment
        // range [seg_lo, seg_hi) of *segments*; after log p rounds it
        // owns exactly one fully-reduced segment.
        let mut seg_lo = 0usize;
        let mut seg_hi = p;
        let mut mask = p / 2;
        while mask > 0 {
            let partner = r ^ mask;
            let seg_mid = (seg_lo + seg_hi) / 2;
            // The half we keep is the one containing our rank's segment.
            let keep_upper = r & mask != 0;
            let (send_range, keep_range) = if keep_upper {
                ((seg_lo, seg_mid), (seg_mid, seg_hi))
            } else {
                ((seg_mid, seg_hi), (seg_lo, seg_mid))
            };
            let payload: Vec<T> = data[bound(send_range.0)..bound(send_range.1)].to_vec();
            self.send(partner, tag, &payload);
            let received: Vec<T> = self.recv(partner, tag);
            let keep_slice = &mut data[bound(keep_range.0)..bound(keep_range.1)];
            debug_assert_eq!(received.len(), keep_slice.len());
            for (mine, theirs) in keep_slice.iter_mut().zip(&received) {
                *mine = op(mine, theirs);
            }
            seg_lo = keep_range.0;
            seg_hi = keep_range.1;
            mask >>= 1;
        }
        debug_assert_eq!(seg_lo + 1, seg_hi);
        debug_assert_eq!(seg_lo, r);

        // Phase 2: recursive doubling allgather — reverse the halving,
        // exchanging the owned range with the partner each round.
        let mut mask = 1usize;
        while mask < p {
            let partner = r ^ mask;
            let payload: Vec<T> = data[bound(seg_lo)..bound(seg_hi)].to_vec();
            self.send(partner, tag, &payload);
            let received: Vec<T> = self.recv(partner, tag);
            // The partner owns the mirror range within the doubled block.
            let (new_lo, new_hi) = if r & mask != 0 {
                (seg_lo - (seg_hi - seg_lo), seg_hi)
            } else {
                (seg_lo, seg_hi + (seg_hi - seg_lo))
            };
            let recv_range = if r & mask != 0 {
                (new_lo, seg_lo)
            } else {
                (seg_hi, new_hi)
            };
            data[bound(recv_range.0)..bound(recv_range.1)].clone_from_slice(&received);
            seg_lo = new_lo;
            seg_hi = new_hi;
            mask <<= 1;
        }
        debug_assert_eq!((seg_lo, seg_hi), (0, p));
        data
    }
}

#[cfg(test)]
mod tests {
    use crate::testing::{run_both as run, run_both_with_stats as run_with_stats};

    #[test]
    fn matches_tree_allreduce() {
        for p in [1usize, 2, 4, 8, 16] {
            for n in [0usize, 1, 7, 64, 100] {
                let expected = run(p, |comm| {
                    let v: Vec<u64> = (0..n as u64).map(|i| i * 10 + comm.rank() as u64).collect();
                    comm.allreduce(v, |a, b| a.iter().zip(&b).map(|(x, y)| x + y).collect())
                });
                let butterfly = run(p, |comm| {
                    let v: Vec<u64> = (0..n as u64).map(|i| i * 10 + comm.rank() as u64).collect();
                    comm.allreduce_butterfly(v, |a, b| a + b)
                });
                assert_eq!(expected, butterfly, "p={p} n={n}");
            }
        }
    }

    #[test]
    fn non_commutative_safe_ops_still_elementwise() {
        // max is idempotent/commutative; verify per-element semantics.
        let p = 8;
        let out = run(p, |comm| {
            let r = comm.rank() as u64;
            let v: Vec<u64> = (0..32).map(|i| (r * 7 + i) % 19).collect();
            comm.allreduce_butterfly(v, |a, b| *a.max(b))
        });
        for results in out.windows(2) {
            assert_eq!(results[0], results[1]);
        }
        // Spot-check against brute force.
        let expected: Vec<u64> = (0..32u64)
            .map(|i| (0..8u64).map(|r| (r * 7 + i) % 19).max().unwrap())
            .collect();
        assert_eq!(out[0], expected);
    }

    #[test]
    fn bottleneck_advantage_over_tree() {
        // p=8, 8000 u64s. Both algorithms move ≈2k(p−1) bytes in TOTAL,
        // but the tree funnels k·log p through the root while the
        // butterfly spreads the load: every PE handles ≈2k(1−1/p).
        let n = 8_000usize;
        let (_, tree) = run_with_stats(8, |comm| {
            let v: Vec<u64> = vec![comm.rank() as u64; n];
            comm.allreduce(v, |a, b| a.iter().zip(&b).map(|(x, y)| x + y).collect())
        });
        let (_, butterfly) = run_with_stats(8, |comm| {
            let v: Vec<u64> = vec![comm.rank() as u64; n];
            comm.allreduce_butterfly(v, |a, b| a + b)
        });
        let k_bytes = (n * 8) as u64;
        // Tree root: log₂(8) = 3 payloads each way → ≈3k bottleneck.
        assert!(tree.bottleneck_volume() > 2 * k_bytes + k_bytes / 2);
        // Butterfly: ≈2k(1−1/p) = 1.75k per PE (+ framing).
        assert!(butterfly.bottleneck_volume() < 2 * k_bytes);
        assert!(
            butterfly.bottleneck_volume() < tree.bottleneck_volume(),
            "butterfly {} vs tree {}",
            butterfly.bottleneck_volume(),
            tree.bottleneck_volume()
        );
        // Totals are in the same ballpark for both (≈2k(p−1)).
        let ratio = butterfly.total_bytes() as f64 / tree.total_bytes() as f64;
        assert!((0.8..1.2).contains(&ratio), "total ratio {ratio}");
    }

    #[test]
    fn uneven_length_segments() {
        // n not divisible by p: segment bounds i·n/p still partition.
        let p = 4;
        let n = 10;
        let out = run(p, |comm| {
            let v: Vec<u64> = (0..n as u64).map(|i| i + comm.rank() as u64).collect();
            comm.allreduce_butterfly(v, |a, b| a + b)
        });
        let expected: Vec<u64> = (0..n as u64).map(|i| 4 * i + 6).collect();
        assert!(out.iter().all(|v| v == &expected));
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_non_power_of_two() {
        let mut comms = crate::router::Router::build(3).into_comms();
        let _ = comms[0].allreduce_butterfly(vec![1u64], |a, b| a + b);
    }
}

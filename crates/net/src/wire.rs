//! Binary codec used for every message on the simulated network.
//!
//! All traffic is encoded into byte buffers before it is handed to the
//! router, so the per-PE byte counters in [`crate::stats`] observe the exact
//! communication volume — the quantity the paper optimizes for. The
//! encoding is little-endian and self-delimiting for variable-length types.
//!
//! The codec is deliberately hand-rolled (rather than pulling in `serde`):
//! the framing must be predictable down to the byte for the communication
//! volume measurements to be meaningful.

/// Types that can be serialized onto the wire.
///
/// Implementations must roundtrip: `T::read(&mut encode(v)) == Some(v)`.
/// This invariant is property-tested in this module's test suite.
pub trait Wire: Sized {
    /// Append the encoding of `self` to `buf`.
    fn write(&self, buf: &mut Vec<u8>);
    /// Decode a value from the front of `input`, advancing it past the
    /// consumed bytes. Returns `None` on malformed/truncated input.
    fn read(input: &mut &[u8]) -> Option<Self>;
    /// Exact number of bytes `write` will append. Used to pre-size buffers.
    fn wire_size(&self) -> usize;
}

/// Encode a value into a fresh, exactly-sized buffer.
pub fn encode<T: Wire>(value: &T) -> Vec<u8> {
    let mut buf = Vec::with_capacity(value.wire_size());
    value.write(&mut buf);
    debug_assert_eq!(buf.len(), value.wire_size());
    buf
}

/// Decode a value from a buffer, requiring that the buffer is consumed
/// entirely.
pub fn decode<T: Wire>(mut input: &[u8]) -> Option<T> {
    let v = T::read(&mut input)?;
    if input.is_empty() {
        Some(v)
    } else {
        None
    }
}

fn take<'a>(input: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if input.len() < n {
        return None;
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Some(head)
}

macro_rules! impl_wire_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            #[inline]
            fn write(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn read(input: &mut &[u8]) -> Option<Self> {
                let bytes = take(input, std::mem::size_of::<$t>())?;
                Some(<$t>::from_le_bytes(bytes.try_into().ok()?))
            }
            #[inline]
            fn wire_size(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        }
    )*};
}

impl_wire_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128);

impl Wire for usize {
    #[inline]
    fn write(&self, buf: &mut Vec<u8>) {
        (*self as u64).write(buf);
    }
    #[inline]
    fn read(input: &mut &[u8]) -> Option<Self> {
        u64::read(input).map(|v| v as usize)
    }
    #[inline]
    fn wire_size(&self) -> usize {
        8
    }
}

impl Wire for bool {
    #[inline]
    fn write(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }
    #[inline]
    fn read(input: &mut &[u8]) -> Option<Self> {
        match u8::read(input)? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
    #[inline]
    fn wire_size(&self) -> usize {
        1
    }
}

impl Wire for f64 {
    #[inline]
    fn write(&self, buf: &mut Vec<u8>) {
        self.to_bits().write(buf);
    }
    #[inline]
    fn read(input: &mut &[u8]) -> Option<Self> {
        u64::read(input).map(f64::from_bits)
    }
    #[inline]
    fn wire_size(&self) -> usize {
        8
    }
}

impl Wire for () {
    #[inline]
    fn write(&self, _buf: &mut Vec<u8>) {}
    #[inline]
    fn read(_input: &mut &[u8]) -> Option<Self> {
        Some(())
    }
    #[inline]
    fn wire_size(&self) -> usize {
        0
    }
}

macro_rules! impl_wire_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Wire),+> Wire for ($($name,)+) {
            #[inline]
            fn write(&self, buf: &mut Vec<u8>) {
                $(self.$idx.write(buf);)+
            }
            #[inline]
            fn read(input: &mut &[u8]) -> Option<Self> {
                Some(($($name::read(input)?,)+))
            }
            #[inline]
            fn wire_size(&self) -> usize {
                0 $(+ self.$idx.wire_size())+
            }
        }
    };
}

impl_wire_tuple!(A: 0);
impl_wire_tuple!(A: 0, B: 1);
impl_wire_tuple!(A: 0, B: 1, C: 2);
impl_wire_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_wire_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

impl<T: Wire> Wire for Option<T> {
    fn write(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.write(buf);
            }
        }
    }
    fn read(input: &mut &[u8]) -> Option<Self> {
        match u8::read(input)? {
            0 => Some(None),
            1 => Some(Some(T::read(input)?)),
            _ => None,
        }
    }
    fn wire_size(&self) -> usize {
        1 + self.as_ref().map_or(0, Wire::wire_size)
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn write(&self, buf: &mut Vec<u8>) {
        (self.len() as u64).write(buf);
        for item in self {
            item.write(buf);
        }
    }
    fn read(input: &mut &[u8]) -> Option<Self> {
        let len = u64::read(input)? as usize;
        // Guard against adversarial lengths: a T encodes to >= 0 bytes, but
        // the remaining input bounds the plausible element count when the
        // element size is nonzero.
        let mut out = Vec::with_capacity(len.min(input.len().max(16)));
        for _ in 0..len {
            out.push(T::read(input)?);
        }
        Some(out)
    }
    fn wire_size(&self) -> usize {
        8 + self.iter().map(Wire::wire_size).sum::<usize>()
    }
}

impl<T: Wire, const N: usize> Wire for [T; N] {
    fn write(&self, buf: &mut Vec<u8>) {
        for item in self {
            item.write(buf);
        }
    }
    fn read(input: &mut &[u8]) -> Option<Self> {
        let mut items = Vec::with_capacity(N);
        for _ in 0..N {
            items.push(T::read(input)?);
        }
        items.try_into().ok()
    }
    fn wire_size(&self) -> usize {
        self.iter().map(Wire::wire_size).sum()
    }
}

impl Wire for String {
    fn write(&self, buf: &mut Vec<u8>) {
        (self.len() as u64).write(buf);
        buf.extend_from_slice(self.as_bytes());
    }
    fn read(input: &mut &[u8]) -> Option<Self> {
        let len = u64::read(input)? as usize;
        let bytes = take(input, len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
    fn wire_size(&self) -> usize {
        8 + self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let buf = encode(&v);
        assert_eq!(buf.len(), v.wire_size());
        let back: T = decode(&buf).expect("decode");
        assert_eq!(back, v);
    }

    #[test]
    fn roundtrip_primitives() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(u16::MAX);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(u128::MAX);
        roundtrip(i8::MIN);
        roundtrip(i16::MIN);
        roundtrip(i32::MIN);
        roundtrip(i64::MIN);
        roundtrip(i128::MIN);
        roundtrip(-1i64);
        roundtrip(usize::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(1.5f64);
        roundtrip(f64::NEG_INFINITY);
        roundtrip(());
    }

    #[test]
    fn roundtrip_compounds() {
        roundtrip((1u32, 2u64));
        roundtrip((1u8, 2u16, 3u32, 4u64, 5i64));
        roundtrip(Some(42u64));
        roundtrip(Option::<u64>::None);
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u32>::new());
        roundtrip([7u32; 4]);
        roundtrip("hello wörld".to_string());
        roundtrip(String::new());
        roundtrip(vec![(1u64, -2i64), (3, -4)]);
        roundtrip(vec![vec![1u8], vec![], vec![2, 3]]);
    }

    #[test]
    fn truncated_input_rejected() {
        let buf = encode(&0xDEADBEEFu32);
        assert_eq!(decode::<u32>(&buf[..3]), None);
        let buf = encode(&vec![1u64, 2, 3]);
        assert_eq!(decode::<Vec<u64>>(&buf[..buf.len() - 1]), None);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = encode(&7u32);
        buf.push(0);
        assert_eq!(decode::<u32>(&buf), None);
    }

    #[test]
    fn invalid_bool_rejected() {
        assert_eq!(decode::<bool>(&[2]), None);
    }

    #[test]
    fn invalid_option_tag_rejected() {
        assert_eq!(decode::<Option<u8>>(&[7, 0]), None);
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = Vec::new();
        (2u64).write(&mut buf);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert_eq!(decode::<String>(&buf), None);
    }

    #[test]
    fn adversarial_vec_length_does_not_allocate() {
        // Claims 2^60 elements but supplies none: must fail, not OOM.
        let mut buf = Vec::new();
        (1u64 << 60).write(&mut buf);
        assert_eq!(decode::<Vec<u64>>(&buf), None);
    }

    #[test]
    fn nan_roundtrips_bitwise() {
        let v = f64::from_bits(0x7FF8_0000_0000_1234);
        let buf = encode(&v);
        let back: f64 = decode(&buf).unwrap();
        assert_eq!(back.to_bits(), v.to_bits());
    }

    // Round-trip properties covering EVERY `Wire` impl in this module —
    // the invariant promised in the trait docs: for all v,
    // `decode(encode(v)) == Some(v)` and `encode(v).len() == wire_size(v)`
    // (both checked by `roundtrip`).
    proptest! {
        // Fixed-width integers.
        #[test]
        fn prop_roundtrip_u8(v: u8) { roundtrip(v); }

        #[test]
        fn prop_roundtrip_u16(v: u16) { roundtrip(v); }

        #[test]
        fn prop_roundtrip_u32(v: u32) { roundtrip(v); }

        #[test]
        fn prop_roundtrip_u64(v: u64) { roundtrip(v); }

        #[test]
        fn prop_roundtrip_u128(v: u128) { roundtrip(v); }

        #[test]
        fn prop_roundtrip_i8(v: i8) { roundtrip(v); }

        #[test]
        fn prop_roundtrip_i16(v: i16) { roundtrip(v); }

        #[test]
        fn prop_roundtrip_i32(v: i32) { roundtrip(v); }

        #[test]
        fn prop_roundtrip_i64(v: i64) { roundtrip(v); }

        #[test]
        fn prop_roundtrip_i128(v: i128) { roundtrip(v); }

        #[test]
        fn prop_roundtrip_usize(v: usize) { roundtrip(v); }

        // Scalars with non-trivial encodings.
        #[test]
        fn prop_roundtrip_bool(v: bool) { roundtrip(v); }

        #[test]
        fn prop_roundtrip_f64_bitwise(v: f64) {
            // Bit-level comparison so NaN payloads count too.
            let back: f64 = decode(&encode(&v)).expect("decode");
            prop_assert_eq!(back.to_bits(), v.to_bits());
        }

        #[test]
        fn prop_roundtrip_unit(v: ()) { roundtrip(v); }

        // Tuples, every arity the module implements.
        #[test]
        fn prop_roundtrip_tuple1(v: (u64,)) { roundtrip(v); }

        #[test]
        fn prop_roundtrip_tuple2(v: (u32, i64)) { roundtrip(v); }

        #[test]
        fn prop_roundtrip_tuple3(v: (u8, u16, i128)) { roundtrip(v); }

        #[test]
        fn prop_roundtrip_tuple4(v: (bool, u64, i8, u128)) { roundtrip(v); }

        #[test]
        fn prop_roundtrip_tuple5(v: (u64, u64, u32, i16, bool)) { roundtrip(v); }

        // Containers.
        #[test]
        fn prop_roundtrip_option(v: Option<i64>) { roundtrip(v); }

        #[test]
        fn prop_roundtrip_vec(v: Vec<u64>) { roundtrip(v); }

        #[test]
        fn prop_roundtrip_array(v: [u32; 7]) { roundtrip(v); }

        #[test]
        fn prop_roundtrip_array_of_tuples(v: [(u8, i16); 3]) { roundtrip(v); }

        #[test]
        fn prop_roundtrip_string(v: String) { roundtrip(v); }

        // Composites nesting multiple impls, including the
        // `Vec<(u64, u64)>` shape the collectives put on the wire.
        #[test]
        fn prop_roundtrip_rank_value_pairs(v: Vec<(u64, u64)>) { roundtrip(v); }

        #[test]
        fn prop_roundtrip_pairs(v: Vec<(u64, i64)>) { roundtrip(v); }

        #[test]
        fn prop_roundtrip_nested(v: Vec<Vec<u32>>) { roundtrip(v); }

        #[test]
        fn prop_roundtrip_options(v: Vec<Option<u64>>) { roundtrip(v); }

        #[test]
        fn prop_roundtrip_deep_composite(v: Vec<(u64, Option<Vec<(u32, bool)>>, String)>) {
            roundtrip(v);
        }

        #[test]
        fn prop_wire_size_matches(v: Vec<(u64, Option<i32>)>) {
            let buf = encode(&v);
            prop_assert_eq!(buf.len(), v.wire_size());
        }

        #[test]
        fn prop_garbage_never_panics(bytes: Vec<u8>) {
            // Decoding arbitrary bytes must never panic (may return None).
            let _ = decode::<Vec<(u64, u32)>>(&bytes);
            let _ = decode::<String>(&bytes);
            let _ = decode::<Vec<Option<u64>>>(&bytes);
            let _ = decode::<(u64, u64, u64)>(&bytes);
            let _ = decode::<[u64; 4]>(&bytes);
        }

        #[test]
        fn prop_concatenated_encodings_stream_decode(a: Vec<u64>, b: (u32, bool), c: String) {
            // `read` must consume exactly `wire_size` bytes, so values
            // written back to back decode back out in order — the
            // property the TCP frame codec relies on.
            let mut buf = Vec::new();
            a.write(&mut buf);
            b.write(&mut buf);
            c.write(&mut buf);
            let mut input = &buf[..];
            prop_assert_eq!(Vec::<u64>::read(&mut input), Some(a));
            prop_assert_eq!(<(u32, bool)>::read(&mut input), Some(b));
            prop_assert_eq!(String::read(&mut input), Some(c));
            prop_assert!(input.is_empty());
        }
    }
}

//! Collective communication operations.
//!
//! All collectives are built from point-to-point messages using the
//! classical algorithms (binomial trees, dissemination, Hillis–Steele
//! scan), so the byte/message/round counters observe the true costs:
//! broadcast, reduce, allreduce, gather, scan run in `O(β·k + α·log p)`;
//! allgather and all-to-all in `O(β·k·p + α·log p)` / `O(β·k + α·p)`,
//! matching `T_coll` of §2 of the paper.
//!
//! Every collective is an SPMD call: **all** PEs of the run must invoke the
//! same collective in the same order (enforced probabilistically through
//! per-`Comm` sequence-numbered tags; a mismatch typically manifests as a
//! decode panic naming both ends).

use crate::comm::Comm;
use crate::wire::Wire;

/// Op codes distinguishing concurrent collectives within one sequence slot.
mod op {
    pub const BARRIER: u64 = 0;
    pub const BROADCAST: u64 = 1;
    pub const REDUCE: u64 = 2;
    pub const GATHER: u64 = 3;
    pub const SCAN: u64 = 4;
    pub const ALLTOALL: u64 = 5;
    pub const SHIFT: u64 = 6;
    pub const ALLTOALL_HC: u64 = 7;
    pub const ALLTOALL_CHUNKED: u64 = 8;
}

/// `⌈log₂ p⌉` for `p ≥ 1` — round count of tree collectives.
#[inline]
pub fn ceil_log2(p: usize) -> u32 {
    debug_assert!(p >= 1);
    usize::BITS - (p - 1).leading_zeros()
}

impl Comm {
    /// Dissemination barrier: `⌈log₂ p⌉` rounds, O(1) bytes per round.
    pub fn barrier(&mut self) {
        let tag = self.next_coll_tag(op::BARRIER);
        let p = self.size();
        let r = self.rank();
        let mut k = 1usize;
        while k < p {
            let to = (r + k) % p;
            let from = (r + p - k % p) % p;
            self.send(to, tag, &());
            let () = self.recv(from, tag);
            k <<= 1;
        }
    }

    /// Binomial-tree broadcast from `root`. Every PE returns the value.
    ///
    /// Non-roots pass their (ignored) local `value`; use
    /// [`Comm::broadcast_from`] for the common "root computes it" pattern.
    pub fn broadcast<T: Wire + Clone>(&mut self, root: usize, value: T) -> T {
        assert!(root < self.size());
        let tag = self.next_coll_tag(op::BROADCAST);
        let p = self.size();
        let vr = (self.rank() + p - root) % p; // virtual rank: root ↦ 0
        let mut data = value;

        // Receive from parent (the highest set bit of vr).
        let mut mask = 1usize;
        while mask < p {
            if vr & mask != 0 {
                let src = (vr - mask + root) % p;
                data = self.recv(src, tag);
                break;
            }
            mask <<= 1;
        }
        // Forward to children.
        mask >>= 1;
        while mask > 0 {
            if vr + mask < p {
                let dest = (vr + mask + root) % p;
                self.send(dest, tag, &data);
            }
            mask >>= 1;
        }
        data
    }

    /// Broadcast where only the root's closure runs to produce the value.
    pub fn broadcast_from<T, F>(&mut self, root: usize, make: F) -> T
    where
        T: Wire + Clone + Default,
        F: FnOnce() -> T,
    {
        let value = if self.rank() == root {
            make()
        } else {
            T::default()
        };
        self.broadcast(root, value)
    }

    /// Binomial-tree reduction to `root` with associative, commutative `op`.
    /// Returns `Some(result)` at the root and `None` elsewhere.
    pub fn reduce<T, F>(&mut self, root: usize, value: T, op: F) -> Option<T>
    where
        T: Wire,
        F: Fn(T, T) -> T,
    {
        assert!(root < self.size());
        let tag = self.next_coll_tag(op::REDUCE);
        let p = self.size();
        let vr = (self.rank() + p - root) % p;
        let mut acc = value;
        let mut mask = 1usize;
        while mask < p {
            if vr & mask == 0 {
                let partner = vr | mask;
                if partner < p {
                    let src = (partner + root) % p;
                    let other: T = self.recv(src, tag);
                    acc = op(acc, other);
                }
            } else {
                let dest = (vr - mask + root) % p;
                self.send(dest, tag, &acc);
                return None;
            }
            mask <<= 1;
        }
        Some(acc)
    }

    /// All-reduction: reduce to PE 0 followed by a broadcast
    /// (`O(β·k + α·log p)`, 2·⌈log p⌉ rounds). All PEs return the result.
    pub fn allreduce<T, F>(&mut self, value: T, op: F) -> T
    where
        T: Wire + Clone + Default,
        F: Fn(T, T) -> T,
    {
        let reduced = self.reduce(0, value, op);
        self.broadcast(0, reduced.unwrap_or_default())
    }

    /// Logical-AND all-reduction of a verdict bit; the idiom every checker
    /// uses so all PEs learn whether any PE rejected.
    pub fn all_agree(&mut self, local_ok: bool) -> bool {
        self.allreduce(local_ok, |a, b| a && b)
    }

    /// Binomial-tree gather to `root`: returns `Some(values)` (rank order,
    /// length p) at the root and `None` elsewhere.
    pub fn gather<T: Wire>(&mut self, root: usize, value: T) -> Option<Vec<T>> {
        let tag = self.next_coll_tag(op::GATHER);
        let p = self.size();
        let vr = (self.rank() + p - root) % p;
        // Accumulate (original_rank, value) pairs up the binomial tree.
        let mut acc: Vec<(u64, T)> = vec![(self.rank() as u64, value)];
        let mut mask = 1usize;
        while mask < p {
            if vr & mask == 0 {
                let partner = vr | mask;
                if partner < p {
                    let src = (partner + root) % p;
                    let mut other: Vec<(u64, T)> = self.recv(src, tag);
                    acc.append(&mut other);
                }
            } else {
                let dest = (vr - mask + root) % p;
                self.send(dest, tag, &acc);
                return None;
            }
            mask <<= 1;
        }
        acc.sort_by_key(|(rank, _)| *rank);
        debug_assert_eq!(acc.len(), p);
        Some(acc.into_iter().map(|(_, v)| v).collect())
    }

    /// Gather followed by broadcast: every PE gets all values in rank order.
    pub fn allgather<T: Wire + Clone>(&mut self, value: T) -> Vec<T> {
        let gathered = self.gather(0, value);
        self.broadcast(0, gathered.unwrap_or_default())
    }

    /// Hillis–Steele inclusive scan over ranks with associative `op`:
    /// PE i returns `value₀ ⊕ value₁ ⊕ … ⊕ valueᵢ`. `⌈log p⌉` rounds.
    pub fn scan<T, F>(&mut self, value: T, op: F) -> T
    where
        T: Wire + Clone,
        F: Fn(T, T) -> T,
    {
        let tag = self.next_coll_tag(op::SCAN);
        let p = self.size();
        let r = self.rank();
        // Invariant: after step j, `running` covers ranks
        // max(0, r−2^(j+1)+1) ..= r (a contiguous block), so plain
        // associativity suffices — `op` need not be commutative.
        let mut running = value;
        let mut d = 1usize;
        while d < p {
            if r + d < p {
                self.send(r + d, tag, &running);
            }
            if r >= d {
                let left: T = self.recv(r - d, tag);
                running = op(left, running);
            }
            d <<= 1;
        }
        running
    }

    /// Exclusive prefix sum of `u64` values plus the global total:
    /// returns `(Σ_{j<i} value_j, Σ_j value_j)`. The workhorse for global
    /// element indexing in the dataflow layer and the Zip checker.
    pub fn exclusive_prefix_sum(&mut self, value: u64) -> (u64, u64) {
        let inclusive = self.scan(value, |a, b| a + b);
        let exclusive = inclusive - value;
        // Total = inclusive sum at the last PE.
        let total = self.broadcast(self.size() - 1, inclusive);
        (exclusive, total)
    }

    /// Personalized all-to-all: `outgoing[j]` is delivered to PE j, and the
    /// return value's entry `j` is what PE j sent here. Direct delivery:
    /// `p−1` messages per PE (`O(β·k + α·p)`).
    pub fn all_to_all<T: Wire>(&mut self, outgoing: Vec<T>) -> Vec<T> {
        assert_eq!(
            outgoing.len(),
            self.size(),
            "all_to_all requires exactly one entry per PE"
        );
        let tag = self.next_coll_tag(op::ALLTOALL);
        let p = self.size();
        let r = self.rank();
        let mut outgoing: Vec<Option<T>> = outgoing.into_iter().map(Some).collect();
        let mut incoming: Vec<Option<T>> = Vec::new();
        incoming.resize_with(p, || None);
        // Keep own slice locally.
        incoming[r] = outgoing[r].take();
        // Send in a schedule that staggers targets to avoid hot spots.
        for offset in 1..p {
            let dest = (r + offset) % p;
            let item = outgoing[dest].take().expect("each dest used once");
            self.send(dest, tag, &item);
        }
        for offset in 1..p {
            let src = (r + p - offset) % p;
            incoming[src] = Some(self.recv(src, tag));
        }
        incoming
            .into_iter()
            .map(|v| v.expect("all received"))
            .collect()
    }

    /// Personalized all-to-all via hypercube (store-and-forward) indirect
    /// delivery: `log₂ p` rounds of pairwise exchanges instead of `p−1`
    /// direct messages — the `O(β·k·log p + α·log p)` alternative of §2,
    /// preferable when per-PE payloads are small and latency dominates.
    ///
    /// Requires `p` to be a power of two (the classic hypercube
    /// restriction; [`Comm::all_to_all`] covers general `p`).
    pub fn all_to_all_hypercube<T: Wire>(&mut self, outgoing: Vec<T>) -> Vec<T> {
        let p = self.size();
        assert!(
            p.is_power_of_two(),
            "hypercube all-to-all requires power-of-two p"
        );
        assert_eq!(outgoing.len(), p, "one entry per PE required");
        let tag = self.next_coll_tag(op::ALLTOALL_HC);
        let r = self.rank();
        // In-flight payloads as (source, destination, value); each round
        // forwards across one hypercube dimension every payload whose
        // destination differs from this PE's rank in that bit.
        let mut buffer: Vec<(u64, u64, T)> = outgoing
            .into_iter()
            .enumerate()
            .map(|(dest, v)| (r as u64, dest as u64, v))
            .collect();
        let mut dim = 1usize;
        while dim < p {
            let partner = r ^ dim;
            let (ship, keep): (Vec<_>, Vec<_>) = buffer
                .into_iter()
                .partition(|&(_, dest, _)| (dest as usize) & dim != r & dim);
            self.send(partner, tag, &ship);
            buffer = keep;
            let received: Vec<(u64, u64, T)> = self.recv(partner, tag);
            buffer.extend(received);
            dim <<= 1;
        }
        debug_assert!(buffer.iter().all(|&(_, dest, _)| dest as usize == r));
        buffer.sort_by_key(|&(src, _, _)| src);
        debug_assert_eq!(buffer.len(), p);
        buffer.into_iter().map(|(_, _, v)| v).collect()
    }

    /// Streaming personalized all-to-all over an item stream: route each
    /// item of `items` to PE `dest_of(&item)`, buffering at most `chunk`
    /// items per destination; a full buffer is flushed as one message,
    /// so no "one giant `Vec` per destination" is ever materialized.
    /// Received chunks are handed to `on_recv(src, chunk)` as they are
    /// drained, letting the caller fold them away (into a sketch, a
    /// hash table, …) without collecting first.
    ///
    /// Sender-side memory is O(chunk · p) regardless of the stream
    /// length. On the receive side, arriving chunks are folded through
    /// `on_recv` rather than collected — but note that both built-in
    /// transports enqueue incoming packets independently of application
    /// receives, so a PE's transient footprint additionally includes
    /// whatever peers send it before its drain phase: O(bytes received)
    /// in the worst case. The bounded end-to-end pipelines built on this
    /// primitive therefore shrink data *before* exchanging (pre-reduced
    /// tables, constant-size sketches); a chunked exchange of raw n-sized
    /// data still receives O(n/p) like its slice-based counterpart.
    /// Items routed to this PE's own rank short-circuit through
    /// `on_recv` without touching the network (matching
    /// [`Comm::all_to_all`], whose own slice is not counted as traffic).
    ///
    /// Chunks from one source arrive at `on_recv` in sending order;
    /// interleaving *between* sources is unspecified. The message
    /// pattern (and therefore the byte accounting) is deterministic for
    /// a fixed `(items, chunk, p)`, identical on every transport: each
    /// peer receives `⌈k_j / chunk⌉` data messages plus one empty
    /// terminator, where `k_j` is the number of items routed to it.
    ///
    /// This is a collective: every PE must call it in the same slot of
    /// the collective sequence (streams may of course differ).
    ///
    /// # Panics
    /// Panics if `chunk == 0` or `dest_of` returns an out-of-range rank.
    pub fn all_to_all_chunked<T, I, D, F>(&mut self, items: I, chunk: usize, dest_of: D, on_recv: F)
    where
        T: Wire,
        I: IntoIterator<Item = T>,
        D: Fn(&T) -> usize,
        F: FnMut(usize, Vec<T>),
    {
        assert!(chunk > 0, "chunk size must be positive");
        let tag = self.next_coll_tag(op::ALLTOALL_CHUNKED);
        let p = self.size();
        let r = self.rank();
        let mut on_recv = on_recv;
        let mut buffers: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
        // Phase 1: route, flushing any buffer that reaches `chunk` items.
        // Sends never block on the built-in backends, so all flushes can
        // precede the drain phase without deadlock.
        for item in items {
            let dest = dest_of(&item);
            assert!(dest < p, "dest_of returned {dest}, but p = {p}");
            let buf = &mut buffers[dest];
            buf.push(item);
            if buf.len() == chunk {
                let full = std::mem::take(buf);
                if dest == r {
                    on_recv(r, full);
                } else {
                    self.send(dest, tag, &full);
                }
            }
        }
        // Phase 2: flush remainders, then terminate every peer stream
        // with an empty chunk (data chunks are never empty).
        for (dest, buf) in buffers.into_iter().enumerate() {
            if dest == r {
                if !buf.is_empty() {
                    on_recv(r, buf);
                }
            } else {
                if !buf.is_empty() {
                    self.send(dest, tag, &buf);
                }
                self.send(dest, tag, &Vec::<T>::new());
            }
        }
        // Phase 3: drain every peer's stream to its terminator. The
        // selective-receive queue preserves per-(source, tag) FIFO
        // order, so chunks arrive in sending order per source.
        for offset in 1..p {
            let src = (r + p - offset) % p;
            loop {
                let batch: Vec<T> = self.recv(src, tag);
                if batch.is_empty() {
                    break;
                }
                on_recv(src, batch);
            }
        }
    }

    /// Cyclic shift: send `value` to `(rank+offset) mod p`, receive from
    /// `(rank−offset) mod p`. With `offset == 1` this is the neighbor
    /// exchange used by the sort checker's boundary test.
    pub fn shift<T: Wire>(&mut self, offset: isize, value: &T) -> T {
        let tag = self.next_coll_tag(op::SHIFT);
        let p = self.size() as isize;
        let r = self.rank() as isize;
        let dest = ((r + offset).rem_euclid(p)) as usize;
        let src = ((r - offset).rem_euclid(p)) as usize;
        self.send(dest, tag, value);
        self.recv(src, tag)
    }

    /// Gather every PE's *own* communication counters to rank 0 and
    /// assemble the global [`crate::StatsSnapshot`]: `Some(snapshot)` at
    /// rank 0, `None` elsewhere.
    ///
    /// On the in-process backends all PEs share one registry and a plain
    /// [`crate::CommStats::snapshot`] already sees everything; in
    /// multi-process TCP runs each process only populates its own rank's
    /// counters, and this collective is how the experiment binaries
    /// rebuild the full per-PE table before printing. The snapshot is
    /// taken *before* the gather's own traffic is counted.
    pub fn gather_stats(&mut self) -> Option<crate::stats::StatsSnapshot> {
        let mine = self.stats().snapshot().per_pe()[self.rank()];
        let row = (
            mine.bytes_sent,
            mine.bytes_recv,
            mine.msgs_sent,
            mine.msgs_recv,
            mine.rounds,
        );
        self.gather(0, row).map(|rows| {
            crate::stats::StatsSnapshot::from_rows(
                rows.into_iter()
                    .map(|(bytes_sent, bytes_recv, msgs_sent, msgs_recv, rounds)| {
                        crate::stats::PeStatsSnapshot {
                            bytes_sent,
                            bytes_recv,
                            msgs_sent,
                            msgs_recv,
                            rounds,
                        }
                    })
                    .collect(),
            )
        })
    }

    /// Gather every PE's `ccheck-obs` metrics snapshot to rank 0 and
    /// merge them into one world view: `Some((world, per_pe))` at rank
    /// 0, `None` elsewhere. Histograms merge bucket-wise — the same
    /// mergeability trick as the paper's sketches — and snapshots from
    /// the same OS process are counted once (in-process backends share
    /// one registry across all PE threads).
    pub fn gather_metrics(
        &mut self,
    ) -> Option<(
        ccheck_obs::MetricsSnapshot,
        Vec<ccheck_obs::MetricsSnapshot>,
    )> {
        let mine = ccheck_obs::registry().snapshot().encode();
        self.gather(0, mine).map(|rows| {
            let per_pe: Vec<ccheck_obs::MetricsSnapshot> = rows
                .iter()
                .map(|bytes| {
                    ccheck_obs::MetricsSnapshot::decode(bytes)
                        .expect("gathered metrics snapshot decodes")
                })
                .collect();
            (ccheck_obs::metrics::merge_distinct(per_pe.iter()), per_pe)
        })
    }

    /// Gather every PE's trace ring contents to rank 0: `Some(traces)`
    /// at rank 0 (deduped by source process, sorted by rank), `None`
    /// elsewhere. Drain this at the end of a run and feed it to
    /// [`ccheck_obs::export::chrome_trace_json`].
    pub fn gather_trace(&mut self) -> Option<Vec<ccheck_obs::TraceSnapshot>> {
        let mine = ccheck_obs::trace_snapshot().encode();
        self.gather(0, mine).map(|rows| {
            let mut seen = std::collections::BTreeSet::new();
            rows.iter()
                .filter_map(|bytes| {
                    ccheck_obs::TraceSnapshot::decode(bytes).filter(|t| seen.insert(t.source))
                })
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    // The whole collectives suite runs on every backend: results and
    // exact byte/message accounting must match between the in-process
    // channels and the real TCP socket path.
    use crate::testing::{run_both as run, run_both_with_stats as run_with_stats};

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
    }

    #[test]
    fn barrier_completes_all_sizes() {
        for p in [1, 2, 3, 4, 5, 8, 13] {
            run(p, |comm| {
                comm.barrier();
                comm.barrier();
            });
        }
    }

    #[test]
    fn broadcast_all_roots_all_sizes() {
        for p in [1, 2, 3, 4, 7, 8] {
            for root in 0..p {
                let out = run(p, |comm| {
                    let v = if comm.rank() == root { 4242u64 } else { 0 };
                    comm.broadcast(root, v)
                });
                assert!(out.iter().all(|&v| v == 4242), "p={p} root={root}");
            }
        }
    }

    #[test]
    fn broadcast_vectors() {
        let out = run(4, |comm| {
            let v = if comm.rank() == 2 {
                vec![1u32, 2, 3]
            } else {
                vec![]
            };
            comm.broadcast(2, v)
        });
        assert!(out.iter().all(|v| v == &vec![1, 2, 3]));
    }

    #[test]
    fn reduce_sum_all_roots() {
        for p in [1, 2, 3, 5, 8] {
            for root in 0..p {
                let out = run(p, |comm| {
                    comm.reduce(root, comm.rank() as u64 + 1, |a, b| a + b)
                });
                let expected: u64 = (1..=p as u64).sum();
                for (rank, r) in out.iter().enumerate() {
                    if rank == root {
                        assert_eq!(*r, Some(expected));
                    } else {
                        assert_eq!(*r, None);
                    }
                }
            }
        }
    }

    #[test]
    fn allreduce_min_max() {
        let out = run(6, |comm| {
            let v = comm.rank() as u64;
            let mn = comm.allreduce(v, |a, b| a.min(b));
            let mx = comm.allreduce(v, |a, b| a.max(b));
            (mn, mx)
        });
        assert!(out.iter().all(|&(mn, mx)| mn == 0 && mx == 5));
    }

    #[test]
    fn all_agree_detects_single_dissent() {
        for p in [2, 3, 4, 7] {
            for dissent in 0..p {
                let out = run(p, |comm| comm.all_agree(comm.rank() != dissent));
                assert!(out.iter().all(|&v| !v), "p={p} dissent={dissent}");
            }
            let out = run(p, |comm| {
                let _ = comm;
                true
            });
            assert!(out.iter().all(|&v| v));
        }
    }

    #[test]
    fn gather_rank_order() {
        for p in [1, 2, 3, 4, 6, 9] {
            let out = run(p, |comm| comm.gather(0, comm.rank() as u64 * 3));
            let expected: Vec<u64> = (0..p as u64).map(|r| r * 3).collect();
            assert_eq!(out[0], Some(expected));
            for r in out.iter().skip(1) {
                assert_eq!(*r, None);
            }
        }
    }

    #[test]
    fn allgather_everyone_has_everything() {
        let out = run(5, |comm| comm.allgather(comm.rank() as u32));
        for got in &out {
            assert_eq!(*got, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn scan_inclusive_sums() {
        for p in [1, 2, 3, 4, 5, 8, 11] {
            let out = run(p, |comm| comm.scan(comm.rank() as u64 + 1, |a, b| a + b));
            for (rank, got) in out.iter().enumerate() {
                let expected: u64 = (1..=rank as u64 + 1).sum();
                assert_eq!(*got, expected, "p={p} rank={rank}");
            }
        }
    }

    #[test]
    fn scan_non_commutative_string_concat() {
        // String concatenation is associative but not commutative; scan
        // must preserve rank order.
        let out = run(4, |comm| {
            comm.scan(comm.rank().to_string(), |a, b| format!("{a}{b}"))
        });
        assert_eq!(out, vec!["0", "01", "012", "0123"]);
    }

    #[test]
    fn exclusive_prefix_sum_with_total() {
        let out = run(4, |comm| {
            comm.exclusive_prefix_sum(10 * (comm.rank() as u64 + 1))
        });
        // values: 10, 20, 30, 40 → prefixes 0, 10, 30, 60; total 100
        assert_eq!(out, vec![(0, 100), (10, 100), (30, 100), (60, 100)]);
    }

    #[test]
    fn all_to_all_personalized() {
        let p = 4;
        let out = run(p, |comm| {
            let r = comm.rank() as u64;
            // PE r sends value 100*r + j to PE j.
            let outgoing: Vec<u64> = (0..p as u64).map(|j| 100 * r + j).collect();
            comm.all_to_all(outgoing)
        });
        for (j, incoming) in out.iter().enumerate() {
            for (r, v) in incoming.iter().enumerate() {
                assert_eq!(*v, 100 * r as u64 + j as u64);
            }
        }
    }

    #[test]
    fn all_to_all_vectors() {
        let p = 3;
        let out = run(p, |comm| {
            let r = comm.rank();
            let outgoing: Vec<Vec<u64>> = (0..p).map(|j| vec![r as u64; j + 1]).collect();
            comm.all_to_all(outgoing)
        });
        for (j, incoming) in out.iter().enumerate() {
            for (r, v) in incoming.iter().enumerate() {
                assert_eq!(v, &vec![r as u64; j + 1]);
            }
        }
    }

    #[test]
    fn shift_ring() {
        let out = run(5, |comm| comm.shift(1, &(comm.rank() as u64)));
        assert_eq!(out, vec![4, 0, 1, 2, 3]);
        let out = run(5, |comm| comm.shift(-1, &(comm.rank() as u64)));
        assert_eq!(out, vec![1, 2, 3, 4, 0]);
    }

    #[test]
    fn broadcast_volume_is_logarithmic_per_pe() {
        // With p = 8 and an 800-byte payload, a binomial broadcast moves the
        // payload 7 times total, but no PE sends more than 3 copies.
        let (_, snap) = run_with_stats(8, |comm| {
            let v = if comm.rank() == 0 {
                vec![0u8; 792]
            } else {
                vec![]
            };
            comm.broadcast(0, v)
        });
        let payload = 800; // 792 bytes + 8-byte length prefix
        assert_eq!(snap.total_bytes(), 7 * payload);
        assert!(snap.bottleneck_volume() <= 3 * payload);
    }

    #[test]
    fn collectives_interleave_with_p2p() {
        use crate::comm::Tag;
        let out = run(3, |comm| {
            let s1 = comm.allreduce(1u64, |a, b| a + b);
            if comm.rank() == 0 {
                comm.send(1, Tag::user(77), &9u64);
            }
            let s2 = comm.allreduce(2u64, |a, b| a + b);
            let extra = if comm.rank() == 1 {
                comm.recv::<u64>(0, Tag::user(77))
            } else {
                0
            };
            s1 + s2 + extra
        });
        assert_eq!(out, vec![9, 18, 9]);
    }

    #[test]
    fn repeated_collectives_do_not_cross_talk() {
        let out = run(4, |comm| {
            let mut total = 0u64;
            for i in 0..50 {
                total = total.wrapping_add(comm.allreduce(i + comm.rank() as u64, |a, b| a + b));
            }
            total
        });
        assert!(out.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn hypercube_all_to_all_matches_direct() {
        for p in [1usize, 2, 4, 8, 16] {
            let direct = run(p, |comm| {
                let r = comm.rank() as u64;
                let outgoing: Vec<u64> = (0..p as u64).map(|j| 1000 * r + j).collect();
                comm.all_to_all(outgoing)
            });
            let hypercube = run(p, |comm| {
                let r = comm.rank() as u64;
                let outgoing: Vec<u64> = (0..p as u64).map(|j| 1000 * r + j).collect();
                comm.all_to_all_hypercube(outgoing)
            });
            assert_eq!(direct, hypercube, "p={p}");
        }
    }

    #[test]
    fn hypercube_all_to_all_vectors() {
        let p = 8;
        let out = run(p, |comm| {
            let r = comm.rank();
            let outgoing: Vec<Vec<u64>> = (0..p).map(|j| vec![r as u64; j + 1]).collect();
            comm.all_to_all_hypercube(outgoing)
        });
        for (j, incoming) in out.iter().enumerate() {
            for (r, v) in incoming.iter().enumerate() {
                assert_eq!(v, &vec![r as u64; j + 1], "j={j} r={r}");
            }
        }
    }

    #[test]
    fn hypercube_message_count_is_logarithmic() {
        // Direct delivery: p·(p−1) messages; hypercube: p·log₂p.
        let p = 16;
        let (_, direct) = run_with_stats(p, |comm| comm.all_to_all(vec![0u8; comm.size()]));
        let (_, hc) = run_with_stats(p, |comm| comm.all_to_all_hypercube(vec![0u8; comm.size()]));
        assert_eq!(direct.total_messages(), (p * (p - 1)) as u64);
        assert_eq!(hc.total_messages(), (p * p.ilog2() as usize) as u64);
        // The latency trade-off of §2: fewer messages, more volume.
        assert!(hc.total_messages() < direct.total_messages());
        assert!(hc.total_bytes() > direct.total_bytes());
    }

    #[test]
    fn chunked_all_to_all_delivers_everything_in_order() {
        for p in [1usize, 2, 3, 5] {
            for chunk in [1usize, 3, 16, 1000] {
                let out = run(p, move |comm| {
                    let r = comm.rank() as u64;
                    // 40 items per PE, round-robin destinations, values
                    // encode (src, seq) for order checking.
                    let items = (0..40u64).map(move |i| (i % p as u64, r * 1000 + i));
                    let mut received: Vec<Vec<u64>> = vec![Vec::new(); p];
                    comm.all_to_all_chunked(
                        items,
                        chunk,
                        |&(dest, _)| dest as usize,
                        |src, batch| received[src].extend(batch.iter().map(|&(_, v)| v)),
                    );
                    received
                });
                for (dest, received) in out.iter().enumerate() {
                    for (src, stream) in received.iter().enumerate() {
                        let expected: Vec<u64> = (0..40u64)
                            .filter(|i| i % p as u64 == dest as u64)
                            .map(|i| src as u64 * 1000 + i)
                            .collect();
                        assert_eq!(stream, &expected, "p={p} chunk={chunk} {src}->{dest}");
                    }
                }
            }
        }
    }

    #[test]
    fn chunked_all_to_all_matches_direct_multiset() {
        // Same routing as redistribute-style usage: arbitrary dest fn.
        let p = 4;
        let out = run(p, |comm| {
            let r = comm.rank() as u64;
            let items: Vec<u64> = (0..100).map(|i| r * 100 + i).collect();
            let mut via_chunked: Vec<u64> = Vec::new();
            comm.all_to_all_chunked(
                items.iter().copied(),
                7,
                |&x| (x % 4) as usize,
                |_, batch| via_chunked.extend(batch),
            );
            let mut outgoing: Vec<Vec<u64>> = vec![Vec::new(); 4];
            for &x in &items {
                outgoing[(x % 4) as usize].push(x);
            }
            let mut via_direct: Vec<u64> =
                comm.all_to_all(outgoing).into_iter().flatten().collect();
            via_chunked.sort_unstable();
            via_direct.sort_unstable();
            (via_chunked, via_direct)
        });
        for (chunked, direct) in out {
            assert_eq!(chunked, direct);
        }
    }

    #[test]
    fn chunked_all_to_all_send_buffers_bounded() {
        // Byte accounting: every data message carries ≤ chunk items, so
        // the largest single message is bounded by the chunk size, not
        // by the stream length.
        let (_, snap) = run_with_stats(2, |comm| {
            let r = comm.rank();
            // Only PE 0 has data; PE 1 contributes an empty stream.
            let items = 0..if r == 0 { 1000u64 } else { 0 };
            let mut n = 0usize;
            comm.all_to_all_chunked(items, 10, |_| 1 - r, |_, b| n += b.len());
            n
        });
        // PE0 → PE1: 1000 items in 100 chunks of 10 (88 bytes each:
        // 8-byte len prefix + 80 payload) + 8-byte terminator; PE1 → PE0
        // just its terminator.
        assert_eq!(snap.per_pe()[0].bytes_sent, 100 * 88 + 8);
        assert_eq!(snap.per_pe()[0].msgs_sent, 101);
        assert_eq!(snap.per_pe()[1].bytes_sent, 8);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn chunked_all_to_all_rejects_zero_chunk() {
        let mut comms = crate::router::Router::build(1).into_comms();
        comms[0].all_to_all_chunked(std::iter::empty::<u64>(), 0, |_| 0, |_, _| {});
    }

    #[test]
    fn gather_stats_assembles_global_table() {
        let out = run(4, |comm| {
            // Some asymmetric traffic first.
            if comm.rank() == 0 {
                comm.send(1, crate::comm::Tag::user(1), &vec![0u8; 92]);
            } else if comm.rank() == 1 {
                let _: Vec<u8> = comm.recv(0, crate::comm::Tag::user(1));
            }
            comm.barrier();
            let snap = comm.gather_stats();
            assert_eq!(snap.is_some(), comm.rank() == 0);
            snap.map(|s| {
                (
                    s.per_pe()[0].bytes_sent,
                    s.per_pe()[1].bytes_recv,
                    s.per_pe().len(),
                )
            })
        });
        // 92 payload bytes + 8-byte Vec length prefix.
        assert_eq!(out[0], Some((100, 100, 4)));
        assert!(out[1..].iter().all(|o| o.is_none()));
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn hypercube_rejects_non_power_of_two() {
        // The assert fires before any communication, so a bare
        // communicator suffices (no peer threads needed).
        let mut comms = crate::router::Router::build(3).into_comms();
        let _ = comms[0].all_to_all_hypercube(vec![0u8; 3]);
    }
}

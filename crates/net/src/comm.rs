//! Per-PE communicator: tagged point-to-point messaging with selective
//! receive, modeled after MPI two-sided semantics.
//!
//! A [`Comm`] is owned by exactly one PE thread. Messages are byte buffers
//! (encoded through [`crate::wire`]) tagged with `(source, Tag)`; `recv`
//! performs *selective* receive — out-of-order arrivals are stashed in a
//! pending queue until a matching `recv` is posted. Channels are unbounded,
//! so sends never block and the tree collectives in
//! [`crate::collectives`] cannot deadlock.

use std::collections::VecDeque;
use std::sync::Arc;

use crossbeam::channel::{Receiver, Sender};

use crate::stats::CommStats;
use crate::wire::{self, Wire};

/// Message tag. User code may use any value below [`Tag::COLLECTIVE_BASE`];
/// the collectives reserve the range above it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag(pub u64);

impl Tag {
    /// First tag value reserved for internal collective traffic.
    pub const COLLECTIVE_BASE: u64 = 1 << 48;

    /// A user tag; panics if the value intrudes on the reserved range.
    pub fn user(value: u64) -> Self {
        assert!(
            value < Self::COLLECTIVE_BASE,
            "user tags must be below 2^48 (got {value})"
        );
        Tag(value)
    }
}

#[derive(Debug)]
pub(crate) struct Packet {
    pub src: usize,
    pub tag: Tag,
    pub payload: Vec<u8>,
}

/// Communicator handle for one PE.
///
/// Obtained from [`crate::run`] (or [`crate::router::Router::build`]); the
/// closure passed to `run` receives a `&mut Comm` per spawned PE thread.
pub struct Comm {
    rank: usize,
    size: usize,
    senders: Arc<Vec<Sender<Packet>>>,
    receiver: Receiver<Packet>,
    pending: VecDeque<Packet>,
    stats: Arc<CommStats>,
    /// Monotone counter for collective invocations: SPMD programs invoke
    /// collectives in the same order on every PE, so equal sequence numbers
    /// identify the same logical collective across PEs.
    pub(crate) coll_seq: u64,
}

impl Comm {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        senders: Arc<Vec<Sender<Packet>>>,
        receiver: Receiver<Packet>,
        stats: Arc<CommStats>,
    ) -> Self {
        Self {
            rank,
            size,
            senders,
            receiver,
            pending: VecDeque::new(),
            stats,
            coll_seq: 0,
        }
    }

    /// Rank of this PE, in `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of PEs in the run.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The shared statistics registry for this run.
    pub fn stats(&self) -> &Arc<CommStats> {
        &self.stats
    }

    /// Send an already-encoded payload to `dest` with `tag`.
    ///
    /// Sends are counted against this PE's `bytes_sent`/`msgs_sent` and one
    /// latency round. Sending to self is allowed (delivered through the
    /// pending queue, not counted as network traffic).
    pub fn send_raw(&mut self, dest: usize, tag: Tag, payload: Vec<u8>) {
        assert!(
            dest < self.size,
            "dest {dest} out of range 0..{}",
            self.size
        );
        if dest == self.rank {
            self.pending.push_back(Packet {
                src: dest,
                tag,
                payload,
            });
            return;
        }
        let pe = self.stats.pe(self.rank);
        pe.record_send(payload.len());
        pe.record_rounds(1);
        self.senders[dest]
            .send(Packet {
                src: self.rank,
                tag,
                payload,
            })
            .expect("receiver mailbox dropped: peer PE thread exited early");
    }

    /// Encode `value` and send it to `dest` with `tag`.
    pub fn send<T: Wire>(&mut self, dest: usize, tag: Tag, value: &T) {
        self.send_raw(dest, tag, wire::encode(value));
    }

    /// Receive the raw payload of the next message matching `(src, tag)`.
    /// Blocks until such a message arrives; non-matching arrivals are queued.
    pub fn recv_raw(&mut self, src: usize, tag: Tag) -> Vec<u8> {
        assert!(src < self.size, "src {src} out of range 0..{}", self.size);
        // Check the stash first.
        if let Some(pos) = self
            .pending
            .iter()
            .position(|p| p.src == src && p.tag == tag)
        {
            let pkt = self.pending.remove(pos).expect("position valid");
            if src != self.rank {
                self.stats.pe(self.rank).record_recv(pkt.payload.len());
            }
            return pkt.payload;
        }
        loop {
            let pkt = self
                .receiver
                .recv()
                .expect("all sender handles dropped: run torn down during recv");
            if pkt.src == src && pkt.tag == tag {
                self.stats.pe(self.rank).record_recv(pkt.payload.len());
                return pkt.payload;
            }
            self.pending.push_back(pkt);
        }
    }

    /// Receive and decode a message matching `(src, tag)`.
    ///
    /// # Panics
    /// Panics if the payload does not decode as `T` — a type mismatch
    /// between sender and receiver is a programming error in SPMD code.
    pub fn recv<T: Wire>(&mut self, src: usize, tag: Tag) -> T {
        let payload = self.recv_raw(src, tag);
        wire::decode(&payload).unwrap_or_else(|| {
            panic!(
                "PE {}: message from PE {src} (tag {:?}) failed to decode as {}",
                self.rank,
                tag,
                std::any::type_name::<T>()
            )
        })
    }

    /// Combined send+receive with a partner (full-duplex exchange, one
    /// round on the critical path — the model of §2 of the paper).
    pub fn exchange<T: Wire>(&mut self, partner: usize, tag: Tag, value: &T) -> T {
        self.send(partner, tag, value);
        self.recv(partner, tag)
    }

    /// Allocate a fresh tag block for the next collective invocation.
    pub(crate) fn next_coll_tag(&mut self, op: u64) -> Tag {
        let seq = self.coll_seq;
        self.coll_seq += 1;
        Tag(Tag::COLLECTIVE_BASE + seq * 64 + op)
    }
}

impl std::fmt::Debug for Comm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Comm")
            .field("rank", &self.rank)
            .field("size", &self.size)
            .field("pending", &self.pending.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run;

    #[test]
    fn ping_pong() {
        let out = run(2, |comm| {
            let tag = Tag::user(1);
            if comm.rank() == 0 {
                comm.send(1, tag, &42u64);
                comm.recv::<u64>(1, tag)
            } else {
                let v: u64 = comm.recv(0, tag);
                comm.send(0, tag, &(v + 1));
                v
            }
        });
        assert_eq!(out, vec![43, 42]);
    }

    #[test]
    fn selective_receive_out_of_order() {
        let out = run(2, |comm| {
            if comm.rank() == 0 {
                // Send tag 2 first, then tag 1; receiver asks for 1 first.
                comm.send(1, Tag::user(2), &222u64);
                comm.send(1, Tag::user(1), &111u64);
                0
            } else {
                let first: u64 = comm.recv(0, Tag::user(1));
                let second: u64 = comm.recv(0, Tag::user(2));
                assert_eq!((first, second), (111, 222));
                first + second
            }
        });
        assert_eq!(out[1], 333);
    }

    #[test]
    fn self_send_not_counted_as_traffic() {
        let stats_holder = std::sync::Mutex::new(None);
        run(1, |comm| {
            comm.send(0, Tag::user(9), &7u32);
            let v: u32 = comm.recv(0, Tag::user(9));
            assert_eq!(v, 7);
            *stats_holder.lock().unwrap() = Some(comm.stats().snapshot());
        });
        let snap = stats_holder.into_inner().unwrap().unwrap();
        assert_eq!(snap.total_bytes(), 0);
        assert_eq!(snap.total_messages(), 0);
    }

    #[test]
    fn byte_accounting_exact() {
        let stats_holder = std::sync::Mutex::new(None);
        run(2, |comm| {
            let tag = Tag::user(0);
            if comm.rank() == 0 {
                comm.send(1, tag, &vec![1u64, 2, 3]); // 8 (len) + 24 payload
            } else {
                let _: Vec<u64> = comm.recv(0, tag);
                *stats_holder.lock().unwrap() = Some(comm.stats().snapshot());
            }
        });
        let snap = stats_holder.into_inner().unwrap().unwrap();
        assert_eq!(snap.per_pe()[0].bytes_sent, 32);
        assert_eq!(snap.per_pe()[1].bytes_recv, 32);
        assert_eq!(snap.total_messages(), 1);
    }

    #[test]
    fn exchange_swaps_values() {
        let out = run(2, |comm| {
            let partner = 1 - comm.rank();
            comm.exchange(partner, Tag::user(5), &(comm.rank() as u64))
        });
        assert_eq!(out, vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "user tags must be below")]
    fn reserved_tag_rejected() {
        let _ = Tag::user(Tag::COLLECTIVE_BASE);
    }

    #[test]
    fn many_pes_ring() {
        let p = 8;
        let out = run(p, |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, Tag::user(3), &(comm.rank() as u64));
            comm.recv::<u64>(prev, Tag::user(3))
        });
        for (rank, got) in out.iter().enumerate() {
            assert_eq!(*got as usize, (rank + p - 1) % p);
        }
    }
}

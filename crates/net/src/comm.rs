//! Per-PE communicator: tagged point-to-point messaging with selective
//! receive, modeled after MPI two-sided semantics.
//!
//! A [`Comm`] is owned by exactly one PE thread (or process, on the TCP
//! backend). Messages are byte buffers (encoded through [`crate::wire`])
//! tagged with `(source, Tag)`; `recv` performs *selective* receive —
//! out-of-order arrivals are stashed in a pending queue until a matching
//! `recv` is posted, and deliveries within one `(source, tag)` pair are
//! FIFO. The physical data path is pluggable: any
//! [`crate::transport::Transport`] backend works, and because all
//! [`CommStats`] accounting happens here (on payload bytes, above the
//! transport), measured communication volume is identical across
//! backends. Sends never block on either built-in backend (unbounded
//! queues / kernel socket buffers drained by dedicated reader threads),
//! so the tree collectives in [`crate::collectives`] cannot deadlock.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::error::NetError;
use crate::stats::CommStats;
use crate::transport::{Packet, Transport};
use crate::wire::{self, Wire};

/// Message tag. User code may use any value below [`Tag::COLLECTIVE_BASE`];
/// the collectives reserve the range above it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag(pub u64);

impl Tag {
    /// First tag value reserved for internal collective traffic.
    pub const COLLECTIVE_BASE: u64 = 1 << 48;

    /// A user tag; panics if the value intrudes on the reserved range.
    pub fn user(value: u64) -> Self {
        assert!(
            value < Self::COLLECTIVE_BASE,
            "user tags must be below 2^48 (got {value})"
        );
        Tag(value)
    }
}

/// Communicator handle for one PE.
///
/// Obtained from [`crate::run`] (or [`crate::router::Router::build`]) for
/// in-process runs, or from [`crate::bootstrap`] for multi-process TCP
/// runs; the closure passed to `run` receives a `&mut Comm` per spawned
/// PE thread.
pub struct Comm {
    rank: usize,
    size: usize,
    transport: Box<dyn Transport>,
    pending: VecDeque<Packet>,
    stats: Arc<CommStats>,
    /// Monotone counter for collective invocations: SPMD programs invoke
    /// collectives in the same order on every PE, so equal sequence numbers
    /// identify the same logical collective across PEs.
    pub(crate) coll_seq: u64,
}

impl Comm {
    /// Wrap a transport endpoint into a full communicator.
    ///
    /// `stats` must track `transport.size()` PEs. For in-process runs all
    /// communicators share one registry; in multi-process runs each
    /// process holds its own (only its rank's counters move — use
    /// [`Comm::gather_stats`] to assemble the global view).
    pub fn over(transport: Box<dyn Transport>, stats: Arc<CommStats>) -> Self {
        assert_eq!(
            stats.num_pes(),
            transport.size(),
            "stats registry must cover every PE"
        );
        Self {
            rank: transport.rank(),
            size: transport.size(),
            transport,
            pending: VecDeque::new(),
            stats,
            coll_seq: 0,
        }
    }

    /// Rebuild a communicator around `transport` carrying over state from
    /// a predecessor: its stashed out-of-order packets and its collective
    /// sequence counter. Used by [`crate::scope::CommMux`] so the control
    /// communicator continues the wrapped communicator's tag stream
    /// seamlessly (SPMD programs may multiplex mid-run).
    pub(crate) fn over_resumed(
        transport: Box<dyn Transport>,
        stats: Arc<CommStats>,
        pending: VecDeque<Packet>,
        coll_seq: u64,
    ) -> Self {
        let mut comm = Self::over(transport, stats);
        comm.pending = pending;
        comm.coll_seq = coll_seq;
        comm
    }

    /// Tear this communicator apart: `(transport, stats, pending stash,
    /// collective sequence counter)`. The inverse of
    /// [`Comm::over_resumed`], used to wrap a live communicator into a
    /// [`crate::scope::CommMux`].
    pub(crate) fn into_parts(self) -> (Box<dyn Transport>, Arc<CommStats>, VecDeque<Packet>, u64) {
        (self.transport, self.stats, self.pending, self.coll_seq)
    }

    /// Consume this communicator into a scoped-communicator multiplexer:
    /// the entry point of the [`crate::scope`] subsystem. All PEs of an
    /// SPMD program must call this at the same point of the collective
    /// sequence.
    pub fn into_mux(self) -> crate::scope::CommMux {
        crate::scope::CommMux::new(self)
    }

    /// Rank of this PE, in `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of PEs in the run.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The shared statistics registry for this run.
    pub fn stats(&self) -> &Arc<CommStats> {
        &self.stats
    }

    /// Send an already-encoded payload to `dest` with `tag`.
    ///
    /// Sends are counted against this PE's `bytes_sent`/`msgs_sent` and one
    /// latency round. Sending to self is allowed (delivered through the
    /// pending queue, not counted as network traffic).
    ///
    /// # Panics
    /// Panics if the transport reports the peer gone — an SPMD program
    /// whose partner died is unrecoverable, mirroring MPI semantics.
    pub fn send_raw(&mut self, dest: usize, tag: Tag, payload: Vec<u8>) {
        assert!(
            dest < self.size,
            "dest {dest} out of range 0..{}",
            self.size
        );
        if dest == self.rank {
            self.pending.push_back(Packet {
                src: dest,
                tag,
                payload,
            });
            return;
        }
        let pe = self.stats.pe(self.rank);
        pe.record_send(payload.len());
        pe.record_rounds(1);
        if let Err(err) = self.transport.send(dest, tag, payload) {
            panic!("PE {}: send to PE {dest} failed: {err}", self.rank);
        }
    }

    /// Encode `value` and send it to `dest` with `tag`.
    pub fn send<T: Wire>(&mut self, dest: usize, tag: Tag, value: &T) {
        self.send_raw(dest, tag, wire::encode(value));
    }

    /// Receive the raw payload of the next message matching `(src, tag)`.
    /// Blocks until such a message arrives; non-matching arrivals are queued.
    pub fn recv_raw(&mut self, src: usize, tag: Tag) -> Vec<u8> {
        assert!(src < self.size, "src {src} out of range 0..{}", self.size);
        // Check the stash first.
        if let Some(pos) = self
            .pending
            .iter()
            .position(|p| p.src == src && p.tag == tag)
        {
            let pkt = self.pending.remove(pos).expect("position valid");
            if src != self.rank {
                self.stats.pe(self.rank).record_recv(pkt.payload.len());
            }
            return pkt.payload;
        }
        if self.transport.is_closed(src) {
            // The peer's sending side is gone and nothing matching is
            // stashed: this message can never arrive.
            panic!(
                "PE {}: waiting on PE {src} (tag {:?}): {}",
                self.rank,
                tag,
                NetError::Disconnected { peer: src }
            );
        }
        loop {
            match self.transport.recv() {
                Ok(pkt) => {
                    if pkt.src == src && pkt.tag == tag {
                        self.stats.pe(self.rank).record_recv(pkt.payload.len());
                        return pkt.payload;
                    }
                    self.pending.push_back(pkt);
                }
                // Another peer finishing early is normal in SPMD programs
                // whose ranks do different amounts of work.
                Err(NetError::Disconnected { peer }) if peer != src => continue,
                Err(err) => panic!(
                    "PE {}: waiting on PE {src} (tag {:?}): {err}",
                    self.rank, tag
                ),
            }
        }
    }

    /// Receive and decode a message matching `(src, tag)`.
    ///
    /// # Panics
    /// Panics if the payload does not decode as `T` — a type mismatch
    /// between sender and receiver is a programming error in SPMD code.
    pub fn recv<T: Wire>(&mut self, src: usize, tag: Tag) -> T {
        let payload = self.recv_raw(src, tag);
        wire::decode(&payload).unwrap_or_else(|| {
            panic!(
                "PE {}: message from PE {src} (tag {:?}) failed to decode as {}: {}",
                self.rank,
                tag,
                std::any::type_name::<T>(),
                NetError::Decode {
                    from: src,
                    tag: tag.0
                }
            )
        })
    }

    /// Like [`Comm::recv_raw`], but a dead peer is an `Err`, not a
    /// panic. This is the receive for *supervision* traffic — e.g. the
    /// health plane's PE-0 heartbeat collectors — where a vanished
    /// peer is exactly the signal being watched for, not a fatal
    /// protocol violation.
    pub fn recv_raw_or_disconnect(&mut self, src: usize, tag: Tag) -> Result<Vec<u8>, NetError> {
        assert!(src < self.size, "src {src} out of range 0..{}", self.size);
        if let Some(pos) = self
            .pending
            .iter()
            .position(|p| p.src == src && p.tag == tag)
        {
            let pkt = self.pending.remove(pos).expect("position valid");
            if src != self.rank {
                self.stats.pe(self.rank).record_recv(pkt.payload.len());
            }
            return Ok(pkt.payload);
        }
        if self.transport.is_closed(src) {
            return Err(NetError::Disconnected { peer: src });
        }
        loop {
            match self.transport.recv() {
                Ok(pkt) => {
                    if pkt.src == src && pkt.tag == tag {
                        self.stats.pe(self.rank).record_recv(pkt.payload.len());
                        return Ok(pkt.payload);
                    }
                    self.pending.push_back(pkt);
                }
                Err(NetError::Disconnected { peer }) if peer != src => continue,
                Err(err) => return Err(err),
            }
        }
    }

    /// Decoding wrapper over [`Comm::recv_raw_or_disconnect`]; a
    /// malformed payload is reported as [`NetError::Decode`].
    pub fn recv_or_disconnect<T: Wire>(&mut self, src: usize, tag: Tag) -> Result<T, NetError> {
        let payload = self.recv_raw_or_disconnect(src, tag)?;
        wire::decode(&payload).ok_or(NetError::Decode {
            from: src,
            tag: tag.0,
        })
    }

    /// Receive the next `tag` message from **any** peer, reporting dead
    /// peers as errors instead of panicking. This is the collector side
    /// of a many-to-one supervision stream (the health plane's PE-0
    /// heartbeat collector): blocking on one specific source would let
    /// a single stalled peer starve everyone else's messages, and a
    /// `Disconnected` peer is precisely the signal being watched for.
    /// On the scoped transport each peer's closure is reported once;
    /// keep calling to drain the remaining peers.
    pub fn recv_any_or_disconnect<T: Wire>(&mut self, tag: Tag) -> Result<(usize, T), NetError> {
        let pkt = match self.pending.iter().position(|p| p.tag == tag) {
            Some(pos) => self.pending.remove(pos).expect("position valid"),
            None => loop {
                match self.transport.recv() {
                    Ok(pkt) if pkt.tag == tag => break pkt,
                    Ok(pkt) => self.pending.push_back(pkt),
                    Err(err) => return Err(err),
                }
            },
        };
        if pkt.src != self.rank {
            self.stats.pe(self.rank).record_recv(pkt.payload.len());
        }
        let src = pkt.src;
        wire::decode(&pkt.payload)
            .map(|v| (src, v))
            .ok_or(NetError::Decode {
                from: src,
                tag: tag.0,
            })
    }

    /// Combined send+receive with a partner (full-duplex exchange, one
    /// round on the critical path — the model of §2 of the paper).
    pub fn exchange<T: Wire>(&mut self, partner: usize, tag: Tag, value: &T) -> T {
        self.send(partner, tag, value);
        self.recv(partner, tag)
    }

    /// Allocate a fresh tag block for the next collective invocation.
    pub(crate) fn next_coll_tag(&mut self, op: u64) -> Tag {
        let seq = self.coll_seq;
        self.coll_seq += 1;
        Tag(Tag::COLLECTIVE_BASE + seq * 64 + op)
    }
}

impl std::fmt::Debug for Comm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Comm")
            .field("rank", &self.rank)
            .field("size", &self.size)
            .field("pending", &self.pending.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run;
    use crate::testing::run_both;

    #[test]
    fn ping_pong() {
        let out = run_both(2, |comm| {
            let tag = Tag::user(1);
            if comm.rank() == 0 {
                comm.send(1, tag, &42u64);
                comm.recv::<u64>(1, tag)
            } else {
                let v: u64 = comm.recv(0, tag);
                comm.send(0, tag, &(v + 1));
                v
            }
        });
        assert_eq!(out, vec![43, 42]);
    }

    #[test]
    fn selective_receive_out_of_order() {
        let out = run_both(2, |comm| {
            if comm.rank() == 0 {
                // Send tag 2 first, then tag 1; receiver asks for 1 first.
                comm.send(1, Tag::user(2), &222u64);
                comm.send(1, Tag::user(1), &111u64);
                0
            } else {
                let first: u64 = comm.recv(0, Tag::user(1));
                let second: u64 = comm.recv(0, Tag::user(2));
                assert_eq!((first, second), (111, 222));
                first + second
            }
        });
        assert_eq!(out[1], 333);
    }

    /// Regression test: out-of-order arrivals across tags *and* sources
    /// are stashed and must come back in per-(source, tag) FIFO order —
    /// on both backends. Each sender emits interleaved sequences on two
    /// tags; the receiver drains them in a scrambled order relative to
    /// arrival and checks every (source, tag) stream individually.
    #[test]
    fn selective_receive_fifo_per_source_and_tag() {
        const MSGS: u64 = 8;
        let out = run_both(4, |comm| {
            let receiver = 3;
            if comm.rank() == receiver {
                let mut streams = Vec::new();
                // Drain in an order unrelated to arrival: by tag, then by
                // descending source, interleaving the sequence reads.
                for tag in [Tag::user(2), Tag::user(1)] {
                    for src in (0..receiver).rev() {
                        let seq: Vec<u64> = (0..MSGS).map(|_| comm.recv::<u64>(src, tag)).collect();
                        streams.push(seq);
                    }
                }
                // Every (source, tag) stream must be exactly 0..MSGS in
                // order: FIFO within the pair, no cross-talk between
                // pairs.
                let expected: Vec<u64> = (0..MSGS).collect();
                assert!(
                    streams.iter().all(|s| *s == expected),
                    "per-(source, tag) FIFO violated: {streams:?}"
                );
                streams.len() as u64
            } else {
                for i in 0..MSGS {
                    // Interleave the two tag streams so arrivals at the
                    // receiver are thoroughly out of order relative to
                    // the drain order above.
                    comm.send(receiver, Tag::user(1), &i);
                    comm.send(receiver, Tag::user(2), &i);
                }
                0
            }
        });
        assert_eq!(out[3], 6); // 3 sources × 2 tags
    }

    #[test]
    fn self_send_not_counted_as_traffic() {
        let stats_holder = std::sync::Mutex::new(None);
        run(1, |comm| {
            comm.send(0, Tag::user(9), &7u32);
            let v: u32 = comm.recv(0, Tag::user(9));
            assert_eq!(v, 7);
            *stats_holder.lock().unwrap() = Some(comm.stats().snapshot());
        });
        let snap = stats_holder.into_inner().unwrap().unwrap();
        assert_eq!(snap.total_bytes(), 0);
        assert_eq!(snap.total_messages(), 0);
    }

    #[test]
    fn byte_accounting_exact() {
        let stats_holder = std::sync::Mutex::new(None);
        run(2, |comm| {
            let tag = Tag::user(0);
            if comm.rank() == 0 {
                comm.send(1, tag, &vec![1u64, 2, 3]); // 8 (len) + 24 payload
            } else {
                let _: Vec<u64> = comm.recv(0, tag);
                *stats_holder.lock().unwrap() = Some(comm.stats().snapshot());
            }
        });
        let snap = stats_holder.into_inner().unwrap().unwrap();
        assert_eq!(snap.per_pe()[0].bytes_sent, 32);
        assert_eq!(snap.per_pe()[1].bytes_recv, 32);
        assert_eq!(snap.total_messages(), 1);
    }

    #[test]
    fn recv_or_disconnect_reports_dead_peer() {
        let out = run_both(2, |comm| {
            let tag = Tag::user(7);
            if comm.rank() == 0 {
                let first: Result<u64, _> = comm.recv_or_disconnect(1, tag);
                assert_eq!(first.ok(), Some(99));
                // Peer 1 exits after its one send; the next receive
                // surfaces the death as an error, not a panic. The TCP
                // backend reports the peer (`Disconnected`); the local
                // backend can only see the whole domain go (`TornDown`).
                let second: Result<u64, _> = comm.recv_or_disconnect(1, tag);
                assert!(
                    matches!(
                        second,
                        Err(NetError::Disconnected { peer: 1 }) | Err(NetError::TornDown)
                    ),
                    "{second:?}"
                );
                1
            } else {
                comm.send(0, tag, &99u64);
                0
            }
        });
        assert_eq!(out[0], 1);
    }

    #[test]
    fn exchange_swaps_values() {
        let out = run_both(2, |comm| {
            let partner = 1 - comm.rank();
            comm.exchange(partner, Tag::user(5), &(comm.rank() as u64))
        });
        assert_eq!(out, vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "user tags must be below")]
    fn reserved_tag_rejected() {
        let _ = Tag::user(Tag::COLLECTIVE_BASE);
    }

    #[test]
    fn many_pes_ring() {
        let p = 8;
        let out = run_both(p, |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, Tag::user(3), &(comm.rank() as u64));
            comm.recv::<u64>(prev, Tag::user(3))
        });
        for (rank, got) in out.iter().enumerate() {
            assert_eq!(*got as usize, (rank + p - 1) % p);
        }
    }

    #[test]
    #[should_panic(expected = "stats registry must cover every PE")]
    fn mismatched_stats_rejected() {
        let transports = crate::transport::local::LocalTransport::world(2);
        let _ = Comm::over(
            Box::new(transports.into_iter().next().unwrap()),
            CommStats::new(3),
        );
    }
}

//! # ccheck-net — message-passing substrate with exact communication accounting
//!
//! This crate stands in for the MPI/cluster environment used by the paper
//! "Communication Efficient Checking of Big Data Operations"
//! (Hübschle-Schneider & Sanders, 2018). It provides:
//!
//! * a multi-threaded **message-passing runtime**: `p` processing elements
//!   (PEs) run as threads and communicate through tagged point-to-point
//!   channels ([`Comm`]),
//! * **collective operations** (broadcast, reduce, allreduce — tree and
//!   bandwidth-optimal butterfly — gather, allgather, scan, all-to-all —
//!   direct and hypercube — barrier, neighbor exchange) built from
//!   point-to-point messages using the classical algorithms, so that
//!   message and byte counts match the textbook cost `O(β·k + α·log p)`,
//! * **exact per-PE accounting** of bytes and messages sent/received
//!   ([`CommStats`]) — the paper's optimization target is *bottleneck
//!   communication volume*, which we therefore measure rather than estimate,
//! * an **α-β cost model** ([`cost::CostModel`]) to extrapolate running
//!   times to PE counts beyond the host's core count (used for the weak
//!   scaling experiment, Fig. 4 of the paper).
//!
//! ## Quick example
//!
//! ```
//! use ccheck_net::run;
//!
//! // Sum the ranks of 4 PEs with an allreduce.
//! let results = run(4, |comm| comm.allreduce(comm.rank() as u64, |a, b| a + b));
//! assert!(results.iter().all(|&r| r == 0 + 1 + 2 + 3));
//! ```

pub mod butterfly;
pub mod collectives;
pub mod comm;
pub mod cost;
pub mod error;
pub mod router;
pub mod stats;
pub mod wire;

pub use comm::{Comm, Tag};
pub use cost::CostModel;
pub use error::{NetError, Result};
pub use router::run;
pub use stats::{CommStats, StatsSnapshot};
pub use wire::Wire;

//! # ccheck-net — message-passing substrate with exact communication accounting
//!
//! This crate stands in for the MPI/cluster environment used by the paper
//! "Communication Efficient Checking of Big Data Operations"
//! (Hübschle-Schneider & Sanders, 2018). It provides:
//!
//! * a **message-passing runtime** with a pluggable [`transport`] layer:
//!   `p` processing elements (PEs) communicate through tagged
//!   point-to-point channels ([`Comm`]) over either the in-process
//!   backend ([`transport::local`]: PEs as threads, crossbeam channels)
//!   or the multi-process TCP backend ([`transport::tcp`]:
//!   length-prefixed frames over socket meshes, one process per PE,
//!   wired up by [`bootstrap`] under the `ccheck-launch` launcher),
//! * **collective operations** (broadcast, reduce, allreduce — tree and
//!   bandwidth-optimal butterfly — gather, allgather, scan, all-to-all —
//!   direct and hypercube — barrier, neighbor exchange) built from
//!   point-to-point messages using the classical algorithms, so that
//!   message and byte counts match the textbook cost `O(β·k + α·log p)`,
//! * **exact per-PE accounting** of bytes and messages sent/received
//!   ([`CommStats`]) — the paper's optimization target is *bottleneck
//!   communication volume*, which we therefore measure rather than
//!   estimate. Accounting happens in [`Comm`], **above** the transport,
//!   on payload bytes only: the measured volume is byte-for-byte
//!   identical on every backend (asserted continuously by the
//!   [`testing`] helpers),
//! * an **α-β cost model** ([`cost::CostModel`]) to extrapolate running
//!   times to PE counts beyond the host's core count (used for the weak
//!   scaling experiment, Fig. 4 of the paper).
//!
//! ## Quick example
//!
//! ```
//! use ccheck_net::run;
//!
//! // Sum the ranks of 4 PEs with an allreduce.
//! let results = run(4, |comm| comm.allreduce(comm.rank() as u64, |a, b| a + b));
//! assert!(results.iter().all(|&r| r == 0 + 1 + 2 + 3));
//! ```
//!
//! ## Going multi-process
//!
//! The same SPMD closure body runs unmodified across OS processes: start
//! `p` copies of your binary under `ccheck-launch` (which performs the
//! rank rendezvous) and obtain the communicator from the environment:
//!
//! ```no_run
//! // $ ccheck-launch -p 4 -- ./my-binary
//! let mut comm = ccheck_net::bootstrap::init_from_env()
//!     .expect("bootstrap failed")
//!     .expect("not launched under ccheck-launch");
//! let sum = comm.allreduce(comm.rank() as u64, |a, b| a + b);
//! assert_eq!(sum, 0 + 1 + 2 + 3);
//! ```

pub mod bootstrap;
pub mod butterfly;
pub mod collectives;
pub mod comm;
pub mod cost;
pub mod error;
pub mod router;
pub mod scope;
pub mod stats;
pub mod transport;
pub mod wire;

pub use comm::{Comm, Tag};
pub use cost::CostModel;
pub use error::{NetError, Result};
pub use router::testing;
pub use router::{run, run_on, run_with_stats, run_with_stats_on};
pub use scope::CommMux;
pub use stats::{CommStats, StatsSnapshot};
pub use transport::{Backend, Packet, Transport, TransportSender};
pub use wire::Wire;

//! Scoped communicators: multiplexing independent tag namespaces over
//! one shared transport.
//!
//! The `ccheck-service` runtime executes many independent *checking
//! jobs* concurrently over a single launched world. Each job is
//! ordinary SPMD code full of collectives; if two jobs shared one
//! [`Comm`], their collective tags (sequence-numbered per communicator)
//! would collide and their traffic would cross-talk. This module gives
//! every job its own fully functional `Comm` — same collectives, same
//! exact [`crate::CommStats`] accounting — in a private **tag
//! namespace**, all sharing the one physical transport:
//!
//! ```text
//!   Comm ──into_mux()──▶ CommMux
//!                          ├─ control()   → Comm (scope 0, root stats)
//!                          ├─ scoped(1,…) → Comm (scope 1, child stats)
//!                          └─ scoped(2,…) → Comm (scope 2, child stats)
//! ```
//!
//! Mechanically: the transport's sending side is detached
//! ([`crate::transport::Transport::split_sender`]) and shared behind a
//! mutex, while a **pump thread** owns the receiving side and routes
//! every arriving packet to its scope's queue by the top
//! `64 − `[`SCOPE_SHIFT`] bits of the tag (packets for scopes that have
//! not registered yet are stashed and replayed on registration, so
//! ranks may start a job's traffic slightly ahead of each other).
//! Scoped sends shift their tags into the namespace; receives see them
//! stripped back, so a scoped `Comm` is indistinguishable from a plain
//! one to the code running over it — and because [`CommStats`] counts
//! payload bytes only, a job's measured communication volume is
//! byte-for-byte identical to running it alone on a dedicated world.
//!
//! Per-scope statistics go to labeled children of the root registry
//! ([`CommStats::scoped`]), so the root snapshot reports the whole
//! world's totals *and* a per-job breakdown.
//!
//! ## Teardown
//!
//! Dropping a scoped `Comm` merely deregisters its queue. The mux
//! itself tears down symmetrically on every PE: [`CommMux::shutdown`]
//! half-closes the shared sender, and the pump exits once every *peer*
//! has done the same (their end-of-stream drains behind all in-flight
//! data, so nothing is lost). Callers should only shut down after the
//! SPMD program is globally quiescent — the service runtime runs a
//! control-scope barrier first.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::comm::{Comm, Tag};
use crate::error::{NetError, Result};
use crate::stats::CommStats;
use crate::transport::{Packet, Transport, TransportSender};

/// Number of low tag bits available *inside* a scope; the remaining
/// high bits carry the scope id. [`Tag::COLLECTIVE_BASE`] (2⁴⁸) leaves
/// collective sequence numbers far below 2⁵⁶, so both user and
/// collective tags fit.
pub const SCOPE_SHIFT: u32 = 56;

/// Largest scope id (scope 0 is the control scope of
/// [`CommMux::control`]).
pub const MAX_SCOPE: u64 = (1 << (64 - SCOPE_SHIFT)) - 1;

const TAG_MASK: u64 = (1 << SCOPE_SHIFT) - 1;

/// What the pump delivers into a scope's queue.
enum ScopeEvent {
    /// A packet addressed to this scope, tag already stripped back to
    /// the in-scope value.
    Packet(Packet),
    /// A peer closed its sending side; delivered once per peer per
    /// registration.
    Closed(usize),
    /// The underlying transport reported an unrecoverable fault.
    Fatal(NetError),
}

/// Routing state shared between the pump thread and scope handles.
struct MuxState {
    /// Scope ids with a live communicator (kept separately from
    /// `scopes`, whose queue senders the pump drops on teardown).
    live: std::collections::HashSet<u64>,
    /// Live scope queues by scope id.
    scopes: HashMap<u64, Sender<ScopeEvent>>,
    /// Packets that arrived for scopes not (or no longer) registered;
    /// replayed in arrival order when the scope (re)registers.
    stash: HashMap<u64, Vec<Packet>>,
    /// Peers whose sending side has closed.
    closed: Vec<bool>,
    /// First fatal transport error, if any (relayed to every scope).
    fatal: Option<NetError>,
    /// The pump has exited: no further packet can ever arrive.
    torn_down: bool,
}

struct MuxShared {
    rank: usize,
    size: usize,
    sender: Mutex<Box<dyn TransportSender>>,
    state: Mutex<MuxState>,
}

impl MuxShared {
    /// Poison-tolerant state lock: a scope thread that panicked (e.g. a
    /// rejected tag) must not take the pump or the teardown path down
    /// with it — the counters and routing tables stay usable.
    fn lock_state(&self) -> std::sync::MutexGuard<'_, MuxState> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn lock_sender(&self) -> std::sync::MutexGuard<'_, Box<dyn TransportSender>> {
        match self.sender.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Multiplexer handing out scoped [`Comm`]s over one shared transport.
/// Obtained from [`Comm::into_mux`]; see the module docs.
pub struct CommMux {
    shared: Arc<MuxShared>,
    stats: Arc<CommStats>,
    pump: Option<JoinHandle<()>>,
    /// Carry-over for the control communicator (pending stash and
    /// collective sequence of the wrapped communicator); consumed by the
    /// first [`CommMux::control`] call.
    control_state: Mutex<Option<(VecDeque<Packet>, u64)>>,
}

impl CommMux {
    /// Wrap a communicator. All PEs of an SPMD program must do this at
    /// the same point of their collective sequence.
    pub fn new(comm: Comm) -> Self {
        let (mut transport, stats, pending, coll_seq) = comm.into_parts();
        let sender = transport
            .split_sender()
            .expect("transport's send side must be attachable");
        let shared = Arc::new(MuxShared {
            rank: transport.rank(),
            size: transport.size(),
            sender: Mutex::new(sender),
            state: Mutex::new(MuxState {
                live: std::collections::HashSet::new(),
                scopes: HashMap::new(),
                stash: HashMap::new(),
                closed: vec![false; transport.size()],
                fatal: None,
                torn_down: false,
            }),
        });
        let pump_shared = Arc::clone(&shared);
        let pump = std::thread::Builder::new()
            .name(format!("ccheck-net-mux-{}", shared.rank))
            .spawn(move || pump(transport, pump_shared))
            .expect("spawn mux pump thread");
        Self {
            shared,
            stats,
            pump: Some(pump),
            control_state: Mutex::new(Some((pending, coll_seq))),
        }
    }

    /// Rank of this PE.
    pub fn rank(&self) -> usize {
        self.shared.rank
    }

    /// Number of PEs in the world.
    pub fn size(&self) -> usize {
        self.shared.size
    }

    /// The root statistics registry (the wrapped communicator's); its
    /// snapshot aggregates every scope's child registry.
    pub fn stats(&self) -> Arc<CommStats> {
        Arc::clone(&self.stats)
    }

    /// The **control communicator** (scope 0): records into the root
    /// statistics registry and continues the wrapped communicator's
    /// collective sequence and pending stash, so pre-mux traffic (user
    /// tags and in-flight stragglers) flows into it seamlessly.
    ///
    /// # Panics
    /// Panics if called more than once.
    pub fn control(&self) -> Comm {
        let (pending, coll_seq) = self
            .control_state
            .lock()
            .expect("control state poisoned")
            .take()
            .expect("CommMux::control may only be called once");
        let rx = self.register(0);
        Comm::over_resumed(
            Box::new(ScopedTransport {
                shared: Arc::clone(&self.shared),
                scope: 0,
                rx,
                closed: vec![false; self.shared.size],
            }),
            Arc::clone(&self.stats),
            pending,
            coll_seq,
        )
    }

    /// A fresh communicator in tag namespace `scope` (1..=[`MAX_SCOPE`]),
    /// recording into the child statistics registry labeled `label`.
    /// Its collective sequence starts at zero, so all PEs creating the
    /// same scope run the same tag stream — the SPMD contract, one level
    /// up.
    ///
    /// A scope id may be reused once its previous communicator has been
    /// dropped **and** the previous job is globally complete (e.g. after
    /// a control-scope barrier); packets arriving for an unregistered
    /// scope are stashed and replayed on registration, so admission
    /// skew between ranks is safe.
    ///
    /// # Panics
    /// Panics if `scope` is 0, exceeds [`MAX_SCOPE`], or is currently
    /// registered.
    pub fn scoped(&self, scope: u64, label: &str) -> Comm {
        assert!(
            (1..=MAX_SCOPE).contains(&scope),
            "scope id {scope} out of range 1..={MAX_SCOPE} (0 is the control scope)"
        );
        let rx = self.register(scope);
        Comm::over(
            Box::new(ScopedTransport {
                shared: Arc::clone(&self.shared),
                scope,
                rx,
                closed: vec![false; self.shared.size],
            }),
            self.stats.scoped(label),
        )
    }

    fn register(&self, scope: u64) -> Receiver<ScopeEvent> {
        let (tx, rx) = unbounded();
        let mut st = self.shared.lock_state();
        assert!(
            st.live.insert(scope),
            "scope {scope} already has a live communicator"
        );
        // Replay what the pump saw before this registration: stashed
        // packets first (they always precede a peer's close), then any
        // closures and a fatal fault.
        if let Some(packets) = st.stash.remove(&scope) {
            for pkt in packets {
                let _ = tx.send(ScopeEvent::Packet(pkt));
            }
        }
        for (peer, &closed) in st.closed.iter().enumerate() {
            if closed {
                let _ = tx.send(ScopeEvent::Closed(peer));
            }
        }
        if let Some(fatal) = &st.fatal {
            let _ = tx.send(ScopeEvent::Fatal(fatal.clone()));
        }
        if !st.torn_down {
            st.scopes.insert(scope, tx);
        }
        rx
    }

    /// Half-close this PE's sending side and wait for the pump to drain
    /// every peer's stream to *its* end-of-stream. Call only once the
    /// SPMD program is globally quiescent (all scopes done everywhere —
    /// run a control-scope barrier first); the service runtime does
    /// exactly that. Dropping the mux without calling this performs the
    /// same teardown.
    pub fn shutdown(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        self.shared.lock_sender().close();
        if let Some(pump) = self.pump.take() {
            let _ = pump.join();
        }
    }
}

impl Drop for CommMux {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // Unwinding: close our send side so peers can still tear
            // down, but don't block on the pump — it only exits once
            // every *peer* closes, which a panicked world may never
            // reach. A detached pump is harmless; a join here would
            // turn one PE's panic into a whole-world hang.
            self.shared.lock_sender().close();
            if let Some(pump) = self.pump.take() {
                drop(pump);
            }
            return;
        }
        self.finish();
    }
}

/// The pump: sole owner of the transport's receiving side. Routes
/// packets by scope, relays per-peer closures to every scope, and exits
/// when the transport reports full teardown or a fatal fault.
fn pump(mut transport: Box<dyn Transport>, shared: Arc<MuxShared>) {
    loop {
        match transport.recv() {
            Ok(pkt) => {
                let scope = pkt.tag.0 >> SCOPE_SHIFT;
                let pkt = Packet {
                    src: pkt.src,
                    tag: Tag(pkt.tag.0 & TAG_MASK),
                    payload: pkt.payload,
                };
                let mut st = shared.lock_state();
                match st.scopes.get(&scope) {
                    Some(tx) => {
                        if tx.send(ScopeEvent::Packet(pkt)).is_err() {
                            // Receiver vanished without deregistering
                            // (scope thread panicked): stop routing to it.
                            st.scopes.remove(&scope);
                        }
                    }
                    None => st.stash.entry(scope).or_default().push(pkt),
                }
            }
            Err(NetError::Disconnected { peer }) => {
                let mut st = shared.lock_state();
                st.closed[peer] = true;
                for tx in st.scopes.values() {
                    let _ = tx.send(ScopeEvent::Closed(peer));
                }
            }
            Err(NetError::TornDown) => {
                let mut st = shared.lock_state();
                st.torn_down = true;
                // Dropping the queue senders lets blocked scope receives
                // observe the teardown.
                st.scopes.clear();
                return;
            }
            Err(err) => {
                let mut st = shared.lock_state();
                for tx in st.scopes.values() {
                    let _ = tx.send(ScopeEvent::Fatal(err.clone()));
                }
                st.fatal = Some(err);
                st.torn_down = true;
                st.scopes.clear();
                return;
            }
        }
    }
}

/// One scope's view of the shared transport. Sends shift tags into the
/// scope's namespace (under the shared sender mutex); receives drain the
/// scope's queue, fed by the pump with tags already stripped.
struct ScopedTransport {
    shared: Arc<MuxShared>,
    scope: u64,
    rx: Receiver<ScopeEvent>,
    closed: Vec<bool>,
}

impl Transport for ScopedTransport {
    fn rank(&self) -> usize {
        self.shared.rank
    }

    fn size(&self) -> usize {
        self.shared.size
    }

    fn send(&mut self, dest: usize, tag: Tag, payload: Vec<u8>) -> Result<()> {
        assert!(
            tag.0 <= TAG_MASK,
            "tag {:#x} exceeds the scoped tag space (< 2^{SCOPE_SHIFT})",
            tag.0
        );
        let scoped = Tag((self.scope << SCOPE_SHIFT) | tag.0);
        self.shared.lock_sender().send(dest, scoped, payload)
    }

    fn recv(&mut self) -> Result<Packet> {
        match self.rx.recv() {
            Ok(ScopeEvent::Packet(pkt)) => Ok(pkt),
            Ok(ScopeEvent::Closed(peer)) => {
                self.closed[peer] = true;
                Err(NetError::Disconnected { peer })
            }
            Ok(ScopeEvent::Fatal(err)) => Err(err),
            Err(_) => Err(NetError::TornDown),
        }
    }

    fn is_closed(&self, peer: usize) -> bool {
        // Only from local bookkeeping: a peer counts as closed once this
        // scope has *drained* its closure marker, which the pump enqueues
        // behind all of the peer's packets — so "closed" really means "no
        // further packet from it can reach this scope".
        self.closed[peer]
    }

    fn shutdown(&mut self) -> Result<()> {
        // A scope's teardown is its deregistration (see Drop); the
        // physical transport outlives it.
        Ok(())
    }

    fn split_sender(&mut self) -> Result<Box<dyn TransportSender>> {
        Err(NetError::bootstrap(
            "scoped transports cannot detach their sender (already shared)",
        ))
    }
}

impl Drop for ScopedTransport {
    fn drop(&mut self) {
        let mut st = self.shared.lock_state();
        st.live.remove(&self.scope);
        st.scopes.remove(&self.scope);
        // Anything still queued (stray packets of a crashed scope) is
        // re-stashed so diagnostics or a re-registration can see it.
        let stash = st.stash.entry(self.scope).or_default();
        for event in self.rx.try_iter() {
            if let ScopeEvent::Packet(pkt) = event {
                stash.push(pkt);
            }
        }
        if stash.is_empty() {
            st.stash.remove(&self.scope);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Owned-communicator run on both backends (scoped tests must move
    /// the `Comm` into a mux), results only — the shared harness in
    /// [`crate::testing`] also asserts snapshot equality across
    /// backends, per-scope breakdowns included.
    fn run_owned_both<R, F>(p: usize, f: F) -> Vec<R>
    where
        R: Send + PartialEq + std::fmt::Debug,
        F: Fn(Comm) -> R + Sync,
    {
        crate::testing::run_both_owned_with_stats(p, f).0
    }

    #[test]
    fn control_comm_continues_seamlessly() {
        let out = run_owned_both(4, |mut comm| {
            // Pre-mux traffic: a collective and an in-flight user message.
            let pre = comm.allreduce(1u64, |a, b| a + b);
            if comm.rank() == 0 {
                comm.send(2, Tag::user(9), &77u64);
            }
            let mux = comm.into_mux();
            let mut ctl = mux.control();
            // Post-mux: the straggler arrives through the control scope,
            // and collectives keep working (fresh tag slots).
            let extra = if ctl.rank() == 2 {
                ctl.recv::<u64>(0, Tag::user(9))
            } else {
                0
            };
            let post = ctl.allreduce(extra, |a, b| a + b);
            ctl.barrier();
            drop(ctl);
            mux.shutdown();
            (pre, post)
        });
        assert!(out.iter().all(|&(pre, post)| pre == 4 && post == 77));
    }

    #[test]
    fn interleaved_scoped_jobs_do_not_cross_talk() {
        let out = run_owned_both(4, |comm| {
            let rank = comm.rank();
            let mux = comm.into_mux();
            let mut ctl = mux.control();
            // Two concurrent "jobs" per PE, each on its own scope,
            // hammering collectives in different orders and volumes.
            let a = mux.scoped(1, "job-a");
            let b = mux.scoped(2, "job-b");
            let ha = std::thread::spawn(move || {
                let mut comm = a;
                let mut acc = 0u64;
                for i in 0..20 {
                    acc = acc.wrapping_add(comm.allreduce(i + comm.rank() as u64, |x, y| x + y));
                }
                comm.barrier();
                acc
            });
            let hb = std::thread::spawn(move || {
                let mut comm = b;
                let mut acc = 0u64;
                for i in 0..20 {
                    let v = comm.allgather(100 * i + comm.rank() as u64);
                    acc = acc.wrapping_add(v.into_iter().sum::<u64>());
                    // Scan is rank-dependent; fold it back through an
                    // allreduce so every PE accumulates the same value.
                    let s = comm.scan(1u64, |x, y| x + y);
                    acc = acc.wrapping_add(comm.allreduce(s, |x, y| x + y));
                }
                acc
            });
            let ra = ha.join().expect("job a");
            let rb = hb.join().expect("job b");
            ctl.barrier();
            drop(ctl);
            mux.shutdown();
            let _ = rank;
            (ra, rb)
        });
        // Every PE agrees on both jobs' results (SPMD invariant), and
        // the results match the closed-form expectations.
        assert!(out.windows(2).all(|w| w[0] == w[1]));
        let expect_a: u64 = (0..20u64).map(|i| 4 * i + 6).sum();
        assert_eq!(out[0].0, expect_a);
    }

    #[test]
    fn early_packets_for_unregistered_scope_are_stashed() {
        let out = run_owned_both(2, |comm| {
            let rank = comm.rank();
            let mux = comm.into_mux();
            let mut ctl = mux.control();
            if rank == 0 {
                // Register scope 5 and send immediately.
                let mut job = mux.scoped(5, "early");
                job.send(1, Tag::user(1), &4242u64);
                // Tell rank 1 (on the control scope) that the scoped
                // message is long gone into its transport.
                ctl.send(1, Tag::user(0), &());
                let got = 0u64;
                ctl.barrier();
                drop(job);
                drop(ctl);
                mux.shutdown();
                got
            } else {
                // Only register the scope after the packet has arrived.
                let () = ctl.recv(0, Tag::user(0));
                std::thread::sleep(std::time::Duration::from_millis(20));
                let mut job = mux.scoped(5, "early");
                let got = job.recv::<u64>(0, Tag::user(1));
                ctl.barrier();
                drop(job);
                drop(ctl);
                mux.shutdown();
                got
            }
        });
        assert_eq!(out[1], 4242);
    }

    #[test]
    fn scope_reuse_after_barrier() {
        let out = run_owned_both(3, |comm| {
            let mux = comm.into_mux();
            let mut ctl = mux.control();
            let mut total = 0u64;
            for round in 0..3u64 {
                let mut job = mux.scoped(1, &format!("round-{round}"));
                total += job.allreduce(round + job.rank() as u64, |a, b| a + b);
                drop(job);
                // The global quiescence point that licenses scope reuse.
                ctl.barrier();
            }
            drop(ctl);
            mux.shutdown();
            total
        });
        assert!(out.windows(2).all(|w| w[0] == w[1]));
        // round r contributes 3r + (0+1+2).
        assert_eq!(out[0], (0..3u64).map(|r| 3 * r + 3).sum::<u64>());
    }

    #[test]
    fn per_scope_stats_attribute_traffic() {
        let comms = crate::router::Router::build(2).into_comms();
        let stats: Vec<Arc<CommStats>> = comms.iter().map(|c| c.stats()).cloned().collect();
        let root = Arc::clone(&stats[0]);
        std::thread::scope(|scope| {
            for comm in comms {
                scope.spawn(move || {
                    let mux = comm.into_mux();
                    let mut ctl = mux.control();
                    let mut job = mux.scoped(1, "the-job");
                    // 8 payload bytes in the job scope, none in control.
                    if job.rank() == 0 {
                        job.send(1, Tag::user(0), &7u64);
                    } else {
                        let _: u64 = job.recv(0, Tag::user(0));
                    }
                    ctl.barrier();
                    drop(job);
                    drop(ctl);
                    mux.shutdown();
                });
            }
        });
        let snap = root.snapshot();
        let job = snap.scope("the-job").expect("job scope recorded");
        assert_eq!(job.total_bytes(), 8);
        assert_eq!(job.total_messages(), 1);
        // Totals include the job's bytes and the control barrier's
        // messages (whose `()` payloads are zero bytes).
        assert_eq!(snap.total_bytes(), 8);
        assert!(snap.total_messages() > job.total_messages());
    }

    #[test]
    fn single_pe_mux_works() {
        let out = run_owned_both(1, |comm| {
            let mux = comm.into_mux();
            let mut ctl = mux.control();
            let mut job = mux.scoped(1, "solo");
            job.send(0, Tag::user(3), &5u32);
            let v: u32 = job.recv(0, Tag::user(3));
            let r = job.allreduce(v as u64, |a, b| a + b);
            ctl.barrier();
            drop(job);
            drop(ctl);
            mux.shutdown();
            r
        });
        assert_eq!(out, vec![5]);
    }

    #[test]
    #[should_panic(expected = "exceeds the scoped tag space")]
    fn oversized_scoped_tag_rejected() {
        let mut comms = crate::router::Router::build(2).into_comms();
        let peer = comms.pop().unwrap();
        let mux = comms.pop().unwrap().into_mux();
        let mut job = mux.scoped(1, "bad-tag");
        // Drop the peer before panicking: the unwind drops the mux
        // (joining its pump), which needs the peer's send side gone.
        drop(peer);
        job.send_raw(1, Tag(1 << SCOPE_SHIFT), Vec::new());
    }

    #[test]
    #[should_panic(expected = "already has a live communicator")]
    fn duplicate_scope_registration_rejected() {
        let mut comms = crate::router::Router::build(1).into_comms();
        let mux = comms.pop().unwrap().into_mux();
        let _a = mux.scoped(1, "a");
        let _b = mux.scoped(1, "b");
    }

    #[test]
    #[should_panic(expected = "may only be called once")]
    fn control_taken_once() {
        let mut comms = crate::router::Router::build(1).into_comms();
        let mux = comms.pop().unwrap().into_mux();
        let _a = mux.control();
        let _b = mux.control();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn scope_zero_reserved() {
        let mut comms = crate::router::Router::build(1).into_comms();
        let mux = comms.pop().unwrap().into_mux();
        let _ = mux.scoped(0, "zero");
    }
}

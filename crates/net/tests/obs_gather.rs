//! Cross-PE metrics gathering: per-rank observations merge into one
//! world snapshot at rank 0 via the ordinary collectives, histograms
//! bucket-wise (the same mergeability the paper's sketches rely on),
//! with snapshots deduped per source process (in-process backends
//! share one registry across all PE threads).

use ccheck_net::testing::ALL_BACKENDS;
use ccheck_net::{run_on, Comm};
use ccheck_obs::metrics::bucket_of;

const P: usize = 4;

fn world_gather(comm: &mut Comm, counter: &str, hist: &str) -> Option<ccheck_obs::MetricsSnapshot> {
    let reg = ccheck_obs::registry();
    reg.counter(counter).add(1 + comm.rank() as u64);
    // Rank r observes 2^r: every rank lands in its own bucket, so the
    // merged histogram must show one observation in each.
    reg.histogram(hist).observe(1u64 << comm.rank());
    comm.barrier();
    let gathered = comm.gather_metrics();
    if comm.rank() == 0 {
        let (world, per_pe) = gathered.expect("rank 0 receives the world view");
        assert_eq!(per_pe.len(), P, "one snapshot per rank");
        Some(world)
    } else {
        assert!(gathered.is_none(), "non-root ranks get None");
        None
    }
}

#[test]
fn gathered_world_snapshot_merges_all_ranks() {
    ccheck_obs::set_enabled(true);
    for (i, backend) in ALL_BACKENDS.into_iter().enumerate() {
        // Fresh names per backend: the process-global registry is
        // monotone, so reusing a name would mix the two runs.
        let counter = format!("test.gather.jobs.{i}");
        let hist = format!("test.gather.lat.{i}");
        let results = run_on(backend, P, |comm| world_gather(comm, &counter, &hist));
        let world = results[0].clone().expect("rank 0 produced a world view");
        // Both in-process backends share this process's registry: the
        // dedupe must count it once, giving exactly the union of what
        // the ranks recorded (1 + 2 + 3 + 4), not P copies of it.
        assert_eq!(world.counters[&counter], 10, "backend {backend:?}");
        let h = &world.histograms[&hist];
        assert_eq!(h.count(), P as u64);
        for rank in 0..P {
            assert_eq!(
                h.counts[bucket_of(1u64 << rank)],
                1,
                "rank {rank}'s observation lands in its own bucket"
            );
        }
        // The instrumented transport published real traffic under the
        // unified net.* namespace while collection was enabled.
        assert!(world.counters["net.tx.bytes"] > 0);
        assert!(world.counters["net.tx.msgs"] > 0);
        assert!(world.histograms["net.frame.bytes"].count() > 0);
    }
}

#[test]
fn gathered_trace_reaches_rank_zero() {
    ccheck_obs::set_enabled(true);
    let results = run_on(ccheck_net::Backend::Local, P, |comm| {
        {
            let _span = ccheck_obs::span("test.trace.rank-work");
            std::hint::black_box(comm.rank());
        }
        comm.barrier();
        let traces = comm.gather_trace();
        if comm.rank() == 0 {
            Some(traces.expect("rank 0 receives traces"))
        } else {
            assert!(traces.is_none());
            None
        }
    });
    let traces = results[0].clone().expect("rank 0 produced traces");
    // One process → one deduped snapshot, containing every rank
    // thread's span.
    assert_eq!(traces.len(), 1);
    let spans = traces[0]
        .events
        .iter()
        .filter(|ev| ev.name == "test.trace.rank-work")
        .count();
    assert!(spans >= P, "every rank's span drained, got {spans}");
    // And it renders as loadable Chrome trace JSON.
    let json = ccheck_obs::export::chrome_trace_json(&traces);
    assert!(json.contains("test.trace.rank-work"));
}

//! True multi-process integration: spawn `ccheck-launch`, which spawns
//! rank-numbered worker *processes* that rendezvous over loopback TCP
//! and run the collective self-test. This is the path real cluster
//! deployments use; everything in-process is covered elsewhere.

use std::process::Command;

fn launch(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_ccheck-launch"))
        .args(args)
        .output()
        .expect("run ccheck-launch")
}

#[test]
fn four_process_selftest_over_tcp() {
    let selftest = env!("CARGO_BIN_EXE_ccheck-net-selftest");
    let out = launch(&["-p", "4", "--timeout", "120", "--", selftest]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "launcher failed: {}\nstdout:\n{stdout}\nstderr:\n{stderr}",
        out.status
    );
    // Rank 0 reports success and prints the gathered accounting table
    // covering all four ranks.
    assert!(
        stdout.contains("4 ranks") && stdout.contains("OK over TCP"),
        "unexpected stdout:\n{stdout}"
    );
    assert!(
        stdout.contains("bottleneck communication volume:"),
        "missing stats table:\n{stdout}"
    );
}

#[test]
fn single_process_world_works() {
    let selftest = env!("CARGO_BIN_EXE_ccheck-net-selftest");
    let out = launch(&["-p", "1", "--", selftest]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn worker_failure_fails_the_launch() {
    // A worker that exits nonzero immediately: the launcher must not
    // hang in rendezvous and must forward the failure.
    let out = launch(&["-p", "2", "--timeout", "30", "--", "/bin/false"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("rendezvous failed") || stderr.contains("workers failed"),
        "unexpected stderr:\n{stderr}"
    );
}

#[test]
fn clean_early_exit_aborts_promptly() {
    // Workers that exit 0 without ever joining the rendezvous can never
    // complete the world; the launcher must abort right away instead of
    // sitting out the full --timeout.
    let started = std::time::Instant::now();
    let out = launch(&["-p", "2", "--timeout", "60", "--", "/bin/true"]);
    assert!(!out.status.success());
    assert!(
        started.elapsed() < std::time::Duration::from_secs(20),
        "launcher waited out the timeout instead of aborting"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("before rendezvous completed"),
        "unexpected stderr:\n{stderr}"
    );
}

#[test]
fn run_timeout_kills_deadlocked_workers() {
    // The selftest's hang hook deadlocks the world after bootstrap
    // (rank 0 parks, the rest block in a barrier) — exactly the failure
    // --run-timeout exists to catch. The launcher must kill the workers
    // and fail instead of waiting forever.
    let selftest = env!("CARGO_BIN_EXE_ccheck-net-selftest");
    let started = std::time::Instant::now();
    let out = Command::new(env!("CARGO_BIN_EXE_ccheck-launch"))
        .args([
            "-p",
            "2",
            "--timeout",
            "60",
            "--run-timeout",
            "2",
            "--",
            selftest,
        ])
        .env("CCHECK_SELFTEST_HANG", "1")
        .output()
        .expect("run ccheck-launch");
    assert!(!out.status.success());
    assert!(
        started.elapsed() < std::time::Duration::from_secs(30),
        "launcher did not enforce --run-timeout"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("run timed out") && stderr.contains("workers failed"),
        "unexpected stderr:\n{stderr}"
    );
}

#[test]
fn bad_usage_exits_2() {
    let out = launch(&["-p", "2"]); // no -- command
    assert_eq!(out.status.code(), Some(2));
}

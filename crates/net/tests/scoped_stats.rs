//! Per-scope accounting regression: two jobs interleaved over one
//! shared transport via [`ccheck_net::CommMux`] must report **exactly**
//! the communication volumes they report when run serially, each on a
//! dedicated world — on both transports, byte for byte.
//!
//! This is the contract `ccheck-service` receipts rely on: a verdict
//! receipt's per-job volume is meaningful only if multiplexing is
//! invisible to the accounting.

use ccheck_net::testing::{run_both_owned_with_stats, run_both_with_stats};
use ccheck_net::{Comm, Tag};

/// Job A: reduction-heavy — allreduces of growing vectors plus a few
/// point-to-point rounds.
fn job_a(comm: &mut Comm) -> u64 {
    let mut acc = 0u64;
    for i in 0..8u64 {
        let v: Vec<u64> = (0..=i).map(|k| k + comm.rank() as u64).collect();
        let merged = comm.allreduce(v, |a, b| a.into_iter().zip(b).map(|(x, y)| x + y).collect());
        acc = acc.wrapping_add(merged.into_iter().sum::<u64>());
    }
    if comm.rank() == 0 {
        comm.send(comm.size() - 1, Tag::user(1), &acc);
    }
    if comm.rank() == comm.size() - 1 {
        acc = acc.wrapping_add(comm.recv::<u64>(0, Tag::user(1)));
    }
    comm.allreduce(acc, |a, b| a.wrapping_add(b))
}

/// Job B: exchange-heavy — personalized all-to-alls and gathers, a very
/// different traffic shape from job A.
fn job_b(comm: &mut Comm) -> u64 {
    let p = comm.size();
    let mut acc = 0u64;
    for round in 0..5u64 {
        let outgoing: Vec<u64> = (0..p as u64).map(|j| round * 100 + j).collect();
        let incoming = comm.all_to_all(outgoing);
        acc = acc.wrapping_add(incoming.into_iter().sum::<u64>());
        let all = comm.allgather(acc);
        acc = all.into_iter().fold(acc, u64::wrapping_add);
    }
    comm.allreduce(acc, |a, b| a.wrapping_add(b))
}

#[test]
fn interleaved_jobs_report_exactly_their_serial_volumes() {
    let p = 4;
    // Serial baselines: each job alone on a dedicated world (and already
    // asserted identical across both transports).
    let (serial_a_results, serial_a) = run_both_with_stats(p, job_a);
    let (serial_b_results, serial_b) = run_both_with_stats(p, job_b);

    // Interleaved: both jobs as concurrent scoped communicators over one
    // shared transport per PE.
    let (results, snap) = run_both_owned_with_stats(p, |comm| {
        let mux = comm.into_mux();
        let mut ctl = mux.control();
        let a = mux.scoped(1, "job-a");
        let b = mux.scoped(2, "job-b");
        let ha = std::thread::spawn(move || {
            let mut comm = a;
            job_a(&mut comm)
        });
        let hb = std::thread::spawn(move || {
            let mut comm = b;
            job_b(&mut comm)
        });
        let ra = ha.join().expect("job a thread");
        let rb = hb.join().expect("job b thread");
        ctl.barrier();
        drop(ctl);
        mux.shutdown();
        (ra, rb)
    });

    // Results unchanged by multiplexing.
    for (rank, &(ra, rb)) in results.iter().enumerate() {
        assert_eq!(ra, serial_a_results[rank], "job a result at rank {rank}");
        assert_eq!(rb, serial_b_results[rank], "job b result at rank {rank}");
    }

    // The per-job breakdown matches the serial accounting *exactly* —
    // every byte, message, and round, per PE.
    let scoped_a = snap.scope("job-a").expect("job-a scope recorded");
    let scoped_b = snap.scope("job-b").expect("job-b scope recorded");
    assert_eq!(
        scoped_a.per_pe(),
        serial_a.per_pe(),
        "job a volumes differ between interleaved and serial execution"
    );
    assert_eq!(
        scoped_b.per_pe(),
        serial_b.per_pe(),
        "job b volumes differ between interleaved and serial execution"
    );

    // And the totals are the sum of both jobs plus the (byte-free)
    // control barrier.
    assert_eq!(
        snap.total_bytes(),
        serial_a.total_bytes() + serial_b.total_bytes()
    );
}

//! Scheduler fairness properties, under arbitrary mixed-tenant /
//! priority / deadline submission interleavings against a saturated
//! queue:
//!
//! (a) **No starvation under `PriorityAging`** — every accepted job is
//!     eventually admitted, and a job is never overtaken by a
//!     later-submitted job of equal-or-lower priority (aging only ever
//!     widens an earlier job's lead).
//! (b) **Quota enforcement under `DeadlineWfq`** — no tenant exceeds
//!     its inflight quota or queue share while others queue (stealing
//!     off), and a free slot never sits idle while an under-quota
//!     tenant has work (work conservation).
//! (c) **`Fifo` is byte-identical to the PR-4 serial baselines** on
//!     both transports, even when the new scheduling fields ride along
//!     on the spec.
//!
//! (a) and (b) drive the production [`SchedCore`] directly with a
//! simulated clock — the same state machine PE 0's daemon runs, minus
//! the worlds — so the interleavings are genuinely arbitrary *and*
//! deterministic. (c) spins up real service worlds.

use std::collections::HashMap;
use std::sync::mpsc;
use std::time::Duration;

use ccheck_net::Backend;
use ccheck_service::sched::{PolicyCfg, SchedCore};
use ccheck_service::{
    execute_job, run_service_world, CheckUsed, JobOp, JobSpec, Receipt, ReceiptComm, ServiceClient,
    ServiceConfig, Verdict,
};
use proptest::prelude::*;

/// Minimal receipt for feeding completions back into a simulated core.
fn receipt_for(job: &JobSpec, job_id: u64) -> Receipt {
    Receipt {
        job_id,
        op: job.op,
        tenant: job.tenant.clone(),
        admit_seq: 0,
        verdict: Verdict::Verified,
        check: CheckUsed::default(),
        digest: 0,
        elems: job.n,
        output_elems: 0,
        wall_ms: 20,
        timing: None,
        comm: Some(ReceiptComm {
            total_bytes: 10_000,
            ..ReceiptComm::default()
        }),
        spec_fingerprint: None,
        content_hash: None,
        prev_hash: None,
    }
}

fn spec_of(priority: u32, tenant_sel: u8, deadline_sel: u8) -> JobSpec {
    JobSpec {
        n: 1_000,
        tenant: Some(format!("t{}", tenant_sel % 4)),
        priority,
        // A sprinkling of deadlines, all far enough out that only the
        // (b) saturation scenarios can expire them.
        deadline_ms: match deadline_sel % 4 {
            0 => Some(5_000),
            1 => Some(50_000),
            _ => None,
        },
        ..JobSpec::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (a) PriorityAging: drive an arbitrary interleaving of enqueues,
    /// admissions, and completions over a 2-slot core; every accepted
    /// job runs, and admission order never inverts (earlier, ≥-priority
    /// job admitted after a later, ≤-priority one).
    #[test]
    fn priority_aging_never_starves_or_inverts(
        jobs in prop::collection::vec((0u32..6, 0u8..4, 0u8..4, 0u64..40, 0u8..4), 3..=24),
    ) {
        let max_inflight = 2;
        let mut core = SchedCore::new(
            &PolicyCfg::PriorityAging { aging_ms: 50 },
            1_000,
            max_inflight,
        );
        let mut now = 0u64;
        let mut running: Vec<(u64, JobSpec)> = Vec::new();
        let mut admitted: Vec<u64> = Vec::new();
        let mut submitted: Vec<(u64, u32)> = Vec::new(); // (id, priority) in enqueue order

        let admit_and_maybe_complete = |core: &mut SchedCore,
                                            now: &mut u64,
                                            running: &mut Vec<(u64, JobSpec)>,
                                            admitted: &mut Vec<u64>,
                                            complete: bool| {
            while running.len() < max_inflight {
                match core.pick(*now) {
                    Some(adm) => {
                        admitted.push(adm.job_id);
                        running.push((adm.job_id, adm.spec));
                    }
                    None => break,
                }
            }
            if complete && !running.is_empty() {
                let (id, spec) = running.remove(0);
                core.complete(&receipt_for(&spec, id));
                *now += 10;
            }
        };

        for (i, &(priority, tenant_sel, deadline_sel, gap_ms, interleave)) in
            jobs.iter().enumerate()
        {
            now += gap_ms;
            let id = i as u64 + 1;
            let spec = spec_of(priority, tenant_sel, deadline_sel);
            core.try_enqueue(now, id, spec).expect("queue is deep enough");
            submitted.push((id, priority));
            // Arbitrary interleaving: sometimes admit/complete between
            // submissions, sometimes let the queue saturate.
            if interleave == 0 {
                admit_and_maybe_complete(&mut core, &mut now, &mut running, &mut admitted, true);
            } else if interleave == 1 {
                admit_and_maybe_complete(&mut core, &mut now, &mut running, &mut admitted, false);
            }
        }
        // Drain: every accepted job must eventually run (no starvation).
        let mut steps = 0;
        while !core.queue_is_empty() || !running.is_empty() {
            admit_and_maybe_complete(&mut core, &mut now, &mut running, &mut admitted, true);
            steps += 1;
            prop_assert!(steps < 10_000, "drain loop did not terminate");
        }
        prop_assert_eq!(admitted.len(), submitted.len());

        // No inversion: if X was submitted before Y with priority(X) >=
        // priority(Y), X is admitted first — aging can only widen X's
        // lead, and ties break toward the earlier submission.
        let position: HashMap<u64, usize> = admitted
            .iter()
            .enumerate()
            .map(|(pos, &id)| (id, pos))
            .collect();
        for (xi, &(x_id, x_prio)) in submitted.iter().enumerate() {
            for &(y_id, y_prio) in &submitted[xi + 1..] {
                if x_prio >= y_prio {
                    prop_assert!(
                        position[&x_id] < position[&y_id],
                        "job {} (prio {}) overtaken by later job {} (prio {})",
                        x_id, x_prio, y_id, y_prio
                    );
                }
            }
        }
    }

    /// (b) DeadlineWfq with stealing off: tenant quotas hold at every
    /// step of an arbitrary interleaving, queue shares are enforced at
    /// admission, and slots never idle while an under-quota tenant has
    /// work.
    #[test]
    fn deadline_wfq_enforces_quotas_and_conserves_work(
        jobs in prop::collection::vec((0u32..6, 0u8..4, 0u8..4, 0u64..40, 0u8..4), 3..=24),
        tenant_max_inflight in 1usize..3,
    ) {
        let queue_cap = 12;
        let share_pct = 50u32;
        let max_inflight = 3;
        let mut core = SchedCore::new(
            &PolicyCfg::DeadlineWfq {
                tenant_max_inflight,
                tenant_queue_share_pct: share_pct,
                steal: false,
                weights: vec![("t0".into(), 2)],
            },
            queue_cap,
            max_inflight,
        );
        let mut now = 0u64;
        let mut running: Vec<(u64, JobSpec)> = Vec::new();
        let mut accepted = 0usize;
        let mut ran = 0usize;
        let share_cap = (queue_cap * share_pct as usize / 100).max(1);

        let step = |core: &mut SchedCore,
                        now: &mut u64,
                        running: &mut Vec<(u64, JobSpec)>,
                        ran: &mut usize,
                        complete: bool|
         -> Result<(), TestCaseError> {
            core.take_expired(*now);
            while running.len() < max_inflight {
                match core.pick(*now) {
                    Some(adm) => {
                        *ran += 1;
                        running.push((adm.job_id, adm.spec));
                    }
                    None => {
                        // Work conservation: an empty pick is only legal
                        // when every tenant with queued work is at quota.
                        for (tenant, state) in core.tenants().iter() {
                            prop_assert!(
                                state.queued == 0 || state.inflight >= tenant_max_inflight,
                                "slot idle while tenant {tenant:?} is under quota"
                            );
                        }
                        break;
                    }
                }
            }
            // The quota invariant, after every admission round.
            for (tenant, state) in core.tenants().iter() {
                prop_assert!(
                    state.inflight <= tenant_max_inflight,
                    "tenant {tenant:?} exceeds its inflight quota"
                );
                prop_assert!(
                    state.queued <= share_cap,
                    "tenant {tenant:?} exceeds its queue share"
                );
            }
            if complete && !running.is_empty() {
                let (id, spec) = running.remove(0);
                core.complete(&receipt_for(&spec, id));
                *now += 10;
            }
            Ok(())
        };

        for (i, &(priority, tenant_sel, deadline_sel, gap_ms, interleave)) in
            jobs.iter().enumerate()
        {
            now += gap_ms;
            let spec = spec_of(priority, tenant_sel, deadline_sel);
            match core.try_enqueue(now, i as u64 + 1, spec) {
                Ok(()) => accepted += 1,
                Err(refusal) => {
                    // Per-tenant queue shares or the saturated global
                    // cap; either way a busy refusal under a scheduling
                    // policy must carry the retry hint.
                    prop_assert!(
                        refusal.message.contains("queue share")
                            || refusal.message.contains("queue is full"),
                        "{}",
                        refusal.message
                    );
                    prop_assert!(refusal.retry_after_ms.is_some());
                }
            }
            if interleave <= 1 {
                step(&mut core, &mut now, &mut running, &mut ran, interleave == 0)?;
            }
        }
        let mut steps = 0;
        while !core.queue_is_empty() || !running.is_empty() {
            step(&mut core, &mut now, &mut running, &mut ran, true)?;
            steps += 1;
            prop_assert!(steps < 10_000, "drain loop did not terminate");
        }
        // Stealing off: nothing ever ran over quota; every accepted job
        // either ran or was expired by its deadline.
        prop_assert_eq!(core.stolen(), 0);
        prop_assert_eq!(ran as u64 + core.refused(), accepted as u64);
    }
}

proptest! {
    // Each case spins up service worlds on both backends plus one
    // standalone world per job; keep the case budget small like the
    // other cross-crate distributed properties.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// (c) The default Fifo policy is PR-4: verdicts, digests, output
    /// counts, and per-job comm volumes byte-identical to serial
    /// standalone runs on both transports — scheduling fields on the
    /// spec ride along without changing anything.
    #[test]
    fn fifo_receipts_match_serial_baselines_on_both_transports(
        jobs in prop::collection::vec((0u8..3, 0u32..5, 0u8..4, 0u64..1000), 2..=3),
    ) {
        let p = 3;
        let specs: Vec<JobSpec> = jobs
            .iter()
            .enumerate()
            .map(|(i, &(op_sel, priority, tenant_sel, seed))| JobSpec {
                op: match op_sel % 3 {
                    0 => JobOp::Reduce,
                    1 => JobOp::Sort,
                    _ => JobOp::Zip,
                },
                n: 900 + 150 * i as u64,
                keys: 67,
                seed: seed ^ (i as u64) << 32,
                iterations: 3,
                tenant: Some(format!("t{}", tenant_sel % 2)),
                priority,
                // Generous deadline: Fifo ignores it entirely, so the
                // field must be inert.
                deadline_ms: Some(600_000),
                ..JobSpec::default()
            })
            .collect();

        // Serial ground truth, each job alone on a dedicated world.
        let serial: Vec<Receipt> = specs
            .iter()
            .map(|s| {
                let s = s.clone();
                ccheck_net::run(p, move |comm| execute_job(comm, 0, &s))
                    .into_iter()
                    .next()
                    .expect("rank 0")
            })
            .collect();

        for backend in [Backend::Local, Backend::TcpLoopback] {
            let (tx, rx) = mpsc::channel();
            let cfg = ServiceConfig {
                announce: Some(tx),
                max_inflight: specs.len(),
                policy: PolicyCfg::Fifo,
                ..ServiceConfig::default()
            };
            let world = {
                let cfg = cfg.clone();
                std::thread::spawn(move || run_service_world(backend, p, &cfg))
            };
            let addr = rx.recv_timeout(Duration::from_secs(30)).expect("address");
            let concurrent: Vec<Receipt> = std::thread::scope(|scope| {
                let handles: Vec<_> = specs
                    .iter()
                    .map(|spec| {
                        let spec = spec.clone();
                        scope.spawn(move || {
                            let mut client = ServiceClient::connect_with_retry(
                                &addr.to_string(),
                                Duration::from_secs(10),
                            )
                            .expect("connect");
                            client.run(&spec).expect("receipt")
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            ServiceClient::connect_with_retry(&addr.to_string(), Duration::from_secs(10))
                .expect("connect")
                .shutdown()
                .expect("shutdown");
            let summaries = world.join().expect("world exits");
            prop_assert_eq!(summaries[0].policy, "fifo");
            prop_assert_eq!(summaries[0].refused, 0);

            for (serial, concurrent) in serial.iter().zip(&concurrent) {
                prop_assert_eq!(&concurrent.verdict, &serial.verdict);
                prop_assert_eq!(concurrent.digest, serial.digest);
                prop_assert_eq!(concurrent.output_elems, serial.output_elems);
                prop_assert_eq!(&concurrent.comm, &serial.comm);
                prop_assert_eq!(&concurrent.tenant, &serial.tenant);
            }
        }
    }
}

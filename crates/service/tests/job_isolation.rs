//! Job isolation property: an **arbitrary interleaving** of N concurrent
//! jobs — mixed reduce/sort/zip, mixed chunked/one-shot, some fault-
//! injected — produces verdicts and digests identical to running the
//! same jobs serially, each on a dedicated world.
//!
//! The interleaving is genuinely arbitrary: every job is submitted from
//! its own client thread (submission order races) and all jobs execute
//! concurrently over one shared transport per PE, so their collectives
//! interleave at the whim of the scheduler. Isolation (tag scoping +
//! per-scope stats) is what makes the outcome deterministic anyway.

use std::sync::mpsc;
use std::time::Duration;

use ccheck_net::Backend;
use ccheck_service::{
    execute_job, run_service_world, FaultSpec, JobOp, JobSpec, Receipt, ServiceClient,
    ServiceConfig, Verdict,
};
use proptest::prelude::*;

/// Decode one proptest-drawn job description into a spec.
/// `(op, chunk, n, seed, fault)` selectors keep the strategy on plain
/// integer ranges (the offline proptest stand-in's vocabulary).
fn make_spec(op_sel: u8, chunk_sel: u8, n: u64, seed: u64, fault_sel: u8) -> JobSpec {
    let op = match op_sel % 3 {
        0 => JobOp::Reduce,
        1 => JobOp::Sort,
        _ => JobOp::Zip,
    };
    let chunk = match chunk_sel % 3 {
        0 => 0, // one-shot
        1 => 128,
        _ => 1024,
    };
    // Roughly half the jobs get an injected fault, drawn from the op's
    // manipulator family.
    let fault = match (fault_sel % 8, op) {
        (0, JobOp::Reduce) => Some("bitflip"),
        (1, JobOp::Reduce) => Some("switchvalues"),
        (0, JobOp::Sort) => Some("dupneighbor"),
        (1, JobOp::Sort) => Some("swapadjacent"),
        (0 | 1, JobOp::Zip) => Some("swappairs"),
        (2, _) => Some("randomize"),
        _ => None,
    };
    // "randomize" only exists for sort and zip outputs.
    let fault = match (fault, op) {
        (Some("randomize"), JobOp::Reduce) => Some("randkey"),
        (f, _) => f,
    };
    JobSpec {
        op,
        n: 500 + n,
        keys: 79,
        seed,
        chunk,
        iterations: 3,
        max_retries: 1,
        fault: fault.map(|kind| FaultSpec {
            kind: kind.into(),
            seed: seed ^ 0xFA,
        }),
        ..JobSpec::default()
    }
}

fn serial_receipt(p: usize, spec: &JobSpec) -> Receipt {
    let spec = spec.clone();
    ccheck_net::run(p, move |comm| execute_job(comm, 0, &spec))
        .into_iter()
        .next()
        .expect("rank 0")
}

proptest! {
    // Each case spins up a full service world plus one standalone world
    // per job; keep the case budget in line with the other cross-crate
    // distributed properties.
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn concurrent_jobs_equal_serial_jobs(
        jobs in prop::collection::vec(
            (0u8..3, 0u8..3, 0u64..2500, 0u64..10_000, 0u8..8),
            2..=4,
        ),
        world_seed in 0u64..1000,
    ) {
        let p = 3;
        let specs: Vec<JobSpec> = jobs
            .iter()
            .enumerate()
            .map(|(i, &(op, chunk, n, seed, fault))| {
                // world_seed decorrelates datasets across cases.
                make_spec(op, chunk, n, seed ^ (world_seed << 10) ^ i as u64, fault)
            })
            .collect();

        // Serial ground truth, each job alone on a dedicated world.
        let serial: Vec<Receipt> = specs.iter().map(|s| serial_receipt(p, s)).collect();

        // Concurrent run: all jobs in flight at once.
        let (tx, rx) = mpsc::channel();
        let cfg = ServiceConfig {
            announce: Some(tx),
            max_inflight: specs.len(),
            ..ServiceConfig::default()
        };
        let world = {
            let cfg = cfg.clone();
            std::thread::spawn(move || run_service_world(Backend::Local, p, &cfg))
        };
        let addr = rx.recv_timeout(Duration::from_secs(30)).expect("address");
        let concurrent: Vec<Receipt> = std::thread::scope(|scope| {
            let handles: Vec<_> = specs
                .iter()
                .map(|spec| {
                    let spec = spec.clone();
                    scope.spawn(move || {
                        let mut client = ServiceClient::connect_with_retry(
                            &addr.to_string(),
                            Duration::from_secs(10),
                        )
                        .expect("connect");
                        client.run(&spec).expect("receipt")
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        ServiceClient::connect_with_retry(&addr.to_string(), Duration::from_secs(10))
            .expect("connect")
            .shutdown()
            .expect("shutdown");
        world.join().expect("world exits");

        for ((spec, serial), concurrent) in specs.iter().zip(&serial).zip(&concurrent) {
            prop_assert_eq!(&concurrent.verdict, &serial.verdict);
            prop_assert_eq!(concurrent.digest, serial.digest);
            prop_assert_eq!(concurrent.output_elems, serial.output_elems);
            // Per-job comm volumes are part of the receipt contract too.
            prop_assert_eq!(&concurrent.comm, &serial.comm);
            // Faulty one-shot reduce/sort jobs degrade, never lie:
            if spec.fault.is_some() && spec.chunk == 0 && spec.op != JobOp::Zip {
                prop_assert!(matches!(
                    concurrent.verdict,
                    Verdict::FellBack | Verdict::VerifiedAfterRetry(_)
                ));
            }
            // Faulty chunked/zip jobs are flagged:
            if spec.fault.is_some() && (spec.chunk != 0 || spec.op == JobOp::Zip) {
                prop_assert_eq!(&concurrent.verdict, &Verdict::Rejected);
            }
        }
    }
}

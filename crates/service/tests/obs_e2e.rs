//! End-to-end observability tests: a full service world with obs
//! collection enabled must (a) seal a `timing` block into every
//! receipt that survives ledger replay byte-identically, and (b)
//! answer the `metrics` protocol command with live, world-merged
//! transport / scheduler / executor series.
//!
//! Obs state (the enabled flag and the metric registry) is process
//! global, so these tests only ever switch collection ON and assert
//! with `>=` — parallel test threads add to the same counters.

use std::path::PathBuf;
use std::sync::mpsc;
use std::time::Duration;

use ccheck_net::Backend;
use ccheck_service::json::Json;
use ccheck_service::{
    run_service_world, JobOp, JobSpec, Ledger, Receipt, ServiceClient, ServiceConfig,
};

fn start_world(
    p: usize,
    cfg: ServiceConfig,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<Vec<ccheck_service::ServiceSummary>>,
) {
    let (tx, rx) = mpsc::channel();
    let cfg = ServiceConfig {
        announce: Some(tx),
        ..cfg
    };
    let world = std::thread::spawn(move || run_service_world(Backend::Local, p, &cfg));
    let addr = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("service never announced its address");
    (addr, world)
}

fn connect(addr: std::net::SocketAddr) -> ServiceClient {
    ServiceClient::connect_with_retry(&addr.to_string(), Duration::from_secs(10))
        .expect("client connects")
}

fn mixed_specs() -> Vec<JobSpec> {
    vec![
        JobSpec {
            op: JobOp::Reduce,
            n: 4_000,
            keys: 97,
            seed: 11,
            ..JobSpec::default()
        },
        JobSpec {
            op: JobOp::Sort,
            n: 3_000,
            keys: 4_096,
            seed: 12,
            chunk: 1_000,
            ..JobSpec::default()
        },
        JobSpec {
            op: JobOp::Zip,
            n: 2_000,
            keys: 64,
            seed: 13,
            ..JobSpec::default()
        },
    ]
}

fn temp_ledger(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ccheck-obs-e2e-{tag}-{}.log", std::process::id()))
}

/// Satellite 3 (receipt timing): every receipt of a mixed workload
/// carries a timing block, its phases are monotone against the wall
/// clock, and the sealed block survives a ledger replay byte-for-byte
/// (same canonical bytes, same content hash).
#[test]
fn receipt_timing_present_monotone_and_replay_stable() {
    ccheck_obs::set_enabled(true);
    let path = temp_ledger("timing");
    let _ = std::fs::remove_file(&path);
    let (addr, world) = start_world(
        2,
        ServiceConfig {
            ledger_path: Some(path.clone()),
            max_inflight: 2,
            ..ServiceConfig::default()
        },
    );
    let mut client = connect(addr);
    let mut receipts: Vec<Receipt> = Vec::new();
    for spec in mixed_specs() {
        let id = client.submit(&spec).expect("submit");
        receipts.push(client.wait(id).expect("wait"));
    }
    client.shutdown().expect("shutdown");
    world.join().expect("world joins");

    for r in &receipts {
        let timing = r
            .timing
            .unwrap_or_else(|| panic!("job {} receipt has no timing block", r.job_id));
        // Phase times are measured in µs and floored to ms against the
        // same clock, so the split can never exceed the whole.
        assert!(
            timing.exec_ms + timing.check_ms <= r.wall_ms,
            "job {}: exec {} + check {} exceeds wall {}",
            r.job_id,
            timing.exec_ms,
            timing.check_ms,
            r.wall_ms
        );
        assert!(r.content_hash.is_some(), "receipt is sealed");
    }

    // Replay the ledger: the stored receipts (timing block included)
    // must round-trip byte-identically — equal field-for-field, and the
    // canonical bytes must still hash to the sealed content_hash.
    let replayed = Ledger::replay(&path).expect("replay");
    assert_eq!(replayed.len(), receipts.len());
    for r in &receipts {
        let stored = replayed
            .iter()
            .find(|s| s.job_id == r.job_id)
            .unwrap_or_else(|| panic!("job {} missing from replay", r.job_id));
        assert_eq!(stored, r, "replayed receipt differs from the one served");
        assert_eq!(
            stored.content_hash(),
            stored.content_hash.clone().expect("sealed"),
            "replayed canonical bytes no longer match the sealed hash"
        );
    }
    let _ = std::fs::remove_file(&path);
}

/// Tentpole (live introspection): the `metrics` protocol command
/// returns a world-merged snapshot with non-zero transport, scheduler,
/// and executor series, plus a Prometheus rendering of the same.
#[test]
fn metrics_command_reports_world_series() {
    ccheck_obs::set_enabled(true);
    let pes = 2;
    let (addr, world) = start_world(pes, ServiceConfig::default());
    let mut client = connect(addr);
    let jobs = mixed_specs();
    let n_jobs = jobs.len() as u64;
    for spec in jobs {
        let id = client.submit(&spec).expect("submit");
        client.wait(id).expect("wait");
    }

    let snap = client.metrics().expect("metrics");
    assert_eq!(snap.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(snap.get("enabled").and_then(Json::as_bool), Some(true));
    assert_eq!(snap.get("sources").and_then(Json::as_u64), Some(pes as u64));

    let counter = |name: &str| {
        snap.get("counters")
            .and_then(|c| c.get(name))
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("metrics response lacks counter {name}"))
    };
    // Executor: both PEs ran every job, so the merged count is p × jobs
    // at minimum (other tests in this process may add more).
    assert!(counter("exec.jobs") >= pes as u64 * n_jobs);
    // Scheduler series only exist on rank 0, but merge in regardless.
    assert!(counter("sched.enqueued") >= n_jobs);
    assert!(counter("sched.admitted") >= n_jobs);
    // Transport: job collectives moved real frames.
    assert!(counter("net.tx.msgs") > 0);
    assert!(counter("net.tx.bytes") > 0);
    // The always-on transport ledger rides along even where obs
    // collection has nothing (same series the final report prints).
    assert!(counter("world.comm.bytes_sent") > 0);

    let hist_count = |name: &str| {
        snap.get("histograms")
            .and_then(|h| h.get(name))
            .and_then(|h| h.get("count"))
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("metrics response lacks histogram {name}"))
    };
    assert!(hist_count("exec.execute_us") >= pes as u64 * n_jobs);
    assert!(hist_count("sched.queue_wait_ms") >= n_jobs);
    assert!(hist_count("net.frame.bytes") > 0);

    // The embedded Prometheus rendering exposes the same series under
    // sanitized names.
    let prom = snap
        .get("prometheus")
        .and_then(Json::as_str)
        .expect("prometheus text");
    assert!(prom.contains("# TYPE exec_jobs counter"));
    assert!(prom.contains("# TYPE net_frame_bytes histogram"));
    assert!(prom.contains("world_comm_bytes_sent"));

    client.shutdown().expect("shutdown");
    world.join().expect("world joins");
}

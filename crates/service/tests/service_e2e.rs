//! End-to-end service tests — the PR's acceptance demo, in test form:
//! a 4-PE world running the service accepts concurrently submitted
//! jobs, executes them with interleaved collectives over one shared
//! transport, and every receipt's verdict + per-job communication
//! volume matches the same job run standalone on a dedicated world —
//! on both the local and the TCP transport.

use std::sync::mpsc;
use std::time::Duration;

use ccheck_net::Backend;
use ccheck_service::{
    execute_job, run_service_world, FaultSpec, JobOp, JobSpec, Receipt, ServiceClient,
    ServiceConfig, Verdict,
};

/// Start a `p`-PE service world on `backend` in a background thread;
/// returns (client address, world join handle).
fn start_world(
    backend: Backend,
    p: usize,
    cfg: ServiceConfig,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<Vec<ccheck_service::ServiceSummary>>,
) {
    let (tx, rx) = mpsc::channel();
    let cfg = ServiceConfig {
        announce: Some(tx),
        ..cfg
    };
    let world = std::thread::spawn(move || run_service_world(backend, p, &cfg));
    let addr = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("service never announced its address");
    (addr, world)
}

fn connect(addr: std::net::SocketAddr) -> ServiceClient {
    ServiceClient::connect_with_retry(&addr.to_string(), Duration::from_secs(10))
        .expect("client connects")
}

/// Run `spec` standalone on a dedicated `p`-PE world (same backend) and
/// return rank 0's receipt.
fn standalone(backend: Backend, p: usize, job_id: u64, spec: &JobSpec) -> Receipt {
    let spec = spec.clone();
    let receipts = ccheck_net::run_on(backend, p, move |comm| execute_job(comm, job_id, &spec));
    receipts.into_iter().next().expect("rank 0 receipt")
}

fn mixed_specs() -> Vec<JobSpec> {
    vec![
        // One-shot sum aggregation.
        JobSpec {
            op: JobOp::Reduce,
            n: 6_000,
            keys: 151,
            seed: 41,
            ..JobSpec::default()
        },
        // Chunked streaming sort.
        JobSpec {
            op: JobOp::Sort,
            n: 5_000,
            keys: 1 << 20,
            seed: 42,
            chunk: 512,
            ..JobSpec::default()
        },
        // One-shot zip.
        JobSpec {
            op: JobOp::Zip,
            n: 4_000,
            seed: 43,
            iterations: 2,
            ..JobSpec::default()
        },
    ]
}

#[test]
fn concurrent_receipts_match_standalone_both_transports() {
    for backend in [Backend::Local, Backend::TcpLoopback] {
        let p = 4;
        let (addr, world) = start_world(backend, p, ServiceConfig::default());

        // Submit all jobs concurrently, one client connection each, so
        // their collectives genuinely interleave over the shared
        // transport (max_inflight = 4 admits all three at once).
        let specs = mixed_specs();
        let receipts: Vec<Receipt> = std::thread::scope(|scope| {
            let handles: Vec<_> = specs
                .iter()
                .map(|spec| {
                    let spec = spec.clone();
                    scope.spawn(move || {
                        let mut client = connect(addr);
                        client.run(&spec).expect("job runs to a receipt")
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        connect(addr).shutdown().expect("shutdown accepted");
        let summaries = world.join().expect("world exits cleanly");
        assert_eq!(summaries[0].jobs_run, 3, "{backend:?}");
        assert!(summaries[0].stats.is_some());

        for (spec, receipt) in specs.iter().zip(&receipts) {
            assert_eq!(receipt.verdict, Verdict::Verified, "{backend:?} {spec:?}");
            let solo = standalone(backend, p, receipt.job_id, spec);
            assert_eq!(receipt.verdict, solo.verdict, "{backend:?}");
            assert_eq!(receipt.digest, solo.digest, "{backend:?}");
            assert_eq!(receipt.output_elems, solo.output_elems, "{backend:?}");
            // The acceptance bar: per-job communication volume under the
            // service is byte-for-byte the standalone volume.
            assert_eq!(
                receipt.comm, solo.comm,
                "{backend:?} {:?}: interleaved job volume differs from standalone",
                spec.op
            );
        }
    }
}

#[test]
fn corrupted_job_flags_while_concurrent_clean_jobs_verify() {
    // Satellite: service-level fault injection with the zip and sort
    // manipulators — the corrupted jobs must come back Rejected/FellBack
    // while clean jobs running *at the same time* still verify.
    let (addr, world) = start_world(Backend::Local, 4, ServiceConfig::default());

    let jobs: Vec<(JobSpec, Verdict)> = vec![
        (
            // Clean reduce — must stay Verified despite the chaos around it.
            JobSpec {
                op: JobOp::Reduce,
                n: 6_000,
                keys: 97,
                seed: 7,
                ..JobSpec::default()
            },
            Verdict::Verified,
        ),
        (
            // Sorted-output corruption (multiset damage): one-shot sort
            // retries, then falls back to the reference sort.
            JobSpec {
                op: JobOp::Sort,
                n: 4_000,
                keys: 1 << 20,
                seed: 8,
                max_retries: 1,
                fault: Some(FaultSpec {
                    kind: "dupneighbor".into(),
                    seed: 3,
                }),
                ..JobSpec::default()
            },
            Verdict::FellBack,
        ),
        (
            // Zipped-output corruption (pair swap): zip has no fallback,
            // so the receipt must say Rejected.
            JobSpec {
                op: JobOp::Zip,
                n: 4_000,
                seed: 9,
                fault: Some(FaultSpec {
                    kind: "swappairs".into(),
                    seed: 5,
                }),
                ..JobSpec::default()
            },
            Verdict::Rejected,
        ),
        (
            // Clean chunked sort, also concurrent.
            JobSpec {
                op: JobOp::Sort,
                n: 4_000,
                keys: 1 << 20,
                seed: 10,
                chunk: 256,
                ..JobSpec::default()
            },
            Verdict::Verified,
        ),
    ];

    let receipts: Vec<(Receipt, Verdict)> = std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .iter()
            .map(|(spec, expected)| {
                let spec = spec.clone();
                let expected = *expected;
                scope.spawn(move || {
                    let mut client = connect(addr);
                    (client.run(&spec).expect("receipt"), expected)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    connect(addr).shutdown().expect("shutdown");
    world.join().expect("world exits");

    for (receipt, expected) in &receipts {
        assert_eq!(
            receipt.verdict, *expected,
            "job {} ({:?})",
            receipt.job_id, receipt.op
        );
    }
    // The fallback result is trustworthy, the rejected one is not.
    assert!(receipts
        .iter()
        .all(|(r, _)| (r.verdict != Verdict::Rejected) == r.verdict.result_ok()));
}

#[test]
fn backpressure_refuses_when_queue_full() {
    let cfg = ServiceConfig {
        max_inflight: 1,
        queue_cap: 1,
        ..ServiceConfig::default()
    };
    let (addr, world) = start_world(Backend::Local, 2, cfg);
    let mut client = connect(addr);

    // Flood: with one slot and a one-deep queue, rapid submissions must
    // eventually bounce with `busy`.
    let spec = JobSpec {
        op: JobOp::Sort,
        n: 50_000,
        keys: 1 << 20,
        seed: 3,
        ..JobSpec::default()
    };
    let mut accepted = Vec::new();
    let mut saw_busy = false;
    for _ in 0..50 {
        match client.submit(&spec) {
            Ok(id) => accepted.push(id),
            Err(ccheck_service::ServiceError::Refused(msg)) => {
                assert!(msg.contains("busy"), "{msg}");
                saw_busy = true;
                break;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(saw_busy, "queue never filled despite 50 rapid submissions");
    // Everything that was accepted still completes and verifies.
    for id in accepted {
        let receipt = client.wait(id).expect("accepted job completes");
        assert_eq!(receipt.verdict, Verdict::Verified);
    }
    client.shutdown().expect("shutdown");
    world.join().expect("world exits");
}

#[test]
fn protocol_errors_are_answered_not_fatal() {
    use std::io::{BufRead, BufReader, Write};

    let (addr, world) = start_world(Backend::Local, 2, ServiceConfig::default());
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();

    // Garbage, unknown command, bad spec: each gets an error response
    // and the connection survives.
    for request in [
        "this is not json\n",
        "{\"cmd\":\"frobnicate\"}\n",
        "{\"cmd\":\"submit\",\"job\":{\"op\":\"join\"}}\n",
        "{\"cmd\":\"submit\",\"job\":{\"n\":0}}\n",
        "{\"cmd\":\"submit\",\"job\":{\"fault\":{\"kind\":\"nosuch\"}}}\n",
        "{\"cmd\":\"poll\",\"id\":999}\n",
    ] {
        stream.write_all(request.as_bytes()).unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(
            line.contains("\"ok\":false"),
            "request {request:?} should be refused, got {line:?}"
        );
    }

    // And a well-formed job on the very same connection still works.
    stream
        .write_all(b"{\"cmd\":\"submit\",\"job\":{\"op\":\"reduce\",\"n\":2000,\"keys\":53}}\n")
        .unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"ok\":true"), "{line}");

    let mut client = connect(addr);
    client.shutdown().expect("shutdown");
    world.join().expect("world exits");
}

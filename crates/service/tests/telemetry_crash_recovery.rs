//! Crash-recovery end-to-end for the durable telemetry plane: a real
//! `ccheck-serve` world running with `--history`, `--slo`, and
//! `--ledger` is SIGKILLed mid-life and restarted on the same files,
//! on both transports. Asserts the `docs/PROTOCOL.md` §2.10 /
//! `docs/OBSERVABILITY.md` §9 recovery contract:
//!
//! * the history log reopens past any torn tail: every record the dead
//!   world acknowledged as durable is still readable, and the restarted
//!   world appends new samples after them,
//! * the SLO engine refolds from the durable sample stream alone — an
//!   objective that was firing before the crash is firing after it,
//!   with its breach count and recent-alert ring restored,
//! * `ccheck-report` is a pure function of the files: running it twice
//!   on the crashed artifacts is byte-identical, and `--diff` against
//!   the pre-crash report passes (no phantom regressions from the
//!   crash) while a doctored baseline fails with exit 3.

use std::path::Path;
use std::process::{Child, Command};
use std::time::{Duration, Instant};

use ccheck_obs::history::{HistoryPayload, HistoryReader};
use ccheck_service::health::WatchSample;
use ccheck_service::json::{self, Json};
use ccheck_service::slo::{parse_specs, AlertEvent, SloEngine};
use ccheck_service::{CheckMode, FaultSpec, JobOp, JobSpec, Ledger, ServiceClient};

const CONNECT_TIMEOUT: Duration = Duration::from_secs(120);
const POLL_DEADLINE: Duration = Duration::from_secs(60);

/// A verify-failure error budget tight enough that two `fellback`
/// completions out of a handful of jobs blow it immediately, with a
/// window far longer than the test so it never resolves on its own.
/// The availability objective's budget is deliberately loose (half the
/// window's samples may be bad) so shutdown-blip samples — a tick that
/// lands while peer PEs are already exiting — can't add a breach and
/// make the pre/post-crash reports diverge.
const SLO_SPECS: &str = "# telemetry crash e2e objectives\n\
    {\"slo\":\"error_budget\",\"name\":\"verify\",\"budget\":0.05,\"window_ms\":600000}\n\
    {\"slo\":\"availability\",\"name\":\"pes\",\"min_healthy\":1.0,\"window_ms\":600000,\"budget\":0.5}\n";

struct World {
    children: Vec<Child>,
}

impl World {
    /// SIGKILL every process: no drain, no shutdown, no final fsync.
    fn crash(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
        self.children.clear();
    }

    fn wait_clean(&mut self) {
        for child in &mut self.children {
            let status = child.wait().expect("wait for serve");
            assert!(status.success(), "serve exited with {status:?}");
        }
        self.children.clear();
    }
}

impl Drop for World {
    fn drop(&mut self) {
        self.crash();
    }
}

fn spawn_world(tcp: bool, dir: &Path) -> World {
    let addr = dir.join("addr");
    let _ = std::fs::remove_file(&addr);
    let bin = env!("CARGO_BIN_EXE_ccheck-serve");
    let common = |cmd: &mut Command| {
        cmd.arg("--addr-file")
            .arg(&addr)
            .arg("--ledger")
            .arg(dir.join("receipts.ledger"))
            .arg("--history")
            .arg(dir.join("telemetry.hist"))
            .arg("--slo")
            .arg(dir.join("objectives.slo"))
            .args(["--heartbeat-ms", "50"]);
    };
    if !tcp {
        let mut cmd = Command::new(bin);
        cmd.args(["--transport", "local", "--pes", "2", "--max-inflight", "2"]);
        common(&mut cmd);
        let child = cmd.spawn().expect("spawn ccheck-serve (local)");
        return World {
            children: vec![child],
        };
    }
    let listeners: Vec<_> = (0..2)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    let peers = listeners
        .iter()
        .map(|l| format!("127.0.0.1:{}", l.local_addr().unwrap().port()))
        .collect::<Vec<_>>()
        .join(",");
    drop(listeners);
    let children = (0..2)
        .map(|rank| {
            let mut cmd = Command::new(bin);
            cmd.args(["--transport", "tcp"]);
            common(&mut cmd);
            cmd.env("CCHECK_RANK", rank.to_string())
                .env("CCHECK_WORLD", "2")
                .env("CCHECK_PEERS", &peers)
                .spawn()
                .expect("spawn ccheck-serve rank (tcp)")
        })
        .collect();
    World { children }
}

fn clean_reduce(job_id: u64) -> JobSpec {
    JobSpec {
        op: JobOp::Reduce,
        n: 20_000,
        keys: 500,
        seed: job_id * 7,
        tenant: Some("acme".into()),
        job_id: Some(job_id),
        ..JobSpec::default()
    }
}

/// A persistently faulty sort: the checker catches the corruption and
/// the job completes `fellback`, counting against the `verify` budget.
fn faulty_sort(job_id: u64) -> JobSpec {
    JobSpec {
        op: JobOp::Sort,
        n: 20_000,
        seed: 40 + job_id,
        tenant: Some("esc".into()),
        check: CheckMode::Explicit,
        job_id: Some(job_id),
        fault: Some(FaultSpec {
            kind: "dupneighbor".into(),
            seed: 1,
        }),
        ..JobSpec::default()
    }
}

/// Run `ccheck-report --json` on the scenario's files; returns the
/// single-line JSON report.
fn run_report(dir: &Path, diff: Option<&Path>) -> (String, Option<i32>) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ccheck-report"));
    cmd.arg("--history")
        .arg(dir.join("telemetry.hist"))
        .arg("--ledger")
        .arg(dir.join("receipts.ledger"))
        .arg("--json");
    if let Some(base) = diff {
        // Jobs here finish in single-digit milliseconds, so percentage
        // thresholds on p95 are pure jitter at this scale — crank them
        // up and let the SLO-breach condition carry the regression
        // check (the doctored baseline below exercises exit 3).
        cmd.arg("--diff").arg(base).args([
            "--max-p95-regress",
            "10000",
            "--max-rejected-delta",
            "1000",
        ]);
    }
    let out = cmd.output().expect("run ccheck-report");
    (
        String::from_utf8(out.stdout).expect("report output is utf8"),
        out.status.code(),
    )
}

/// Poll `f` until it returns `Some`, or panic at the deadline.
fn wait_for<T>(what: &str, mut f: impl FnMut() -> Option<T>) -> T {
    let deadline = Instant::now() + POLL_DEADLINE;
    loop {
        if let Some(v) = f() {
            return v;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Count durable history records by kind, straight off the file.
fn history_counts(path: &Path) -> (u64, u64) {
    let (mut samples, mut alerts) = (0, 0);
    for record in HistoryReader::open(path).expect("reopen history") {
        match record.expect("read history record").payload {
            HistoryPayload::Sample(_) => samples += 1,
            HistoryPayload::Alert(_) => alerts += 1,
            HistoryPayload::Metrics(_) => {}
        }
    }
    (samples, alerts)
}

/// Mirror the daemon's startup refold: fold the durable sample stream
/// through a fresh engine and restore the ring from alert records.
fn refold_engine(history: &Path) -> SloEngine {
    let mut engine = SloEngine::new(parse_specs(SLO_SPECS).expect("specs parse"));
    for record in HistoryReader::open(history).expect("open history for refold") {
        match record.expect("refold record").payload {
            HistoryPayload::Sample(bytes) => {
                let parsed = json::parse(std::str::from_utf8(&bytes).unwrap()).unwrap();
                let sample = WatchSample::from_json(&parsed).expect("sample decodes");
                engine.observe(&sample, false);
            }
            HistoryPayload::Alert(bytes) => {
                let parsed = json::parse(std::str::from_utf8(&bytes).unwrap()).unwrap();
                engine.restore_event(AlertEvent::from_json(&parsed).expect("alert decodes"));
            }
            HistoryPayload::Metrics(_) => {}
        }
    }
    engine
}

fn telemetry_crash_scenario(tcp: bool, tag: &str) {
    let dir = std::env::temp_dir().join(format!("ccheck-telem-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scenario dir");
    std::fs::write(dir.join("objectives.slo"), SLO_SPECS).expect("write slo file");
    let history_path = dir.join("telemetry.hist");

    // ---- Phase 1: blow the verify budget, then crash the world. ----
    let mut world = spawn_world(tcp, &dir);
    let mut client = ServiceClient::connect_via_addr_file(&dir.join("addr"), CONNECT_TIMEOUT)
        .expect("connect phase 1");
    for id in 1..=3u64 {
        client.submit(&clean_reduce(id)).expect("submit clean");
        client.wait(id).expect("wait clean");
    }
    // The error budget differences cumulative counters against the
    // oldest point in its window, so a sample with `failed == 0` must
    // land before the faults do — otherwise the anchor already carries
    // the failures and the delta never trips. Real deployments have
    // hours of pre-failure samples; this test must wait for one.
    wait_for("a pre-failure watch sample", || {
        let (_, samples) = client.watch(0).expect("watch");
        (!samples.is_empty()).then_some(())
    });
    for id in [11u64, 12] {
        client.submit(&faulty_sort(id)).expect("submit faulty");
        let receipt = client.wait(id).expect("wait faulty");
        assert_eq!(receipt.verdict.name(), "fellback");
    }
    // 2 failures out of 5 ≫ the 5% budget: the `verify` objective must
    // start firing once a post-completion sample lands.
    let statuses_before = wait_for("verify objective to fire", || {
        let (active, statuses, recent) = client.alerts().expect("alerts cmd");
        let verify = statuses.iter().find(|s| s.name == "verify")?;
        (active >= 1 && verify.firing && recent.iter().any(|e| e.slo == "verify" && e.firing))
            .then_some(statuses)
    });
    // …and both the firing sample and its alert record must be durable
    // before the crash is interesting.
    let (pre_samples, pre_alerts) = wait_for("durable sample + alert records", || {
        let resp = client.history(0, 1, None).expect("history cmd");
        resp.get("total").and_then(Json::as_u64)?;
        let counts = history_counts(&history_path);
        (counts.0 >= 3 && counts.1 >= 1).then_some(counts)
    });
    world.crash();

    // ---- Offline: the report is a pure function of the files. ----
    let (report_a, code_a) = run_report(&dir, None);
    let (report_b, code_b) = run_report(&dir, None);
    assert_eq!(code_a, Some(0));
    assert_eq!(code_b, Some(0));
    assert_eq!(
        report_a, report_b,
        "report must be byte-identical across runs on the same files"
    );
    let report = json::parse(report_a.trim()).expect("report parses");
    let ledgered = Ledger::replay(dir.join("receipts.ledger")).expect("offline ledger replay");
    let reported_jobs: u64 = match report.get("tenants") {
        Some(Json::Obj(tenants)) => tenants
            .values()
            .map(|t| t.get("jobs").and_then(Json::as_u64).unwrap_or(0))
            .sum(),
        _ => 0,
    };
    assert_eq!(
        reported_jobs,
        ledgered.len() as u64,
        "report accounts for every ledgered receipt"
    );
    let verify_breaches = report
        .get("slos")
        .and_then(|s| s.get("verify"))
        .and_then(|v| v.get("breaches"))
        .and_then(Json::as_u64)
        .expect("verify SLO in report");
    assert!(verify_breaches >= 1);

    // The durable stream refolds to the same place the live engine was:
    // `verify` firing, breach-for-breach.
    let refolded = refold_engine(&history_path);
    let live_verify = statuses_before.iter().find(|s| s.name == "verify").unwrap();
    let refold_verify = refolded
        .statuses()
        .into_iter()
        .find(|s| s.name == "verify")
        .unwrap();
    assert!(refold_verify.firing, "refold lands on a firing objective");
    assert!(refold_verify.breaches >= live_verify.breaches);
    assert!(
        refolded.recent().any(|e| e.slo == "verify" && e.firing),
        "alert ring restores from durable alert records"
    );

    // ---- Phase 2: restart on the same files. ----
    let mut world = spawn_world(tcp, &dir);
    let mut client = ServiceClient::connect_via_addr_file(&dir.join("addr"), CONNECT_TIMEOUT)
        .expect("connect phase 2");
    let (active, statuses, recent) = client.alerts().expect("alerts after restart");
    assert!(active >= 1, "verify objective still firing after restart");
    let verify = statuses
        .iter()
        .find(|s| s.name == "verify")
        .expect("verify objective survives restart");
    assert!(verify.firing);
    assert!(verify.breaches >= refold_verify.breaches);
    assert!(
        recent.iter().any(|e| e.slo == "verify" && e.firing),
        "pre-crash firing event survives in the recent-alert ring"
    );
    // History reopened past the torn tail (every durable pre-crash
    // record is still there) and keeps growing.
    wait_for("history to grow past pre-crash records", || {
        let (samples, alerts) = history_counts(&history_path);
        assert!(alerts >= pre_alerts, "durable alert records survived");
        (samples > pre_samples).then_some(())
    });
    // Fresh live samples have now folded into the refolded window; the
    // objective must STILL be firing — the restarted world's cumulative
    // counters continue from the ledger replay, so the failures inside
    // the window don't evaporate (burn-rate as if never interrupted).
    let (active, statuses, _) = client.alerts().expect("alerts after live ticks");
    assert!(active >= 1, "verify must stay firing across live ticks");
    assert!(statuses.iter().any(|s| s.name == "verify" && s.firing));
    client.submit(&clean_reduce(21)).expect("submit post-crash");
    client.wait(21).expect("wait post-crash");
    client.shutdown().expect("shutdown");
    drop(client);
    world.wait_clean();

    // ---- Analytics across the whole double life. ----
    let (final_report, code) = run_report(&dir, None);
    assert_eq!(code, Some(0));
    let final_json = json::parse(final_report.trim()).expect("final report parses");
    let base_path = dir.join("base.json");
    std::fs::write(&base_path, &report_a).expect("write base report");
    // No phantom regressions from crash + recovery: same workload, same
    // SLO history ⇒ --diff against the pre-crash report passes.
    let (_, diff_code) = run_report(&dir, Some(&base_path));
    assert_eq!(diff_code, Some(0), "diff vs pre-crash report must pass");
    // A baseline that never saw the breach fails the diff with exit 3.
    let mut doctored = match final_json {
        Json::Obj(map) => map,
        _ => panic!("report is an object"),
    };
    doctored.insert("slos".into(), Json::Obj(Default::default()));
    let doctored_path = dir.join("doctored.json");
    std::fs::write(&doctored_path, Json::Obj(doctored).render()).expect("write doctored base");
    let (_, doctored_code) = run_report(&dir, Some(&doctored_path));
    assert_eq!(
        doctored_code,
        Some(3),
        "new SLO breaches vs baseline must exit 3"
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn telemetry_crash_recovery_local_transport() {
    telemetry_crash_scenario(false, "local");
}

#[test]
fn telemetry_crash_recovery_tcp_transport() {
    telemetry_crash_scenario(true, "tcp");
}

//! Health-plane end-to-end tests: heartbeat liveness over real
//! transports, the `watch` sample stream, per-job trace timelines, and
//! the PROTOCOL.md §2.6 worked example byte-for-byte.
//!
//! The SIGSTOP/SIGCONT and kill tests run a true multi-process TCP
//! world (this test binary acts as the launcher's rendezvous server)
//! because pausing one PE of an in-process world would pause rank 0's
//! watchdog along with it.

use std::net::TcpListener;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use ccheck_net::Backend;
use ccheck_service::json::Json;
use ccheck_service::{HealthCfg, JobOp, JobSpec, ServiceClient, ServiceConfig};

fn start_world(
    backend: Backend,
    p: usize,
    cfg: ServiceConfig,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<Vec<ccheck_service::ServiceSummary>>,
) {
    let (tx, rx) = mpsc::channel();
    let cfg = ServiceConfig {
        announce: Some(tx),
        ..cfg
    };
    let world = std::thread::spawn(move || ccheck_service::run_service_world(backend, p, &cfg));
    let addr = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("service never announced its address");
    (addr, world)
}

fn connect(addr: std::net::SocketAddr) -> ServiceClient {
    ServiceClient::connect_with_retry(&addr.to_string(), Duration::from_secs(10))
        .expect("client connects")
}

fn quick_spec() -> JobSpec {
    JobSpec {
        op: JobOp::Reduce,
        n: 4_000,
        keys: 101,
        seed: 7,
        ..JobSpec::default()
    }
}

/// All PEs report Healthy on an idle in-process world, on both
/// transports, and the counts line up with the per-PE rows.
#[test]
fn health_reports_all_pes_healthy_both_transports() {
    for backend in [Backend::Local, Backend::TcpLoopback] {
        let p = 4;
        let (addr, world) = start_world(backend, p, ServiceConfig::default());
        let mut client = connect(addr);
        // Give the heartbeat senders one interval to be heard.
        std::thread::sleep(Duration::from_millis(250));
        let health = client.health().expect("health answers");
        assert_eq!(health.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            health.get("world").and_then(Json::as_u64),
            Some(p as u64),
            "{backend:?}"
        );
        assert_eq!(
            health.get("healthy").and_then(Json::as_u64),
            Some(p as u64),
            "{backend:?}: {}",
            health.render()
        );
        let Some(Json::Arr(pes)) = health.get("pes") else {
            panic!("{backend:?}: health response has no pes array");
        };
        assert_eq!(pes.len(), p);
        for pe in pes {
            assert_eq!(
                pe.get("state").and_then(Json::as_str),
                Some("healthy"),
                "{backend:?}: {}",
                pe.render()
            );
        }
        client.shutdown().expect("shutdown accepted");
        world.join().expect("world exits cleanly");
    }
}

/// `watch` delivers monotone samples and long-polls until a new one
/// exists past `since`.
#[test]
fn watch_stream_is_monotone_and_long_polls() {
    let cfg = ServiceConfig {
        health: HealthCfg {
            heartbeat_interval_ms: 50,
            ..HealthCfg::default()
        },
        ..ServiceConfig::default()
    };
    let (addr, world) = start_world(Backend::Local, 2, cfg);
    let mut client = connect(addr);
    std::thread::sleep(Duration::from_millis(200));

    let (latest, samples) = client.watch(0).expect("watch answers");
    assert!(!samples.is_empty(), "no samples after 200 ms");
    assert_eq!(samples.last().unwrap().seq, latest);
    for pair in samples.windows(2) {
        assert!(pair[1].seq > pair[0].seq, "sample seqs not increasing");
        assert!(
            pair[1].at_ms >= pair[0].at_ms,
            "sample clock went backwards"
        );
    }
    assert_eq!(samples.last().unwrap().healthy, 2);

    // Long-poll: asking for samples past the latest seq blocks until the
    // next tick produces one.
    let (next_latest, fresh) = client.watch(latest).expect("watch long-poll answers");
    assert!(next_latest > latest, "long-poll returned no new sample");
    assert!(fresh.iter().all(|s| s.seq > latest));

    // Completed jobs show up in the stream's counters.
    client.run(&quick_spec()).expect("job runs");
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (l, samples) = client.watch(next_latest).expect("watch answers");
        if samples.last().map(|s| s.jobs_done) == Some(1) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "sample stream never recorded the completed job (latest {l})"
        );
    }

    client.shutdown().expect("shutdown accepted");
    world.join().expect("world exits cleanly");
}

/// `timeline` merges one job's spans from every PE and covers all five
/// phases, queue → admit → generate → execute → check → receipt.
#[test]
fn timeline_covers_all_phases() {
    ccheck_obs::set_enabled(true);
    let (addr, world) = start_world(Backend::Local, 2, ServiceConfig::default());
    let mut client = connect(addr);
    let receipt = client.run(&quick_spec()).expect("job runs");

    let timeline = client.timeline(receipt.job_id).expect("timeline answers");
    assert_eq!(timeline.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(timeline.get("enabled").and_then(Json::as_bool), Some(true));
    let Some(Json::Arr(events)) = timeline.get("events") else {
        panic!("timeline response has no events array");
    };
    assert!(!events.is_empty(), "timeline is empty with obs enabled");
    for phase in ["queue", "admit", "generate", "execute", "check", "receipt"] {
        assert!(
            events
                .iter()
                .any(|e| e.get("phase").and_then(Json::as_str) == Some(phase)),
            "timeline is missing the {phase} phase: {}",
            timeline.render()
        );
    }
    // Events arrive start-time sorted.
    let starts: Vec<u64> = events
        .iter()
        .map(|e| e.get("start_us").and_then(Json::as_u64).unwrap())
        .collect();
    assert!(starts.windows(2).all(|w| w[1] >= w[0]), "events not sorted");

    // A job that never ran has no lanes.
    let missing = client.timeline(9_999).expect("timeline answers");
    let Some(Json::Arr(none)) = missing.get("events") else {
        panic!("timeline response has no events array");
    };
    assert!(none.is_empty(), "unknown job grew a timeline");

    client.shutdown().expect("shutdown accepted");
    world.join().expect("world exits cleanly");
}

/// The PROTOCOL.md §2.6 worked example, byte-for-byte (same contract as
/// the §6.2 receipt test): a rendered per-PE health row and a rendered
/// watch sample.
#[test]
fn protocol_worked_example_renders_byte_exact() {
    use ccheck_service::health::{HealthTracker, Heartbeat, WatchSample};

    let mut tracker = HealthTracker::new(HealthCfg::default(), 2, 0);
    tracker.beat(
        &Heartbeat {
            rank: 1,
            uptime_ms: 5_000,
            inflight: 1,
            last_admit_seq: 12,
            bye: false,
        },
        5_000,
    );
    let row = &tracker.report(5_150)[1];
    assert_eq!(
        row.to_json().render(),
        r#"{"age_ms":150,"inflight":1,"last_admit_seq":12,"rank":1,"state":"healthy","uptime_ms":5000}"#
    );

    let sample = WatchSample {
        seq: 42,
        at_ms: 5_150,
        wall_ms: 1_754_000_005_150,
        alerts: 1,
        jobs_done: 17,
        jobs_failed: 2,
        jobs_refused: 1,
        queue_depth: 3,
        inflight: 2,
        healthy: 2,
        suspect: 0,
        dead: 0,
        p50_ms: 12,
        p95_ms: 48,
        tenants: vec![("acme".to_string(), 11), ("initech".to_string(), 6)],
    };
    let rendered = sample.to_json().render();
    assert_eq!(
        rendered,
        r#"{"alerts":1,"at_ms":5150,"dead":0,"done":17,"failed":2,"healthy":2,"inflight":2,"p50_ms":12,"p95_ms":48,"queue":3,"refused":1,"seq":42,"suspect":0,"tenants":{"acme":11,"initech":6},"wall_ms":1754000005150}"#
    );
    let parsed =
        WatchSample::from_json(&ccheck_service::json::parse(&rendered).expect("round-trips"))
            .expect("decodes");
    assert_eq!(parsed, sample);
}

// ---------------------------------------------------------------------
// True multi-process worlds over TCP: this test acts as the launcher.
// ---------------------------------------------------------------------

/// A spawned TCP service world whose children are reaped (and killed if
/// the test panics first) on drop.
struct TcpWorld {
    children: Vec<Child>,
    addr_file: std::path::PathBuf,
    _dir: tempdir::TempDir,
    rendezvous: Option<std::thread::JoinHandle<()>>,
}

impl Drop for TcpWorld {
    fn drop(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
        if let Some(h) = self.rendezvous.take() {
            let _ = h.join();
        }
    }
}

/// Minimal private tempdir (std-only; removed on drop).
mod tempdir {
    pub struct TempDir(std::path::PathBuf);
    impl TempDir {
        pub fn new(tag: &str) -> TempDir {
            let dir =
                std::env::temp_dir().join(format!("ccheck-health-{tag}-{}", std::process::id()));
            std::fs::create_dir_all(&dir).expect("create temp dir");
            TempDir(dir)
        }
        pub fn path(&self) -> &std::path::Path {
            &self.0
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
}

/// Spawn a `p`-process `ccheck-serve --transport tcp` world with the
/// given health knobs, serving rendezvous from this process the way
/// `ccheck-launch` does.
fn spawn_tcp_world(tag: &str, p: usize, health_flags: &[&str]) -> TcpWorld {
    let dir = tempdir::TempDir::new(tag);
    let addr_file = dir.path().join("client.addr");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind rendezvous");
    let rendezvous_addr = listener.local_addr().expect("rendezvous addr").to_string();

    let bin = env!("CARGO_BIN_EXE_ccheck-serve");
    let children: Vec<Child> = (0..p)
        .map(|rank| {
            Command::new(bin)
                .args(["--transport", "tcp", "--addr-file"])
                .arg(&addr_file)
                .args(health_flags)
                .env(ccheck_net::bootstrap::ENV_RANK, rank.to_string())
                .env(ccheck_net::bootstrap::ENV_WORLD, p.to_string())
                .env(ccheck_net::bootstrap::ENV_RENDEZVOUS, &rendezvous_addr)
                .env("CCHECK_OBS", "1")
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .spawn()
                .expect("spawn ccheck-serve")
        })
        .collect();

    let world = p;
    let rendezvous = std::thread::spawn(move || {
        ccheck_net::bootstrap::serve_rendezvous(
            &listener,
            world,
            Instant::now() + Duration::from_secs(60),
            || None,
        )
        .expect("rendezvous completes");
    });

    TcpWorld {
        children,
        addr_file,
        _dir: dir,
        rendezvous: Some(rendezvous),
    }
}

fn connect_tcp_world(world: &TcpWorld) -> ServiceClient {
    ServiceClient::connect_via_addr_file(&world.addr_file, Duration::from_secs(30))
        .expect("client connects to rank 0")
}

/// Poll `health` until `pred` holds, panicking past `deadline`.
fn wait_health(
    client: &mut ServiceClient,
    deadline: Duration,
    what: &str,
    mut pred: impl FnMut(&Json) -> bool,
) -> Json {
    let t0 = Instant::now();
    loop {
        let health = client.health().expect("health answers");
        if pred(&health) {
            return health;
        }
        assert!(
            t0.elapsed() < deadline,
            "timed out waiting for {what}; last health: {}",
            health.render()
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn pe_state(health: &Json, rank: u64) -> Option<String> {
    let Some(Json::Arr(pes)) = health.get("pes") else {
        return None;
    };
    pes.iter()
        .find(|pe| pe.get("rank").and_then(Json::as_u64) == Some(rank))
        .and_then(|pe| pe.get("state").and_then(Json::as_str).map(str::to_string))
}

fn signal(child: &Child, sig: &str) {
    let status = Command::new("kill")
        .args([sig, &child.id().to_string()])
        .status()
        .expect("run kill");
    assert!(status.success(), "kill {sig} failed");
}

/// Acceptance: a SIGSTOPped PE transitions Healthy → Suspect within the
/// configured interval and returns to Healthy on SIGCONT; a job's
/// timeline over TCP covers all five phases across multiple processes.
#[test]
#[cfg(unix)]
fn tcp_world_sigstop_suspect_sigcont_recovers() {
    let p = 4;
    // Tight heartbeat so the test is quick; dead threshold high so the
    // stopped PE parks at Suspect instead of racing on to Dead.
    let mut world = spawn_tcp_world(
        "stop",
        p,
        &[
            "--heartbeat-ms",
            "50",
            "--suspect-ms",
            "300",
            "--dead-ms",
            "60000",
        ],
    );
    let mut client = connect_tcp_world(&world);
    wait_health(&mut client, Duration::from_secs(10), "4 healthy PEs", |h| {
        h.get("healthy").and_then(Json::as_u64) == Some(p as u64)
    });

    // The timeline acceptance check while the world is all-healthy: one
    // job, five phases, spans from more than one OS process.
    let receipt = client.run(&quick_spec()).expect("job runs");
    let timeline = client.timeline(receipt.job_id).expect("timeline answers");
    let Some(Json::Arr(events)) = timeline.get("events") else {
        panic!("timeline response has no events array");
    };
    for phase in ["queue", "admit", "generate", "execute", "check", "receipt"] {
        assert!(
            events
                .iter()
                .any(|e| e.get("phase").and_then(Json::as_str) == Some(phase)),
            "TCP timeline is missing the {phase} phase: {}",
            timeline.render()
        );
    }
    let sources: std::collections::BTreeSet<u64> = events
        .iter()
        .filter_map(|e| e.get("source").and_then(Json::as_u64))
        .collect();
    assert!(
        sources.len() >= 2,
        "timeline only covers {} process(es): {}",
        sources.len(),
        timeline.render()
    );

    // Stop a non-zero rank: its heartbeats cease, the watchdog must
    // notice within suspect-ms plus a couple of heartbeat periods.
    let stopped_rank = 2u64;
    signal(&world.children[stopped_rank as usize], "-STOP");
    let t0 = Instant::now();
    wait_health(
        &mut client,
        Duration::from_secs(5),
        "stopped PE to go suspect",
        |h| pe_state(h, stopped_rank).as_deref() == Some("suspect"),
    );
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "suspect detection took {:?}, bound is suspect-ms (300) + slack",
        t0.elapsed()
    );

    // Resume: heartbeats flow again and the PE recovers to Healthy.
    signal(&world.children[stopped_rank as usize], "-CONT");
    wait_health(
        &mut client,
        Duration::from_secs(5),
        "resumed PE to recover",
        |h| pe_state(h, stopped_rank).as_deref() == Some("healthy"),
    );

    client.shutdown().expect("shutdown accepted");
    for child in &mut world.children {
        let status = child.wait().expect("child reaped");
        assert!(status.success(), "worker exited {status}");
    }
}

/// A killed PE is reported Dead — promptly, via the collector's
/// connection-loss signal rather than waiting out dead-ms.
#[test]
#[cfg(unix)]
fn tcp_world_killed_pe_reported_dead() {
    let p = 4;
    let world = spawn_tcp_world(
        "kill",
        p,
        &[
            "--heartbeat-ms",
            "50",
            "--suspect-ms",
            "300",
            "--dead-ms",
            "60000",
        ],
    );
    let mut client = connect_tcp_world(&world);
    wait_health(&mut client, Duration::from_secs(10), "4 healthy PEs", |h| {
        h.get("healthy").and_then(Json::as_u64) == Some(p as u64)
    });

    signal(&world.children[3], "-KILL");
    let health = wait_health(
        &mut client,
        Duration::from_secs(5),
        "killed PE to be reported dead",
        |h| h.get("dead").and_then(Json::as_u64) == Some(1),
    );
    assert_eq!(pe_state(&health, 3).as_deref(), Some("dead"));
    assert_eq!(health.get("healthy").and_then(Json::as_u64), Some(3));
    // No clean shutdown possible with a dead PE (the control broadcast
    // would hang on it) — TcpWorld's Drop kills the survivors.
}

//! Crash-recovery end-to-end: a real `ccheck-serve` world is
//! SIGKILLed mid-life and restarted on the same ledger file, on both
//! transports. Asserts the `docs/PROTOCOL.md` §6.4 recovery contract:
//!
//! * every ledgered receipt is fetchable again, byte-identical,
//! * tenant chains verify across the restart with an unchanged head,
//! * the adaptive tuner resumes rung-exact (a replayed escalation
//!   history decides the next adaptive job's checker config),
//! * §7 idempotency: resubmitting a recorded `(tenant, job_id)` is
//!   served from the ledger with zero re-execution — proven by the
//!   admission numbering, which must stay gap- and duplicate-free
//!   across the crash — while id reuse with a different spec is
//!   refused.

use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::time::Duration;

use ccheck_service::ledger::{verify_chain, Ledger, GENESIS_HASH};
use ccheck_service::{CheckMode, FaultSpec, JobOp, JobSpec, Receipt, ServiceClient, ServiceError};

const CONNECT_TIMEOUT: Duration = Duration::from_secs(120);

/// The serve world under test, as real OS processes (one for the local
/// transport, one per rank for TCP) — required so SIGKILL is an actual
/// crash, not a polite teardown.
struct World {
    children: Vec<Child>,
}

impl World {
    /// SIGKILL every process: no drain, no shutdown, no final fsync.
    fn crash(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
        self.children.clear();
    }

    fn wait_clean(&mut self) {
        for child in &mut self.children {
            let status = child.wait().expect("wait for serve");
            assert!(status.success(), "serve exited with {status:?}");
        }
        self.children.clear();
    }
}

impl Drop for World {
    fn drop(&mut self) {
        self.crash();
    }
}

fn spawn_world(tcp: bool, addr: &Path, ledger: &Path) -> World {
    let _ = std::fs::remove_file(addr);
    let bin = env!("CARGO_BIN_EXE_ccheck-serve");
    if !tcp {
        let child = Command::new(bin)
            .args(["--transport", "local", "--pes", "2", "--max-inflight", "2"])
            .arg("--addr-file")
            .arg(addr)
            .arg("--ledger")
            .arg(ledger)
            .spawn()
            .expect("spawn ccheck-serve (local)");
        return World {
            children: vec![child],
        };
    }
    // Launcher-free TCP world: allocate distinct loopback ports, then
    // hand every rank the static peer table (each process binds the
    // address at its own rank).
    let listeners: Vec<_> = (0..2)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    let peers = listeners
        .iter()
        .map(|l| format!("127.0.0.1:{}", l.local_addr().unwrap().port()))
        .collect::<Vec<_>>()
        .join(",");
    drop(listeners);
    let children = (0..2)
        .map(|rank| {
            Command::new(bin)
                .args(["--transport", "tcp"])
                .arg("--addr-file")
                .arg(addr)
                .arg("--ledger")
                .arg(ledger)
                .env("CCHECK_RANK", rank.to_string())
                .env("CCHECK_WORLD", "2")
                .env("CCHECK_PEERS", &peers)
                .spawn()
                .expect("spawn ccheck-serve rank (tcp)")
        })
        .collect();
    World { children }
}

/// A deterministic reduce job under tenant `acme` with a client-chosen
/// id — the §7 idempotency key is `("acme", job_id)` plus this spec's
/// fingerprint.
fn acme_reduce(job_id: u64, seed: u64) -> JobSpec {
    JobSpec {
        op: JobOp::Reduce,
        n: 20_000,
        keys: 500,
        seed,
        tenant: Some("acme".into()),
        job_id: Some(job_id),
        ..JobSpec::default()
    }
}

/// An adaptive sort under tenant `esc` with a persistent fault: each
/// one ends `fellback` and escalates the tenant one tuner rung.
fn esc_adaptive_sort(job_id: u64) -> JobSpec {
    JobSpec {
        op: JobOp::Sort,
        n: 20_000,
        seed: 40 + job_id,
        tenant: Some("esc".into()),
        check: CheckMode::Adaptive,
        job_id: Some(job_id),
        fault: Some(FaultSpec {
            kind: "dupneighbor".into(),
            seed: 1,
        }),
        ..JobSpec::default()
    }
}

fn scenario_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ccheck-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scenario dir");
    dir
}

fn crash_recovery_scenario(tcp: bool, tag: &str) {
    let dir = scenario_dir(tag);
    let addr = dir.join("addr");
    let ledger_path = dir.join("receipts.ledger");

    // ---- Phase 1: run a mixed workload, then crash the world. ----
    let mut world = spawn_world(tcp, &addr, &ledger_path);
    let mut client =
        ServiceClient::connect_via_addr_file(&addr, CONNECT_TIMEOUT).expect("connect phase 1");

    let mut first_receipts: Vec<Receipt> = Vec::new();
    for id in 1..=3u64 {
        let ack = client
            .submit_acked(&acme_reduce(id, id * 7))
            .expect("submit");
        assert_eq!(ack.id, id, "client-chosen id is adopted verbatim");
        assert!(!ack.deduped, "fresh work must not dedupe");
        first_receipts.push(client.wait(id).expect("wait"));
    }
    // Two persistently faulty adaptive jobs walk tenant `esc` up two
    // tuner rungs (START_LEVEL 1 → 3) before the crash.
    for id in [11u64, 12] {
        client
            .submit(&esc_adaptive_sort(id))
            .expect("submit faulty");
        let receipt = client.wait(id).expect("wait faulty");
        assert_eq!(
            receipt.verdict.name(),
            "fellback",
            "persistent fault falls back"
        );
    }
    // Receipts come back sealed, and verify client-side against the
    // live chain (content hash + link + head recomputation).
    let head_before = client
        .verify_receipt(&first_receipts[0])
        .expect("verify sealed receipt");
    assert_ne!(head_before, GENESIS_HASH);
    let max_seq_before = first_receipts
        .iter()
        .map(|r| r.admit_seq)
        .max()
        .unwrap()
        .max(
            [11u64, 12]
                .iter()
                .map(|&id| match client.poll(id).unwrap().1 {
                    Some(r) => r.admit_seq,
                    None => 0,
                })
                .max()
                .unwrap(),
        );

    world.crash();

    // ---- Phase 2: restart on the same ledger. ----
    let mut world = spawn_world(tcp, &addr, &ledger_path);
    let mut client =
        ServiceClient::connect_via_addr_file(&addr, CONNECT_TIMEOUT).expect("connect phase 2");

    // §6.4: every ledgered receipt is fetchable again, byte-identical.
    for (i, id) in (1..=3u64).enumerate() {
        let (state, receipt) = client.poll(id).expect("poll replayed");
        assert_eq!(state, "done");
        assert_eq!(receipt.expect("replayed receipt"), first_receipts[i]);
    }
    // The tenant chain survived the crash with an unchanged head.
    let chain = client.chain("acme").expect("chain");
    chain.verify().expect("replayed chain verifies");
    assert_eq!(chain.head, head_before);
    assert_eq!(chain.links.len(), 3);

    // §7: identical resubmission is served from the ledger — same
    // sealed receipt, deduped marker, no execution.
    let ack = client.submit_acked(&acme_reduce(2, 14)).expect("resubmit");
    assert!(ack.deduped, "recorded (tenant, job_id) must dedupe");
    assert_eq!(ack.status, "done");
    assert_eq!(ack.receipt.expect("stored receipt"), first_receipts[1]);
    // …while the same id with different work is a conflict.
    match client.submit_acked(&acme_reduce(2, 999)) {
        Err(ServiceError::Refused(message)) => {
            assert!(message.contains("different spec"), "got {message:?}");
        }
        other => panic!("conflicting spec must be refused, got {other:?}"),
    }

    // Rung-exact tuner recovery: two replayed fellbacks put `esc` on
    // ladder rung 3 = (8, 128, 16), so a clean adaptive job must run
    // with exactly that config.
    let mut clean = esc_adaptive_sort(13);
    clean.fault = None;
    client.submit(&clean).expect("submit clean adaptive");
    let receipt = client.wait(13).expect("wait clean adaptive");
    assert!(receipt.check.adaptive);
    assert_eq!(
        (
            receipt.check.iterations,
            receipt.check.buckets,
            receipt.check.log2_rhat
        ),
        (8, 128, 16),
        "tuner must resume on the replayed rung"
    );
    // Zero re-execution: the restarted world's first admission continues
    // the dead world's numbering — the dedupe above consumed none.
    assert_eq!(receipt.admit_seq, max_seq_before + 1);

    // Service-assigned ids allocate above every ledgered (and adopted)
    // id — no reuse across the crash.
    let auto = client
        .submit_acked(&JobSpec {
            job_id: None,
            ..acme_reduce(0, 5)
        })
        .expect("auto-id submit");
    assert_eq!(auto.id, 14);
    client.wait(auto.id).expect("wait auto-id");

    client.shutdown().expect("shutdown");
    drop(client);
    world.wait_clean();

    // ---- Offline audit of the raw log. ----
    let receipts = Ledger::replay(&ledger_path).expect("offline replay");
    assert_eq!(receipts.len(), 7, "3 + 2 crashed-world jobs, 2 new ones");
    // Admission numbering is gap- and duplicate-free across the crash:
    // exactly one admission per executed job, none for the dedupe.
    let mut seqs: Vec<u64> = receipts.iter().map(|r| r.admit_seq).collect();
    seqs.sort_unstable();
    assert_eq!(seqs, (1..=7).collect::<Vec<u64>>());
    for tenant in ["acme", "esc"] {
        let tenant_chain: Vec<Receipt> = receipts
            .iter()
            .filter(|r| r.tenant.as_deref() == Some(tenant))
            .cloned()
            .collect();
        verify_chain(&tenant_chain).expect("offline chain verification");
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn crash_recovery_local_transport() {
    crash_recovery_scenario(false, "local");
}

#[test]
fn crash_recovery_tcp_transport() {
    crash_recovery_scenario(true, "tcp");
}

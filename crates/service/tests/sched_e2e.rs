//! End-to-end scheduler tests — the PR's acceptance criteria in test
//! form, on both transports where the behavior is transport-visible:
//!
//! * under a saturated queue, `PriorityAging` admits a late
//!   high-priority job before queued low-priority ones;
//! * `DeadlineWfq` enforces per-tenant inflight quotas (and an idle
//!   slot steals over quota only when stealing is on);
//! * an `Adaptive` tenant's receipts show the checker config
//!   escalating after an injected-fault job and relaxing after a clean
//!   streak;
//! * a deadline-missed job is refused with a retry hint, busy
//!   refusals carry `retry_after_ms`, and `wait` honors its timeout.
//!
//! Ordering is asserted through `Receipt::admit_seq` (the world's
//! admission sequence number), not wall clocks.

use std::sync::mpsc;
use std::time::Duration;

use ccheck_net::Backend;
use ccheck_service::sched::{LADDER, START_LEVEL};
use ccheck_service::{
    run_service_world, CheckMode, FaultSpec, JobOp, JobSpec, PolicyCfg, Receipt, ServiceClient,
    ServiceConfig, ServiceError, ServiceSummary, Verdict,
};

fn start_world(
    backend: Backend,
    p: usize,
    cfg: ServiceConfig,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<Vec<ServiceSummary>>,
) {
    let (tx, rx) = mpsc::channel();
    let cfg = ServiceConfig {
        announce: Some(tx),
        ..cfg
    };
    let world = std::thread::spawn(move || run_service_world(backend, p, &cfg));
    let addr = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("service never announced its address");
    (addr, world)
}

fn connect(addr: std::net::SocketAddr) -> ServiceClient {
    ServiceClient::connect_with_retry(&addr.to_string(), Duration::from_secs(10))
        .expect("client connects")
}

/// A job big enough to occupy a slot while a handful of submissions
/// land (hundreds of milliseconds even on the in-process backend).
fn blocker(tenant: Option<&str>) -> JobSpec {
    JobSpec {
        op: JobOp::Sort,
        n: 4_000_000,
        keys: 1 << 20,
        seed: 99,
        tenant: tenant.map(String::from),
        ..JobSpec::default()
    }
}

fn small(seed: u64, tenant: Option<&str>, priority: u32) -> JobSpec {
    JobSpec {
        op: JobOp::Reduce,
        n: 2_000,
        keys: 53,
        seed,
        tenant: tenant.map(String::from),
        priority,
        ..JobSpec::default()
    }
}

/// Submit and wait until the job reports `running` (so later
/// submissions provably land while the slot is held).
fn submit_until_running(client: &mut ServiceClient, spec: &JobSpec) -> u64 {
    let id = client.submit(spec).expect("blocker accepted");
    loop {
        let (state, _) = client.poll(id).expect("poll");
        match state.as_str() {
            "running" => return id,
            "queued" => std::thread::sleep(Duration::from_millis(2)),
            other => panic!("blocker reached unexpected state {other:?}"),
        }
    }
}

#[test]
fn priority_aging_admits_late_high_priority_job_first() {
    for backend in [Backend::Local, Backend::TcpLoopback] {
        let cfg = ServiceConfig {
            max_inflight: 1,
            // Aging slow enough that raw priority decides within the
            // test's lifetime.
            policy: PolicyCfg::PriorityAging { aging_ms: 60_000 },
            ..ServiceConfig::default()
        };
        let (addr, world) = start_world(backend, 3, cfg);
        let mut client = connect(addr);

        submit_until_running(&mut client, &blocker(None));
        // Saturate: three low-priority jobs queue behind the blocker…
        let lows: Vec<u64> = (0..3)
            .map(|i| {
                client
                    .submit(&small(10 + i, None, 0))
                    .expect("low accepted")
            })
            .collect();
        // …then a high-priority job arrives last.
        let high = client.submit(&small(20, None, 9)).expect("high accepted");

        let high_receipt = client.wait(high).expect("high receipt");
        let low_receipts: Vec<Receipt> = lows
            .iter()
            .map(|&id| client.wait(id).expect("low receipt"))
            .collect();
        client.shutdown().expect("shutdown");
        let summaries = world.join().expect("world exits");

        // The blocker was admission #1; the late high-priority job must
        // be #2, ahead of every earlier-queued low-priority job.
        assert_eq!(high_receipt.admit_seq, 2, "{backend:?}");
        for low in &low_receipts {
            assert!(
                low.admit_seq > high_receipt.admit_seq,
                "{backend:?}: low-priority job {} (seq {}) beat the high-priority job",
                low.job_id,
                low.admit_seq
            );
            assert_eq!(low.verdict, Verdict::Verified);
        }
        // Equal-priority jobs kept their submission order (aging ties
        // break toward the earlier job).
        let mut seqs: Vec<u64> = low_receipts.iter().map(|r| r.admit_seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted, "{backend:?}");
        seqs.dedup();
        assert_eq!(seqs.len(), low_receipts.len());
        assert_eq!(summaries[0].policy, "priority");
    }
}

#[test]
fn deadline_wfq_enforces_tenant_quotas() {
    for backend in [Backend::Local, Backend::TcpLoopback] {
        let cfg = ServiceConfig {
            max_inflight: 2,
            policy: PolicyCfg::DeadlineWfq {
                tenant_max_inflight: 1,
                tenant_queue_share_pct: 100,
                steal: false,
                weights: Vec::new(),
            },
            ..ServiceConfig::default()
        };
        let (addr, world) = start_world(backend, 3, cfg);
        let mut client = connect(addr);

        // Tenant a holds its one dedicated slot with the blocker; its
        // queued jobs may NOT take the second slot…
        submit_until_running(&mut client, &blocker(Some("a")));
        let a2 = client.submit(&small(30, Some("a"), 0)).expect("a2");
        let a3 = client.submit(&small(31, Some("a"), 0)).expect("a3");
        // …so tenant b, arriving last, gets it immediately.
        let b1 = client.submit(&small(40, Some("b"), 0)).expect("b1");

        let b1_receipt = client.wait(b1).expect("b1 receipt");
        let a2_receipt = client.wait(a2).expect("a2 receipt");
        let a3_receipt = client.wait(a3).expect("a3 receipt");
        client.shutdown().expect("shutdown");
        let summaries = world.join().expect("world exits");

        assert_eq!(
            b1_receipt.admit_seq, 2,
            "{backend:?}: tenant b must take the idle slot while a is at quota"
        );
        assert!(a2_receipt.admit_seq > b1_receipt.admit_seq, "{backend:?}");
        assert!(a3_receipt.admit_seq > a2_receipt.admit_seq, "{backend:?}");
        assert_eq!(summaries[0].stolen, 0, "{backend:?}: stealing was off");
        // The summary's per-tenant breakdown covered both tenants.
        let tenants: Vec<&str> = summaries[0]
            .tenants
            .iter()
            .map(|(t, _)| t.as_str())
            .collect();
        assert_eq!(tenants, vec!["a", "b"], "{backend:?}");
        assert_eq!(summaries[0].tenants[0].1.jobs, 3, "{backend:?}");
        assert_eq!(summaries[0].tenants[1].1.jobs, 1, "{backend:?}");
    }
}

#[test]
fn idle_slot_steals_over_quota_only_when_enabled() {
    let cfg = ServiceConfig {
        max_inflight: 2,
        policy: PolicyCfg::DeadlineWfq {
            tenant_max_inflight: 1,
            tenant_queue_share_pct: 100,
            steal: true,
            weights: Vec::new(),
        },
        ..ServiceConfig::default()
    };
    let (addr, world) = start_world(Backend::Local, 3, cfg);
    let mut client = connect(addr);

    // Only tenant a has work. Its dedicated slot is busy, no other
    // tenant queues — the idle slot steals a2 instead of waiting.
    let blocker_id = submit_until_running(&mut client, &blocker(Some("a")));
    let a2 = client.submit(&small(50, Some("a"), 0)).expect("a2");
    let a2_receipt = client.wait(a2).expect("a2 receipt");
    client.wait(blocker_id).expect("blocker receipt");
    client.shutdown().expect("shutdown");
    let summaries = world.join().expect("world exits");

    assert_eq!(
        a2_receipt.admit_seq, 2,
        "the stolen job ran while the blocker still held a's slot"
    );
    assert!(summaries[0].stolen >= 1, "the steal was counted");
    // Finished job scopes were retired back into the per-rank totals,
    // and the retired traffic was tallied (in-process worlds share one
    // registry, so the fold lands on whichever rank dropped last —
    // assert over the whole world).
    let retired: u64 = summaries.iter().map(|s| s.retired_scope_bytes).sum();
    assert!(retired > 0, "retired job-scope traffic must be accounted");
}

#[test]
fn adaptive_tenant_escalates_after_fault_and_relaxes_after_clean_streak() {
    for backend in [Backend::Local, Backend::TcpLoopback] {
        let cfg = ServiceConfig {
            max_inflight: 1, // serialize completions: deterministic tuner walk
            ..ServiceConfig::default()
        };
        let (addr, world) = start_world(backend, 3, cfg);
        let mut client = connect(addr);

        let adaptive = |seed: u64, fault: Option<&str>| JobSpec {
            op: JobOp::Reduce,
            n: 3_000,
            keys: 53,
            seed,
            // Chunked streaming: a corrupt job is Rejected outright,
            // which is the strongest escalation signal.
            chunk: 256,
            tenant: Some("pipeline".into()),
            check: CheckMode::Adaptive,
            fault: fault.map(|kind| FaultSpec {
                kind: kind.into(),
                seed: 7,
            }),
            ..JobSpec::default()
        };

        // Clean → corrupt → clean streak of three → clean again.
        let receipts: Vec<Receipt> = [
            adaptive(1, None),
            adaptive(2, Some("bitflip")),
            adaptive(3, None),
            adaptive(4, None),
            adaptive(5, None),
            adaptive(6, None),
        ]
        .iter()
        .map(|spec| client.run(spec).expect("receipt"))
        .collect();
        client.shutdown().expect("shutdown");
        world.join().expect("world exits");

        let start = LADDER[START_LEVEL];
        let escalated = LADDER[START_LEVEL + 1];
        let observed: Vec<(u32, u32, u32)> = receipts
            .iter()
            .map(|r| (r.check.iterations, r.check.buckets, r.check.log2_rhat))
            .collect();
        assert!(
            receipts.iter().all(|r| r.check.adaptive),
            "{backend:?}: receipts must mark tuner-chosen configs"
        );
        assert_eq!(receipts[1].verdict, Verdict::Rejected, "{backend:?}");
        assert_eq!(
            observed,
            vec![
                start,     // clean job at the starting rung
                start,     // the corrupt job itself still ran at the old rung
                escalated, // …its rejection escalated the tenant
                escalated, // clean streak building
                escalated, start, // three clean receipts relaxed one rung
            ],
            "{backend:?}: adaptive ladder walk"
        );
        // The verdicts behind the walk: everything except the injected
        // fault verified.
        assert!(receipts
            .iter()
            .enumerate()
            .all(|(i, r)| (i == 1) == (r.verdict == Verdict::Rejected)));
    }
}

#[test]
fn deadline_missed_job_is_refused_with_a_hint() {
    let cfg = ServiceConfig {
        max_inflight: 1,
        policy: PolicyCfg::priority_aging(),
        ..ServiceConfig::default()
    };
    let (addr, world) = start_world(Backend::Local, 2, cfg);
    let mut client = connect(addr);

    submit_until_running(&mut client, &blocker(None));
    // One millisecond of patience behind a long blocker: hopeless.
    let doomed = client
        .submit(&JobSpec {
            deadline_ms: Some(1),
            ..small(60, Some("hasty"), 0)
        })
        .expect("accepted into the queue");
    let err = client.wait(doomed).expect_err("must be refused");
    match err {
        ServiceError::Refused(reason) => {
            assert!(reason.contains("deadline missed"), "{reason}");
            assert!(reason.contains("retry"), "refusal must hint: {reason}");
        }
        other => panic!("expected Refused, got {other:?}"),
    }
    // Polling the refused job shows the terminal status.
    let (state, receipt) = client.poll(doomed).expect("poll");
    assert_eq!(state, "refused");
    assert!(receipt.is_none());

    client.shutdown().expect("shutdown");
    let summaries = world.join().expect("world exits");
    assert_eq!(summaries[0].refused, 1);
    let hasty = summaries[0]
        .tenants
        .iter()
        .find(|(t, _)| t == "hasty")
        .expect("tenant aggregated");
    assert_eq!(hasty.1.refused, 1);
    assert_eq!(hasty.1.jobs, 0);
}

#[test]
fn busy_refusals_carry_retry_hints_under_scheduling_policies() {
    let cfg = ServiceConfig {
        max_inflight: 1,
        queue_cap: 1,
        policy: PolicyCfg::deadline_wfq(),
        ..ServiceConfig::default()
    };
    let (addr, world) = start_world(Backend::Local, 2, cfg);
    let mut client = connect(addr);

    submit_until_running(&mut client, &blocker(Some("a")));
    let mut accepted = Vec::new();
    let mut hint = None;
    for i in 0..50 {
        match client.submit(&small(70 + i, Some("a"), 0)) {
            Ok(id) => accepted.push(id),
            Err(ServiceError::Busy {
                message,
                retry_after_ms,
            }) => {
                assert!(message.contains("busy"), "{message}");
                hint = Some(retry_after_ms);
                break;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(
        hint.expect("queue must fill") > 0,
        "the hint estimates time until capacity"
    );
    for id in accepted {
        client.wait(id).expect("accepted job completes");
    }
    client.shutdown().expect("shutdown");
    world.join().expect("world exits");
}

#[test]
fn wait_timeout_returns_without_a_receipt_then_resolves() {
    let (addr, world) = start_world(Backend::Local, 3, ServiceConfig::default());
    let mut client = connect(addr);

    let id = client.submit(&blocker(None)).expect("accepted");
    // A 1 ms patience against a heavy sort: times out with the job
    // still pending…
    let waited = client
        .wait_timeout(id, Some(Duration::from_millis(1)))
        .expect("timeout is not an error");
    assert!(waited.is_none(), "job cannot finish in a millisecond");
    // …and the patient wait still gets the receipt on the same
    // connection.
    let receipt = client.wait(id).expect("receipt");
    assert_eq!(receipt.verdict, Verdict::Verified);
    client.shutdown().expect("shutdown");
    world.join().expect("world exits");
}

//! Job execution: one SPMD function from [`JobSpec`] to [`Receipt`].
//!
//! [`execute_job`] is the *same* code whether it runs under the service
//! (over a scoped communicator, interleaved with other jobs) or
//! standalone on a dedicated world — which is what makes receipts
//! testable: the integration tests run each spec both ways and assert
//! verdict, digest, and per-job communication volumes are identical.
//!
//! Everything a job does is a pure function of its spec: datasets are
//! regenerated from the seed with indexed PRNG generators, checker
//! seeds derive from the spec seed, and injected faults are the
//! deterministic manipulators of `ccheck-manip` (retried over fault
//! seeds until one actually changes the semantics, so "inject a fault"
//! reliably means the checker has something to catch).

use std::cell::Cell;
use std::time::Instant;

use ccheck::config::SumCheckConfig;
use ccheck::permutation::{PermCheckConfig, PermChecker};
use ccheck::sort::check_boundaries;
use ccheck::zip::{ZipCheckConfig, ZipChecker};
use ccheck::SumChecker;
use ccheck_dataflow::{
    checked_reduce_with, checked_sort_with, reduce_by_key, reduce_by_key_chunked, sort,
    sort_chunked, zip, zip_chunked, CheckedOutcome,
};
use ccheck_hashing::{Hasher, HasherKind};
use ccheck_manip::{SortManipulator, SumManipulator, ZipManipulator};
use ccheck_net::Comm;
use ccheck_workloads::{local_range, uniform_ints_iter, zipf_valued_pairs_iter};

use crate::job::{FaultSpec, JobOp, JobSpec, Receipt, ReceiptComm, ReceiptTiming, Verdict};

/// Microsecond accumulators for one job's phases. `generate` covers
/// eager input materialization (chunked modes generate lazily inside
/// the operation, so their generate share rides in `execute`);
/// `execute` is the data operation itself (including injected faults
/// and any checker-driven retries); `check` is checker time. Whatever
/// the job spent outside all three (digests, the stats gather) is the
/// receipt overhead, reported to the metrics registry as the remainder.
#[derive(Debug, Default, Clone, Copy)]
struct PhaseTimes {
    generate_us: u64,
    execute_us: u64,
    check_us: u64,
}

/// Run `f`, adding its wall microseconds to `acc`.
fn timed<T>(acc: &mut u64, f: impl FnOnce() -> T) -> T {
    let t = Instant::now();
    let out = f();
    *acc += t.elapsed().as_micros() as u64;
    out
}

/// Cached handles for the per-phase job histograms — resolved once so
/// the per-job cost is four atomic observes, not registry lookups.
struct ExecObs {
    jobs: std::sync::Arc<ccheck_obs::Counter>,
    generate_us: std::sync::Arc<ccheck_obs::Histogram>,
    execute_us: std::sync::Arc<ccheck_obs::Histogram>,
    check_us: std::sync::Arc<ccheck_obs::Histogram>,
    receipt_us: std::sync::Arc<ccheck_obs::Histogram>,
}

fn exec_obs() -> &'static ExecObs {
    static OBS: std::sync::OnceLock<ExecObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| {
        let reg = ccheck_obs::registry();
        ExecObs {
            jobs: reg.counter("exec.jobs"),
            generate_us: reg.histogram("exec.generate_us"),
            execute_us: reg.histogram("exec.execute_us"),
            check_us: reg.histogram("exec.check_us"),
            receipt_us: reg.histogram("exec.receipt_us"),
        }
    })
}

/// Check that a fault name is a known manipulator for the job's op.
pub fn validate_fault(spec: &JobSpec) -> Result<(), String> {
    let Some(fault) = &spec.fault else {
        return Ok(());
    };
    let known = match spec.op {
        JobOp::Reduce => sum_manipulator(&fault.kind).is_some(),
        JobOp::Sort => sort_manipulator(&fault.kind).is_some(),
        JobOp::Zip => zip_manipulator(&fault.kind).is_some(),
    };
    if known {
        Ok(())
    } else {
        Err(format!(
            "unknown fault {:?} for op {:?}",
            fault.kind,
            spec.op.name()
        ))
    }
}

fn sum_manipulator(kind: &str) -> Option<SumManipulator> {
    Some(match kind {
        "bitflip" => SumManipulator::Bitflip,
        "randkey" => SumManipulator::RandKey,
        "switchvalues" => SumManipulator::SwitchValues,
        "inckey" => SumManipulator::IncKey,
        "incdec1" => SumManipulator::IncDec(1),
        "incdec2" => SumManipulator::IncDec(2),
        _ => return None,
    })
}

fn sort_manipulator(kind: &str) -> Option<SortManipulator> {
    Some(match kind {
        "swapadjacent" => SortManipulator::SwapAdjacent,
        "dupneighbor" => SortManipulator::DupNeighbor,
        "bitflip" => SortManipulator::Bitflip,
        "randomize" => SortManipulator::Randomize,
        _ => return None,
    })
}

fn zip_manipulator(kind: &str) -> Option<ZipManipulator> {
    Some(match kind {
        "bitflip" => ZipManipulator::Bitflip,
        "swapcomponents" => ZipManipulator::SwapComponents,
        "swappairs" => ZipManipulator::SwapPairs,
        "randomize" => ZipManipulator::Randomize,
        _ => return None,
    })
}

/// Apply a manipulator, retrying over successive seeds until it reports
/// a real semantic change (manipulators can no-op; an injected fault
/// that does nothing would make a fault-injection test vacuous). Gives
/// up after 1000 seeds — only possible on degenerate data.
fn apply_effective<T: Clone>(
    data: &mut [T],
    seed: u64,
    mut apply: impl FnMut(&mut [T], u64) -> bool,
) {
    for offset in 0..1000 {
        let mut attempt = data.to_vec();
        if apply(&mut attempt, seed.wrapping_add(offset)) {
            data.clone_from_slice(&attempt);
            return;
        }
    }
}

/// Splitmix64, for digests and derived seeds.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Checker seed: a pure function of the *spec* (not the job id), so the
/// same spec produces the same check under the service and standalone.
fn check_seed(spec: &JobSpec) -> u64 {
    mix(spec.seed ^ 0xC4EC_u64 ^ ((spec.op as u64) << 56))
}

/// Order-insensitive digest of a pair multiset, combined across PEs.
fn digest_pairs(comm: &mut Comm, pairs: &[(u64, u64)]) -> u64 {
    let local = pairs
        .iter()
        .fold(0u64, |acc, &(k, v)| acc.wrapping_add(mix(k ^ mix(v))));
    comm.allreduce(local, u64::wrapping_add)
}

/// Order-*sensitive* digest of a distributed sequence (position-mixed),
/// combined across PEs — sorted/zipped outputs are sequences, so two
/// outputs with equal multisets but different orders must differ.
fn digest_sequence(comm: &mut Comm, start: u64, items: impl Iterator<Item = u64>) -> u64 {
    let local = items.enumerate().fold(0u64, |acc, (offset, x)| {
        acc.wrapping_add(mix(x ^ mix(start + offset as u64)))
    });
    comm.allreduce(local, u64::wrapping_add)
}

/// Per-job trace-correlation id: the `(tenant, job_id, admit_seq)`
/// triple every PE learns from `CtlMsg::Admit`. Stamped into the span
/// names a traced job emits, so one job's events are filterable out of
/// a whole world's rings — the basis of `ccheck-submit --timeline` and
/// the Chrome export's per-job lanes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceCtx {
    /// Service-assigned job id.
    pub job_id: u64,
    /// Owning tenant (`""` = the default tenant).
    pub tenant: String,
    /// World admission sequence number.
    pub admit_seq: u64,
}

impl TraceCtx {
    /// The span name for one of this job's phases:
    /// `job{id}.{phase}@{tenant}#{admit_seq}`.
    pub fn span_name(&self, phase: &str) -> String {
        format!(
            "job{}.{phase}@{}#{}",
            self.job_id, self.tenant, self.admit_seq
        )
    }

    /// The name prefix identifying job `job_id`'s events (`job{id}.`).
    /// The trailing dot matters: it keeps `job3.` from matching
    /// `job31.execute`.
    pub fn prefix(job_id: u64) -> String {
        format!("job{job_id}.")
    }
}

/// Emit one job's phase lanes into the trace ring, laid end-to-end
/// from the job's start. Durations are the measured accumulators; for
/// chunked modes the real phases interleave, so these lanes show each
/// phase's *cumulative share* of the wall clock, not disjoint wall
/// intervals — same attribution the receipt `timing` block reports.
fn emit_phase_spans(ctx: &TraceCtx, start_us: u64, total_us: u64, ph: &PhaseTimes) {
    let mut at = start_us;
    for (phase, dur) in [
        ("generate", ph.generate_us),
        ("execute", ph.execute_us),
        ("check", ph.check_us),
    ] {
        ccheck_obs::span_at(&ctx.span_name(phase), at, dur.max(1));
        at += dur;
    }
    let receipt_us = total_us.saturating_sub(ph.generate_us + ph.execute_us + ph.check_us);
    ccheck_obs::span_at(&ctx.span_name("receipt"), at, receipt_us.max(1));
}

/// Run one checking job to completion on this communicator. SPMD: every
/// PE calls it with the same `(job_id, spec)`; every PE returns the same
/// verdict/digest/element counts, and PE 0's receipt carries the
/// gathered per-job communication volumes.
pub fn execute_job(comm: &mut Comm, job_id: u64, spec: &JobSpec) -> Receipt {
    execute_job_traced(comm, job_id, spec, None)
}

/// [`execute_job`] with an optional trace-correlation id. The daemon
/// passes the `CtlMsg::Admit` triple so every PE stamps this job's
/// phase spans with the same `(tenant, job_id, admit_seq)`; standalone
/// callers pass `None` and trace nothing job-specific.
pub fn execute_job_traced(
    comm: &mut Comm,
    job_id: u64,
    spec: &JobSpec,
    trace: Option<&TraceCtx>,
) -> Receipt {
    let _span = ccheck_obs::span("exec.job");
    let start_us = ccheck_obs::now_us();
    let t0 = Instant::now();
    let mut ph = PhaseTimes::default();
    let (verdict, digest, output_elems) = match (spec.op, spec.chunk) {
        (JobOp::Reduce, 0) => reduce_oneshot(comm, spec, &mut ph),
        (JobOp::Reduce, chunk) => reduce_chunked(comm, spec, chunk as usize, &mut ph),
        (JobOp::Sort, 0) => sort_oneshot(comm, spec, &mut ph),
        (JobOp::Sort, chunk) => sort_chunked_job(comm, spec, chunk as usize, &mut ph),
        (JobOp::Zip, 0) => zip_job(comm, spec, None, &mut ph),
        (JobOp::Zip, chunk) => zip_job(comm, spec, Some(chunk as usize), &mut ph),
    };
    // Stats snapshot travels last, so it covers the whole job (minus the
    // gather's own traffic, identically in every execution mode).
    let stats = comm.gather_stats();
    let total_us = t0.elapsed().as_micros() as u64;
    if ccheck_obs::enabled() {
        let obs = exec_obs();
        obs.jobs.inc();
        obs.generate_us.observe(ph.generate_us);
        obs.execute_us.observe(ph.execute_us);
        obs.check_us.observe(ph.check_us);
        obs.receipt_us
            .observe(total_us.saturating_sub(ph.generate_us + ph.execute_us + ph.check_us));
        if let Some(ctx) = trace {
            emit_phase_spans(ctx, start_us, total_us, &ph);
        }
    }
    Receipt {
        job_id,
        op: spec.op,
        tenant: spec.tenant.clone(),
        // Standalone runs have no admission order; the daemon stamps
        // the world's sequence number onto service receipts.
        admit_seq: 0,
        verdict,
        check: crate::job::CheckUsed {
            iterations: spec.iterations,
            buckets: spec.buckets,
            log2_rhat: spec.log2_rhat,
            adaptive: spec.check == crate::job::CheckMode::Adaptive,
        },
        digest,
        elems: spec.n,
        output_elems,
        wall_ms: total_us / 1000,
        // Sub-intervals of the wall clock above, so floor-to-ms keeps
        // `exec_ms + check_ms ≤ wall_ms` — the invariant the timing
        // e2e test asserts. Standalone runs never waited in a queue;
        // the daemon overwrites `queue_wait_ms` from the admission.
        timing: Some(ReceiptTiming {
            queue_wait_ms: 0,
            exec_ms: (ph.generate_us + ph.execute_us) / 1000,
            check_ms: ph.check_us / 1000,
        }),
        comm: stats.map(|s| ReceiptComm {
            total_bytes: s.total_bytes(),
            bottleneck_bytes: s.bottleneck_volume(),
            total_msgs: s.total_messages(),
            max_rounds: s.max_rounds(),
        }),
        // Sealing fields (fingerprint + ledger hashes) are stamped by
        // the daemon when the receipt enters the ledger, never here.
        spec_fingerprint: None,
        content_hash: None,
        prev_hash: None,
    }
}

fn sum_cfg(spec: &JobSpec) -> SumCheckConfig {
    SumCheckConfig::new(
        spec.iterations as usize,
        spec.buckets as usize,
        spec.log2_rhat,
        HasherKind::Tab64,
    )
}

fn partition_hasher(spec: &JobSpec) -> Hasher {
    Hasher::new(HasherKind::Tab64, spec.seed ^ 0x7061_7274)
}

fn outcome_verdict(outcome: CheckedOutcome) -> Verdict {
    match outcome {
        CheckedOutcome::FastPath => Verdict::Verified,
        CheckedOutcome::Retried { retries } => Verdict::VerifiedAfterRetry(retries as u32),
        CheckedOutcome::FellBack => Verdict::FellBack,
    }
}

fn reduce_fault(spec: &JobSpec) -> Option<(SumManipulator, &FaultSpec)> {
    spec.fault
        .as_ref()
        .and_then(|f| sum_manipulator(&f.kind).map(|m| (m, f)))
}

fn reduce_oneshot(comm: &mut Comm, spec: &JobSpec, ph: &mut PhaseTimes) -> (Verdict, u64, u64) {
    let range = local_range(spec.n as usize, comm.rank(), comm.size());
    let data: Vec<(u64, u64)> = timed(&mut ph.generate_us, || {
        zipf_valued_pairs_iter(spec.seed, spec.keys, 1 << 20, range).collect()
    });
    let hasher = partition_hasher(spec);
    let fault = reduce_fault(spec);
    // The op closure runs *inside* the checked wrapper (and re-runs on
    // retries), so its time is accumulated through a cell; the wrapper's
    // remainder is checker time.
    let op_us = Cell::new(0u64);
    let t_checked = Instant::now();
    let (out, outcome) = checked_reduce_with(
        comm,
        data,
        sum_cfg(spec),
        check_seed(spec),
        spec.max_retries as usize,
        |comm, d| {
            let t = Instant::now();
            let mut out = reduce_by_key(comm, d, &hasher, |a, b| a.wrapping_add(b));
            if let Some((manip, f)) = &fault {
                if comm.rank() == 0 {
                    apply_effective(&mut out, f.seed, |d, s| manip.apply(d, s));
                }
            }
            op_us.set(op_us.get() + t.elapsed().as_micros() as u64);
            out
        },
    );
    let checked_us = t_checked.elapsed().as_micros() as u64;
    ph.execute_us += op_us.get();
    ph.check_us += checked_us.saturating_sub(op_us.get());
    let digest = digest_pairs(comm, &out);
    let total_out = comm.allreduce(out.len() as u64, |a, b| a + b);
    (outcome_verdict(outcome), digest, total_out)
}

fn reduce_chunked(
    comm: &mut Comm,
    spec: &JobSpec,
    chunk: usize,
    ph: &mut PhaseTimes,
) -> (Verdict, u64, u64) {
    let range = local_range(spec.n as usize, comm.rank(), comm.size());
    // Lazy input: generation interleaves with the chunked operation (and
    // with the checker's replay), so it is not separable here — the
    // execute/check phases absorb their own shares.
    let input = zipf_valued_pairs_iter(spec.seed, spec.keys, 1 << 20, range);
    let hasher = partition_hasher(spec);
    let mut shard = timed(&mut ph.execute_us, || {
        reduce_by_key_chunked(comm, input.clone(), &hasher, chunk, |a, b| {
            a.wrapping_add(b)
        })
    });
    if let Some((manip, f)) = reduce_fault(spec) {
        if comm.rank() == 0 {
            apply_effective(&mut shard, f.seed, |d, s| manip.apply(d, s));
        }
    }
    let checker = SumChecker::new(sum_cfg(spec), check_seed(spec));
    let ok = timed(&mut ph.check_us, || {
        checker.check_distributed_stream(comm, input, shard.iter().copied())
    });
    let verdict = if ok {
        Verdict::Verified
    } else {
        Verdict::Rejected
    };
    let digest = digest_pairs(comm, &shard);
    let total_out = comm.allreduce(shard.len() as u64, |a, b| a + b);
    (verdict, digest, total_out)
}

fn perm_checker(spec: &JobSpec) -> PermChecker {
    let mut cfg = PermCheckConfig::hash_sum(HasherKind::Tab64, 32);
    cfg.iterations = spec.iterations as usize;
    PermChecker::new(cfg, check_seed(spec))
}

fn sort_fault(spec: &JobSpec) -> Option<(SortManipulator, &FaultSpec)> {
    spec.fault
        .as_ref()
        .and_then(|f| sort_manipulator(&f.kind).map(|m| (m, f)))
}

fn sort_oneshot(comm: &mut Comm, spec: &JobSpec, ph: &mut PhaseTimes) -> (Verdict, u64, u64) {
    let range = local_range(spec.n as usize, comm.rank(), comm.size());
    let data: Vec<u64> = timed(&mut ph.generate_us, || {
        uniform_ints_iter(spec.seed, spec.keys.max(2), range).collect()
    });
    let perm = perm_checker(spec);
    let fault = sort_fault(spec);
    let op_us = Cell::new(0u64);
    let t_checked = Instant::now();
    let (out, outcome) =
        checked_sort_with(comm, data, &perm, spec.max_retries as usize, |comm, d| {
            let t = Instant::now();
            let mut out = sort(comm, d);
            if let Some((manip, f)) = &fault {
                if comm.rank() == 0 {
                    apply_effective(&mut out, f.seed, |d, s| manip.apply(d, s));
                }
            }
            op_us.set(op_us.get() + t.elapsed().as_micros() as u64);
            out
        });
    let checked_us = t_checked.elapsed().as_micros() as u64;
    ph.execute_us += op_us.get();
    ph.check_us += checked_us.saturating_sub(op_us.get());
    let (start, _) = comm.exclusive_prefix_sum(out.len() as u64);
    let digest = digest_sequence(comm, start, out.iter().copied());
    let total_out = comm.allreduce(out.len() as u64, |a, b| a + b);
    (outcome_verdict(outcome), digest, total_out)
}

fn sort_chunked_job(
    comm: &mut Comm,
    spec: &JobSpec,
    chunk: usize,
    ph: &mut PhaseTimes,
) -> (Verdict, u64, u64) {
    let range = local_range(spec.n as usize, comm.rank(), comm.size());
    // Lazy input, as in `reduce_chunked`: generation rides inside the
    // phases that consume the iterator.
    let input = uniform_ints_iter(spec.seed, spec.keys.max(2), range);
    let mut out = timed(&mut ph.execute_us, || {
        sort_chunked(comm, input.clone(), chunk)
    });
    if let Some((manip, f)) = sort_fault(spec) {
        if comm.rank() == 0 {
            apply_effective(&mut out, f.seed, |d, s| manip.apply(d, s));
        }
    }
    // The streaming mirror of `check_sorted`: permutation fingerprint
    // over regenerated input + local/boundary sortedness. Same collective
    // sequence on every PE (each sub-verdict is itself SPMD-consistent).
    let perm = perm_checker(spec);
    let ok = timed(&mut ph.check_us, || {
        let is_perm = perm.check_stream(comm, input, out.iter().copied());
        let local_ok = out.windows(2).all(|w| w[0] <= w[1]);
        let boundaries_ok = check_boundaries(comm, &out);
        comm.all_agree(local_ok) && boundaries_ok && is_perm
    });
    let verdict = if ok {
        Verdict::Verified
    } else {
        Verdict::Rejected
    };
    let (start, _) = comm.exclusive_prefix_sum(out.len() as u64);
    let digest = digest_sequence(comm, start, out.iter().copied());
    let total_out = comm.allreduce(out.len() as u64, |a, b| a + b);
    (verdict, digest, total_out)
}

fn zip_job(
    comm: &mut Comm,
    spec: &JobSpec,
    chunk: Option<usize>,
    ph: &mut PhaseTimes,
) -> (Verdict, u64, u64) {
    let range = local_range(spec.n as usize, comm.rank(), comm.size());
    let a: Vec<u64> = timed(&mut ph.generate_us, || {
        uniform_ints_iter(spec.seed ^ 0xA11CE, u64::MAX, range.clone()).collect()
    });
    let b_iter = uniform_ints_iter(spec.seed ^ 0xB0B, u64::MAX, range);
    let mut out = timed(&mut ph.execute_us, || match chunk {
        None => zip(comm, a.clone(), b_iter.clone().collect()),
        Some(chunk) => zip_chunked(comm, a.clone(), (a.len() as u64, b_iter.clone()), chunk),
    });
    if let Some(f) = &spec.fault {
        if let Some(manip) = zip_manipulator(&f.kind) {
            if comm.rank() == 0 {
                apply_effective(&mut out, f.seed, |d, s| manip.apply(d, s));
            }
        }
    }
    let checker = ZipChecker::new(
        ZipCheckConfig {
            hasher: HasherKind::Tab64,
            iterations: spec.iterations as usize,
        },
        check_seed(spec),
    );
    let ok = timed(&mut ph.check_us, || {
        checker.check_stream(
            comm,
            (a.len() as u64, a.iter().copied()),
            (a.len() as u64, b_iter),
            (out.len() as u64, out.iter().copied()),
        )
    });
    let verdict = if ok {
        Verdict::Verified
    } else {
        Verdict::Rejected
    };
    let (start, _) = comm.exclusive_prefix_sum(out.len() as u64);
    let digest = digest_sequence(
        comm,
        start,
        out.iter().map(|&(x, y)| mix(x).wrapping_add(y)),
    );
    let total_out = comm.allreduce(out.len() as u64, |a, b| a + b);
    (verdict, digest, total_out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccheck_net::run;

    fn run_spec(p: usize, spec: JobSpec) -> Vec<Receipt> {
        run(p, move |comm| execute_job(comm, 1, &spec))
    }

    #[test]
    fn clean_jobs_verify_in_every_mode() {
        for op in [JobOp::Reduce, JobOp::Sort, JobOp::Zip] {
            for chunk in [0u64, 512] {
                let spec = JobSpec {
                    op,
                    n: 4_000,
                    keys: 97,
                    seed: 11,
                    chunk,
                    ..JobSpec::default()
                };
                let receipts = run_spec(3, spec);
                for r in &receipts {
                    assert_eq!(
                        r.verdict,
                        Verdict::Verified,
                        "{op:?} chunk={chunk} must verify"
                    );
                }
                // All PEs agree on digest and counts.
                assert!(receipts.windows(2).all(|w| {
                    w[0].digest == w[1].digest && w[0].output_elems == w[1].output_elems
                }));
                // PE 0 carries the comm volumes.
                assert!(receipts[0].comm.is_some());
                assert!(receipts[0].comm.unwrap().total_bytes > 0);
            }
        }
    }

    #[test]
    fn faulty_oneshot_jobs_fall_back_and_still_deliver() {
        for (op, fault) in [
            (JobOp::Reduce, "bitflip"),
            (JobOp::Sort, "dupneighbor"),
            (JobOp::Sort, "swapadjacent"),
        ] {
            let spec = JobSpec {
                op,
                n: 3_000,
                keys: 53,
                seed: 5,
                max_retries: 1,
                fault: Some(FaultSpec {
                    kind: fault.into(),
                    seed: 3,
                }),
                ..JobSpec::default()
            };
            let clean = JobSpec {
                fault: None,
                ..spec.clone()
            };
            let faulty_receipts = run_spec(3, spec);
            let clean_receipts = run_spec(3, clean);
            for r in &faulty_receipts {
                assert_eq!(r.verdict, Verdict::FellBack, "{op:?}/{fault}");
            }
            // Graceful degradation: the fallback recomputed the correct
            // result — same digest as the clean run.
            assert_eq!(faulty_receipts[0].digest, clean_receipts[0].digest);
        }
    }

    #[test]
    fn faulty_chunked_and_zip_jobs_reject() {
        for (op, chunk, fault) in [
            (JobOp::Reduce, 256u64, "bitflip"),
            (JobOp::Sort, 256, "dupneighbor"),
            (JobOp::Zip, 0, "swapcomponents"),
            (JobOp::Zip, 256, "swappairs"),
        ] {
            let spec = JobSpec {
                op,
                n: 3_000,
                keys: 53,
                seed: 5,
                chunk,
                fault: Some(FaultSpec {
                    kind: fault.into(),
                    seed: 3,
                }),
                ..JobSpec::default()
            };
            let receipts = run_spec(3, spec);
            for r in &receipts {
                assert_eq!(r.verdict, Verdict::Rejected, "{op:?}/{fault} chunk={chunk}");
            }
        }
    }

    #[test]
    fn chunked_and_oneshot_agree_on_digest() {
        for op in [JobOp::Reduce, JobOp::Sort, JobOp::Zip] {
            let oneshot = run_spec(
                4,
                JobSpec {
                    op,
                    n: 5_000,
                    keys: 101,
                    seed: 23,
                    chunk: 0,
                    ..JobSpec::default()
                },
            );
            let chunked = run_spec(
                4,
                JobSpec {
                    op,
                    n: 5_000,
                    keys: 101,
                    seed: 23,
                    chunk: 300,
                    ..JobSpec::default()
                },
            );
            assert_eq!(oneshot[0].digest, chunked[0].digest, "{op:?}");
            assert_eq!(oneshot[0].output_elems, chunked[0].output_elems, "{op:?}");
        }
    }

    #[test]
    fn traced_execution_emits_all_phase_lanes() {
        // Not run in parallel with other obs-flag tests in this crate;
        // the flag stays on for the duration.
        ccheck_obs::set_enabled(true);
        let ctx = TraceCtx {
            job_id: 424_242,
            tenant: "team-t".to_string(),
            admit_seq: 9,
        };
        let spec = JobSpec {
            op: JobOp::Reduce,
            n: 2_000,
            keys: 31,
            seed: 3,
            ..JobSpec::default()
        };
        let ctx_for_run = ctx.clone();
        run(2, move |comm| {
            let _ = execute_job_traced(comm, ctx_for_run.job_id, &spec, Some(&ctx_for_run));
        });
        let snap = ccheck_obs::trace_snapshot();
        let prefix = TraceCtx::prefix(ctx.job_id);
        for phase in ["generate", "execute", "check", "receipt"] {
            let name = ctx.span_name(phase);
            assert!(name.starts_with(&prefix), "{name}");
            assert!(
                snap.events.iter().any(|ev| ev.name == name),
                "missing phase lane {name}"
            );
        }
    }

    #[test]
    fn fault_validation() {
        let mut spec = JobSpec {
            fault: Some(FaultSpec {
                kind: "bitflip".into(),
                seed: 0,
            }),
            ..JobSpec::default()
        };
        assert!(validate_fault(&spec).is_ok());
        spec.fault = Some(FaultSpec {
            kind: "dupneighbor".into(),
            seed: 0,
        });
        assert!(validate_fault(&spec).is_err(), "sort fault on reduce op");
        spec.op = JobOp::Sort;
        assert!(validate_fault(&spec).is_ok());
        spec.fault = None;
        assert!(validate_fault(&spec).is_ok());
    }
}

//! The service's job model: what clients submit ([`JobSpec`]) and what
//! they get back ([`Receipt`]).
//!
//! A job is a *description* of a checked computation — dataset spec,
//! operation, check configuration, optional injected fault — never the
//! data itself: datasets are regenerated deterministically from the
//! seed on every PE (the workload generators are indexed PRNGs), so a
//! submission is a few hundred bytes regardless of `n`.
//!
//! Specs travel on two codecs: JSON (client ↔ PE 0, line-delimited) and
//! [`Wire`] (PE 0 → all PEs, on the control scope).

use ccheck_net::Wire;

use crate::json::Json;

/// The operation a job runs and checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOp {
    /// Sum aggregation (`reduce_by_key`) over a Zipf workload, verified
    /// by the sum checker (§4).
    Reduce,
    /// Distributed sample sort over uniform integers, verified by the
    /// sort checker (Theorem 7).
    Sort,
    /// Index-wise zip of two derived sequences, verified by the Zip
    /// checker (Theorem 11).
    Zip,
}

impl JobOp {
    /// Protocol name (`"reduce"`, `"sort"`, `"zip"`).
    pub fn name(&self) -> &'static str {
        match self {
            JobOp::Reduce => "reduce",
            JobOp::Sort => "sort",
            JobOp::Zip => "zip",
        }
    }

    /// Parse a protocol name.
    pub fn parse(name: &str) -> Result<JobOp, String> {
        match name {
            "reduce" => Ok(JobOp::Reduce),
            "sort" => Ok(JobOp::Sort),
            "zip" => Ok(JobOp::Zip),
            other => Err(format!("unknown op {other:?} (reduce|sort|zip)")),
        }
    }
}

/// A deterministic fault to inject into the job's output on PE 0 —
/// named after the manipulator applied (see `ccheck-manip`): for
/// `reduce` one of the Table-4 sum manipulators, for `sort` a
/// sorted-output manipulator, for `zip` a zipped-output manipulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// Manipulator name, e.g. `"bitflip"`, `"dupneighbor"`.
    pub kind: String,
    /// Seed for the manipulator's own randomness.
    pub seed: u64,
}

/// How a job's checker configuration is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckMode {
    /// Use the spec's own `iterations`/`buckets`/`log2_rhat` as given.
    #[default]
    Explicit,
    /// Let the scheduler's per-tenant adaptive tuner pick
    /// `(its, b, r̂)` from the tenant's recent receipts: escalate after
    /// flagged jobs, relax toward the cheap config after a clean
    /// streak. The resolved config is broadcast with the admitted spec
    /// (all PEs see the same values) and recorded in the receipt.
    Adaptive,
}

impl CheckMode {
    /// Protocol name (`"explicit"`, `"adaptive"`).
    pub fn name(&self) -> &'static str {
        match self {
            CheckMode::Explicit => "explicit",
            CheckMode::Adaptive => "adaptive",
        }
    }

    /// Parse a protocol name.
    pub fn parse(name: &str) -> Result<CheckMode, String> {
        match name {
            "explicit" => Ok(CheckMode::Explicit),
            "adaptive" => Ok(CheckMode::Adaptive),
            other => Err(format!("unknown check mode {other:?} (explicit|adaptive)")),
        }
    }
}

/// A complete checking-job description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Operation to run and check.
    pub op: JobOp,
    /// Global element count of the dataset.
    pub n: u64,
    /// Distinct keys (reduce) / value range (sort); ignored for zip.
    pub keys: u64,
    /// Workload seed; same seed + same spec = same dataset.
    pub seed: u64,
    /// Streaming chunk size in elements; 0 = one-shot (materialized)
    /// execution. Chunked jobs verify with the streaming sketch paths
    /// and report `Rejected` (no retry/fallback) on corruption.
    pub chunk: u64,
    /// Checker iterations (sum checker `its`; perm/zip repetitions).
    pub iterations: u32,
    /// Sum checker bucket count (reduce only).
    pub buckets: u32,
    /// Sum checker `log₂ r̂` (reduce only).
    pub log2_rhat: u32,
    /// Retry budget before falling back (one-shot reduce/sort only).
    pub max_retries: u32,
    /// Optional injected fault.
    pub fault: Option<FaultSpec>,
    /// Owning tenant, for fairness/quota accounting and adaptive
    /// tuning. `None` is the anonymous default tenant (PR-4 semantics).
    pub tenant: Option<String>,
    /// Scheduling priority; higher runs sooner under `PriorityAging`.
    /// 0 (the default) reproduces PR-4 FIFO behavior under `Fifo`.
    pub priority: u32,
    /// Admission deadline in milliseconds from submission: if the job
    /// is still queued when it expires, the scheduler refuses it with a
    /// retry hint instead of running it late. `None` = no deadline.
    /// Ignored by the `Fifo` policy (PR-4 semantics).
    pub deadline_ms: Option<u64>,
    /// Whether the checker config is the spec's own or tuner-chosen.
    pub check: CheckMode,
    /// Client-supplied job id (≥ 1) for idempotent resubmission: the
    /// service adopts it as the job's id, and a later submission of the
    /// same `(tenant, job_id)` with an identical spec fingerprint is
    /// answered from the receipt ledger instead of re-running
    /// (`docs/PROTOCOL.md` §7). `None` lets the service assign one.
    pub job_id: Option<u64>,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            op: JobOp::Reduce,
            n: 100_000,
            keys: 1_000,
            seed: 1,
            chunk: 0,
            iterations: 4,
            buckets: 16,
            log2_rhat: 9,
            max_retries: 2,
            fault: None,
            tenant: None,
            priority: 0,
            deadline_ms: None,
            check: CheckMode::Explicit,
            job_id: None,
        }
    }
}

impl JobSpec {
    /// Reject obviously unusable specs before they reach the world.
    ///
    /// The `n` caps are memory guardrails for a shared service: only a
    /// chunked **reduce** keeps its footprint independent of `n`
    /// (O(distinct keys + chunk·p)); every other mode materializes
    /// O(n/p) per PE (sort/zip hold their local share even when
    /// chunked, and one-shot jobs hold input + output), so a huge `n`
    /// there would OOM the whole multi-tenant world, not just the job.
    pub fn validate(&self) -> Result<(), String> {
        if self.n == 0 {
            return Err("n must be positive".into());
        }
        let bounded_memory = self.op == JobOp::Reduce && self.chunk > 0;
        if bounded_memory {
            if self.n > 1 << 40 {
                return Err("n exceeds the 2^40 cap for chunked reduce jobs".into());
            }
            if self.keys > 1 << 22 {
                return Err(
                    "keys exceeds the 2^22 cap (the distinct-key table is held in memory)".into(),
                );
            }
        } else if self.n > 1 << 26 {
            return Err(
                "n exceeds the 2^26 cap for jobs that materialize their share \
                 (only chunked reduce jobs run at bounded memory; cap 2^40 there)"
                    .into(),
            );
        }
        if matches!(self.op, JobOp::Reduce | JobOp::Sort) && self.keys == 0 {
            return Err("keys must be positive".into());
        }
        if self.iterations == 0 || self.iterations > 64 {
            return Err("iterations must be in 1..=64".into());
        }
        // Bounds mirror (and slightly tighten) the asserts in
        // `SumCheckConfig::new`: a remote submission must be refused
        // here, never allowed to panic a job worker.
        if self.buckets < 2 || self.buckets > 1 << 16 || !self.buckets.is_power_of_two() {
            return Err("buckets must be a power of two in 2..=65536".into());
        }
        if !(1..=62).contains(&self.log2_rhat) {
            return Err("log2_rhat must be in 1..=62".into());
        }
        if self.max_retries > 8 {
            return Err("max_retries must be at most 8".into());
        }
        if let Some(tenant) = &self.tenant {
            if tenant.is_empty() || tenant.len() > 64 {
                return Err("tenant must be 1..=64 characters".into());
            }
            if !tenant.chars().all(|c| c.is_ascii_graphic()) {
                return Err("tenant must be printable ASCII without spaces".into());
            }
        }
        if self.priority > 1_000_000 {
            return Err("priority must be at most 1000000".into());
        }
        if self.job_id == Some(0) {
            return Err("job_id must be positive (ids are 1-based)".into());
        }
        Ok(())
    }

    /// Content fingerprint for idempotent resubmission: the SHA-256 of
    /// the spec's canonical JSON with the `job_id` member removed, so
    /// the *same work* under a different client-chosen id fingerprints
    /// identically, and a conflicting respray of an existing id is
    /// detectable (`docs/PROTOCOL.md` §7).
    pub fn fingerprint(&self) -> String {
        let mut json = self.to_json();
        if let Json::Obj(map) = &mut json {
            map.remove("job_id");
        }
        ccheck_hashing::sha256_hex(json.render().as_bytes())
    }

    /// Encode for the client protocol.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(&'static str, Json)> = vec![
            ("op", Json::from(self.op.name())),
            ("n", Json::from(self.n)),
            ("keys", Json::from(self.keys)),
            ("seed", Json::from(self.seed)),
            ("chunk", Json::from(self.chunk)),
            ("iterations", Json::from(self.iterations as u64)),
            ("buckets", Json::from(self.buckets as u64)),
            ("log2_rhat", Json::from(self.log2_rhat as u64)),
            ("max_retries", Json::from(self.max_retries as u64)),
        ];
        if let Some(fault) = &self.fault {
            pairs.push((
                "fault",
                Json::obj([
                    ("kind", Json::from(fault.kind.as_str())),
                    ("seed", Json::from(fault.seed)),
                ]),
            ));
        }
        // Scheduling fields are emitted only when they deviate from the
        // PR-4 defaults, so old-style submissions render unchanged.
        if let Some(tenant) = &self.tenant {
            pairs.push(("tenant", Json::from(tenant.as_str())));
        }
        if self.priority != 0 {
            pairs.push(("priority", Json::from(self.priority as u64)));
        }
        if let Some(deadline) = self.deadline_ms {
            pairs.push(("deadline_ms", Json::from(deadline)));
        }
        if self.check != CheckMode::Explicit {
            pairs.push(("check", Json::from(self.check.name())));
        }
        if let Some(job_id) = self.job_id {
            pairs.push(("job_id", Json::from(job_id)));
        }
        Json::obj(pairs)
    }

    /// Decode from the client protocol; absent fields take the
    /// [`JobSpec::default`] values.
    pub fn from_json(v: &Json) -> Result<JobSpec, String> {
        let d = JobSpec::default();
        let u64_field = |key: &str, fallback: u64| -> Result<u64, String> {
            match v.get(key) {
                None => Ok(fallback),
                Some(j) => j.as_u64().ok_or_else(|| format!("{key} must be a u64")),
            }
        };
        let u32_field = |key: &str, fallback: u32| -> Result<u32, String> {
            u64_field(key, fallback as u64)?
                .try_into()
                .map_err(|_| format!("{key} out of range"))
        };
        let op = match v.get("op") {
            None => d.op,
            Some(j) => JobOp::parse(j.as_str().ok_or("op must be a string")?)?,
        };
        let fault = match v.get("fault") {
            None | Some(Json::Null) => None,
            Some(f) => Some(FaultSpec {
                kind: f
                    .get("kind")
                    .and_then(Json::as_str)
                    .ok_or("fault.kind must be a string")?
                    .to_string(),
                seed: match f.get("seed") {
                    None => 0,
                    Some(s) => s.as_u64().ok_or("fault.seed must be a u64")?,
                },
            }),
        };
        let tenant = match v.get("tenant") {
            None | Some(Json::Null) => None,
            Some(t) => Some(t.as_str().ok_or("tenant must be a string")?.to_string()),
        };
        let deadline_ms = match v.get("deadline_ms") {
            None | Some(Json::Null) => None,
            Some(j) => Some(j.as_u64().ok_or("deadline_ms must be a u64")?),
        };
        let check = match v.get("check") {
            None | Some(Json::Null) => CheckMode::Explicit,
            Some(j) => CheckMode::parse(j.as_str().ok_or("check must be a string")?)?,
        };
        let job_id = match v.get("job_id") {
            None | Some(Json::Null) => None,
            Some(j) => Some(j.as_u64().ok_or("job_id must be a u64")?),
        };
        Ok(JobSpec {
            op,
            n: u64_field("n", d.n)?,
            keys: u64_field("keys", d.keys)?,
            seed: u64_field("seed", d.seed)?,
            chunk: u64_field("chunk", d.chunk)?,
            iterations: u32_field("iterations", d.iterations)?,
            buckets: u32_field("buckets", d.buckets)?,
            log2_rhat: u32_field("log2_rhat", d.log2_rhat)?,
            max_retries: u32_field("max_retries", d.max_retries)?,
            fault,
            tenant,
            priority: u32_field("priority", 0)?,
            deadline_ms,
            check,
            job_id,
        })
    }
}

impl Wire for JobSpec {
    fn write(&self, buf: &mut Vec<u8>) {
        let op = match self.op {
            JobOp::Reduce => 0u8,
            JobOp::Sort => 1,
            JobOp::Zip => 2,
        };
        op.write(buf);
        (
            self.n,
            self.keys,
            self.seed,
            self.chunk,
            (
                self.iterations,
                self.buckets,
                self.log2_rhat,
                self.max_retries,
            ),
        )
            .write(buf);
        self.fault.is_some().write(buf);
        if let Some(fault) = &self.fault {
            fault.kind.write(buf);
            fault.seed.write(buf);
        }
        self.tenant.is_some().write(buf);
        if let Some(tenant) = &self.tenant {
            tenant.write(buf);
        }
        self.priority.write(buf);
        self.deadline_ms.is_some().write(buf);
        if let Some(deadline) = self.deadline_ms {
            deadline.write(buf);
        }
        matches!(self.check, CheckMode::Adaptive).write(buf);
        self.job_id.is_some().write(buf);
        if let Some(job_id) = self.job_id {
            job_id.write(buf);
        }
    }

    fn read(input: &mut &[u8]) -> Option<Self> {
        let op = match u8::read(input)? {
            0 => JobOp::Reduce,
            1 => JobOp::Sort,
            2 => JobOp::Zip,
            _ => return None,
        };
        let (n, keys, seed, chunk, (iterations, buckets, log2_rhat, max_retries)) =
            <(u64, u64, u64, u64, (u32, u32, u32, u32))>::read(input)?;
        let fault = if bool::read(input)? {
            Some(FaultSpec {
                kind: String::read(input)?,
                seed: u64::read(input)?,
            })
        } else {
            None
        };
        let tenant = if bool::read(input)? {
            Some(String::read(input)?)
        } else {
            None
        };
        let priority = u32::read(input)?;
        let deadline_ms = if bool::read(input)? {
            Some(u64::read(input)?)
        } else {
            None
        };
        let check = if bool::read(input)? {
            CheckMode::Adaptive
        } else {
            CheckMode::Explicit
        };
        let job_id = if bool::read(input)? {
            Some(u64::read(input)?)
        } else {
            None
        };
        Some(JobSpec {
            op,
            n,
            keys,
            seed,
            chunk,
            iterations,
            buckets,
            log2_rhat,
            max_retries,
            fault,
            tenant,
            priority,
            deadline_ms,
            check,
            job_id,
        })
    }

    fn wire_size(&self) -> usize {
        1 + 4 * 8
            + 4 * 4
            + 1
            + self.fault.as_ref().map_or(0, |f| f.kind.wire_size() + 8)
            + 1
            + self.tenant.as_ref().map_or(0, |t| t.wire_size())
            + 4
            + 1
            + self.deadline_ms.map_or(0, |_| 8)
            + 1
            + 1
            + self.job_id.map_or(0, |_| 8)
    }
}

/// How a job's check concluded. All PEs observe the same verdict (the
/// checkers end in an all-agree reduction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The operation verified on the first try.
    Verified,
    /// The operation verified after this many rejected attempts.
    VerifiedAfterRetry(u32),
    /// Every attempt was rejected; the slow reference path produced the
    /// result (graceful degradation, §8 of the paper).
    FellBack,
    /// The check rejected and the execution mode has no fallback
    /// (chunked streaming jobs, zip jobs).
    Rejected,
}

impl Verdict {
    /// Protocol name.
    pub fn name(&self) -> &'static str {
        match self {
            Verdict::Verified => "verified",
            Verdict::VerifiedAfterRetry(_) => "retried",
            Verdict::FellBack => "fellback",
            Verdict::Rejected => "rejected",
        }
    }

    /// Whether the delivered result is trustworthy (everything except
    /// `Rejected`: a fallback result was recomputed by the reference).
    pub fn result_ok(&self) -> bool {
        !matches!(self, Verdict::Rejected)
    }
}

/// Per-job communication accounting, from the job's scoped
/// communicator's own [`ccheck_net::CommStats`] — byte-for-byte what
/// the job would report running alone on a dedicated world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReceiptComm {
    /// Total payload bytes across all PEs.
    pub total_bytes: u64,
    /// Bottleneck communication volume (max over PEs of max(sent, recv)).
    pub bottleneck_bytes: u64,
    /// Total point-to-point messages.
    pub total_msgs: u64,
    /// Maximum latency rounds on any PE.
    pub max_rounds: u64,
}

/// Per-phase timing of one job, measured by the worker and sealed into
/// the ledger with the rest of the receipt (`docs/PROTOCOL.md` §4).
/// All values are milliseconds; `exec_ms + check_ms ≤ wall_ms` (both
/// are sub-intervals of the receipt's wall clock), and `queue_wait_ms`
/// precedes the wall-clock window entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReceiptTiming {
    /// Milliseconds the job waited in the submission queue before
    /// admission (0 for jobs run standalone, outside a service).
    pub queue_wait_ms: u64,
    /// Milliseconds spent generating input and running the operation
    /// (everything except checking).
    pub exec_ms: u64,
    /// Milliseconds spent in the checker.
    pub check_ms: u64,
}

/// The checker configuration a job actually ran with — the spec's own
/// values for `CheckMode::Explicit`, or the scheduler's tuner pick for
/// `CheckMode::Adaptive` (how clients observe the adaptive ladder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckUsed {
    /// Checker iterations the job ran with.
    pub iterations: u32,
    /// Sum-checker bucket count the job ran with.
    pub buckets: u32,
    /// Sum-checker `log₂ r̂` the job ran with.
    pub log2_rhat: u32,
    /// Whether the config was tuner-chosen.
    pub adaptive: bool,
}

/// The verdict receipt a client gets back for a completed job.
#[derive(Debug, Clone, PartialEq)]
pub struct Receipt {
    /// The service-assigned job id.
    pub job_id: u64,
    /// The operation that ran.
    pub op: JobOp,
    /// The tenant the job was submitted under, if any.
    pub tenant: Option<String>,
    /// 1-based position in the world's admission order (0 when the job
    /// ran standalone, outside a service). Lets clients and tests
    /// observe scheduling decisions: a job admitted ahead of
    /// earlier-submitted ones has a smaller `admit_seq`.
    pub admit_seq: u64,
    /// How the check concluded.
    pub verdict: Verdict,
    /// The checker configuration the job actually ran with.
    pub check: CheckUsed,
    /// Digest of the delivered output, invariant under sharding (how
    /// the output is split across PEs), so clients can compare runs.
    /// For `reduce` it is order-insensitive (the output is a multiset);
    /// for `sort`/`zip` it mixes in global positions (the output is a
    /// sequence, so order damage must change the digest).
    pub digest: u64,
    /// Global input elements processed.
    pub elems: u64,
    /// Global output elements delivered.
    pub output_elems: u64,
    /// Wall-clock milliseconds on PE 0 (not comparable across runs).
    pub wall_ms: u64,
    /// Per-phase timing (queue wait / execution / checking), measured
    /// by the worker; `queue_wait_ms` is stamped from the scheduler's
    /// admission record. Part of the canonical serialization, so it is
    /// sealed into the ledger with everything else.
    pub timing: Option<ReceiptTiming>,
    /// Per-job communication volumes (present on PE 0's receipt).
    pub comm: Option<ReceiptComm>,
    /// SHA-256 (hex) of the spec's canonical JSON (minus `job_id`),
    /// stamped by the daemon at completion; drives `(tenant, job_id)`
    /// idempotency (`docs/PROTOCOL.md` §7). `None` outside a service.
    pub spec_fingerprint: Option<String>,
    /// SHA-256 (hex) of this receipt's canonical serialization
    /// (`docs/PROTOCOL.md` §6.2), stamped when the receipt is sealed
    /// into the ledger. `None` until ledgered.
    pub content_hash: Option<String>,
    /// Chain hash of the previous ledgered receipt from the same tenant
    /// (the all-zeros genesis hash for the tenant's first entry), per
    /// `docs/PROTOCOL.md` §6.3. `None` until ledgered.
    pub prev_hash: Option<String>,
}

impl Receipt {
    /// Encode for the client protocol.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(&'static str, Json)> = vec![
            ("job_id", Json::from(self.job_id)),
            ("op", Json::from(self.op.name())),
            ("admit_seq", Json::from(self.admit_seq)),
            ("verdict", Json::from(self.verdict.name())),
            (
                "retries",
                Json::from(match self.verdict {
                    Verdict::VerifiedAfterRetry(r) => r as u64,
                    _ => 0,
                }),
            ),
            ("result_ok", Json::from(self.verdict.result_ok())),
            ("digest", Json::from(self.digest)),
            ("elems", Json::from(self.elems)),
            ("output_elems", Json::from(self.output_elems)),
            ("wall_ms", Json::from(self.wall_ms)),
        ];
        if let Some(tenant) = &self.tenant {
            pairs.push(("tenant", Json::from(tenant.as_str())));
        }
        pairs.push((
            "check",
            Json::obj([
                ("iterations", Json::from(self.check.iterations as u64)),
                ("buckets", Json::from(self.check.buckets as u64)),
                ("log2_rhat", Json::from(self.check.log2_rhat as u64)),
                ("adaptive", Json::Bool(self.check.adaptive)),
            ]),
        ));
        if let Some(timing) = &self.timing {
            pairs.push((
                "timing",
                Json::obj([
                    ("queue_wait_ms", Json::from(timing.queue_wait_ms)),
                    ("exec_ms", Json::from(timing.exec_ms)),
                    ("check_ms", Json::from(timing.check_ms)),
                ]),
            ));
        }
        if let Some(comm) = &self.comm {
            pairs.push((
                "comm",
                Json::obj([
                    ("total_bytes", Json::from(comm.total_bytes)),
                    ("bottleneck_bytes", Json::from(comm.bottleneck_bytes)),
                    ("total_msgs", Json::from(comm.total_msgs)),
                    ("max_rounds", Json::from(comm.max_rounds)),
                ]),
            ));
        }
        if let Some(fp) = &self.spec_fingerprint {
            pairs.push(("spec_fingerprint", Json::from(fp.as_str())));
        }
        if let Some(hash) = &self.content_hash {
            pairs.push(("content_hash", Json::from(hash.as_str())));
        }
        if let Some(hash) = &self.prev_hash {
            pairs.push(("prev_hash", Json::from(hash.as_str())));
        }
        Json::obj(pairs)
    }

    /// The receipt's canonical serialization (`docs/PROTOCOL.md` §6.2):
    /// the single-line JSON rendering with keys in byte-sorted order and
    /// the `content_hash` / `prev_hash` members removed — exactly the
    /// bytes the ledger content-hashes. Deterministic: the codec renders
    /// object keys sorted (`BTreeMap`) and integers exactly (`i128`,
    /// never floats), so the same receipt always produces the same
    /// bytes.
    pub fn canonical_json(&self) -> String {
        let mut json = self.to_json();
        if let Json::Obj(map) = &mut json {
            map.remove("content_hash");
            map.remove("prev_hash");
        }
        json.render()
    }

    /// SHA-256 (hex) of [`Receipt::canonical_json`] — the receipt's
    /// identity in the ledger. Self-contained: any holder of the receipt
    /// JSON can recompute and compare it, with no access to the service.
    ///
    /// ```
    /// use ccheck_service::Receipt;
    ///
    /// let receipt = Receipt::example();
    /// let hash = receipt.content_hash();
    /// assert_eq!(hash.len(), 64, "hex-encoded SHA-256");
    /// // The hash covers the canonical bytes, not the sealed fields:
    /// let mut sealed = receipt.clone();
    /// sealed.content_hash = Some(hash.clone());
    /// assert_eq!(sealed.content_hash(), hash);
    /// ```
    pub fn content_hash(&self) -> String {
        ccheck_hashing::sha256_hex(self.canonical_json().as_bytes())
    }

    /// A fixed, fully populated receipt for documentation examples and
    /// the `docs/PROTOCOL.md` §6.2 worked example (byte-asserted in the
    /// ledger's unit tests).
    pub fn example() -> Receipt {
        Receipt {
            job_id: 7,
            op: JobOp::Reduce,
            tenant: Some("acme".into()),
            admit_seq: 3,
            verdict: Verdict::VerifiedAfterRetry(1),
            check: CheckUsed {
                iterations: 2,
                buckets: 16,
                log2_rhat: 10,
                adaptive: true,
            },
            digest: 1234567890123456789,
            elems: 100000,
            output_elems: 1000,
            wall_ms: 42,
            // Phases nest inside the 42 ms wall clock (5 ms of queue
            // wait precede it).
            timing: Some(ReceiptTiming {
                queue_wait_ms: 5,
                exec_ms: 30,
                check_ms: 7,
            }),
            comm: Some(ReceiptComm {
                total_bytes: 4096,
                bottleneck_bytes: 1024,
                total_msgs: 77,
                max_rounds: 12,
            }),
            // The fingerprint of the spec this receipt answers:
            // `JobSpec { tenant: Some("acme"), check: CheckMode::Adaptive,
            // job_id: Some(7), ..JobSpec::default() }` (see the
            // fingerprint doc and `docs/PROTOCOL.md` §7).
            spec_fingerprint: Some(
                "3c2dda6ed69065bba00b066d354918cef719a9d24b65dbefe6a6646ca58ab73b".into(),
            ),
            content_hash: None,
            prev_hash: None,
        }
    }

    /// Decode from the client protocol.
    pub fn from_json(v: &Json) -> Result<Receipt, String> {
        let field = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("receipt missing {key}"))
        };
        let verdict = match v.get("verdict").and_then(Json::as_str) {
            Some("verified") => Verdict::Verified,
            Some("retried") => Verdict::VerifiedAfterRetry(field("retries")? as u32),
            Some("fellback") => Verdict::FellBack,
            Some("rejected") => Verdict::Rejected,
            other => return Err(format!("bad verdict {other:?}")),
        };
        // Optional for protocol compatibility with pre-observability
        // receipts.
        let timing = match v.get("timing") {
            None | Some(Json::Null) => None,
            Some(t) => {
                let sub = |key: &str| -> Result<u64, String> {
                    t.get(key)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("receipt timing missing {key}"))
                };
                Some(ReceiptTiming {
                    queue_wait_ms: sub("queue_wait_ms")?,
                    exec_ms: sub("exec_ms")?,
                    check_ms: sub("check_ms")?,
                })
            }
        };
        let comm = match v.get("comm") {
            None | Some(Json::Null) => None,
            Some(c) => {
                let sub = |key: &str| -> Result<u64, String> {
                    c.get(key)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("receipt comm missing {key}"))
                };
                Some(ReceiptComm {
                    total_bytes: sub("total_bytes")?,
                    bottleneck_bytes: sub("bottleneck_bytes")?,
                    total_msgs: sub("total_msgs")?,
                    max_rounds: sub("max_rounds")?,
                })
            }
        };
        // Optional for protocol compatibility with pre-scheduler receipts.
        let check = match v.get("check") {
            None | Some(Json::Null) => CheckUsed::default(),
            Some(c) => {
                let sub = |key: &str| -> Result<u64, String> {
                    c.get(key)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("receipt check missing {key}"))
                };
                CheckUsed {
                    iterations: sub("iterations")? as u32,
                    buckets: sub("buckets")? as u32,
                    log2_rhat: sub("log2_rhat")? as u32,
                    adaptive: c.get("adaptive").and_then(Json::as_bool).unwrap_or(false),
                }
            }
        };
        Ok(Receipt {
            job_id: field("job_id")?,
            op: JobOp::parse(
                v.get("op")
                    .and_then(Json::as_str)
                    .ok_or("receipt missing op")?,
            )?,
            tenant: match v.get("tenant") {
                None | Some(Json::Null) => None,
                Some(t) => Some(t.as_str().ok_or("tenant must be a string")?.to_string()),
            },
            admit_seq: v.get("admit_seq").and_then(Json::as_u64).unwrap_or(0),
            verdict,
            check,
            digest: field("digest")?,
            elems: field("elems")?,
            output_elems: field("output_elems")?,
            wall_ms: field("wall_ms")?,
            timing,
            comm,
            spec_fingerprint: opt_str(v, "spec_fingerprint")?,
            content_hash: opt_str(v, "content_hash")?,
            prev_hash: opt_str(v, "prev_hash")?,
        })
    }
}

/// Optional string member of a JSON object (`None` when absent or null).
fn opt_str(v: &Json, key: &str) -> Result<Option<String>, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(j) => Ok(Some(
            j.as_str()
                .ok_or_else(|| format!("{key} must be a string"))?
                .to_string(),
        )),
    }
}

/// Control-plane message broadcast from PE 0 to every daemon.
#[derive(Debug, Clone, PartialEq)]
pub enum CtlMsg {
    /// Run `spec` as job `job_id` in slot `slot` (scope `slot + 1`).
    Admit {
        /// Service-assigned job id.
        job_id: u64,
        /// In-flight slot index (determines the tag scope).
        slot: u32,
        /// 1-based position in the world's admission order, stamped
        /// into the receipt as `admit_seq`. Broadcast explicitly (not
        /// derived from per-PE admit counts) so a restarted world
        /// resumes numbering after the ledger's replayed maximum.
        seq: u64,
        /// Milliseconds the job spent in the submission queue before
        /// this admission, measured by the scheduler on PE 0 and
        /// broadcast so every PE stamps the same receipt timing.
        queue_wait_ms: u64,
        /// The job to run.
        spec: JobSpec,
    },
    /// Collective metrics gather: every PE contributes its observability
    /// snapshot over the control scope; PE 0 merges the world view and
    /// answers the waiting `metrics` protocol clients.
    Metrics,
    /// Collective trace gather: every PE contributes its span-ring
    /// snapshot over the control scope; PE 0 filters the named job's
    /// events into one merged cross-PE timeline and answers the
    /// waiting `timeline` protocol clients.
    Trace {
        /// The job whose timeline was requested.
        job_id: u64,
    },
    /// Drain complete: join workers, barrier, exit.
    Shutdown,
}

impl Wire for CtlMsg {
    fn write(&self, buf: &mut Vec<u8>) {
        match self {
            CtlMsg::Admit {
                job_id,
                slot,
                seq,
                queue_wait_ms,
                spec,
            } => {
                1u8.write(buf);
                job_id.write(buf);
                slot.write(buf);
                seq.write(buf);
                queue_wait_ms.write(buf);
                spec.write(buf);
            }
            CtlMsg::Metrics => 2u8.write(buf),
            CtlMsg::Trace { job_id } => {
                3u8.write(buf);
                job_id.write(buf);
            }
            CtlMsg::Shutdown => 0u8.write(buf),
        }
    }

    fn read(input: &mut &[u8]) -> Option<Self> {
        match u8::read(input)? {
            1 => Some(CtlMsg::Admit {
                job_id: u64::read(input)?,
                slot: u32::read(input)?,
                seq: u64::read(input)?,
                queue_wait_ms: u64::read(input)?,
                spec: JobSpec::read(input)?,
            }),
            2 => Some(CtlMsg::Metrics),
            3 => Some(CtlMsg::Trace {
                job_id: u64::read(input)?,
            }),
            0 => Some(CtlMsg::Shutdown),
            _ => None,
        }
    }

    fn wire_size(&self) -> usize {
        match self {
            CtlMsg::Admit { spec, .. } => 1 + 8 + 4 + 8 + 8 + spec.wire_size(),
            CtlMsg::Metrics => 1,
            CtlMsg::Trace { .. } => 1 + 8,
            CtlMsg::Shutdown => 1,
        }
    }
}

/// Client-visible job status.
//
// `Done` dwarfs the other variants, but the receipt is the whole point
// of a finished job's status and statuses live one-per-job — boxing
// would trade an indirection on every poll/wait for nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatus {
    /// Accepted, waiting for a free slot.
    Queued,
    /// Admitted to the world, executing.
    Running,
    /// Complete, receipt available.
    Done(Receipt),
    /// Accepted but never run: the scheduler refused it while queued
    /// (e.g. its admission deadline expired). The reason carries a
    /// retry hint.
    Refused(String),
}

impl JobStatus {
    /// Protocol name of the state.
    pub fn name(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done(_) => "done",
            JobStatus::Refused(_) => "refused",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccheck_net::wire;

    fn specs() -> Vec<JobSpec> {
        vec![
            JobSpec::default(),
            JobSpec {
                op: JobOp::Sort,
                n: 12345,
                keys: 1 << 20,
                seed: u64::MAX,
                chunk: 4096,
                iterations: 2,
                buckets: 64,
                log2_rhat: 12,
                max_retries: 0,
                fault: Some(FaultSpec {
                    kind: "dupneighbor".into(),
                    seed: 7,
                }),
                tenant: Some("team-a".into()),
                priority: 7,
                deadline_ms: Some(2_500),
                check: CheckMode::Adaptive,
                job_id: Some(42),
            },
            JobSpec {
                op: JobOp::Zip,
                chunk: 1,
                fault: Some(FaultSpec {
                    kind: "swappairs".into(),
                    seed: 0,
                }),
                ..JobSpec::default()
            },
            JobSpec {
                tenant: Some("b".into()),
                deadline_ms: Some(0),
                ..JobSpec::default()
            },
        ]
    }

    #[test]
    fn spec_wire_roundtrip() {
        for spec in specs() {
            let encoded = wire::encode(&spec);
            assert_eq!(encoded.len(), spec.wire_size());
            let decoded: JobSpec = wire::decode(&encoded).expect("decodes");
            assert_eq!(decoded, spec);
        }
    }

    #[test]
    fn spec_json_roundtrip() {
        for spec in specs() {
            let json = spec.to_json();
            let parsed = crate::json::parse(&json.render()).unwrap();
            assert_eq!(JobSpec::from_json(&parsed).unwrap(), spec);
        }
    }

    #[test]
    fn spec_json_defaults_fill_in() {
        let parsed = crate::json::parse(r#"{"op":"sort","n":42}"#).unwrap();
        let spec = JobSpec::from_json(&parsed).unwrap();
        assert_eq!(spec.op, JobOp::Sort);
        assert_eq!(spec.n, 42);
        assert_eq!(spec.iterations, JobSpec::default().iterations);
        assert_eq!(spec.fault, None);
        // Absent scheduling fields decode to the PR-4 semantics.
        assert_eq!(spec.tenant, None);
        assert_eq!(spec.priority, 0);
        assert_eq!(spec.deadline_ms, None);
        assert_eq!(spec.check, CheckMode::Explicit);
        assert_eq!(spec.job_id, None);
    }

    #[test]
    fn default_spec_json_has_no_scheduling_fields() {
        // PR-4-shape submissions render identically: the scheduling
        // fields appear only when set.
        let rendered = JobSpec::default().to_json().render();
        for key in ["tenant", "priority", "deadline_ms", "check", "job_id"] {
            assert!(!rendered.contains(key), "{key} leaked into {rendered}");
        }
    }

    #[test]
    fn spec_validation_rejects_nonsense() {
        let bad = [
            JobSpec {
                n: 0,
                ..JobSpec::default()
            },
            JobSpec {
                buckets: 3,
                ..JobSpec::default()
            },
            // 1 is a power of two but below the checker's d >= 2 floor;
            // it must be refused here, not panic inside the job worker.
            JobSpec {
                buckets: 1,
                ..JobSpec::default()
            },
            JobSpec {
                log2_rhat: 0,
                ..JobSpec::default()
            },
            JobSpec {
                log2_rhat: 63,
                ..JobSpec::default()
            },
            JobSpec {
                iterations: 0,
                ..JobSpec::default()
            },
            // One-shot jobs materialize O(n/p) per PE: a huge n must be
            // refused (it would OOM the shared world), even though the
            // same n is fine for a bounded-memory chunked reduce.
            JobSpec {
                n: 1 << 30,
                chunk: 0,
                ..JobSpec::default()
            },
            JobSpec {
                op: JobOp::Sort,
                n: 1 << 30,
                chunk: 4096,
                ..JobSpec::default()
            },
            JobSpec {
                n: 1 << 30,
                chunk: 4096,
                keys: 1 << 30,
                ..JobSpec::default()
            },
            JobSpec {
                tenant: Some("".into()),
                ..JobSpec::default()
            },
            JobSpec {
                tenant: Some("has space".into()),
                ..JobSpec::default()
            },
            JobSpec {
                tenant: Some("x".repeat(65)),
                ..JobSpec::default()
            },
            JobSpec {
                priority: 1_000_001,
                ..JobSpec::default()
            },
            JobSpec {
                job_id: Some(0),
                ..JobSpec::default()
            },
        ];
        for spec in bad {
            assert!(spec.validate().is_err(), "{spec:?}");
        }
        assert!(JobSpec::default().validate().is_ok());
        // The bounded-memory mode keeps its big-data cap.
        assert!(JobSpec {
            n: 1 << 30,
            chunk: 4096,
            ..JobSpec::default()
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn ctl_msg_wire_roundtrip() {
        for msg in [
            CtlMsg::Shutdown,
            CtlMsg::Metrics,
            CtlMsg::Trace { job_id: 12 },
            CtlMsg::Admit {
                job_id: 7,
                slot: 3,
                seq: 19,
                queue_wait_ms: 250,
                spec: specs().remove(1),
            },
        ] {
            let encoded = wire::encode(&msg);
            assert_eq!(encoded.len(), msg.wire_size());
            assert_eq!(wire::decode::<CtlMsg>(&encoded), Some(msg));
        }
    }

    #[test]
    fn receipt_json_roundtrip() {
        let receipt = Receipt {
            job_id: 9,
            op: JobOp::Reduce,
            tenant: Some("team-a".into()),
            admit_seq: 4,
            verdict: Verdict::VerifiedAfterRetry(2),
            check: CheckUsed {
                iterations: 4,
                buckets: 16,
                log2_rhat: 9,
                adaptive: true,
            },
            digest: 0xDEAD_BEEF_CAFE,
            elems: 1_000_000,
            output_elems: 999,
            wall_ms: 123,
            timing: Some(ReceiptTiming {
                queue_wait_ms: 17,
                exec_ms: 90,
                check_ms: 33,
            }),
            comm: Some(ReceiptComm {
                total_bytes: 4096,
                bottleneck_bytes: 1024,
                total_msgs: 77,
                max_rounds: 12,
            }),
            spec_fingerprint: Some("ab".repeat(32)),
            content_hash: Some("cd".repeat(32)),
            prev_hash: Some("0".repeat(64)),
        };
        let parsed = crate::json::parse(&receipt.to_json().render()).unwrap();
        assert_eq!(Receipt::from_json(&parsed).unwrap(), receipt);

        let bare = Receipt {
            comm: None,
            timing: None,
            tenant: None,
            verdict: Verdict::Rejected,
            spec_fingerprint: None,
            content_hash: None,
            prev_hash: None,
            ..receipt
        };
        let parsed = crate::json::parse(&bare.to_json().render()).unwrap();
        assert_eq!(Receipt::from_json(&parsed).unwrap(), bare);
    }

    #[test]
    fn canonical_json_excludes_seal_fields_and_is_stable() {
        // PROTOCOL.md §6.2: the canonical form covers every receipt
        // member *except* content_hash/prev_hash, so sealing a receipt
        // does not change its content hash.
        let unsealed = Receipt::example();
        let mut sealed = unsealed.clone();
        sealed.content_hash = Some(unsealed.content_hash());
        sealed.prev_hash = Some("0".repeat(64));
        assert_eq!(sealed.canonical_json(), unsealed.canonical_json());
        assert_eq!(sealed.content_hash(), unsealed.content_hash());
        // But the covered fields do bind: any content change rehashes.
        let mut tampered = sealed.clone();
        tampered.digest ^= 1;
        assert_ne!(tampered.content_hash(), sealed.content_hash());
    }

    #[test]
    fn spec_fingerprint_ignores_job_id_only() {
        // §7: the same work under different client-chosen ids must
        // fingerprint identically…
        let a = JobSpec {
            job_id: Some(1),
            ..JobSpec::default()
        };
        let b = JobSpec {
            job_id: Some(2),
            ..JobSpec::default()
        };
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), JobSpec::default().fingerprint());
        assert_eq!(a.fingerprint().len(), 64);
        // …while any real spec difference must not.
        let c = JobSpec {
            seed: 999,
            ..JobSpec::default()
        };
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn verdict_result_ok() {
        assert!(Verdict::Verified.result_ok());
        assert!(Verdict::VerifiedAfterRetry(1).result_ok());
        assert!(Verdict::FellBack.result_ok());
        assert!(!Verdict::Rejected.result_ok());
    }

    #[test]
    fn op_names_roundtrip() {
        for op in [JobOp::Reduce, JobOp::Sort, JobOp::Zip] {
            assert_eq!(JobOp::parse(op.name()).unwrap(), op);
        }
        assert!(JobOp::parse("join").is_err());
    }
}

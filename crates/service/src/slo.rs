//! Declarative service-level objectives over the watch-sample stream.
//!
//! The paper's service story is quantitative end to end: checking cost,
//! queue wait, verify outcomes. This module closes the loop by letting
//! an operator *declare* the quantities that matter — exec-latency
//! quantiles, the verify-failure error budget, per-PE heartbeat
//! availability — and having PE 0 account for them continuously.
//!
//! ## Model
//!
//! An [`SloSpec`] is one objective over a sliding wall-clock window:
//!
//! * **`latency_p95`** — the completed-job wall-time p95 must stay at
//!   or below `max_ms`. Each watch sample where it does not is a *bad*
//!   sample.
//! * **`error_budget`** — of the jobs completed inside the window, the
//!   verify-failure fraction (`FellBack` + `Rejected` verdicts, the
//!   cumulative `failed` counter differenced across the window) must
//!   stay within `budget`.
//! * **`availability`** — the healthy-PE fraction (from the sample's
//!   own liveness counts, so world size needs no side channel) must
//!   stay at or above `min_healthy`; samples below it are bad.
//!
//! Every objective carries a `budget`: the tolerated bad fraction of
//! the window (for `error_budget` the tolerated failure fraction
//! itself). The **burn rate** is `actual bad fraction / budget` — the
//! standard SRE figure: burn 1.0 means the budget is being consumed
//! exactly as fast as the window replenishes it; sustained burn ≥ 1.0
//! means the objective is violated and the alert **fires**. Burn and
//! remaining budget are reported in permille so every surface (JSON
//! protocol, Prometheus gauges, docs examples) renders them as exact
//! integers.
//!
//! ## Determinism and refold
//!
//! The engine consumes nothing but the [`WatchSample`] stream — every
//! input it folds is in the durable history record — so a restarted
//! PE 0 replays the history file through [`SloEngine::observe`] with
//! `live = false` and arrives at bit-identical window state and burn
//! rates, without re-emitting alerts that are already on disk (the
//! crash-recovery e2e asserts exactly this).

use std::collections::VecDeque;

use crate::health::WatchSample;
use crate::json::{self, Json};

/// Permille helper: `1000 * num / den`, saturating, 0 when `den` is 0.
fn permille(num: f64, den: f64) -> u64 {
    if den <= 0.0 || !num.is_finite() {
        return 0;
    }
    let p = (1000.0 * num / den).round();
    if p.is_sign_negative() {
        0
    } else if p >= u64::MAX as f64 {
        u64::MAX
    } else {
        p as u64
    }
}

/// What a single objective measures. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub enum SloKind {
    /// Completed-job wall p95 must be ≤ `max_ms`.
    LatencyP95 {
        /// The p95 ceiling, milliseconds.
        max_ms: u64,
    },
    /// Windowed verify-failure fraction must be ≤ the spec's `budget`.
    ErrorBudget,
    /// Healthy-PE fraction must be ≥ `min_healthy` (0..=1).
    Availability {
        /// Minimum healthy fraction of the world.
        min_healthy: f64,
    },
}

impl SloKind {
    /// The spec-file / protocol name of this kind.
    pub fn name(&self) -> &'static str {
        match self {
            SloKind::LatencyP95 { .. } => "latency_p95",
            SloKind::ErrorBudget => "error_budget",
            SloKind::Availability { .. } => "availability",
        }
    }
}

/// One declared objective (one line of the `--slo` file).
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Operator-chosen identifier; unique per file, used in alerts,
    /// gauges, and reports.
    pub name: String,
    /// What is measured.
    pub kind: SloKind,
    /// Sliding window, wall-clock milliseconds.
    pub window_ms: u64,
    /// Tolerated bad fraction of the window (0, 1]; for
    /// [`SloKind::ErrorBudget`] the tolerated failure fraction.
    pub budget: f64,
}

impl SloSpec {
    /// Parse one spec line, e.g.
    /// `{"slo":"latency_p95","name":"exec","max_ms":250,"window_ms":60000,"budget":0.1}`.
    pub fn from_json(v: &Json) -> Result<SloSpec, String> {
        let kind_name = v
            .get("slo")
            .and_then(Json::as_str)
            .ok_or("spec line needs a \"slo\" kind")?;
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or("spec line needs a \"name\"")?
            .to_string();
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(format!("slo name {name:?} must be [A-Za-z0-9_-]+"));
        }
        let window_ms = v
            .get("window_ms")
            .and_then(Json::as_u64)
            .ok_or("spec line needs a numeric \"window_ms\"")?;
        if window_ms == 0 {
            return Err("window_ms must be positive".into());
        }
        let budget = v
            .get("budget")
            .and_then(Json::as_f64)
            .unwrap_or(match kind_name {
                // Binary objectives tolerate 1% bad samples by default;
                // the failure budget has no sensible default — require it.
                "latency_p95" | "availability" => 0.01,
                _ => -1.0,
            });
        if !(budget > 0.0 && budget <= 1.0) {
            return Err(format!(
                "slo {name:?}: budget must be in (0, 1], got {budget}"
            ));
        }
        let kind = match kind_name {
            "latency_p95" => SloKind::LatencyP95 {
                max_ms: v
                    .get("max_ms")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("slo {name:?}: latency_p95 needs \"max_ms\""))?,
            },
            "error_budget" => SloKind::ErrorBudget,
            "availability" => {
                let min_healthy = v
                    .get("min_healthy")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("slo {name:?}: availability needs \"min_healthy\""))?;
                if !(0.0..=1.0).contains(&min_healthy) {
                    return Err(format!(
                        "slo {name:?}: min_healthy must be in [0, 1], got {min_healthy}"
                    ));
                }
                SloKind::Availability { min_healthy }
            }
            other => {
                return Err(format!(
                    "unknown slo kind {other:?} (latency_p95|error_budget|availability)"
                ))
            }
        };
        Ok(SloSpec {
            name,
            kind,
            window_ms,
            budget,
        })
    }
}

/// Parse a whole `--slo` file: one JSON object per line, `#` comments
/// and blank lines ignored. Names must be unique.
pub fn parse_specs(text: &str) -> Result<Vec<SloSpec>, String> {
    let mut specs: Vec<SloSpec> = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("slo line {}: {e}", idx + 1))?;
        let spec = SloSpec::from_json(&v).map_err(|e| format!("slo line {}: {e}", idx + 1))?;
        if specs.iter().any(|s| s.name == spec.name) {
            return Err(format!(
                "slo line {}: duplicate name {:?}",
                idx + 1,
                spec.name
            ));
        }
        specs.push(spec);
    }
    Ok(specs)
}

/// A breach-state transition: the durable record appended to the
/// history file (kind `alert`) and streamed by the `alerts` command.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertEvent {
    /// Wall clock of the transition, Unix epoch ms (the sample's
    /// `wall_ms` — replay reproduces it exactly).
    pub at_ms: u64,
    /// The objective's name.
    pub slo: String,
    /// `true` when the objective started firing, `false` on resolve.
    pub firing: bool,
    /// Burn rate at the transition, permille (1000 = consuming budget
    /// exactly at the replenishment rate).
    pub burn_permille: u64,
    /// Human-readable cause, e.g. `p95 812 ms > max 250 ms`.
    pub detail: String,
}

impl AlertEvent {
    /// Canonical protocol JSON (sorted keys, single line).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("at_ms", Json::from(self.at_ms)),
            ("burn_permille", Json::from(self.burn_permille)),
            ("detail", Json::from(self.detail.as_str())),
            (
                "kind",
                Json::from(if self.firing { "firing" } else { "resolved" }),
            ),
            ("slo", Json::from(self.slo.as_str())),
        ])
    }

    /// Parse the canonical JSON (history replay and clients).
    pub fn from_json(v: &Json) -> Result<AlertEvent, String> {
        let num = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("alert missing numeric {key:?}"))
        };
        let s = |key: &str| -> Result<String, String> {
            Ok(v.get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("alert missing string {key:?}"))?
                .to_string())
        };
        let firing = match s("kind")?.as_str() {
            "firing" => true,
            "resolved" => false,
            other => return Err(format!("alert kind {other:?} not firing|resolved")),
        };
        Ok(AlertEvent {
            at_ms: num("at_ms")?,
            slo: s("slo")?,
            firing,
            burn_permille: num("burn_permille")?,
            detail: s("detail")?,
        })
    }
}

/// One sample's contribution to an objective's window.
#[derive(Debug, Clone, Copy)]
struct Point {
    wall_ms: u64,
    bad: bool,
    done: u64,
    failed: u64,
}

/// Live evaluation state for one objective.
#[derive(Debug)]
struct SloState {
    spec: SloSpec,
    /// Window points, oldest first. The front point may be older than
    /// the window: it is kept as the *anchor* so cumulative counters
    /// difference across the full window span.
    window: VecDeque<Point>,
    firing: bool,
    burn_permille: u64,
    breaches: u64,
}

impl SloState {
    /// Fold one sample; returns the transition event, if any.
    fn observe(&mut self, s: &WatchSample) -> Option<AlertEvent> {
        let world = s.healthy + s.suspect + s.dead;
        let bad = match &self.spec.kind {
            SloKind::LatencyP95 { max_ms } => s.p95_ms > *max_ms,
            SloKind::ErrorBudget => false, // measured via cumulative deltas
            SloKind::Availability { min_healthy } => {
                (s.healthy as f64) < min_healthy * world.max(1) as f64
            }
        };
        self.window.push_back(Point {
            wall_ms: s.wall_ms,
            bad,
            done: s.jobs_done,
            failed: s.jobs_failed,
        });
        let cutoff = s.wall_ms.saturating_sub(self.spec.window_ms);
        while self.window.len() >= 2 && self.window[1].wall_ms < cutoff {
            self.window.pop_front();
        }
        let bad_fraction = match &self.spec.kind {
            SloKind::ErrorBudget => {
                let anchor = self.window.front().expect("just pushed");
                let newest = self.window.back().expect("just pushed");
                let done = newest.done.saturating_sub(anchor.done);
                let failed = newest.failed.saturating_sub(anchor.failed);
                if done == 0 {
                    0.0
                } else {
                    failed as f64 / done as f64
                }
            }
            _ => {
                let in_window = self.window.iter().filter(|p| p.wall_ms >= cutoff);
                let (mut total, mut bad_n) = (0u64, 0u64);
                for p in in_window {
                    total += 1;
                    bad_n += u64::from(p.bad);
                }
                if total == 0 {
                    0.0
                } else {
                    bad_n as f64 / total as f64
                }
            }
        };
        let burn = bad_fraction / self.spec.budget;
        self.burn_permille = permille(burn, 1.0);
        let now_firing = burn >= 1.0;
        if now_firing == self.firing {
            return None;
        }
        self.firing = now_firing;
        if now_firing {
            self.breaches += 1;
        }
        let detail = match &self.spec.kind {
            SloKind::LatencyP95 { max_ms } => {
                format!("p95 {} ms vs max {} ms", s.p95_ms, max_ms)
            }
            SloKind::ErrorBudget => format!(
                "windowed failure fraction {} permille vs budget {} permille",
                permille(bad_fraction, 1.0),
                permille(self.spec.budget, 1.0)
            ),
            SloKind::Availability { min_healthy } => format!(
                "{}/{} PEs healthy vs min {} permille",
                s.healthy,
                world,
                permille(*min_healthy, 1.0)
            ),
        };
        Some(AlertEvent {
            at_ms: s.wall_ms,
            slo: self.spec.name.clone(),
            firing: now_firing,
            burn_permille: self.burn_permille,
            detail,
        })
    }

    /// Remaining budget, permille of the window's allowance.
    fn budget_remaining_permille(&self) -> u64 {
        1000u64.saturating_sub(self.burn_permille)
    }
}

/// One objective's current standing, for `health`/`alerts` responses.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// The objective's name.
    pub name: String,
    /// The kind name (`latency_p95` | `error_budget` | `availability`).
    pub kind: String,
    /// The sliding window, ms.
    pub window_ms: u64,
    /// Current burn rate, permille.
    pub burn_permille: u64,
    /// Remaining budget, permille (0 once burning at or past 1.0).
    pub budget_remaining_permille: u64,
    /// Is the alert currently firing?
    pub firing: bool,
    /// Firing transitions since startup (replayed state included).
    pub breaches: u64,
}

impl SloStatus {
    /// Protocol JSON (sorted keys).
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "budget_remaining_permille",
                Json::from(self.budget_remaining_permille),
            ),
            ("burn_permille", Json::from(self.burn_permille)),
            ("breaches", Json::from(self.breaches)),
            ("firing", Json::from(self.firing)),
            ("kind", Json::from(self.kind.as_str())),
            ("name", Json::from(self.name.as_str())),
            ("window_ms", Json::from(self.window_ms)),
        ])
    }
}

/// Alert events retained in memory for the `alerts` command.
const RECENT_CAP: usize = 128;

/// The PE-0 SLO evaluator: folds the watch-sample stream through every
/// declared objective and reports transitions. See the module docs for
/// the refold-determinism contract.
#[derive(Debug)]
pub struct SloEngine {
    slos: Vec<SloState>,
    recent: VecDeque<AlertEvent>,
}

impl SloEngine {
    /// An engine over `specs` (typically [`parse_specs`] of the
    /// `--slo` file).
    pub fn new(specs: Vec<SloSpec>) -> SloEngine {
        SloEngine {
            slos: specs
                .into_iter()
                .map(|spec| SloState {
                    spec,
                    window: VecDeque::new(),
                    firing: false,
                    burn_permille: 0,
                    breaches: 0,
                })
                .collect(),
            recent: VecDeque::new(),
        }
    }

    /// Fold one watch sample through every objective, returning the
    /// breach-state transitions it caused. `live = false` is the
    /// history-replay mode: window state, burn rates, firing flags, and
    /// breach counts update identically, but transitions are *not*
    /// returned or retained (the durable alert records are the replay
    /// source for the ring — see [`SloEngine::restore_event`], which
    /// also survives compaction of the samples that caused them) and no
    /// metrics are touched.
    pub fn observe(&mut self, sample: &WatchSample, live: bool) -> Vec<AlertEvent> {
        let mut events = Vec::new();
        for slo in &mut self.slos {
            if let Some(ev) = slo.observe(sample) {
                if live {
                    events.push(ev);
                }
            }
        }
        if live {
            for ev in &events {
                self.push_recent(ev.clone());
            }
            if ccheck_obs::enabled() {
                let registry = ccheck_obs::registry();
                for slo in &self.slos {
                    registry
                        .gauge(&format!("slo.budget_remaining.{}", slo.spec.name))
                        .set(slo.budget_remaining_permille() as i64);
                }
                for ev in events.iter().filter(|e| e.firing) {
                    let _ = ev;
                    registry.counter("slo.breaches_total").inc();
                }
            }
        }
        events
    }

    /// Restore one durable alert record into the retained ring during
    /// history replay (alert records survive compaction verbatim, so
    /// the ring outlives the raw samples that produced it).
    pub fn restore_event(&mut self, ev: AlertEvent) {
        self.push_recent(ev);
    }

    fn push_recent(&mut self, ev: AlertEvent) {
        if self.recent.len() == RECENT_CAP {
            self.recent.pop_front();
        }
        self.recent.push_back(ev);
    }

    /// Objectives currently firing.
    pub fn active_count(&self) -> u64 {
        self.slos.iter().filter(|s| s.firing).count() as u64
    }

    /// Every objective's current standing, in spec-file order.
    pub fn statuses(&self) -> Vec<SloStatus> {
        self.slos
            .iter()
            .map(|s| SloStatus {
                name: s.spec.name.clone(),
                kind: s.spec.kind.name().to_string(),
                window_ms: s.spec.window_ms,
                burn_permille: s.burn_permille,
                budget_remaining_permille: s.budget_remaining_permille(),
                firing: s.firing,
                breaches: s.breaches,
            })
            .collect()
    }

    /// The retained transition history, oldest first (bounded).
    pub fn recent(&self) -> impl Iterator<Item = &AlertEvent> {
        self.recent.iter()
    }

    /// Number of declared objectives.
    pub fn len(&self) -> usize {
        self.slos.len()
    }

    /// True when no objectives are declared.
    pub fn is_empty(&self) -> bool {
        self.slos.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(
        wall_ms: u64,
        p95: u64,
        done: u64,
        failed: u64,
        healthy: u64,
        dead: u64,
    ) -> WatchSample {
        WatchSample {
            seq: 0,
            at_ms: wall_ms,
            wall_ms,
            alerts: 0,
            jobs_done: done,
            jobs_failed: failed,
            jobs_refused: 0,
            queue_depth: 0,
            inflight: 0,
            healthy,
            suspect: 0,
            dead,
            p50_ms: p95 / 2,
            p95_ms: p95,
            tenants: Vec::new(),
        }
    }

    fn specs(text: &str) -> Vec<SloSpec> {
        parse_specs(text).expect("specs parse")
    }

    #[test]
    fn spec_file_parses_and_validates() {
        let parsed = specs(
            "# comment\n\
             {\"slo\":\"latency_p95\",\"name\":\"exec\",\"max_ms\":250,\"window_ms\":60000,\"budget\":0.2}\n\
             \n\
             {\"slo\":\"error_budget\",\"name\":\"verify\",\"budget\":0.1,\"window_ms\":30000}\n\
             {\"slo\":\"availability\",\"name\":\"pes\",\"min_healthy\":1.0,\"window_ms\":10000}\n",
        );
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].kind, SloKind::LatencyP95 { max_ms: 250 });
        assert_eq!(parsed[1].kind, SloKind::ErrorBudget);
        assert_eq!(parsed[2].kind, SloKind::Availability { min_healthy: 1.0 });
        assert!(
            (parsed[2].budget - 0.01).abs() < 1e-12,
            "binary default budget"
        );

        for bad in [
            "{\"slo\":\"latency_p95\",\"name\":\"x\",\"window_ms\":1000}",
            "{\"slo\":\"error_budget\",\"name\":\"x\",\"window_ms\":1000}",
            "{\"slo\":\"availability\",\"name\":\"x\",\"min_healthy\":2.0,\"window_ms\":1000}",
            "{\"slo\":\"nope\",\"name\":\"x\",\"window_ms\":1000}",
            "{\"slo\":\"error_budget\",\"name\":\"bad name\",\"budget\":0.1,\"window_ms\":1000}",
            "{\"slo\":\"error_budget\",\"name\":\"x\",\"budget\":0.1,\"window_ms\":0}",
        ] {
            assert!(parse_specs(bad).is_err(), "should reject: {bad}");
        }
        assert!(
            parse_specs(
                "{\"slo\":\"error_budget\",\"name\":\"x\",\"budget\":0.1,\"window_ms\":1}\n\
                 {\"slo\":\"error_budget\",\"name\":\"x\",\"budget\":0.2,\"window_ms\":1}"
            )
            .is_err(),
            "duplicate names rejected"
        );
    }

    #[test]
    fn latency_slo_fires_and_resolves() {
        let mut engine = SloEngine::new(specs(
            "{\"slo\":\"latency_p95\",\"name\":\"exec\",\"max_ms\":100,\"window_ms\":1000,\"budget\":0.5}",
        ));
        // Two good samples: burn 0.
        assert!(engine
            .observe(&sample(1000, 50, 1, 0, 4, 0), true)
            .is_empty());
        assert!(engine
            .observe(&sample(1100, 80, 2, 0, 4, 0), true)
            .is_empty());
        assert_eq!(engine.active_count(), 0);
        // Two bad samples push the windowed bad fraction to 2/4 = budget
        // → burn 1.0 → firing.
        assert!(engine
            .observe(&sample(1200, 150, 3, 0, 4, 0), true)
            .is_empty());
        let events = engine.observe(&sample(1300, 160, 4, 0, 4, 0), true);
        assert_eq!(events.len(), 1);
        assert!(events[0].firing);
        assert_eq!(events[0].burn_permille, 1000);
        assert_eq!(engine.active_count(), 1);
        assert_eq!(engine.statuses()[0].budget_remaining_permille, 0);
        // The window slides past the bad samples → resolved.
        let events = engine.observe(&sample(2500, 60, 5, 0, 4, 0), true);
        assert_eq!(events.len(), 1);
        assert!(!events[0].firing);
        assert_eq!(engine.active_count(), 0);
        assert_eq!(engine.statuses()[0].breaches, 1);
        assert_eq!(engine.recent().count(), 2);
    }

    #[test]
    fn error_budget_differences_cumulative_counters() {
        let mut engine = SloEngine::new(specs(
            "{\"slo\":\"error_budget\",\"name\":\"verify\",\"budget\":0.25,\"window_ms\":10000}",
        ));
        // 10 jobs, 1 failure: 10% < 25% budget.
        assert!(engine
            .observe(&sample(1000, 10, 0, 0, 4, 0), true)
            .is_empty());
        assert!(engine
            .observe(&sample(2000, 10, 10, 1, 4, 0), true)
            .is_empty());
        assert_eq!(engine.statuses()[0].burn_permille, 400);
        // 4 more failures in the window: 5/14 ≈ 36% > 25% → firing.
        let events = engine.observe(&sample(3000, 10, 14, 5, 4, 0), true);
        assert_eq!(events.len(), 1);
        assert!(events[0].firing);
        assert!(events[0].detail.contains("permille"));
        // Window slides beyond the failures; new clean completions
        // resolve the alert (delta failures 0).
        let events = engine.observe(&sample(14_000, 10, 20, 5, 4, 0), true);
        assert_eq!(events.len(), 1);
        assert!(!events[0].firing);
    }

    #[test]
    fn availability_uses_liveness_counts() {
        let mut engine = SloEngine::new(specs(
            "{\"slo\":\"availability\",\"name\":\"pes\",\"min_healthy\":1.0,\"window_ms\":1000,\"budget\":0.4}",
        ));
        assert!(engine
            .observe(&sample(500, 10, 0, 0, 4, 0), true)
            .is_empty());
        // 1 dead PE of 4: a bad sample; 1/2 ≥ 0.4 → fires immediately.
        let events = engine.observe(&sample(600, 10, 0, 0, 3, 1), true);
        assert_eq!(events.len(), 1);
        assert!(events[0].firing);
        assert!(events[0].detail.contains("3/4"));
    }

    /// The refold contract: replaying the same sample stream with
    /// `live = false` lands on identical burn rates, firing flags, and
    /// breach counts, and retains the same recent-event ring.
    #[test]
    fn replay_refolds_to_identical_state() {
        let text = "{\"slo\":\"latency_p95\",\"name\":\"exec\",\"max_ms\":100,\"window_ms\":1000,\"budget\":0.5}\n\
                    {\"slo\":\"error_budget\",\"name\":\"verify\",\"budget\":0.25,\"window_ms\":5000}";
        let stream: Vec<WatchSample> = (0..200)
            .map(|i| {
                let wall = 1000 + i * 137;
                let p95 = if i % 7 < 3 { 150 } else { 60 };
                let done = i;
                let failed = i / 3;
                sample(wall, p95, done, failed, 4, 0)
            })
            .collect();
        let mut live = SloEngine::new(specs(text));
        let mut live_events = Vec::new();
        for s in &stream {
            live_events.extend(live.observe(s, true));
        }
        let mut replayed = SloEngine::new(specs(text));
        for s in &stream {
            assert!(
                replayed.observe(s, false).is_empty(),
                "replay emits nothing"
            );
        }
        assert_eq!(live.statuses(), replayed.statuses());
        // The ring refills from the durable alert records, landing on
        // the exact live-run retention.
        for ev in &live_events {
            replayed.restore_event(ev.clone());
        }
        assert_eq!(
            live.recent().cloned().collect::<Vec<_>>(),
            replayed.recent().cloned().collect::<Vec<_>>()
        );
        assert!(!live_events.is_empty(), "the stream causes transitions");
    }

    #[test]
    fn alert_event_json_roundtrip_is_canonical() {
        let ev = AlertEvent {
            at_ms: 1_754_000_000_000,
            slo: "exec".into(),
            firing: true,
            burn_permille: 1500,
            detail: "p95 812 ms vs max 250 ms".into(),
        };
        let rendered = ev.to_json().render();
        assert_eq!(
            rendered,
            "{\"at_ms\":1754000000000,\"burn_permille\":1500,\
             \"detail\":\"p95 812 ms vs max 250 ms\",\"kind\":\"firing\",\"slo\":\"exec\"}"
        );
        let parsed = AlertEvent::from_json(&json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(parsed, ev);
    }
}

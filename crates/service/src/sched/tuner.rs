//! Receipt-driven adaptive checker tuning.
//!
//! The paper's checkers trade communication for confidence through
//! three knobs — iterations `its`, bucket count `b`, and modulus range
//! `r̂` — and partial re-execution verification systems (Yoon & Liu)
//! show the knob worth turning is *observed failure rate*: spend
//! verification effort where corruption has actually been seen. The
//! [`AdaptiveTuner`] closes that loop per tenant: jobs submitted with
//! [`crate::job::CheckMode::Adaptive`] run with a config drawn from a
//! fixed escalation ladder, the tenant climbs the ladder when its
//! receipts come back flagged (`FellBack`, `Rejected`, or verified only
//! after retries), and descends one rung after a clean streak.
//!
//! Every rung satisfies [`crate::JobSpec::validate`]'s bounds by
//! construction (unit-tested below), so a tuner pick can never panic a
//! job worker.

use std::collections::BTreeMap;

use crate::job::Verdict;

/// The escalation ladder, cheapest first: `(its, buckets, log2_rhat)`.
///
/// Rung 0 is the paper's minimal always-on sentinel (one iteration of a
/// tiny sketch); the top rung buys ~2⁻³⁸⁴-ish failure probability for
/// tenants whose pipelines keep producing corrupt outputs. All values
/// sit inside the `JobSpec::validate` bounds (iterations ≤ 64, buckets
/// a power of two in 2..=65536, `log₂ r̂` in 1..=62).
pub const LADDER: &[(u32, u32, u32)] = &[
    (1, 8, 8),
    (2, 16, 10),
    (4, 32, 12),
    (8, 128, 16),
    (16, 1024, 24),
];

/// Ladder rung a tenant starts on (the config closest to the PR-4
/// defaults in cost).
pub const START_LEVEL: usize = 1;

/// Consecutive clean (`Verified`, zero retries) receipts required
/// before relaxing one rung toward the cheap end.
pub const RELAX_AFTER: u32 = 3;

/// One tenant's position on the ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TunerState {
    /// Current ladder rung (index into [`LADDER`]).
    pub level: usize,
    /// Clean receipts since the last escalation or relaxation.
    pub clean_streak: u32,
}

impl Default for TunerState {
    fn default() -> Self {
        TunerState {
            level: START_LEVEL,
            clean_streak: 0,
        }
    }
}

/// Per-tenant adaptive `(its, b, r̂)` selection from observed receipts.
#[derive(Debug, Default)]
pub struct AdaptiveTuner {
    map: BTreeMap<String, TunerState>,
}

impl AdaptiveTuner {
    /// Fresh tuner; every tenant starts at [`START_LEVEL`].
    pub fn new() -> Self {
        AdaptiveTuner::default()
    }

    /// The `(its, buckets, log2_rhat)` the tenant's next adaptive job
    /// should run with.
    pub fn config_for(&self, tenant: &str) -> (u32, u32, u32) {
        LADDER[self.state(tenant).level]
    }

    /// The tenant's current ladder position.
    pub fn state(&self, tenant: &str) -> TunerState {
        self.map.get(tenant).copied().unwrap_or_default()
    }

    /// Feed one finished receipt's verdict back. Flagged jobs
    /// (rejected, fell back, or verified only after retries) escalate
    /// one rung — monotonically under a corrupt streak, saturating at
    /// the top. `RELAX_AFTER` consecutive clean receipts relax one rung
    /// toward the cheap end.
    pub fn observe(&mut self, tenant: &str, verdict: Verdict) {
        let state = self.map.entry(tenant.to_string()).or_default();
        match verdict {
            Verdict::Rejected | Verdict::FellBack | Verdict::VerifiedAfterRetry(_) => {
                state.level = (state.level + 1).min(LADDER.len() - 1);
                state.clean_streak = 0;
            }
            Verdict::Verified => {
                state.clean_streak += 1;
                if state.clean_streak >= RELAX_AFTER {
                    state.level = state.level.saturating_sub(1);
                    state.clean_streak = 0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;

    #[test]
    fn every_rung_satisfies_the_spec_bounds() {
        // A tuner pick must be admissible as-is: run each rung through
        // the same validation a hostile client submission gets, so a
        // chosen config can never panic the workers (the bounds mirror
        // SumCheckConfig::new's asserts).
        for &(its, buckets, log2_rhat) in LADDER {
            let spec = JobSpec {
                iterations: its,
                buckets,
                log2_rhat,
                ..JobSpec::default()
            };
            spec.validate()
                .unwrap_or_else(|e| panic!("ladder rung ({its},{buckets},{log2_rhat}): {e}"));
        }
        assert!(START_LEVEL < LADDER.len());
    }

    #[test]
    fn ladder_cost_is_strictly_increasing() {
        for w in LADDER.windows(2) {
            let (a, b) = (w[0], w[1]);
            assert!(a.0 <= b.0 && a.1 <= b.1 && a.2 <= b.2, "{a:?} !<= {b:?}");
            assert!(a != b);
        }
    }

    #[test]
    fn corrupt_streak_escalates_monotonically_and_saturates() {
        let mut tuner = AdaptiveTuner::new();
        let mut last = tuner.state("t").level;
        for i in 0..LADDER.len() + 3 {
            let verdict = if i % 2 == 0 {
                Verdict::Rejected
            } else {
                Verdict::FellBack
            };
            tuner.observe("t", verdict);
            let level = tuner.state("t").level;
            assert!(level >= last, "escalation must be monotone");
            last = level;
        }
        assert_eq!(last, LADDER.len() - 1, "saturates at the top rung");
        // Retried verdicts escalate too (the fast path failed once).
        let mut tuner = AdaptiveTuner::new();
        tuner.observe("t", Verdict::VerifiedAfterRetry(1));
        assert_eq!(tuner.state("t").level, START_LEVEL + 1);
    }

    #[test]
    fn clean_streak_relaxes_one_rung_at_a_time() {
        let mut tuner = AdaptiveTuner::new();
        for _ in 0..3 {
            tuner.observe("t", Verdict::Rejected);
        }
        let escalated = tuner.state("t").level;
        assert_eq!(escalated, (START_LEVEL + 3).min(LADDER.len() - 1));
        // Two clean receipts are not enough…
        tuner.observe("t", Verdict::Verified);
        tuner.observe("t", Verdict::Verified);
        assert_eq!(tuner.state("t").level, escalated);
        // …the third relaxes exactly one rung.
        tuner.observe("t", Verdict::Verified);
        assert_eq!(tuner.state("t").level, escalated - 1);
        // A long clean run walks all the way back to the floor, never
        // below rung 0.
        for _ in 0..6 * RELAX_AFTER {
            tuner.observe("t", Verdict::Verified);
        }
        assert_eq!(tuner.state("t").level, 0);
    }

    #[test]
    fn one_flag_resets_the_clean_streak() {
        let mut tuner = AdaptiveTuner::new();
        tuner.observe("t", Verdict::Verified);
        tuner.observe("t", Verdict::Verified);
        tuner.observe("t", Verdict::Rejected); // streak dies, level up
        let level = tuner.state("t").level;
        tuner.observe("t", Verdict::Verified);
        tuner.observe("t", Verdict::Verified);
        assert_eq!(tuner.state("t").level, level, "streak restarted from 0");
    }

    #[test]
    fn tenants_are_tuned_independently() {
        let mut tuner = AdaptiveTuner::new();
        tuner.observe("noisy", Verdict::Rejected);
        assert_eq!(tuner.state("noisy").level, START_LEVEL + 1);
        assert_eq!(tuner.state("quiet").level, START_LEVEL);
        assert_eq!(tuner.config_for("quiet"), LADDER[START_LEVEL]);
        assert_eq!(tuner.config_for("noisy"), LADDER[START_LEVEL + 1]);
    }
}

//! Per-tenant scheduling state: quotas, inflight/queue accounting, and
//! the weighted-fair-queueing virtual clock.
//!
//! Every queued or running job belongs to exactly one tenant (jobs
//! without a [`crate::JobSpec::tenant`] share the anonymous default
//! tenant, keyed `""`). The table is the single source of truth the
//! policies read — and, for the WFQ virtual times, write — when they
//! decide which job gets a freed slot.

use std::collections::BTreeMap;

use ccheck_obs::HistogramSnapshot;

/// Key of the anonymous default tenant (jobs submitted without one).
pub const DEFAULT_TENANT: &str = "";

/// Nominal per-job cost (bytes) charged to a tenant's WFQ virtual time
/// until its first receipt arrives and the cost histogram takes over.
pub const NOMINAL_JOB_COST: u64 = 100_000;

/// One tenant's live scheduling state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantState {
    /// Jobs accepted but not yet admitted to a slot.
    pub queued: usize,
    /// Jobs currently executing.
    pub inflight: usize,
    /// Total jobs admitted over the service lifetime.
    pub admitted: u64,
    /// Total jobs completed over the service lifetime.
    pub completed: u64,
    /// Weighted-fair-queueing virtual time: advanced by
    /// `cost / weight` on every admission; the tenant with the
    /// smallest value is the most underserved and goes next.
    pub vtime: u64,
    /// Median per-job total communication bytes from this tenant's
    /// receipts — the receipt-driven cost signal that prices future
    /// admissions (a tenant running heavy jobs burns vtime faster).
    /// Derived as [`TenantState::cost_hist`]'s p50 on each completion,
    /// so one anomalous job cannot reprice the tenant the way the old
    /// EWMA let it. [`NOMINAL_JOB_COST`] until the first receipt.
    pub cost_ewma: u64,
    /// Log-bucketed histogram of per-job communication bytes behind
    /// `cost_ewma` (zero-cost receipts — jobs without a comm block —
    /// are not observed).
    pub cost_hist: HistogramSnapshot,
    /// WFQ weight: a weight-2 tenant accrues vtime half as fast and so
    /// receives twice the share of a weight-1 tenant.
    pub weight: u64,
}

impl Default for TenantState {
    fn default() -> Self {
        TenantState {
            queued: 0,
            inflight: 0,
            admitted: 0,
            completed: 0,
            vtime: 0,
            cost_ewma: NOMINAL_JOB_COST,
            cost_hist: HistogramSnapshot::new(),
            weight: 1,
        }
    }
}

/// All tenants this service has seen, in deterministic (sorted) order.
#[derive(Debug, Default)]
pub struct TenantTable {
    map: BTreeMap<String, TenantState>,
}

impl TenantTable {
    /// Empty table.
    pub fn new() -> Self {
        TenantTable::default()
    }

    /// Number of distinct tenants seen.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no tenant has been seen yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether `tenant` already has an entry.
    pub fn contains(&self, tenant: &str) -> bool {
        self.map.contains_key(tenant)
    }

    /// Read one tenant's state (default state if never seen).
    pub fn get(&self, tenant: &str) -> TenantState {
        self.map.get(tenant).cloned().unwrap_or_default()
    }

    /// Mutable entry for one tenant, created on first use.
    pub fn state_mut(&mut self, tenant: &str) -> &mut TenantState {
        self.map.entry(tenant.to_string()).or_default()
    }

    /// Set a tenant's WFQ weight (≥ 1; 0 is clamped to 1).
    pub fn set_weight(&mut self, tenant: &str, weight: u64) {
        self.state_mut(tenant).weight = weight.max(1);
    }

    /// Iterate `(tenant, state)` in sorted tenant order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &TenantState)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The smallest virtual time among tenants with work (queued or
    /// inflight). A tenant going active again catches up to this floor,
    /// so credit hoarded while idle cannot starve everyone else — the
    /// standard WFQ virtual-clock reset.
    pub fn active_vtime_floor(&self) -> u64 {
        self.map
            .values()
            .filter(|s| s.queued > 0 || s.inflight > 0)
            .map(|s| s.vtime)
            .min()
            .unwrap_or(0)
    }

    /// Account a newly accepted job: the tenant's queue count grows and
    /// an idle tenant's virtual clock catches up to the active floor.
    pub fn note_enqueued(&mut self, tenant: &str) {
        let floor = self.active_vtime_floor();
        let state = self.state_mut(tenant);
        if state.queued == 0 && state.inflight == 0 {
            state.vtime = state.vtime.max(floor);
        }
        state.queued += 1;
    }

    /// Account a queued job leaving the queue without running (deadline
    /// refusal).
    pub fn note_dropped(&mut self, tenant: &str) {
        let state = self.state_mut(tenant);
        state.queued = state.queued.saturating_sub(1);
    }

    /// Account an admission: queued → inflight.
    pub fn note_admitted(&mut self, tenant: &str) {
        let state = self.state_mut(tenant);
        state.queued = state.queued.saturating_sub(1);
        state.inflight += 1;
        state.admitted += 1;
    }

    /// Account a completion, folding the receipt's communication volume
    /// into the tenant's cost histogram and repricing `cost_ewma` to
    /// its median (robust to a single outlier job).
    pub fn note_completed(&mut self, tenant: &str, cost_bytes: u64) {
        let state = self.state_mut(tenant);
        state.inflight = state.inflight.saturating_sub(1);
        state.completed += 1;
        if cost_bytes > 0 {
            state.cost_hist.observe(cost_bytes);
            state.cost_ewma = state.cost_hist.p50().max(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_counts() {
        let mut t = TenantTable::new();
        t.note_enqueued("a");
        t.note_enqueued("a");
        assert_eq!(t.get("a").queued, 2);
        t.note_admitted("a");
        assert_eq!(t.get("a").queued, 1);
        assert_eq!(t.get("a").inflight, 1);
        assert_eq!(t.get("a").admitted, 1);
        t.note_completed("a", 4_000);
        assert_eq!(t.get("a").inflight, 0);
        assert_eq!(t.get("a").completed, 1);
        t.note_dropped("a");
        assert_eq!(t.get("a").queued, 0);
    }

    #[test]
    fn cost_ewma_tracks_receipts() {
        let mut t = TenantTable::new();
        let start = t.get("a").cost_ewma;
        t.note_enqueued("a");
        t.note_admitted("a");
        t.note_completed("a", start * 9); // much heavier than nominal
        assert!(t.get("a").cost_ewma > start);
        // Zero-byte signal (no comm block) leaves the estimate alone.
        let before = t.get("a").cost_ewma;
        t.note_completed("a", 0);
        assert_eq!(t.get("a").cost_ewma, before);
    }

    #[test]
    fn idle_tenant_catches_up_to_active_floor() {
        let mut t = TenantTable::new();
        t.note_enqueued("busy");
        t.state_mut("busy").vtime = 1_000;
        // "idle" has hoarded no vtime; on activation it jumps to the
        // floor of active tenants instead of starving "busy".
        t.note_enqueued("idle");
        assert_eq!(t.get("idle").vtime, 1_000);
        // But an already-active tenant is never rewound.
        t.state_mut("idle").vtime = 5_000;
        t.note_enqueued("idle");
        assert_eq!(t.get("idle").vtime, 5_000);
    }

    #[test]
    fn deterministic_sorted_iteration() {
        let mut t = TenantTable::new();
        for name in ["zeta", "alpha", "mid"] {
            t.note_enqueued(name);
        }
        let names: Vec<&str> = t.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }
}

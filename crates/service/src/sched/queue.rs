//! The scheduler core: one deterministic state machine from
//! submissions to admissions.
//!
//! [`SchedCore`] owns the submission queue, the [`TenantTable`], the
//! active [`SchedPolicy`], and the [`AdaptiveTuner`]. PE 0's daemon
//! drives it (listener threads call [`SchedCore::try_enqueue`], the
//! admission loop calls [`SchedCore::take_expired`] and
//! [`SchedCore::pick`], job workers call [`SchedCore::complete`]);
//! the fairness property tests drive the *same* struct directly with a
//! simulated clock, which is what makes the scheduling invariants
//! testable without spinning up worlds.

use ccheck_obs::HistogramSnapshot;

use crate::job::{CheckMode, JobSpec, Receipt, Verdict};
use crate::sched::policy::{PolicyCfg, SchedPolicy};
use crate::sched::tenant::{TenantTable, DEFAULT_TENANT};
use crate::sched::tuner::AdaptiveTuner;

/// Retry-hint quantum before the first receipt arrives: with an empty
/// wall-time histogram there is no p50 to quote, so hints assume a
/// 250 ms service quantum (the pre-observability EWMA's seed value).
const DEFAULT_WALL_MS: u64 = 250;

/// Cached handles for the scheduler's decision counters — resolved once
/// so the hot path is an atomic add, not a registry lookup. Counters
/// only: the core's own histograms stay plain per-instance values (the
/// registry is process-global, and tests run many cores in parallel).
struct SchedObs {
    enqueued: std::sync::Arc<ccheck_obs::Counter>,
    admitted: std::sync::Arc<ccheck_obs::Counter>,
    refused_busy: std::sync::Arc<ccheck_obs::Counter>,
    expired: std::sync::Arc<ccheck_obs::Counter>,
    stolen: std::sync::Arc<ccheck_obs::Counter>,
    queue_wait_ms: std::sync::Arc<ccheck_obs::Histogram>,
}

fn sched_obs() -> &'static SchedObs {
    static OBS: std::sync::OnceLock<SchedObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| {
        let reg = ccheck_obs::registry();
        SchedObs {
            enqueued: reg.counter("sched.enqueued"),
            admitted: reg.counter("sched.admitted"),
            refused_busy: reg.counter("sched.refused.busy"),
            expired: reg.counter("sched.expired"),
            stolen: reg.counter("sched.stolen"),
            queue_wait_ms: reg.histogram("sched.queue_wait_ms"),
        }
    })
}

/// Upper bound on distinct tenants one service tracks (tenant state,
/// tuner state, and summary aggregates are all per-tenant; a hostile
/// client must not grow them without bound).
pub const MAX_TENANTS: usize = 4096;

/// One queued-but-not-admitted job.
#[derive(Debug, Clone)]
pub struct QueuedJob {
    /// Service-assigned job id.
    pub job_id: u64,
    /// The submission.
    pub spec: JobSpec,
    /// Service-clock milliseconds at acceptance.
    pub enqueued_ms: u64,
}

impl QueuedJob {
    /// The job's tenant key ([`DEFAULT_TENANT`] when unset).
    pub fn tenant(&self) -> &str {
        self.spec.tenant.as_deref().unwrap_or(DEFAULT_TENANT)
    }

    /// Absolute deadline on the service clock, if any.
    pub fn deadline_at(&self) -> Option<u64> {
        self.spec
            .deadline_ms
            .map(|d| self.enqueued_ms.saturating_add(d))
    }
}

/// Why a submission was not accepted. `retry_after_ms` is the
/// scheduler's estimate of when capacity frees up (absent under `Fifo`,
/// whose refusals are byte-identical to PR-4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Refusal {
    /// Human-readable reason (starts with `busy:` for capacity).
    pub message: String,
    /// Suggested client backoff in milliseconds.
    pub retry_after_ms: Option<u64>,
}

/// One admission decision out of [`SchedCore::pick`].
#[derive(Debug, Clone)]
pub struct Admission {
    /// The admitted job's id.
    pub job_id: u64,
    /// The spec to broadcast — with the tuner's `(its, b, r̂)` already
    /// resolved for `CheckMode::Adaptive` jobs, so every PE runs the
    /// same config.
    pub spec: JobSpec,
    /// The pick exceeded the tenant's inflight quota (work stealing).
    pub stolen: bool,
    /// Milliseconds the job waited queued before this pick, on the
    /// service clock — broadcast with the admission so every PE stamps
    /// the same receipt `timing.queue_wait_ms`.
    pub queue_wait_ms: u64,
}

/// The PE-0 scheduler state machine. All methods take the service
/// clock (`now_ms`, milliseconds since service start) as a parameter —
/// production passes wall time, tests pass a simulated clock.
pub struct SchedCore {
    policy: Box<dyn SchedPolicy>,
    queue: Vec<QueuedJob>,
    tenants: TenantTable,
    tuner: AdaptiveTuner,
    queue_cap: usize,
    max_inflight: usize,
    inflight: usize,
    stolen: u64,
    refused: u64,
    /// Log-bucketed histogram of completed-job wall milliseconds; retry
    /// hints quote its p50, which a single outlier cannot drag the way
    /// it skewed the old EWMA. Per-core (not in the global registry) so
    /// concurrently running cores never share hint state.
    wall_hist: HistogramSnapshot,
}

impl SchedCore {
    /// Build a core for `policy` with the service's capacity knobs.
    pub fn new(policy: &PolicyCfg, queue_cap: usize, max_inflight: usize) -> Self {
        let mut tenants = TenantTable::new();
        let policy = policy.build(&mut tenants);
        SchedCore {
            policy,
            queue: Vec::new(),
            tenants,
            tuner: AdaptiveTuner::new(),
            queue_cap,
            max_inflight: max_inflight.max(1),
            inflight: 0,
            stolen: 0,
            refused: 0,
            wall_hist: HistogramSnapshot::new(),
        }
    }

    /// The active policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Estimated milliseconds until a freed slot reaches a new
    /// submission: one service quantum per queued-jobs-per-slot, where
    /// the quantum is the median completed-job wall time (histogram
    /// p50; `DEFAULT_WALL_MS` until the first receipt lands).
    pub fn retry_hint_ms(&self) -> u64 {
        let backlog = (self.queue.len() / self.max_inflight + 1) as u64;
        let quantum = match self.wall_hist.count() {
            0 => DEFAULT_WALL_MS,
            _ => self.wall_hist.p50().max(1),
        };
        quantum * backlog
    }

    /// Accept or refuse one submission. Refusals under non-FIFO
    /// policies carry the retry hint.
    pub fn try_enqueue(&mut self, now_ms: u64, job_id: u64, spec: JobSpec) -> Result<(), Refusal> {
        let hint = || (self.policy.name() != "fifo").then(|| self.retry_hint_ms());
        if self.queue.len() >= self.queue_cap {
            if ccheck_obs::enabled() {
                sched_obs().refused_busy.inc();
            }
            return Err(Refusal {
                message: "busy: submission queue is full, retry later".into(),
                retry_after_ms: hint(),
            });
        }
        let tenant = spec.tenant.as_deref().unwrap_or(DEFAULT_TENANT);
        if !self.tenants.contains(tenant) && self.tenants.len() >= MAX_TENANTS {
            return Err(Refusal {
                message: format!("busy: tenant table is full ({MAX_TENANTS} tenants)"),
                retry_after_ms: None,
            });
        }
        if let Err(message) = self
            .policy
            .check_enqueue(&spec, &self.tenants, self.queue_cap)
        {
            if ccheck_obs::enabled() {
                sched_obs().refused_busy.inc();
            }
            return Err(Refusal {
                message,
                retry_after_ms: hint(),
            });
        }
        if ccheck_obs::enabled() {
            sched_obs().enqueued.inc();
        }
        self.tenants.note_enqueued(tenant);
        self.queue.push(QueuedJob {
            job_id,
            spec,
            enqueued_ms: now_ms,
        });
        Ok(())
    }

    /// Remove queued jobs whose admission deadline has passed (policies
    /// that honor deadlines only). Returns `(job_id, tenant, reason)`
    /// per refusal; the reason carries the retry hint the client
    /// surfaces.
    pub fn take_expired(&mut self, now_ms: u64) -> Vec<(u64, String, String)> {
        if !self.policy.honors_deadlines() {
            return Vec::new();
        }
        let mut refused = Vec::new();
        let mut i = 0;
        while i < self.queue.len() {
            match self.queue[i].deadline_at() {
                Some(deadline) if now_ms >= deadline => {
                    let job = self.queue.remove(i);
                    self.tenants.note_dropped(job.tenant());
                    self.refused += 1;
                    if ccheck_obs::enabled() {
                        sched_obs().expired.inc();
                    }
                    refused.push((
                        job.job_id,
                        job.tenant().to_string(),
                        format!(
                            "deadline missed: waited {} ms in queue, deadline was {} ms; \
                             retry with a deadline above ~{} ms or resubmit off-peak",
                            now_ms.saturating_sub(job.enqueued_ms),
                            job.spec.deadline_ms.unwrap_or(0),
                            self.retry_hint_ms(),
                        ),
                    ));
                }
                _ => i += 1,
            }
        }
        refused
    }

    /// Ask the policy for the next admission for a freed slot. Resolves
    /// adaptive checker configs and does the queued→inflight
    /// accounting. `None` leaves the slot idle.
    pub fn pick(&mut self, now_ms: u64) -> Option<Admission> {
        let picked = self.policy.pick(now_ms, &self.queue, &mut self.tenants)?;
        let job = self.queue.remove(picked.index);
        let tenant = job.tenant().to_string();
        self.tenants.note_admitted(&tenant);
        self.inflight += 1;
        if picked.stolen {
            self.stolen += 1;
        }
        let queue_wait_ms = now_ms.saturating_sub(job.enqueued_ms);
        if ccheck_obs::enabled() {
            let obs = sched_obs();
            obs.admitted.inc();
            if picked.stolen {
                obs.stolen.inc();
            }
            obs.queue_wait_ms.observe(queue_wait_ms);
        }
        let mut spec = job.spec;
        if spec.check == CheckMode::Adaptive {
            let (its, buckets, log2_rhat) = self.tuner.config_for(&tenant);
            spec.iterations = its;
            spec.buckets = buckets;
            spec.log2_rhat = log2_rhat;
        }
        Some(Admission {
            job_id: job.job_id,
            spec,
            stolen: picked.stolen,
            queue_wait_ms,
        })
    }

    /// Feed one finished job's receipt back: tenant accounting, the
    /// WFQ cost estimate (per-scope comm volume), the adaptive tuner,
    /// and the wall-time histogram behind retry hints.
    pub fn complete(&mut self, receipt: &Receipt) {
        let tenant = receipt.tenant.as_deref().unwrap_or(DEFAULT_TENANT);
        let cost = receipt.comm.map_or(0, |c| c.total_bytes);
        self.tenants.note_completed(tenant, cost);
        self.inflight = self.inflight.saturating_sub(1);
        self.tuner.observe(tenant, receipt.verdict);
        self.wall_hist.observe(receipt.wall_ms.max(1));
    }

    /// Replay one ledgered receipt's verdict into the adaptive tuner —
    /// the restart path (`docs/PROTOCOL.md` §6.4): feeding the ledger
    /// back in append order restores every tenant's ladder rung
    /// exactly, because the tuner is a pure fold over the verdict
    /// stream. Deliberately touches *only* the tuner: the replayed jobs
    /// are not inflight and their tenant counters describe a dead
    /// world.
    pub fn replay_verdict(&mut self, tenant: &str, verdict: Verdict) {
        self.tuner.observe(tenant, verdict);
    }

    /// Jobs accepted but not yet admitted.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether nothing is queued.
    pub fn queue_is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Jobs currently marked inflight.
    pub fn inflight(&self) -> usize {
        self.inflight
    }

    /// Jobs admitted over quota by work stealing.
    pub fn stolen(&self) -> u64 {
        self.stolen
    }

    /// Queued jobs refused for missed deadlines.
    pub fn refused(&self) -> u64 {
        self.refused
    }

    /// The live tenant table (tests and summaries).
    pub fn tenants(&self) -> &TenantTable {
        &self.tenants
    }

    /// The adaptive tuner (tests and summaries).
    pub fn tuner(&self) -> &AdaptiveTuner {
        &self.tuner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{CheckUsed, JobOp, ReceiptComm, Verdict};
    use crate::sched::tuner::{LADDER, START_LEVEL};

    fn spec(tenant: Option<&str>) -> JobSpec {
        JobSpec {
            tenant: tenant.map(String::from),
            ..JobSpec::default()
        }
    }

    fn receipt(tenant: Option<&str>, verdict: Verdict) -> Receipt {
        Receipt {
            job_id: 1,
            op: JobOp::Reduce,
            tenant: tenant.map(String::from),
            admit_seq: 1,
            verdict,
            check: CheckUsed::default(),
            digest: 0,
            elems: 0,
            output_elems: 0,
            wall_ms: 100,
            timing: None,
            comm: Some(ReceiptComm {
                total_bytes: 5_000,
                ..ReceiptComm::default()
            }),
            spec_fingerprint: None,
            content_hash: None,
            prev_hash: None,
        }
    }

    #[test]
    fn fifo_core_is_pr4_admission() {
        let mut core = SchedCore::new(&PolicyCfg::Fifo, 2, 1);
        core.try_enqueue(0, 1, spec(None)).unwrap();
        core.try_enqueue(0, 2, spec(None)).unwrap();
        // Queue cap refusal: exact PR-4 message, no hint.
        let refusal = core.try_enqueue(0, 3, spec(None)).unwrap_err();
        assert_eq!(
            refusal.message,
            "busy: submission queue is full, retry later"
        );
        assert_eq!(refusal.retry_after_ms, None);
        // FIFO order, and deadlines are ignored entirely.
        assert!(core.take_expired(u64::MAX).is_empty());
        assert_eq!(core.pick(0).unwrap().job_id, 1);
        assert_eq!(core.pick(0).unwrap().job_id, 2);
        assert!(core.pick(0).is_none());
    }

    #[test]
    fn non_fifo_busy_refusals_carry_a_hint() {
        let mut core = SchedCore::new(&PolicyCfg::priority_aging(), 1, 1);
        core.try_enqueue(0, 1, spec(None)).unwrap();
        let refusal = core.try_enqueue(0, 2, spec(None)).unwrap_err();
        assert!(refusal.message.contains("busy"));
        assert!(refusal.retry_after_ms.unwrap() > 0);
    }

    #[test]
    fn deadlines_expire_with_a_hinted_reason() {
        let mut core = SchedCore::new(&PolicyCfg::priority_aging(), 8, 1);
        let with_deadline = JobSpec {
            deadline_ms: Some(50),
            ..spec(Some("t"))
        };
        core.try_enqueue(0, 1, with_deadline).unwrap();
        core.try_enqueue(0, 2, spec(Some("t"))).unwrap();
        assert!(core.take_expired(49).is_empty(), "not yet");
        let refused = core.take_expired(50);
        assert_eq!(refused.len(), 1);
        assert_eq!(refused[0].0, 1);
        assert_eq!(refused[0].1, "t");
        assert!(refused[0].2.contains("deadline missed"), "{}", refused[0].2);
        assert!(refused[0].2.contains("retry"), "{}", refused[0].2);
        assert_eq!(core.refused(), 1);
        // The deadline-free job is untouched.
        assert_eq!(core.queue_len(), 1);
        assert_eq!(core.tenants().get("t").queued, 1);
    }

    #[test]
    fn adaptive_specs_are_resolved_at_admission() {
        let mut core = SchedCore::new(&PolicyCfg::Fifo, 8, 1);
        let adaptive = JobSpec {
            check: CheckMode::Adaptive,
            ..spec(Some("t"))
        };
        core.try_enqueue(0, 1, adaptive.clone()).unwrap();
        let admitted = core.pick(0).unwrap();
        let (its, buckets, log2_rhat) = LADDER[START_LEVEL];
        assert_eq!(admitted.spec.iterations, its);
        assert_eq!(admitted.spec.buckets, buckets);
        assert_eq!(admitted.spec.log2_rhat, log2_rhat);

        // A flagged receipt escalates the tenant; the next adaptive
        // admission resolves one rung up.
        core.complete(&receipt(Some("t"), Verdict::Rejected));
        core.try_enqueue(1, 2, adaptive).unwrap();
        let escalated = core.pick(1).unwrap();
        assert_eq!(
            (
                escalated.spec.iterations,
                escalated.spec.buckets,
                escalated.spec.log2_rhat
            ),
            LADDER[START_LEVEL + 1]
        );
        // Explicit specs are never rewritten.
        core.try_enqueue(2, 3, spec(Some("t"))).unwrap();
        let explicit = core.pick(2).unwrap();
        assert_eq!(explicit.spec.iterations, JobSpec::default().iterations);
    }

    #[test]
    fn completion_feeds_wall_and_cost_ewmas() {
        let mut core = SchedCore::new(&PolicyCfg::deadline_wfq(), 8, 2);
        core.try_enqueue(0, 1, spec(Some("t"))).unwrap();
        core.pick(0).unwrap();
        let hint_before = core.retry_hint_ms();
        let mut r = receipt(Some("t"), Verdict::Verified);
        r.wall_ms = 100_000;
        core.complete(&r);
        assert!(core.retry_hint_ms() > hint_before);
        assert_eq!(core.inflight(), 0);
        assert!(core.tenants().get("t").cost_ewma > 0);
    }

    #[test]
    fn tenant_table_is_bounded() {
        let mut core = SchedCore::new(&PolicyCfg::deadline_wfq(), 1 << 20, 1);
        // Cheaper than 4096 enqueues: pre-populate the table, then the
        // next unseen tenant bounces while a known one still enters.
        for i in 0..MAX_TENANTS {
            core.tenants.state_mut(&format!("t{i}"));
        }
        let refusal = core.try_enqueue(0, 1, spec(Some("fresh"))).unwrap_err();
        assert!(
            refusal.message.contains("tenant table"),
            "{}",
            refusal.message
        );
        assert!(core.try_enqueue(0, 2, spec(Some("t7"))).is_ok());
    }
}

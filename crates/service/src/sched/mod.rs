//! `ccheck-sched` — the policy-driven job scheduler.
//!
//! PR 4's daemon admitted jobs FIFO into fixed slots. This module is
//! the step from "a runtime that runs jobs" to "a system that decides
//! what to run and how hard to check it":
//!
//! * [`policy`] — the [`policy::SchedPolicy`] trait and the three
//!   shipped policies: [`policy::Fifo`] (exact PR-4 behavior, the
//!   default), [`policy::PriorityAging`] (strict priority, aging
//!   prevents starvation), and [`policy::DeadlineWfq`] (EDF within
//!   weighted fair queueing across tenants, with quotas and work
//!   stealing).
//! * [`queue`] — [`queue::SchedCore`], the deterministic state machine
//!   PE 0 drives: enqueue/refuse with retry hints, deadline expiry,
//!   admission picks, receipt feedback.
//! * [`tenant`] — per-tenant quotas, inflight/queue accounting, and
//!   the WFQ virtual clock (receipt-driven cost EWMA).
//! * [`tuner`] — the per-tenant [`tuner::AdaptiveTuner`] that picks
//!   `(its, b, r̂)` from observed verdicts for
//!   [`crate::job::CheckMode::Adaptive`] jobs.
//!
//! Determinism is inherited from the PR-4 control plane: only PE 0
//! holds scheduler state, and every decision reaches the other PEs as
//! a broadcast `CtlMsg::Admit` carrying the fully resolved spec.

pub mod policy;
pub mod queue;
pub mod tenant;
pub mod tuner;

pub use policy::{DeadlineWfq, Fifo, Pick, PolicyCfg, PriorityAging, SchedPolicy};
pub use queue::{Admission, QueuedJob, Refusal, SchedCore, MAX_TENANTS};
pub use tenant::{TenantState, TenantTable, DEFAULT_TENANT};
pub use tuner::{AdaptiveTuner, TunerState, LADDER, RELAX_AFTER, START_LEVEL};

//! Scheduling policies: who gets the next freed slot.
//!
//! A [`SchedPolicy`] sees the queue (arrival order), the tenant table,
//! and the clock, and picks one queued job. Only PE 0 consults the
//! policy; its pick is broadcast on the control scope, so every policy
//! is SPMD-deterministic by construction.
//!
//! | Policy | Order | Quotas | Deadlines | Starvation |
//! |---|---|---|---|---|
//! | [`Fifo`] | arrival | none | ignored | n/a (FIFO) |
//! | [`PriorityAging`] | priority + age | none | honored | aging bounds wait |
//! | [`DeadlineWfq`] | EDF within WFQ | inflight + queue share | honored | WFQ share |

use crate::job::JobSpec;
use crate::sched::queue::QueuedJob;
use crate::sched::tenant::TenantTable;

/// Serializable policy selection + knobs (part of
/// [`crate::ServiceConfig`]). `Fifo` is the default and reproduces the
/// PR-4 admission loop exactly.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum PolicyCfg {
    /// First-in-first-out into the first free slot (PR-4 behavior).
    #[default]
    Fifo,
    /// Strict priority, with queued jobs gaining one effective priority
    /// level per `aging_ms` waited so low-priority work cannot starve.
    PriorityAging {
        /// Milliseconds of queue wait worth one priority level.
        aging_ms: u64,
    },
    /// Earliest-deadline-first within weighted fair queueing across
    /// tenants, with per-tenant quotas and optional work stealing.
    DeadlineWfq {
        /// Max concurrently running jobs per tenant (its "dedicated
        /// slots").
        tenant_max_inflight: usize,
        /// Max share of the submission queue one tenant may occupy, in
        /// percent (at least one slot is always allowed).
        tenant_queue_share_pct: u32,
        /// Work stealing: when every tenant with queued work is at its
        /// inflight quota, an idle slot may run an over-quota job
        /// rather than sit idle (quotas stay binding whenever any
        /// under-quota tenant has work).
        steal: bool,
        /// Per-tenant WFQ weights (unlisted tenants get weight 1).
        weights: Vec<(String, u64)>,
    },
}

impl PolicyCfg {
    /// Protocol/CLI name of the policy.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyCfg::Fifo => "fifo",
            PolicyCfg::PriorityAging { .. } => "priority",
            PolicyCfg::DeadlineWfq { .. } => "deadline-wfq",
        }
    }

    /// `PriorityAging` with the default aging quantum (200 ms per
    /// level).
    pub fn priority_aging() -> Self {
        PolicyCfg::PriorityAging { aging_ms: 200 }
    }

    /// `DeadlineWfq` with the default quotas: 2 inflight per tenant,
    /// half the queue per tenant, stealing on.
    pub fn deadline_wfq() -> Self {
        PolicyCfg::DeadlineWfq {
            tenant_max_inflight: 2,
            tenant_queue_share_pct: 50,
            steal: true,
            weights: Vec::new(),
        }
    }

    /// Instantiate the policy (and seed the tenant table's weights).
    pub fn build(&self, tenants: &mut TenantTable) -> Box<dyn SchedPolicy> {
        match self {
            PolicyCfg::Fifo => Box::new(Fifo),
            PolicyCfg::PriorityAging { aging_ms } => Box::new(PriorityAging {
                aging_ms: (*aging_ms).max(1),
            }),
            PolicyCfg::DeadlineWfq {
                tenant_max_inflight,
                tenant_queue_share_pct,
                steal,
                weights,
            } => {
                for (tenant, weight) in weights {
                    tenants.set_weight(tenant, *weight);
                }
                Box::new(DeadlineWfq {
                    tenant_max_inflight: (*tenant_max_inflight).max(1),
                    tenant_queue_share_pct: (*tenant_queue_share_pct).clamp(1, 100),
                    steal: *steal,
                })
            }
        }
    }
}

/// A policy's choice for a freed slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pick {
    /// Index into the queue slice handed to [`SchedPolicy::pick`].
    pub index: usize,
    /// The pick exceeded the job's tenant inflight quota (work
    /// stealing: the tenant's dedicated slots were all busy and no
    /// under-quota tenant had work).
    pub stolen: bool,
}

/// Decides which queued job next gets a freed slot, given queue, slot,
/// and tenant state. Implementations run on PE 0 only.
pub trait SchedPolicy: Send {
    /// Policy name (for summaries and logs).
    fn name(&self) -> &'static str;

    /// Choose a queued job for a freed slot, or `None` to leave the
    /// slot idle (e.g. every queued job's tenant is at quota and
    /// stealing is off). `queue` is in arrival order. May advance WFQ
    /// clocks in `tenants`; the caller does the queued→inflight
    /// bookkeeping after removal.
    fn pick(&mut self, now_ms: u64, queue: &[QueuedJob], tenants: &mut TenantTable)
        -> Option<Pick>;

    /// Admission check beyond the global queue cap (per-tenant queue
    /// share). `Err` is the refusal message; the core attaches the
    /// retry hint.
    fn check_enqueue(
        &self,
        _spec: &JobSpec,
        _tenants: &TenantTable,
        _queue_cap: usize,
    ) -> Result<(), String> {
        Ok(())
    }

    /// Whether queued jobs with an expired `deadline_ms` are refused.
    /// `Fifo` says no — PR-4 semantics, deadlines ignored.
    fn honors_deadlines(&self) -> bool {
        true
    }
}

/// Exact PR-4 behavior: the oldest queued job takes the first free
/// slot; priorities, deadlines, tenants, and quotas are ignored.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fifo;

impl SchedPolicy for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn pick(&mut self, _now_ms: u64, queue: &[QueuedJob], _: &mut TenantTable) -> Option<Pick> {
        (!queue.is_empty()).then_some(Pick {
            index: 0,
            stolen: false,
        })
    }

    fn honors_deadlines(&self) -> bool {
        false
    }
}

/// Strict priority with aging: a queued job's effective priority is
/// `priority + waited_ms / aging_ms`, so any job's effective priority
/// grows without bound and the wait of a priority-0 job behind
/// priority-p arrivals is capped at roughly `p · aging_ms` (plus
/// service times). Ties break toward the earlier submission.
#[derive(Debug, Clone, Copy)]
pub struct PriorityAging {
    /// Milliseconds of waiting worth one priority level.
    pub aging_ms: u64,
}

impl PriorityAging {
    fn effective(&self, now_ms: u64, job: &QueuedJob) -> u64 {
        let waited = now_ms.saturating_sub(job.enqueued_ms);
        job.spec.priority as u64 + waited / self.aging_ms
    }
}

impl SchedPolicy for PriorityAging {
    fn name(&self) -> &'static str {
        "priority"
    }

    fn pick(&mut self, now_ms: u64, queue: &[QueuedJob], _: &mut TenantTable) -> Option<Pick> {
        // Max effective priority; on ties the *smallest* job id (= the
        // earliest submission) wins, which both prevents starvation
        // among equals and makes priority-0-only workloads pure FIFO.
        queue
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                self.effective(now_ms, a)
                    .cmp(&self.effective(now_ms, b))
                    .then(b.job_id.cmp(&a.job_id))
            })
            .map(|(index, _)| Pick {
                index,
                stolen: false,
            })
    }
}

/// Earliest-deadline-first within weighted fair queueing across
/// tenants: the most underserved tenant (smallest WFQ virtual time)
/// whose inflight quota permits goes next; within a tenant, the job
/// with the earliest absolute deadline (no deadline = last; ties by
/// priority, then arrival). Admission enforces a per-tenant queue
/// share; an idle slot may *steal* an over-quota job when no
/// under-quota tenant has work.
#[derive(Debug, Clone)]
pub struct DeadlineWfq {
    /// Max concurrently running jobs per tenant.
    pub tenant_max_inflight: usize,
    /// Max percent of the queue one tenant may occupy.
    pub tenant_queue_share_pct: u32,
    /// Allow over-quota picks when every tenant with work is at quota.
    pub steal: bool,
}

impl DeadlineWfq {
    /// Best queued job of `tenant`: earliest absolute deadline, then
    /// highest priority, then arrival order.
    fn best_of_tenant(queue: &[QueuedJob], tenant: &str) -> Option<usize> {
        queue
            .iter()
            .enumerate()
            .filter(|(_, j)| j.tenant() == tenant)
            .min_by_key(|(_, j)| {
                let deadline = j
                    .spec
                    .deadline_ms
                    .map_or(u64::MAX, |d| j.enqueued_ms.saturating_add(d));
                (deadline, u32::MAX - j.spec.priority, j.job_id)
            })
            .map(|(i, _)| i)
    }

    /// Most underserved tenant among `candidates` (smallest vtime; ties
    /// by name for determinism).
    fn pick_tenant<'a>(tenants: &TenantTable, candidates: &[&'a str]) -> Option<&'a str> {
        candidates
            .iter()
            .min_by_key(|t| (tenants.get(t).vtime, t.to_string()))
            .copied()
    }
}

impl SchedPolicy for DeadlineWfq {
    fn name(&self) -> &'static str {
        "deadline-wfq"
    }

    fn pick(
        &mut self,
        _now_ms: u64,
        queue: &[QueuedJob],
        tenants: &mut TenantTable,
    ) -> Option<Pick> {
        let mut with_work: Vec<&str> = Vec::new();
        for job in queue {
            let t = job.tenant();
            if !with_work.contains(&t) {
                with_work.push(t);
            }
        }
        let under_quota: Vec<&str> = with_work
            .iter()
            .filter(|t| tenants.get(t).inflight < self.tenant_max_inflight)
            .copied()
            .collect();
        let (tenant, stolen) = match Self::pick_tenant(tenants, &under_quota) {
            Some(t) => (t, false),
            None if self.steal => (Self::pick_tenant(tenants, &with_work)?, true),
            None => return None,
        };
        let index = Self::best_of_tenant(queue, tenant)?;
        // Charge the admission to the tenant's virtual clock at its
        // receipt-driven cost estimate — heavier jobs buy less share.
        let state = tenants.state_mut(tenant);
        state.vtime += state.cost_ewma.max(1) / state.weight.max(1);
        Some(Pick { index, stolen })
    }

    fn check_enqueue(
        &self,
        spec: &JobSpec,
        tenants: &TenantTable,
        queue_cap: usize,
    ) -> Result<(), String> {
        let tenant = spec
            .tenant
            .as_deref()
            .unwrap_or(super::tenant::DEFAULT_TENANT);
        let allowed = (queue_cap.saturating_mul(self.tenant_queue_share_pct as usize) / 100).max(1);
        if tenants.get(tenant).queued >= allowed {
            return Err(format!(
                "busy: tenant {:?} is at its queue share ({allowed} of {queue_cap}), retry later",
                if tenant.is_empty() {
                    "(default)"
                } else {
                    tenant
                }
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, enq: u64, spec: JobSpec) -> QueuedJob {
        QueuedJob {
            job_id: id,
            spec,
            enqueued_ms: enq,
        }
    }

    fn spec(tenant: Option<&str>, priority: u32, deadline_ms: Option<u64>) -> JobSpec {
        JobSpec {
            tenant: tenant.map(String::from),
            priority,
            deadline_ms,
            ..JobSpec::default()
        }
    }

    #[test]
    fn fifo_takes_the_oldest() {
        let mut p = Fifo;
        let mut t = TenantTable::new();
        assert_eq!(p.pick(0, &[], &mut t), None);
        let q = vec![
            job(1, 0, spec(None, 0, None)),
            job(2, 0, spec(None, 9, None)),
        ];
        // Priority is ignored: index 0 wins.
        assert_eq!(p.pick(0, &q, &mut t).unwrap().index, 0);
        assert!(!p.honors_deadlines());
    }

    #[test]
    fn priority_wins_and_ties_go_to_the_earlier_job() {
        let mut p = PriorityAging { aging_ms: 1_000 };
        let mut t = TenantTable::new();
        let q = vec![
            job(1, 0, spec(None, 1, None)),
            job(2, 0, spec(None, 5, None)),
            job(3, 0, spec(None, 5, None)),
        ];
        assert_eq!(
            p.pick(10, &q, &mut t).unwrap().index,
            1,
            "highest, earliest"
        );
    }

    #[test]
    fn aging_bridges_priority_gaps() {
        // A priority-0 job that has waited 5 aging quanta beats a fresh
        // priority-4 job: waiting is worth real priority, so no job
        // starves behind a stream of higher-priority arrivals.
        let mut p = PriorityAging { aging_ms: 100 };
        let mut t = TenantTable::new();
        let q = vec![
            job(1, 0, spec(None, 0, None)),
            job(9, 500, spec(None, 4, None)),
        ];
        assert_eq!(p.pick(500, &q, &mut t).unwrap().index, 0);
    }

    #[test]
    fn wfq_respects_inflight_quota_and_steals_only_when_all_blocked() {
        let mut p = DeadlineWfq {
            tenant_max_inflight: 1,
            tenant_queue_share_pct: 100,
            steal: false,
        };
        let mut t = TenantTable::new();
        t.state_mut("a").inflight = 1; // tenant a is at quota
        let q = vec![
            job(1, 0, spec(Some("a"), 0, None)),
            job(2, 0, spec(Some("b"), 0, None)),
        ];
        // b is the only eligible tenant.
        assert_eq!(p.pick(0, &q, &mut t).unwrap().index, 1);

        // Only a's work queued, a at quota, no stealing: idle.
        let q_a = vec![job(1, 0, spec(Some("a"), 0, None))];
        assert_eq!(p.pick(0, &q_a, &mut t), None);

        // With stealing the idle slot takes the over-quota job, flagged.
        p.steal = true;
        let picked = p.pick(0, &q_a, &mut t).unwrap();
        assert_eq!(picked.index, 0);
        assert!(picked.stolen);
    }

    #[test]
    fn wfq_prefers_the_underserved_tenant_then_edf_within() {
        let mut p = DeadlineWfq {
            tenant_max_inflight: 4,
            tenant_queue_share_pct: 100,
            steal: true,
        };
        let mut t = TenantTable::new();
        t.state_mut("a").vtime = 500;
        t.state_mut("b").vtime = 100; // b is behind → served first
        let q = vec![
            job(1, 0, spec(Some("a"), 0, None)),
            job(2, 0, spec(Some("b"), 0, Some(900))),
            job(3, 10, spec(Some("b"), 0, Some(200))), // earlier absolute deadline
        ];
        let picked = p.pick(50, &q, &mut t).unwrap();
        assert_eq!(picked.index, 2, "tenant b, EDF within b");
        assert!(!picked.stolen);
        // The admission advanced b's virtual clock.
        assert!(t.get("b").vtime > 100);
    }

    #[test]
    fn wfq_queue_share_refuses_the_hog() {
        let p = DeadlineWfq {
            tenant_max_inflight: 2,
            tenant_queue_share_pct: 50,
            steal: true,
        };
        let mut t = TenantTable::new();
        for _ in 0..5 {
            t.note_enqueued("hog");
        }
        // 50% of a 10-deep queue = 5 already queued → refuse the 6th.
        let err = p
            .check_enqueue(&spec(Some("hog"), 0, None), &t, 10)
            .unwrap_err();
        assert!(err.contains("queue share"), "{err}");
        // Another tenant is unaffected.
        assert!(p
            .check_enqueue(&spec(Some("other"), 0, None), &t, 10)
            .is_ok());
        // And the share floor is one: even a tiny queue admits one job.
        let t2 = TenantTable::new();
        assert!(p.check_enqueue(&spec(Some("x"), 0, None), &t2, 1).is_ok());
    }

    #[test]
    fn weights_tilt_the_share() {
        let mut p = DeadlineWfq {
            tenant_max_inflight: 8,
            tenant_queue_share_pct: 100,
            steal: false,
        };
        let mut t = TenantTable::new();
        t.set_weight("heavy", 4);
        let q = vec![
            job(1, 0, spec(Some("heavy"), 0, None)),
            job(2, 0, spec(Some("light"), 0, None)),
        ];
        // Serve both once (heavy first only by name tie at vtime 0).
        let mut admits = Vec::new();
        let mut queue = q;
        for _ in 0..2 {
            let picked = p.pick(0, &queue, &mut t).unwrap();
            let job = queue.remove(picked.index);
            t.note_enqueued(job.tenant()); // keep counts sane for the test
            t.note_admitted(job.tenant());
            admits.push(job.tenant().to_string());
        }
        // Weight 4 means heavy's clock advanced 4× slower.
        assert!(t.get("heavy").vtime < t.get("light").vtime);
    }
}

//! Durable, append-only, hash-chained receipt ledger.
//!
//! The paper's checkers make a *probabilistic* promise; what turns a
//! verdict into an **audit record** is the ability to re-verify it
//! later. This module is the service's proof artifact: every completed
//! job's [`Receipt`] is canonically serialized (stable key order,
//! integer-exact — see [`Receipt::canonical_json`]), content-hashed
//! with SHA-256, linked into its tenant's hash chain, and appended to a
//! length-prefixed, CRC-framed, fsync-batched log file on PE 0. On
//! daemon restart the log is replayed to restore fetchable receipts,
//! per-tenant aggregates, and the adaptive-tuner rungs, so a restarted
//! world resumes exactly where the dead one stopped.
//!
//! The record framing this module pioneered now lives in
//! `ccheck_obs::record_log` (shared with the metrics history log); the
//! ledger keeps its own replay loop because validity here is semantic —
//! a record must also parse, re-hash, and chain — not just framed.
//! The extraction left on-disk bytes unchanged
//! (`tests/record_log_compat.rs` replays a pre-extraction fixture and
//! re-produces it byte-for-byte).
//!
//! The normative spec lives in `docs/PROTOCOL.md`:
//!
//! * §6.1 — on-disk framing (magic header, `len ‖ crc ‖ payload`
//!   records, torn-tail truncation),
//! * §6.2 — canonical receipt serialization and `content_hash`,
//! * §6.3 — per-tenant chain rules (`prev_hash`, [`chain_hash`],
//!   [`GENESIS_HASH`]),
//! * §7 — `(tenant, job_id)` idempotency keyed on the spec
//!   fingerprint.
//!
//! Unit tests below cite those sections and assert the §6.2 worked
//! example byte-for-byte.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use ccheck_hashing::sha256_hex;
use ccheck_obs::record_log::{decode_frame, encode_frame, MAX_RECORD_LEN};

use crate::job::Receipt;

/// Cached handles for the ledger's durability-latency histograms —
/// appends are on the job-completion path, so each records as one
/// atomic observe when collection is on and nothing otherwise.
struct LedgerObs {
    appends: std::sync::Arc<ccheck_obs::Counter>,
    append_us: std::sync::Arc<ccheck_obs::Histogram>,
    fsync_us: std::sync::Arc<ccheck_obs::Histogram>,
}

fn ledger_obs() -> &'static LedgerObs {
    static OBS: std::sync::OnceLock<LedgerObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| {
        let reg = ccheck_obs::registry();
        LedgerObs {
            appends: reg.counter("ledger.appends"),
            append_us: reg.histogram("ledger.append_us"),
            fsync_us: reg.histogram("ledger.fsync_us"),
        }
    })
}

/// File header identifying a receipt ledger (`docs/PROTOCOL.md` §6.1).
pub const MAGIC: &[u8] = b"ccheck-ledger-v1\n";

/// `prev_hash` of the first entry in every tenant chain: 64 ASCII
/// zeros, the width of a hex SHA-256 (`docs/PROTOCOL.md` §6.3).
pub const GENESIS_HASH: &str = "0000000000000000000000000000000000000000000000000000000000000000";

/// Appends between fsyncs by default (`Ledger::sync` and shutdown
/// always flush the remainder).
const DEFAULT_SYNC_EVERY: u32 = 8;

/// The chain hash over one ledgered receipt (`docs/PROTOCOL.md` §6.3):
/// SHA-256 over the ASCII concatenation `prev_hash ‖ content_hash`.
/// Each tenant's chain head therefore commits to the tenant's entire
/// receipt history, not just the newest entry.
pub fn chain_hash(prev_hash: &str, content_hash: &str) -> String {
    let mut bytes = Vec::with_capacity(prev_hash.len() + content_hash.len());
    bytes.extend_from_slice(prev_hash.as_bytes());
    bytes.extend_from_slice(content_hash.as_bytes());
    sha256_hex(&bytes)
}

/// Verify one tenant's sealed receipts as a chain prefix, in append
/// order: every receipt's `content_hash` must recompute from its
/// canonical bytes, the first `prev_hash` must be [`GENESIS_HASH`], and
/// every later `prev_hash` must equal the [`chain_hash`] of its
/// predecessor (`docs/PROTOCOL.md` §6.3). Returns the chain head hash.
pub fn verify_chain(receipts: &[Receipt]) -> Result<String, String> {
    let mut head = GENESIS_HASH.to_string();
    for (i, receipt) in receipts.iter().enumerate() {
        let content = receipt
            .content_hash
            .as_deref()
            .ok_or_else(|| format!("entry {i} (job {}): not sealed", receipt.job_id))?;
        let recomputed = receipt.content_hash();
        if content != recomputed {
            return Err(format!(
                "entry {i} (job {}): content hash mismatch: stored {content}, \
                 canonical bytes hash to {recomputed}",
                receipt.job_id
            ));
        }
        let prev = receipt
            .prev_hash
            .as_deref()
            .ok_or_else(|| format!("entry {i} (job {}): no prev_hash", receipt.job_id))?;
        if prev != head {
            return Err(format!(
                "entry {i} (job {}): chain break: prev_hash {prev}, expected {head}",
                receipt.job_id
            ));
        }
        head = chain_hash(prev, content);
    }
    Ok(head)
}

/// The key a receipt chains under: tenants are separate chains, and the
/// anonymous default tenant (`tenant: None`) is the empty-string chain,
/// matching [`crate::sched::DEFAULT_TENANT`].
fn tenant_key(receipt: &Receipt) -> String {
    receipt.tenant.clone().unwrap_or_default()
}

/// A durable, append-only receipt ledger bound to one log file.
///
/// Appends seal receipts into their tenant's hash chain and frame them
/// onto disk; opening an existing file replays it (tolerating a torn
/// tail) so the in-memory index — receipts by id, by `(tenant,
/// job_id)`, and per-tenant chain heads — always mirrors the durable
/// prefix of the log.
#[derive(Debug)]
pub struct Ledger {
    file: File,
    path: PathBuf,
    /// Sealed receipts in append order.
    entries: Vec<Receipt>,
    /// Service job id → index into `entries`.
    by_id: BTreeMap<u64, usize>,
    /// `(tenant key, job id)` → index into `entries`.
    by_tenant_job: BTreeMap<(String, u64), usize>,
    /// Tenant key → current chain head hash.
    heads: BTreeMap<String, String>,
    /// Appends since the last fsync.
    unsynced: u32,
    /// Fsync after this many appends (≥ 1).
    sync_every: u32,
}

impl Ledger {
    /// Open (or create) the ledger at `path` and replay any existing
    /// records into the in-memory index. A torn tail — a partially
    /// written final record from a crash — is truncated away, per
    /// `docs/PROTOCOL.md` §6.1; everything before it is restored.
    ///
    /// ```
    /// use ccheck_service::ledger::Ledger;
    /// use ccheck_service::Receipt;
    ///
    /// let path = std::env::temp_dir().join(format!("doc-ledger-{}.log", std::process::id()));
    /// # let _ = std::fs::remove_file(&path);
    /// let mut ledger = Ledger::open(&path)?;
    /// let sealed = ledger.append(Receipt::example())?;
    /// assert_eq!(sealed.prev_hash.as_deref(), Some(ccheck_service::ledger::GENESIS_HASH));
    /// drop(ledger);
    ///
    /// // Reopening replays the log: the receipt is back, still sealed.
    /// let ledger = Ledger::open(&path)?;
    /// assert_eq!(ledger.get(sealed.job_id), Some(&sealed));
    /// # std::fs::remove_file(&path)?;
    /// # Ok::<(), std::io::Error>(())
    /// ```
    pub fn open(path: impl AsRef<Path>) -> io::Result<Ledger> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut ledger = Ledger {
            file: file.try_clone()?,
            path,
            entries: Vec::new(),
            by_id: BTreeMap::new(),
            by_tenant_job: BTreeMap::new(),
            heads: BTreeMap::new(),
            unsynced: 0,
            sync_every: DEFAULT_SYNC_EVERY,
        };

        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if bytes.is_empty() {
            ledger.file.write_all(MAGIC)?;
            ledger.file.sync_data()?;
            return Ok(ledger);
        }
        if !bytes.starts_with(MAGIC) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{} is not a ccheck receipt ledger", ledger.path.display()),
            ));
        }
        let valid_end = ledger.replay_bytes(&bytes)?;
        if valid_end < bytes.len() {
            // Torn tail from a mid-write crash: drop it so the next
            // append starts on a clean record boundary.
            ledger.file.set_len(valid_end as u64)?;
            ledger.file.sync_data()?;
        }
        ledger.file.seek(SeekFrom::End(0))?;
        Ok(ledger)
    }

    /// Read-only replay: parse every valid record of the ledger at
    /// `path` and return the sealed receipts in append order, without
    /// touching the file. Fails on a missing file or a bad header;
    /// tolerates a torn tail exactly like [`Ledger::open`].
    ///
    /// ```
    /// use ccheck_service::ledger::{verify_chain, Ledger};
    /// use ccheck_service::Receipt;
    ///
    /// let path = std::env::temp_dir().join(format!("doc-replay-{}.log", std::process::id()));
    /// # let _ = std::fs::remove_file(&path);
    /// let mut ledger = Ledger::open(&path)?;
    /// ledger.append(Receipt::example())?;
    /// drop(ledger);
    ///
    /// let receipts = Ledger::replay(&path)?;
    /// assert_eq!(receipts.len(), 1);
    /// assert!(verify_chain(&receipts).is_ok(), "replayed entries chain-verify");
    /// # std::fs::remove_file(&path)?;
    /// # Ok::<(), std::io::Error>(())
    /// ```
    pub fn replay(path: impl AsRef<Path>) -> io::Result<Vec<Receipt>> {
        let bytes = std::fs::read(path.as_ref())?;
        if !bytes.starts_with(MAGIC) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{} is not a ccheck receipt ledger", path.as_ref().display()),
            ));
        }
        let mut receipts = Vec::new();
        let mut offset = MAGIC.len();
        while let Some((receipt, next)) = decode_record(&bytes, offset) {
            receipts.push(receipt);
            offset = next;
        }
        Ok(receipts)
    }

    /// Seal `receipt` into its tenant's chain and append it to the log:
    /// stamps `content_hash` (SHA-256 of the canonical bytes, §6.2) and
    /// `prev_hash` (the tenant's current chain head, §6.3), frames the
    /// sealed JSON onto disk, and returns the sealed receipt. Fsyncs
    /// are batched (every `DEFAULT_SYNC_EVERY`th append); call
    /// [`Ledger::sync`] to force one.
    ///
    /// Appending a `(tenant, job_id)` that is already ledgered is a
    /// caller bug (the daemon answers those from the ledger instead,
    /// §7) and is refused without touching the file.
    ///
    /// ```
    /// use ccheck_service::ledger::{chain_hash, Ledger, GENESIS_HASH};
    /// use ccheck_service::Receipt;
    ///
    /// let path = std::env::temp_dir().join(format!("doc-append-{}.log", std::process::id()));
    /// # let _ = std::fs::remove_file(&path);
    /// let mut ledger = Ledger::open(&path)?;
    /// let first = ledger.append(Receipt::example())?;
    /// let second = ledger.append(Receipt {
    ///     job_id: 8,
    ///     ..Receipt::example()
    /// })?;
    /// // Same tenant ⇒ the second entry links to the first.
    /// assert_eq!(
    ///     second.prev_hash.unwrap(),
    ///     chain_hash(GENESIS_HASH, first.content_hash.as_deref().unwrap()),
    /// );
    /// # std::fs::remove_file(&path)?;
    /// # Ok::<(), std::io::Error>(())
    /// ```
    pub fn append(&mut self, mut receipt: Receipt) -> io::Result<Receipt> {
        let tenant = tenant_key(&receipt);
        if self
            .by_tenant_job
            .contains_key(&(tenant.clone(), receipt.job_id))
        {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!(
                    "job {} is already ledgered for tenant {tenant:?}",
                    receipt.job_id
                ),
            ));
        }
        let prev = self
            .heads
            .get(&tenant)
            .cloned()
            .unwrap_or_else(|| GENESIS_HASH.to_string());
        receipt.content_hash = Some(receipt.content_hash());
        receipt.prev_hash = Some(prev.clone());

        let t_append = std::time::Instant::now();
        let payload = receipt.to_json().render().into_bytes();
        debug_assert!(payload.len() < MAX_RECORD_LEN as usize);
        // The shared crash-safe framing (`ccheck_obs::record_log`,
        // extracted from this module) — byte-identical to the
        // pre-extraction format, asserted by the fixture-replay
        // regression test below.
        self.file.write_all(&encode_frame(&payload))?;
        if ccheck_obs::enabled() {
            let obs = ledger_obs();
            obs.appends.inc();
            obs.append_us.observe(t_append.elapsed().as_micros() as u64);
        }
        self.unsynced += 1;
        if self.unsynced >= self.sync_every {
            self.sync()?;
        }

        let content = receipt.content_hash.clone().expect("just sealed");
        self.heads
            .insert(tenant.clone(), chain_hash(&prev, &content));
        let index = self.entries.len();
        self.by_id.insert(receipt.job_id, index);
        self.by_tenant_job.insert((tenant, receipt.job_id), index);
        self.entries.push(receipt.clone());
        Ok(receipt)
    }

    /// Force the batched appends to durable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.unsynced > 0 {
            let t_sync = std::time::Instant::now();
            self.file.sync_data()?;
            if ccheck_obs::enabled() {
                ledger_obs()
                    .fsync_us
                    .observe(t_sync.elapsed().as_micros() as u64);
            }
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Fsync after this many appends (clamped to ≥ 1; 1 = every append).
    pub fn set_sync_every(&mut self, every: u32) {
        self.sync_every = every.max(1);
    }

    /// The ledger's log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of ledgered receipts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ledger holds no receipts yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All sealed receipts in append order.
    pub fn entries(&self) -> &[Receipt] {
        &self.entries
    }

    /// The sealed receipt for a service job id.
    pub fn get(&self, job_id: u64) -> Option<&Receipt> {
        self.by_id.get(&job_id).map(|&i| &self.entries[i])
    }

    /// The sealed receipt for `(tenant key, job id)` — the idempotency
    /// lookup (`docs/PROTOCOL.md` §7). The anonymous default tenant is
    /// keyed `""`.
    pub fn get_tenant_job(&self, tenant: &str, job_id: u64) -> Option<&Receipt> {
        self.by_tenant_job
            .get(&(tenant.to_string(), job_id))
            .map(|&i| &self.entries[i])
    }

    /// One tenant's chain in append order (what `verify_chain` takes).
    pub fn chain(&self, tenant: &str) -> Vec<&Receipt> {
        self.entries
            .iter()
            .filter(|r| tenant_key(r) == tenant)
            .collect()
    }

    /// A tenant's current chain head hash ([`GENESIS_HASH`] if the
    /// tenant has no entries).
    pub fn head(&self, tenant: &str) -> String {
        self.heads
            .get(tenant)
            .cloned()
            .unwrap_or_else(|| GENESIS_HASH.to_string())
    }

    /// Tenant keys with at least one ledgered receipt, sorted.
    pub fn tenants(&self) -> Vec<String> {
        self.heads.keys().cloned().collect()
    }

    /// The largest ledgered job id (0 when empty) — the floor for the
    /// restarted service's id allocator.
    pub fn max_job_id(&self) -> u64 {
        self.by_id.keys().next_back().copied().unwrap_or(0)
    }

    /// The largest ledgered admission sequence number (0 when empty) —
    /// the restarted world continues numbering from here.
    pub fn max_admit_seq(&self) -> u64 {
        self.entries.iter().map(|r| r.admit_seq).max().unwrap_or(0)
    }

    /// Replay framed records from `bytes` (which begins with [`MAGIC`])
    /// into the index; returns the offset one past the last valid
    /// record.
    fn replay_bytes(&mut self, bytes: &[u8]) -> io::Result<usize> {
        let mut offset = MAGIC.len();
        while let Some((receipt, next)) = decode_record(bytes, offset) {
            let tenant = tenant_key(&receipt);
            let content = receipt.content_hash.clone().unwrap_or_default();
            let prev = receipt.prev_hash.clone().unwrap_or_default();
            // A record that frames correctly but breaks the chain is
            // treated like any other tail corruption: replay stops at
            // the last coherent prefix (§6.1).
            if receipt.content_hash() != content || self.head(&tenant) != prev {
                break;
            }
            self.heads
                .insert(tenant.clone(), chain_hash(&prev, &content));
            let index = self.entries.len();
            self.by_id.insert(receipt.job_id, index);
            self.by_tenant_job.insert((tenant, receipt.job_id), index);
            self.entries.push(receipt);
            offset = next;
        }
        Ok(offset)
    }
}

/// Decode the record at `offset`: `Some((receipt, next_offset))` for a
/// complete, CRC-valid, parseable record, `None` for end-of-log or any
/// framing damage (a torn length word, short payload, CRC mismatch, or
/// unparseable JSON all read as "the log ends here").
fn decode_record(bytes: &[u8], offset: usize) -> Option<(Receipt, usize)> {
    let (payload, next) = decode_frame(bytes, offset)?;
    let text = std::str::from_utf8(payload).ok()?;
    let json = crate::json::parse(text).ok()?;
    let receipt = Receipt::from_json(&json).ok()?;
    Some((receipt, next))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobSpec, Verdict};

    /// Unique temp path per test (no global state, no clock).
    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ccheck-ledger-{tag}-{}.log", std::process::id()))
    }

    fn sealed_pair(path: &Path) -> (Receipt, Receipt) {
        let mut ledger = Ledger::open(path).unwrap();
        let first = ledger.append(Receipt::example()).unwrap();
        let second = ledger
            .append(Receipt {
                job_id: 8,
                verdict: Verdict::Verified,
                ..Receipt::example()
            })
            .unwrap();
        (first, second)
    }

    #[test]
    fn append_seals_and_links_per_protocol_6_3() {
        let path = temp_path("seal");
        let _ = std::fs::remove_file(&path);
        let (first, second) = sealed_pair(&path);
        // §6.3: genesis prev for the tenant's first entry, chain_hash
        // linkage for the second.
        assert_eq!(first.prev_hash.as_deref(), Some(GENESIS_HASH));
        assert_eq!(
            second.prev_hash.as_deref().unwrap(),
            chain_hash(GENESIS_HASH, first.content_hash.as_deref().unwrap())
        );
        // §6.2: content hashes recompute from canonical bytes.
        assert_eq!(first.content_hash.as_deref().unwrap(), first.content_hash());
        verify_chain(&[first, second]).expect("chain verifies");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reopen_restores_index_and_heads() {
        let path = temp_path("reopen");
        let _ = std::fs::remove_file(&path);
        let (first, second) = sealed_pair(&path);
        let ledger = Ledger::open(&path).unwrap();
        assert_eq!(ledger.len(), 2);
        assert_eq!(ledger.get(7), Some(&first));
        assert_eq!(ledger.get_tenant_job("acme", 8), Some(&second));
        assert_eq!(
            ledger.head("acme"),
            chain_hash(
                second.prev_hash.as_deref().unwrap(),
                second.content_hash.as_deref().unwrap()
            )
        );
        assert_eq!(ledger.max_job_id(), 8);
        assert_eq!(ledger.max_admit_seq(), 3);
        assert_eq!(ledger.tenants(), vec!["acme".to_string()]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn tenants_chain_independently() {
        let path = temp_path("tenants");
        let _ = std::fs::remove_file(&path);
        let mut ledger = Ledger::open(&path).unwrap();
        let a1 = ledger.append(Receipt::example()).unwrap();
        let b1 = ledger
            .append(Receipt {
                job_id: 9,
                tenant: Some("beta".into()),
                ..Receipt::example()
            })
            .unwrap();
        let a2 = ledger
            .append(Receipt {
                job_id: 10,
                ..Receipt::example()
            })
            .unwrap();
        // §6.3: beta's first entry starts at genesis even though acme
        // already has entries; acme's second links past beta's append.
        assert_eq!(b1.prev_hash.as_deref(), Some(GENESIS_HASH));
        assert_eq!(
            a2.prev_hash.as_deref().unwrap(),
            chain_hash(GENESIS_HASH, a1.content_hash.as_deref().unwrap())
        );
        verify_chain(&[a1, a2]).expect("acme chain");
        verify_chain(&[b1]).expect("beta chain");
        assert_eq!(ledger.chain("acme").len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn duplicate_tenant_job_is_refused() {
        let path = temp_path("dup");
        let _ = std::fs::remove_file(&path);
        let mut ledger = Ledger::open(&path).unwrap();
        ledger.append(Receipt::example()).unwrap();
        let err = ledger.append(Receipt::example()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        // The same job id under another tenant is a distinct chain key.
        ledger
            .append(Receipt {
                tenant: Some("other".into()),
                ..Receipt::example()
            })
            .unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        let (first, second) = sealed_pair(&path);
        let intact = std::fs::read(&path).unwrap();

        // §6.1: a crash can leave any prefix of the final record. Every
        // cut inside the last record must replay to exactly the first
        // two receipts and truncate the garbage.
        let second_start = intact.len() - (8 + second.to_json().render().len());
        for cut in [second_start + 1, second_start + 7, intact.len() - 1] {
            std::fs::write(&path, &intact[..cut]).unwrap();
            let ledger = Ledger::open(&path).unwrap();
            assert_eq!(ledger.len(), 1, "cut at {cut}");
            assert_eq!(ledger.get(first.job_id), Some(&first));
            assert_eq!(
                std::fs::metadata(&path).unwrap().len(),
                second_start as u64,
                "tail truncated at {cut}"
            );
        }

        // And appending after recovery re-links from the surviving head.
        let mut ledger = Ledger::open(&path).unwrap();
        let replacement = ledger
            .append(Receipt {
                job_id: 11,
                ..Receipt::example()
            })
            .unwrap();
        assert_eq!(
            replacement.prev_hash.as_deref().unwrap(),
            chain_hash(GENESIS_HASH, first.content_hash.as_deref().unwrap())
        );
        verify_chain(&[first, replacement]).expect("recovered chain");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_crc_stops_replay() {
        let path = temp_path("crc");
        let _ = std::fs::remove_file(&path);
        let (first, _second) = sealed_pair(&path);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload byte of the second record: CRC-32C must
        // catch it and replay must keep only the first receipt.
        let len = bytes.len();
        bytes[len - 3] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let receipts = Ledger::replay(&path).unwrap();
        assert_eq!(receipts, vec![first]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn non_ledger_file_is_refused() {
        let path = temp_path("notaledger");
        std::fs::write(&path, b"{\"cmd\":\"submit\"}\n").unwrap();
        assert!(Ledger::open(&path).is_err());
        assert!(Ledger::replay(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn verify_chain_flags_tampering() {
        let path = temp_path("tamper");
        let _ = std::fs::remove_file(&path);
        let (first, second) = sealed_pair(&path);

        // Tampered content: stored hash no longer matches the bytes.
        let mut forged = first.clone();
        forged.digest ^= 1;
        let err = verify_chain(&[forged, second.clone()]).unwrap_err();
        assert!(err.contains("content hash mismatch"), "{err}");

        // Dropped middle entry: the link to the head breaks.
        let err = verify_chain(std::slice::from_ref(&second)).unwrap_err();
        assert!(err.contains("chain break"), "{err}");

        // Reordered entries break too — order is part of the chain.
        let err = verify_chain(&[second, first]).unwrap_err();
        assert!(err.contains("chain break"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fingerprint_matches_protocol_7() {
        // §7's idempotency key: the fingerprint covers the spec minus
        // job_id, so resubmitting identical work under the same id is
        // detectable as a pure duplicate.
        let spec = JobSpec {
            tenant: Some("acme".into()),
            job_id: Some(7),
            ..JobSpec::default()
        };
        let same_work = JobSpec {
            job_id: None,
            ..spec.clone()
        };
        assert_eq!(spec.fingerprint(), same_work.fingerprint());
    }

    /// `docs/PROTOCOL.md` §6.2 worked example, asserted byte-for-byte:
    /// the canonical serialization and content hash printed there must
    /// be exactly what the code computes.
    #[test]
    fn protocol_6_2_worked_example_is_byte_exact() {
        let receipt = Receipt::example();
        let canonical = receipt.canonical_json();
        assert_eq!(canonical, PROTOCOL_6_2_CANONICAL);
        assert_eq!(receipt.content_hash(), PROTOCOL_6_2_CONTENT_HASH);
        assert_eq!(
            chain_hash(GENESIS_HASH, PROTOCOL_6_2_CONTENT_HASH),
            PROTOCOL_6_2_CHAIN_HASH
        );
        // Round-trip: parsing the documented bytes reproduces the
        // receipt, and re-rendering reproduces the bytes.
        let parsed = crate::json::parse(PROTOCOL_6_2_CANONICAL).unwrap();
        let decoded = Receipt::from_json(&parsed).unwrap();
        assert_eq!(decoded, receipt);
        assert_eq!(decoded.canonical_json(), PROTOCOL_6_2_CANONICAL);
    }

    /// The §6.2 example's canonical bytes (single line; keys sorted).
    const PROTOCOL_6_2_CANONICAL: &str = "{\"admit_seq\":3,\"check\":{\"adaptive\":true,\
\"buckets\":16,\"iterations\":2,\"log2_rhat\":10},\"comm\":{\"bottleneck_bytes\":1024,\
\"max_rounds\":12,\"total_bytes\":4096,\"total_msgs\":77},\"digest\":1234567890123456789,\
\"elems\":100000,\"job_id\":7,\"op\":\"reduce\",\"output_elems\":1000,\"result_ok\":true,\
\"retries\":1,\"spec_fingerprint\":\
\"3c2dda6ed69065bba00b066d354918cef719a9d24b65dbefe6a6646ca58ab73b\",\
\"tenant\":\"acme\",\"timing\":{\"check_ms\":7,\"exec_ms\":30,\"queue_wait_ms\":5},\
\"verdict\":\"retried\",\"wall_ms\":42}";

    /// SHA-256 of `PROTOCOL_6_2_CANONICAL`.
    const PROTOCOL_6_2_CONTENT_HASH: &str =
        "e8717ddce74912073d45fa321a51656f4e8536a43f1c9044038353f08938480f";

    /// Chain hash of the example as a tenant's first entry.
    const PROTOCOL_6_2_CHAIN_HASH: &str =
        "6fec159e0648945951addaec1576babf206679011c0ad00da6e1a2ad0a664b4a";
}

//! # ccheck-service — checking as a service
//!
//! The paper frames its checkers as infrastructure "designed to become
//! part of" a big-data framework; related work on verifiable outsourced
//! computation (Chakrabarti et al.; Yoon & Liu) deploys exactly this
//! shape: a **long-lived service** that accepts computations and hands
//! back verifiable verdicts. This crate is that runtime for the ccheck
//! workspace: a daemon running on every PE of a launched world, serving
//! a queue of independent *checking jobs* — dataset spec + operation +
//! check configuration — concurrently over one shared transport, and
//! returning structured **verdict receipts** with per-job communication
//! volumes.
//!
//! ## Pieces
//!
//! | Module | What |
//! |---|---|
//! | [`job`] | [`job::JobSpec`] / [`job::Receipt`] / control-plane messages |
//! | [`exec`] | job execution: spec → receipt, same code under the service and standalone |
//! | [`sched`] | the policy-driven scheduler: [`sched::SchedPolicy`] (FIFO / priority-aging / deadline-WFQ), tenant quotas, work stealing, adaptive checker tuning |
//! | [`daemon`] | the SPMD service loop, PE-0 admission, client listener |
//! | [`health`] | the health plane: heartbeat liveness, straggler watch, `watch` sample ring |
//! | [`ledger`] | durable hash-chained receipt ledger: crash recovery + idempotent resubmission |
//! | [`slo`] | declarative service-level objectives over the watch-sample stream, with burn-rate accounting and a durable alert stream |
//! | [`client`] | blocking line-JSON client ([`client::ServiceClient`]) |
//! | [`json`] | the minimal offline JSON codec behind the protocol |
//!
//! Concurrency rests on `ccheck-net`'s scoped communicators
//! ([`ccheck_net::CommMux`]): each in-flight job runs on its own
//! tag-namespace `Comm` with its own statistics registry, so interleaved
//! jobs' collectives never cross-talk and every receipt reports exactly
//! the communication volume the job would report running alone.
//!
//! ## Protocol (line-delimited JSON over TCP to PE 0)
//!
//! ```text
//! → {"cmd":"submit","job":{"op":"reduce","n":1000000,"keys":10000,"seed":7,
//!     "tenant":"team-a","priority":3,"deadline_ms":5000,"check":"adaptive"}}
//! ← {"ok":true,"id":1,"status":"queued"}
//! → {"cmd":"wait","id":1}
//! ← {"ok":true,"id":1,"status":"done","receipt":{"verdict":"verified",
//!     "digest":…,"comm":{"total_bytes":…,"bottleneck_bytes":…},…}}
//! → {"cmd":"shutdown"}
//! ← {"ok":true,"status":"draining"}
//! ```
//!
//! ## Quickstart
//!
//! ```text
//! $ ccheck-launch -p 4 -- target/release/ccheck-serve \
//!       --transport tcp --listen 127.0.0.1:0 --addr-file /tmp/ccheck.addr &
//! $ ccheck-submit --addr-file /tmp/ccheck.addr --op sort --n 1000000 --wait
//! $ ccheck-submit --addr-file /tmp/ccheck.addr --shutdown
//! ```

pub mod client;
pub mod daemon;
pub mod exec;
pub mod health;
pub mod job;
pub mod json;
pub mod ledger;
pub mod sched;
pub mod slo;

pub use client::{ChainLink, ServiceClient, ServiceError, SubmitAck, TenantChain};
pub use daemon::{run_service, run_service_world, ServiceConfig, ServiceSummary, TenantAgg};
pub use exec::{execute_job, execute_job_traced, TraceCtx};
pub use health::{HealthCfg, HealthTracker, Heartbeat, Liveness, PeHealth, WatchSample};
pub use job::{
    CheckMode, CheckUsed, FaultSpec, JobOp, JobSpec, JobStatus, Receipt, ReceiptComm,
    ReceiptTiming, Verdict,
};
pub use ledger::Ledger;
pub use sched::{PolicyCfg, SchedCore, SchedPolicy};
pub use slo::{AlertEvent, SloEngine, SloSpec, SloStatus};

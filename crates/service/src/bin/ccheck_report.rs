//! `ccheck-report` — offline analytics over the durable telemetry plane.
//!
//! ```text
//! ccheck-report --history /tmp/w.hist --ledger /tmp/w.ledger
//! ccheck-report --history /tmp/w.hist --json > report.json
//! ccheck-report --history /tmp/w.hist --ledger /tmp/w.ledger --diff base.json
//! ```
//!
//! Joins the two durable artifacts a service world leaves behind — the
//! `--history` metrics log (watch samples + alert events) and the
//! `--ledger` receipt log — into one report: per-tenant usage (verdict
//! mix, data/communication volumes, queue-wait and execution
//! percentiles), an SLO compliance summary folded from the durable
//! alert stream, and a per-window throughput trajectory.
//!
//! Receipts carry no wall-clock timestamp (their canonical bytes are
//! sealed into hash chains and must not depend on the clock), so the
//! time-window join goes through the sample stream instead: every watch
//! sample records the **cumulative** per-tenant completion count, and a
//! tenant's ledger entries are in completion order, so the counts at
//! two sample timestamps bracket exactly the receipts completed between
//! them. The join is therefore as crash-safe as the logs themselves:
//! any durable prefix reproduces the identical report.
//!
//! `--diff BASE` compares the report against a previously saved
//! `--json` output and exits nonzero (3) when a regression threshold is
//! breached: per-tenant execution-p95 growth, rejected-rate growth, or
//! new SLO breaches. Everything is computed from the files alone — no
//! clocks, no randomness — so re-running on the same inputs is
//! byte-identical.

use std::collections::BTreeMap;
use std::path::PathBuf;

use ccheck_obs::history::{HistoryPayload, HistoryReader};
use ccheck_service::health::WatchSample;
use ccheck_service::json::{self, Json};
use ccheck_service::ledger::Ledger;
use ccheck_service::slo::AlertEvent;
use ccheck_service::{Receipt, Verdict};

struct Args {
    history: PathBuf,
    ledger: Option<PathBuf>,
    window_ms: u64,
    tenant: Option<String>,
    json: bool,
    diff: Option<PathBuf>,
    max_p95_regress_pct: u64,
    max_rejected_delta_permille: u64,
}

fn usage(problem: &str) -> ! {
    eprintln!(
        "error: {problem}\n\
         \n\
         usage: ccheck-report --history PATH [--ledger PATH] [options]\n\
         \n\
         --history PATH        metrics history file written by ccheck-serve --history\n\
         --ledger PATH         receipt ledger written by ccheck-serve --ledger\n\
         --window SECS         trajectory window size in seconds (default 60)\n\
         --tenant NAME         restrict per-tenant sections to one tenant\n\
         --json                emit the report as one canonical JSON line\n\
         --diff BASE           compare against a saved --json report; exit 3 on\n\
         \u{20}                  threshold breach\n\
         --max-p95-regress PCT     allowed per-tenant exec-p95 growth vs base\n\
         \u{20}                      before --diff fails (default 50)\n\
         --max-rejected-delta PM   allowed per-tenant rejected-rate growth vs\n\
         \u{20}                      base, in permille (default 50)"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut history = None;
    let mut args = Args {
        history: PathBuf::new(),
        ledger: None,
        window_ms: 60_000,
        tenant: None,
        json: false,
        diff: None,
        max_p95_regress_pct: 50,
        max_rejected_delta_permille: 50,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--history" => match iter.next() {
                Some(p) => history = Some(PathBuf::from(p)),
                None => usage("--history expects a path"),
            },
            "--ledger" => match iter.next() {
                Some(p) => args.ledger = Some(PathBuf::from(p)),
                None => usage("--ledger expects a path"),
            },
            "--window" => match iter.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(s) if s > 0 => args.window_ms = s * 1000,
                _ => usage("--window expects a positive number of seconds"),
            },
            "--tenant" => match iter.next() {
                Some(t) => args.tenant = Some(t),
                None => usage("--tenant expects a name"),
            },
            "--json" => args.json = true,
            "--diff" => match iter.next() {
                Some(p) => args.diff = Some(PathBuf::from(p)),
                None => usage("--diff expects a path to a saved --json report"),
            },
            "--max-p95-regress" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(p) => args.max_p95_regress_pct = p,
                None => usage("--max-p95-regress expects a percentage"),
            },
            "--max-rejected-delta" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(p) => args.max_rejected_delta_permille = p,
                None => usage("--max-rejected-delta expects a permille value"),
            },
            other => usage(&format!("unknown option {other:?}")),
        }
    }
    match history {
        Some(h) => args.history = h,
        None => usage("--history is required"),
    }
    args
}

fn fail(what: &str, err: impl std::fmt::Display) -> ! {
    eprintln!("ccheck-report: {what}: {err}");
    std::process::exit(1);
}

/// Nearest-rank percentile over an already-sorted slice (0 when empty).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Watch samples and alert events decoded from a history file, in
/// wall-clock order.
struct HistoryData {
    samples: Vec<(u64, WatchSample)>,
    alerts: Vec<AlertEvent>,
}

fn load_history(path: &PathBuf) -> HistoryData {
    let reader = HistoryReader::open(path).unwrap_or_else(|e| fail("open history", e));
    let mut samples = Vec::new();
    let mut alerts = Vec::new();
    for record in reader {
        let record = record.unwrap_or_else(|e| fail("read history", e));
        match record.payload {
            HistoryPayload::Sample(bytes) => {
                let text = std::str::from_utf8(&bytes).unwrap_or_else(|e| fail("sample utf8", e));
                let parsed = json::parse(text).unwrap_or_else(|e| fail("sample json", e));
                let sample =
                    WatchSample::from_json(&parsed).unwrap_or_else(|e| fail("sample decode", e));
                samples.push((record.wall_ms, sample));
            }
            HistoryPayload::Alert(bytes) => {
                let text = std::str::from_utf8(&bytes).unwrap_or_else(|e| fail("alert utf8", e));
                let parsed = json::parse(text).unwrap_or_else(|e| fail("alert json", e));
                let ev = AlertEvent::from_json(&parsed).unwrap_or_else(|e| fail("alert decode", e));
                alerts.push(ev);
            }
            HistoryPayload::Metrics(_) => {}
        }
    }
    samples.sort_by_key(|(wall, s)| (*wall, s.seq));
    alerts.sort_by_key(|a| a.at_ms);
    HistoryData { samples, alerts }
}

/// Fold the durable alert stream into per-SLO compliance: breach count,
/// total milliseconds spent firing (an alert still firing at the end of
/// the span is charged up to `span_end_ms`), and peak burn rate.
fn slo_compliance(alerts: &[AlertEvent], span_end_ms: u64) -> BTreeMap<String, Json> {
    #[derive(Default)]
    struct Fold {
        breaches: u64,
        firing_ms: u64,
        max_burn_permille: u64,
        firing_since: Option<u64>,
    }
    let mut folds: BTreeMap<String, Fold> = BTreeMap::new();
    for ev in alerts {
        let fold = folds.entry(ev.slo.clone()).or_default();
        fold.max_burn_permille = fold.max_burn_permille.max(ev.burn_permille);
        if ev.firing {
            fold.breaches += 1;
            fold.firing_since.get_or_insert(ev.at_ms);
        } else if let Some(since) = fold.firing_since.take() {
            fold.firing_ms += ev.at_ms.saturating_sub(since);
        }
    }
    folds
        .into_iter()
        .map(|(name, mut fold)| {
            if let Some(since) = fold.firing_since.take() {
                fold.firing_ms += span_end_ms.saturating_sub(since);
            }
            let body = Json::obj([
                ("breaches", Json::from(fold.breaches)),
                ("firing_ms", Json::from(fold.firing_ms)),
                ("max_burn_permille", Json::from(fold.max_burn_permille)),
            ]);
            (name, body)
        })
        .collect()
}

/// Per-tenant usage rolled up from the full receipt ledger.
fn tenant_usage(receipts: &[Receipt], only: Option<&str>) -> BTreeMap<String, Json> {
    #[derive(Default)]
    struct Usage {
        jobs: u64,
        verified: u64,
        retried: u64,
        fellback: u64,
        rejected: u64,
        elems: u64,
        comm_bytes: u64,
        exec_ms: Vec<u64>,
        queue_ms: Vec<u64>,
    }
    let mut usage: BTreeMap<String, Usage> = BTreeMap::new();
    for receipt in receipts {
        let key = receipt.tenant.clone().unwrap_or_default();
        if only.is_some_and(|t| t != key) {
            continue;
        }
        let u = usage.entry(key).or_default();
        u.jobs += 1;
        match receipt.verdict {
            Verdict::Verified => u.verified += 1,
            Verdict::VerifiedAfterRetry(_) => u.retried += 1,
            Verdict::FellBack => u.fellback += 1,
            Verdict::Rejected => u.rejected += 1,
        }
        u.elems += receipt.elems;
        u.comm_bytes += receipt.comm.as_ref().map_or(0, |c| c.total_bytes);
        if let Some(t) = &receipt.timing {
            u.exec_ms.push(t.exec_ms);
            u.queue_ms.push(t.queue_wait_ms);
        }
    }
    usage
        .into_iter()
        .map(|(tenant, mut u)| {
            u.exec_ms.sort_unstable();
            u.queue_ms.sort_unstable();
            let rejected_permille = (u.rejected * 1000).checked_div(u.jobs).unwrap_or(0);
            let body = Json::obj([
                ("jobs", Json::from(u.jobs)),
                ("verified", Json::from(u.verified)),
                ("retried", Json::from(u.retried)),
                ("fellback", Json::from(u.fellback)),
                ("rejected", Json::from(u.rejected)),
                ("rejected_permille", Json::from(rejected_permille)),
                ("elems", Json::from(u.elems)),
                ("comm_bytes", Json::from(u.comm_bytes)),
                ("exec_p50_ms", Json::from(percentile(&u.exec_ms, 0.5))),
                ("exec_p95_ms", Json::from(percentile(&u.exec_ms, 0.95))),
                ("queue_p50_ms", Json::from(percentile(&u.queue_ms, 0.5))),
                ("queue_p95_ms", Json::from(percentile(&u.queue_ms, 0.95))),
            ]);
            (tenant, body)
        })
        .collect()
}

/// The per-window trajectory: samples are bucketed by wall clock, the
/// last sample of each bucket carries the cumulative counters, and the
/// deltas between consecutive kept samples are the window's activity.
/// The cumulative per-tenant counts additionally bracket each tenant's
/// completion-ordered receipts, so every window gets the exec-p95 of
/// exactly the receipts completed inside it.
fn windows(
    data: &HistoryData,
    receipts: &[Receipt],
    window_ms: u64,
    only: Option<&str>,
) -> Vec<Json> {
    // Tenant → receipts in completion (ledger append) order.
    let mut chains: BTreeMap<&str, Vec<&Receipt>> = BTreeMap::new();
    for receipt in receipts {
        chains
            .entry(receipt.tenant.as_deref().unwrap_or(""))
            .or_default()
            .push(receipt);
    }
    // Last sample per bucket, in order.
    let mut kept: Vec<&(u64, WatchSample)> = Vec::new();
    for entry in &data.samples {
        let bucket = entry.0 / window_ms;
        match kept.last() {
            Some(last) if last.0 / window_ms == bucket => *kept.last_mut().unwrap() = entry,
            _ => kept.push(entry),
        }
    }
    let mut out = Vec::new();
    let mut prev: Option<&(u64, WatchSample)> = None;
    for entry in kept {
        let (wall, cur) = entry;
        let (p_done, p_failed) = prev.map_or((0, 0), |(_, p)| (p.jobs_done, p.jobs_failed));
        let mut tenants: BTreeMap<String, Json> = BTreeMap::new();
        for (tenant, count) in &cur.tenants {
            let count = *count;
            if only.is_some_and(|t| t != tenant) {
                continue;
            }
            let start = prev
                .and_then(|(_, p)| p.tenants.iter().find(|(t, _)| t == tenant))
                .map_or(0, |(_, c)| *c);
            if count <= start {
                continue;
            }
            let mut exec: Vec<u64> = chains
                .get(tenant.as_str())
                .map(|chain| {
                    let lo = (start as usize).min(chain.len());
                    let hi = (count as usize).min(chain.len());
                    chain[lo..hi]
                        .iter()
                        .filter_map(|r| r.timing.as_ref().map(|t| t.exec_ms))
                        .collect()
                })
                .unwrap_or_default();
            exec.sort_unstable();
            tenants.insert(
                tenant.clone(),
                Json::obj([
                    ("jobs", Json::from(count - start)),
                    ("exec_p95_ms", Json::from(percentile(&exec, 0.95))),
                ]),
            );
        }
        out.push(Json::obj([
            ("at_ms", Json::from(*wall)),
            ("done", Json::from(cur.jobs_done.saturating_sub(p_done))),
            (
                "failed",
                Json::from(cur.jobs_failed.saturating_sub(p_failed)),
            ),
            ("p95_ms", Json::from(cur.p95_ms)),
            ("alerts", Json::from(cur.alerts)),
            ("tenants", Json::Obj(tenants)),
        ]));
        prev = Some(entry);
    }
    out
}

fn build_report(args: &Args, data: &HistoryData, receipts: &[Receipt]) -> Json {
    let from_ms = data.samples.first().map_or(0, |(w, _)| *w);
    let to_ms = data.samples.last().map_or(0, |(w, _)| *w);
    let span_end = to_ms.max(data.alerts.last().map_or(0, |a| a.at_ms));
    Json::obj([
        (
            "history",
            Json::obj([
                ("from_ms", Json::from(from_ms)),
                ("to_ms", Json::from(to_ms)),
                ("samples", Json::from(data.samples.len() as u64)),
                ("alert_events", Json::from(data.alerts.len() as u64)),
            ]),
        ),
        ("slos", Json::Obj(slo_compliance(&data.alerts, span_end))),
        (
            "tenants",
            Json::Obj(tenant_usage(receipts, args.tenant.as_deref())),
        ),
        (
            "windows",
            Json::Arr(windows(
                data,
                receipts,
                args.window_ms,
                args.tenant.as_deref(),
            )),
        ),
    ])
}

fn get_u64(v: &Json, path: &[&str]) -> u64 {
    let mut cur = v;
    for key in path {
        match cur.get(key) {
            Some(next) => cur = next,
            None => return 0,
        }
    }
    cur.as_u64().unwrap_or(0)
}

/// Compare `report` against a saved `--json` baseline. Returns the list
/// of threshold breaches (empty = pass).
fn diff(report: &Json, base: &Json, args: &Args) -> Vec<String> {
    let mut breaches = Vec::new();
    let (Some(Json::Obj(cur_tenants)), Some(Json::Obj(base_tenants))) =
        (report.get("tenants"), base.get("tenants"))
    else {
        return vec!["base report has no tenants section".to_string()];
    };
    for (tenant, cur) in cur_tenants {
        let Some(prev) = base_tenants.get(tenant) else {
            continue; // new tenant: nothing to regress against
        };
        let label = if tenant.is_empty() {
            "(default)"
        } else {
            tenant
        };
        let cur_p95 = get_u64(cur, &["exec_p95_ms"]);
        let base_p95 = get_u64(prev, &["exec_p95_ms"]);
        if base_p95 > 0 && get_u64(cur, &["jobs"]) > 0 {
            let limit = base_p95 + base_p95 * args.max_p95_regress_pct / 100;
            if cur_p95 > limit {
                breaches.push(format!(
                    "tenant {label}: exec p95 {cur_p95} ms exceeds base {base_p95} ms \
                     by more than {}% (limit {limit} ms)",
                    args.max_p95_regress_pct
                ));
            }
        }
        let cur_rej = get_u64(cur, &["rejected_permille"]);
        let base_rej = get_u64(prev, &["rejected_permille"]);
        if cur_rej > base_rej + args.max_rejected_delta_permille {
            breaches.push(format!(
                "tenant {label}: rejected rate {cur_rej}‰ exceeds base {base_rej}‰ \
                 by more than {}‰",
                args.max_rejected_delta_permille
            ));
        }
    }
    let total = |r: &Json| match r.get("slos") {
        Some(Json::Obj(slos)) => slos.values().map(|s| get_u64(s, &["breaches"])).sum(),
        _ => 0u64,
    };
    let (cur_breaches, base_breaches) = (total(report), total(base));
    if cur_breaches > base_breaches {
        breaches.push(format!(
            "SLO breaches grew from {base_breaches} to {cur_breaches}"
        ));
    }
    breaches
}

fn print_human(args: &Args, report: &Json) {
    let h = |p: &[&str]| get_u64(report, p);
    println!(
        "ccheck-report  history {}{}",
        args.history.display(),
        args.ledger
            .as_ref()
            .map(|l| format!("  ledger {}", l.display()))
            .unwrap_or_default()
    );
    println!(
        "span: {} → {} ms  ({:.1} s, {} samples, {} alert events)",
        h(&["history", "from_ms"]),
        h(&["history", "to_ms"]),
        h(&["history", "to_ms"]).saturating_sub(h(&["history", "from_ms"])) as f64 / 1000.0,
        h(&["history", "samples"]),
        h(&["history", "alert_events"]),
    );
    if let Some(Json::Obj(slos)) = report.get("slos") {
        if !slos.is_empty() {
            println!(
                "\n{:>16} {:>9} {:>10} {:>9}",
                "SLO", "breaches", "firing s", "max burn"
            );
            for (name, s) in slos {
                println!(
                    "{name:>16} {:>9} {:>10.1} {:>8.2}x",
                    get_u64(s, &["breaches"]),
                    get_u64(s, &["firing_ms"]) as f64 / 1000.0,
                    get_u64(s, &["max_burn_permille"]) as f64 / 1000.0,
                );
            }
        }
    }
    if let Some(Json::Obj(tenants)) = report.get("tenants") {
        if !tenants.is_empty() {
            println!(
                "\n{:>16} {:>6} {:>9} {:>7} {:>8} {:>8} {:>10} {:>13} {:>14}",
                "tenant",
                "jobs",
                "verified",
                "retried",
                "fellback",
                "rejected",
                "comm KiB",
                "exec p50/p95",
                "queue p50/p95"
            );
            for (tenant, u) in tenants {
                let name = if tenant.is_empty() {
                    "(default)"
                } else {
                    tenant
                };
                println!(
                    "{name:>16} {:>6} {:>9} {:>7} {:>8} {:>8} {:>10} {:>6}/{:<6} {:>7}/{:<6}",
                    get_u64(u, &["jobs"]),
                    get_u64(u, &["verified"]),
                    get_u64(u, &["retried"]),
                    get_u64(u, &["fellback"]),
                    get_u64(u, &["rejected"]),
                    get_u64(u, &["comm_bytes"]) / 1024,
                    get_u64(u, &["exec_p50_ms"]),
                    get_u64(u, &["exec_p95_ms"]),
                    get_u64(u, &["queue_p50_ms"]),
                    get_u64(u, &["queue_p95_ms"]),
                );
            }
        }
    }
    if let Some(Json::Arr(windows)) = report.get("windows") {
        if !windows.is_empty() {
            println!(
                "\nwindows ({} s):\n{:>16} {:>6} {:>7} {:>8} {:>7}  per-tenant",
                args.window_ms / 1000,
                "at ms",
                "done",
                "failed",
                "p95 ms",
                "alerts"
            );
            for w in windows {
                let tenants = match w.get("tenants") {
                    Some(Json::Obj(m)) => m
                        .iter()
                        .map(|(t, v)| {
                            format!(
                                "{}={} (p95 {} ms)",
                                if t.is_empty() { "(default)" } else { t },
                                get_u64(v, &["jobs"]),
                                get_u64(v, &["exec_p95_ms"]),
                            )
                        })
                        .collect::<Vec<_>>()
                        .join("  "),
                    _ => String::new(),
                };
                println!(
                    "{:>16} {:>6} {:>7} {:>8} {:>7}  {tenants}",
                    get_u64(w, &["at_ms"]),
                    get_u64(w, &["done"]),
                    get_u64(w, &["failed"]),
                    get_u64(w, &["p95_ms"]),
                    get_u64(w, &["alerts"]),
                );
            }
        }
    }
}

fn main() {
    let args = parse_args();
    let data = load_history(&args.history);
    let receipts = match &args.ledger {
        Some(path) => Ledger::replay(path).unwrap_or_else(|e| fail("replay ledger", e)),
        None => Vec::new(),
    };
    let report = build_report(&args, &data, &receipts);
    if args.json {
        println!("{}", report.render());
    } else {
        print_human(&args, &report);
    }
    if let Some(base_path) = &args.diff {
        let text =
            std::fs::read_to_string(base_path).unwrap_or_else(|e| fail("read --diff base", e));
        let base = json::parse(text.trim()).unwrap_or_else(|e| fail("parse --diff base", e));
        let breaches = diff(&report, &base, &args);
        if !breaches.is_empty() {
            for b in &breaches {
                eprintln!("ccheck-report: regression: {b}");
            }
            std::process::exit(3);
        }
        eprintln!("ccheck-report: diff vs {}: ok", base_path.display());
    }
}

//! `ccheck-submit` — submit checking jobs to a running `ccheck-serve`
//! world and print verdict receipts.
//!
//! ```text
//! ccheck-submit --addr-file /tmp/ccheck.addr \
//!     --op reduce --n 1000000 --keys 10000 --seed 7 --wait --expect verified
//! ccheck-submit --addr-file /tmp/ccheck.addr --poll 3
//! ccheck-submit --addr-file /tmp/ccheck.addr --shutdown
//! ```
//!
//! With `--wait` the receipt is printed as one JSON line; with
//! `--expect VERDICT` the exit code reports whether the receipt matched
//! (0) or not (1) — the hook CI smoke tests assert on.

use std::path::PathBuf;
use std::time::Duration;

use ccheck_service::json::Json;
use ccheck_service::{CheckMode, FaultSpec, JobSpec, ServiceClient, ServiceError};

enum Action {
    Submit { wait: bool, expect: Option<String> },
    Poll(u64),
    Chain(String),
    Metrics,
    Health,
    Timeline(u64),
    Shutdown,
}

fn usage(problem: &str) -> ! {
    eprintln!(
        "error: {problem}\n\
         \n\
         usage: ccheck-submit (--addr HOST:PORT | --addr-file PATH) ACTION [JOB OPTIONS]\n\
         \n\
         actions:\n\
         \u{20} (default)           submit a job; add --wait for the receipt\n\
         \u{20} --poll ID           query one job's status\n\
         \u{20} --chain TENANT      print a tenant's ledger chain summary\n\
         \u{20} --metrics           print a live world-merged metrics snapshot\n\
         \u{20}                     (Prometheus text format; obs series need the\n\
         \u{20}                     service to run with CCHECK_OBS=1)\n\
         \u{20} --health            print the world's per-PE liveness report\n\
         \u{20}                     (healthy/suspect/dead from heartbeat ages,\n\
         \u{20}                     queue depth, inflight, flagged stragglers)\n\
         \u{20} --timeline ID       print job ID's merged cross-PE timeline:\n\
         \u{20}                     queue -> admit -> generate -> execute ->\n\
         \u{20}                     check -> receipt lanes from every PE (the\n\
         \u{20}                     service must run with CCHECK_OBS=1)\n\
         \u{20} --shutdown          drain and stop the service\n\
         \n\
         job options:\n\
         \u{20} --op reduce|sort|zip   operation (default reduce)\n\
         \u{20} --n N                  global elements (default 100000)\n\
         \u{20} --keys K               distinct keys / value range (default 1000)\n\
         \u{20} --seed S               workload seed (default 1)\n\
         \u{20} --chunk C              streaming chunk elems (default 0 = one-shot)\n\
         \u{20} --iterations I         checker iterations (default 4)\n\
         \u{20} --buckets B            sum-checker buckets (default 16)\n\
         \u{20} --log2-rhat R          sum-checker log2 r-hat (default 9)\n\
         \u{20} --retries R            retry budget before fallback (default 2)\n\
         \u{20} --fault KIND           inject a manipulator fault on PE 0\n\
         \u{20} --fault-seed S         manipulator seed (default 0)\n\
         \u{20} --tenant T             submit under tenant T (fairness, quotas, tuning)\n\
         \u{20} --job-id N             client-chosen id (N >= 1): resubmitting the same\n\
         \u{20}                        (tenant, job-id, spec) is deduplicated against the\n\
         \u{20}                        service's ledger instead of running again\n\
         \u{20} --priority P           scheduling priority (higher runs sooner)\n\
         \u{20} --deadline-ms MS       refuse the job if still queued after MS\n\
         \u{20}                        (needs a non-fifo ccheck-serve --policy;\n\
         \u{20}                        the default fifo policy ignores deadlines)\n\
         \u{20} --adaptive             let the scheduler pick (its, b, r-hat)\n\
         \u{20}                        from this tenant's recent receipts\n\
         \u{20} --wait                 block for the receipt and print it\n\
         \u{20} --wait-timeout SECS    give up waiting after SECS (exit 4, job keeps running)\n\
         \u{20} --expect V             exit 1 unless the verdict is V\n\
         \u{20}                        (verified|retried|fellback|rejected)\n\
         \u{20} --verify-receipt       after the receipt arrives, re-verify it client-side\n\
         \u{20}                        against the service's ledger chain (implies --wait;\n\
         \u{20}                        exit 1 on any hash or chain mismatch)\n\
         \u{20} --timeout SECS         connect timeout (default 30)\n\
         \n\
         busy refusals print the scheduler's retry_after_ms hint and exit 3"
    );
    std::process::exit(2);
}

fn main() {
    let mut addr: Option<String> = None;
    let mut addr_file: Option<PathBuf> = None;
    let mut action = Action::Submit {
        wait: false,
        expect: None,
    };
    let mut spec = JobSpec::default();
    let mut fault_kind: Option<String> = None;
    let mut fault_seed = 0u64;
    let mut timeout = Duration::from_secs(30);
    let mut wait_timeout: Option<Duration> = None;
    let mut verify_receipt = false;

    let mut iter = std::env::args().skip(1);
    let next_value = |iter: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        iter.next()
            .unwrap_or_else(|| usage(&format!("{flag} expects a value")))
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => addr = Some(next_value(&mut iter, "--addr")),
            "--addr-file" => addr_file = Some(PathBuf::from(next_value(&mut iter, "--addr-file"))),
            "--poll" => {
                action = Action::Poll(
                    next_value(&mut iter, "--poll")
                        .parse()
                        .unwrap_or_else(|_| usage("--poll expects a job id")),
                )
            }
            "--chain" => action = Action::Chain(next_value(&mut iter, "--chain")),
            "--metrics" => action = Action::Metrics,
            "--health" => action = Action::Health,
            "--timeline" => {
                action = Action::Timeline(
                    next_value(&mut iter, "--timeline")
                        .parse()
                        .unwrap_or_else(|_| usage("--timeline expects a job id")),
                )
            }
            "--shutdown" => action = Action::Shutdown,
            "--wait" => {
                if let Action::Submit { wait, .. } = &mut action {
                    *wait = true;
                }
            }
            "--expect" => {
                let v = next_value(&mut iter, "--expect");
                if !["verified", "retried", "fellback", "rejected"].contains(&v.as_str()) {
                    usage(&format!("--expect: unknown verdict {v:?}"));
                }
                if let Action::Submit { wait, expect } = &mut action {
                    *wait = true;
                    *expect = Some(v);
                }
            }
            "--op" => {
                spec.op = ccheck_service::JobOp::parse(&next_value(&mut iter, "--op"))
                    .unwrap_or_else(|e| usage(&e))
            }
            "--n" => spec.n = parse_num(&next_value(&mut iter, "--n"), "--n"),
            "--keys" => spec.keys = parse_num(&next_value(&mut iter, "--keys"), "--keys"),
            "--seed" => spec.seed = parse_num(&next_value(&mut iter, "--seed"), "--seed"),
            "--chunk" => spec.chunk = parse_num(&next_value(&mut iter, "--chunk"), "--chunk"),
            "--iterations" => {
                spec.iterations =
                    parse_num(&next_value(&mut iter, "--iterations"), "--iterations") as u32
            }
            "--buckets" => {
                spec.buckets = parse_num(&next_value(&mut iter, "--buckets"), "--buckets") as u32
            }
            "--log2-rhat" => {
                spec.log2_rhat =
                    parse_num(&next_value(&mut iter, "--log2-rhat"), "--log2-rhat") as u32
            }
            "--retries" => {
                spec.max_retries =
                    parse_num(&next_value(&mut iter, "--retries"), "--retries") as u32
            }
            "--fault" => fault_kind = Some(next_value(&mut iter, "--fault")),
            "--fault-seed" => {
                fault_seed = parse_num(&next_value(&mut iter, "--fault-seed"), "--fault-seed")
            }
            "--tenant" => spec.tenant = Some(next_value(&mut iter, "--tenant")),
            "--job-id" => {
                spec.job_id = Some(parse_num(&next_value(&mut iter, "--job-id"), "--job-id"))
            }
            "--priority" => {
                spec.priority = parse_num(&next_value(&mut iter, "--priority"), "--priority")
                    .try_into()
                    .unwrap_or_else(|_| usage("--priority is out of range"))
            }
            "--deadline-ms" => {
                spec.deadline_ms = Some(parse_num(
                    &next_value(&mut iter, "--deadline-ms"),
                    "--deadline-ms",
                ))
            }
            "--adaptive" => spec.check = CheckMode::Adaptive,
            "--verify-receipt" => {
                verify_receipt = true;
                if let Action::Submit { wait, .. } = &mut action {
                    *wait = true;
                }
            }
            "--wait-timeout" => {
                wait_timeout = Some(Duration::from_secs(parse_num(
                    &next_value(&mut iter, "--wait-timeout"),
                    "--wait-timeout",
                )));
                if let Action::Submit { wait, .. } = &mut action {
                    *wait = true;
                }
            }
            "--timeout" => {
                timeout =
                    Duration::from_secs(parse_num(&next_value(&mut iter, "--timeout"), "--timeout"))
            }
            other => usage(&format!("unknown option {other:?}")),
        }
    }
    if let Some(kind) = fault_kind {
        spec.fault = Some(FaultSpec {
            kind,
            seed: fault_seed,
        });
    }

    let client = match (&addr, &addr_file) {
        (Some(addr), None) => ServiceClient::connect_with_retry(addr, timeout),
        (None, Some(path)) => ServiceClient::connect_via_addr_file(path, timeout),
        _ => usage("exactly one of --addr / --addr-file is required"),
    };
    let mut client = client.unwrap_or_else(|e| fail(&e));

    match action {
        Action::Shutdown => {
            client.shutdown().unwrap_or_else(|e| fail(&e));
            println!("{{\"ok\":true,\"status\":\"draining\"}}");
        }
        Action::Poll(id) => {
            let (state, receipt) = client.poll(id).unwrap_or_else(|e| fail(&e));
            match receipt {
                Some(r) => println!("{}", r.to_json().render()),
                None => println!("{{\"id\":{id},\"status\":\"{state}\"}}"),
            }
        }
        Action::Chain(tenant) => {
            let chain = client.chain(&tenant).unwrap_or_else(|e| fail(&e));
            if let Err(e) = chain.verify() {
                eprintln!("ccheck-submit: chain verification failed: {e}");
                std::process::exit(1);
            }
            println!(
                "{{\"ok\":true,\"tenant\":\"{}\",\"head\":\"{}\",\"links\":{}}}",
                chain.tenant,
                chain.head,
                chain.links.len()
            );
        }
        Action::Metrics => {
            let text = client.metrics_prometheus().unwrap_or_else(|e| fail(&e));
            print!("{text}");
        }
        Action::Health => {
            // One canonical JSON line (machine-greppable), then a
            // per-PE table on stderr for humans.
            let health = client.health().unwrap_or_else(|e| fail(&e));
            println!("{}", health.render());
            if let Some(Json::Arr(pes)) = health.get("pes") {
                for pe in pes {
                    let num = |k: &str| pe.get(k).and_then(Json::as_u64).unwrap_or(0);
                    let state = pe.get("state").and_then(Json::as_str).unwrap_or("?");
                    let exited = pe
                        .get("exited")
                        .and_then(Json::as_str)
                        .map(|r| format!(" ({r})"))
                        .unwrap_or_default();
                    eprintln!(
                        "ccheck-submit: PE {} {state:<8} age {} ms, inflight {}, \
                         last seq {}{exited}",
                        num("rank"),
                        num("age_ms"),
                        num("inflight"),
                        num("last_admit_seq"),
                    );
                }
            }
        }
        Action::Timeline(id) => {
            let timeline = client.timeline(id).unwrap_or_else(|e| fail(&e));
            let enabled = timeline.get("enabled").and_then(Json::as_bool) == Some(true);
            let events = match timeline.get("events") {
                Some(Json::Arr(events)) => events.as_slice(),
                _ => &[],
            };
            if events.is_empty() {
                eprintln!(
                    "ccheck-submit: no trace events for job {id}{}",
                    if enabled {
                        " (did it run yet? rings also overwrite oldest-first)"
                    } else {
                        " (service trace collection is off; run ccheck-serve with CCHECK_OBS=1)"
                    }
                );
                std::process::exit(1);
            }
            // One line per span/instant, already merged across PEs and
            // sorted by start time. Timestamps are per-process epochs —
            // exact within a source, approximate across sources.
            println!("timeline for job {id} ({} events):", events.len());
            for ev in events {
                let num = |k: &str| ev.get(k).and_then(Json::as_u64).unwrap_or(0);
                let text = |k: &str| ev.get(k).and_then(Json::as_str).unwrap_or("?");
                println!(
                    "  {:>12} us  {:>10} us  {:<9} source {:<8} {} [{}]",
                    num("start_us"),
                    num("dur_us"),
                    text("phase"),
                    num("source"),
                    text("thread"),
                    text("kind"),
                );
            }
        }
        Action::Submit { wait, expect } => {
            let ack = client.submit_acked(&spec).unwrap_or_else(|e| fail(&e));
            let id = ack.id;
            if !wait {
                let deduped = if ack.deduped { ",\"deduped\":true" } else { "" };
                println!(
                    "{{\"ok\":true,\"id\":{id},\"status\":\"{}\"{deduped}}}",
                    ack.status
                );
                return;
            }
            // A §7 dedupe of completed work hands the stored receipt
            // back in the acknowledgement — nothing to wait for.
            let receipt = match ack.receipt {
                Some(receipt) => receipt,
                None => match client.wait_timeout(id, wait_timeout) {
                    Ok(Some(receipt)) => receipt,
                    Ok(None) => {
                        // The job outlived --wait-timeout; it keeps running —
                        // poll it later.
                        println!("{{\"ok\":true,\"id\":{id},\"timed_out\":true}}");
                        std::process::exit(4);
                    }
                    Err(e) => fail(&e),
                },
            };
            println!("{}", receipt.to_json().render());
            if verify_receipt {
                match client.verify_receipt(&receipt) {
                    Ok(head) => eprintln!(
                        "ccheck-submit: receipt verified against ledger chain head {head}"
                    ),
                    Err(e) => {
                        eprintln!("ccheck-submit: {e}");
                        std::process::exit(1);
                    }
                }
            }
            if let Some(expect) = expect {
                if receipt.verdict.name() != expect {
                    eprintln!(
                        "ccheck-submit: expected verdict {expect:?}, got {:?}",
                        receipt.verdict.name()
                    );
                    std::process::exit(1);
                }
            }
        }
    }
}

fn parse_num(value: &str, flag: &str) -> u64 {
    value
        .parse()
        .unwrap_or_else(|_| usage(&format!("{flag} expects a number, got {value:?}")))
}

fn fail(e: &ServiceError) -> ! {
    eprintln!("ccheck-submit: {e}");
    // Busy refusals carry the scheduler's backoff hint: surface it on
    // stdout as machine-readable JSON and exit 3 so scripts can
    // distinguish "retry later" from a hard failure.
    if let Some(hint) = e.retry_after_ms() {
        println!("{{\"ok\":false,\"busy\":true,\"retry_after_ms\":{hint}}}");
        std::process::exit(3);
    }
    std::process::exit(1);
}

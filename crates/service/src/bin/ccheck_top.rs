//! `ccheck-top` — live terminal dashboard for a running service world.
//!
//! ```text
//! ccheck-top --addr-file /tmp/ccheck.addr
//! ccheck-top --addr 127.0.0.1:9400 --once      # one frame, for scripts/CI
//! ```
//!
//! Long-polls the daemon's `watch` command (PE 0's periodic delta
//! snapshots) for throughput, queue depth, latency quantiles, and
//! per-tenant rates, and the collective-free `health` command for the
//! per-PE liveness table and straggler list. Zero dependencies: plain
//! ANSI escapes, no TUI library. Ctrl-C to exit.

use std::path::PathBuf;
use std::time::Duration;

use ccheck_service::health::WatchSample;
use ccheck_service::json::Json;
use ccheck_service::{ServiceClient, ServiceError};

struct Args {
    addr: Option<String>,
    addr_file: Option<PathBuf>,
    once: bool,
    frames: Option<u64>,
    no_clear: bool,
}

fn usage(problem: &str) -> ! {
    eprintln!(
        "error: {problem}\n\
         \n\
         usage: ccheck-top (--addr HOST:PORT | --addr-file PATH)\n\
         \u{20}                [--once] [--frames N] [--no-clear]\n\
         \n\
         --addr HOST:PORT    client socket of the service world's PE 0\n\
         --addr-file PATH    read the address from PATH (written by ccheck-serve)\n\
         --once              render a single frame and exit (scripts, CI)\n\
         --frames N          exit after N frames\n\
         --no-clear          append frames instead of redrawing in place"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: None,
        addr_file: None,
        once: false,
        frames: None,
        no_clear: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => match iter.next() {
                Some(a) => args.addr = Some(a),
                None => usage("--addr expects HOST:PORT"),
            },
            "--addr-file" => match iter.next() {
                Some(p) => args.addr_file = Some(PathBuf::from(p)),
                None => usage("--addr-file expects a path"),
            },
            "--once" => args.once = true,
            "--frames" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => args.frames = Some(n),
                _ => usage("--frames expects a positive integer"),
            },
            "--no-clear" => args.no_clear = true,
            other => usage(&format!("unknown option {other:?}")),
        }
    }
    if args.addr.is_some() == args.addr_file.is_some() {
        usage("exactly one of --addr / --addr-file is required");
    }
    args
}

/// jobs/s between two samples, from the monotone `jobs_done` counter.
fn rate(prev: &WatchSample, cur: &WatchSample) -> f64 {
    let dt_ms = cur.at_ms.saturating_sub(prev.at_ms);
    if dt_ms == 0 {
        return 0.0;
    }
    let done = cur.jobs_done.saturating_sub(prev.jobs_done);
    done as f64 * 1000.0 / dt_ms as f64
}

fn state_color(state: &str) -> &'static str {
    match state {
        "healthy" => "\x1b[32m", // green
        "suspect" => "\x1b[33m", // yellow
        _ => "\x1b[31m",         // red
    }
}

fn render(prev: Option<&WatchSample>, cur: &WatchSample, health: &Json, color: bool) {
    let paint = |code: &'static str| if color { code } else { "" };
    let reset = paint("\x1b[0m");
    let bold = paint("\x1b[1m");

    let jobs_per_s = prev.map(|p| rate(p, cur)).unwrap_or(0.0);
    let world = health.get("world").and_then(Json::as_u64).unwrap_or(0);
    let uptime_ms = health.get("uptime_ms").and_then(Json::as_u64).unwrap_or(0);
    println!(
        "{bold}ccheck-top{reset}  world={world}  up {:.1}s  sample #{} @ {} ms",
        uptime_ms as f64 / 1000.0,
        cur.seq,
        cur.at_ms
    );
    println!(
        "jobs: {:.1}/s  done={} refused={}  queue={} inflight={}  p50={} ms p95={} ms",
        jobs_per_s,
        cur.jobs_done,
        cur.jobs_refused,
        cur.queue_depth,
        cur.inflight,
        cur.p50_ms,
        cur.p95_ms
    );
    let (h, s, d) = (cur.healthy, cur.suspect, cur.dead);
    println!(
        "PEs:  {}{h} healthy{reset}  {}{s} suspect{reset}  {}{d} dead{reset}",
        paint("\x1b[32m"),
        if s > 0 { paint("\x1b[33m") } else { "" },
        if d > 0 { paint("\x1b[31m") } else { "" },
    );
    if let (Some(pe), Some(skew)) = (
        health.get("lagging_pe").and_then(Json::as_u64),
        health.get("lagging_skew").and_then(Json::as_f64),
    ) {
        println!("lag:  PE {pe} is {skew:.2}x the mean execute time of its peers");
    }

    println!(
        "\n{:>5} {:>8} {:>9} {:>9} {:>9}",
        "PE", "state", "age ms", "inflight", "last seq"
    );
    if let Some(Json::Arr(pes)) = health.get("pes") {
        for pe in pes {
            let state = pe.get("state").and_then(Json::as_str).unwrap_or("?");
            let col = if color { state_color(state) } else { "" };
            let exited = pe
                .get("exited")
                .and_then(Json::as_str)
                .map(|r| format!("  ({r})"))
                .unwrap_or_default();
            println!(
                "{:>5} {col}{:>8}{reset} {:>9} {:>9} {:>9}{exited}",
                pe.get("rank").and_then(Json::as_u64).unwrap_or(0),
                state,
                pe.get("age_ms").and_then(Json::as_u64).unwrap_or(0),
                pe.get("inflight").and_then(Json::as_u64).unwrap_or(0),
                pe.get("last_admit_seq").and_then(Json::as_u64).unwrap_or(0),
            );
        }
    }

    if !cur.tenants.is_empty() {
        println!("\n{:>16} {:>8}", "tenant", "jobs");
        for (tenant, jobs) in &cur.tenants {
            let name = if tenant.is_empty() {
                "(default)"
            } else {
                tenant
            };
            println!("{name:>16} {jobs:>8}");
        }
    }

    if let Some(Json::Arr(stragglers)) = health.get("stragglers") {
        if !stragglers.is_empty() {
            println!(
                "\n{}stragglers:{reset} {:>6} {:>8} {:>11} {:>9} {:>13}",
                paint("\x1b[33m"),
                "job",
                "op",
                "running ms",
                "p95 ms",
                "threshold ms"
            );
            for s in stragglers {
                println!(
                    "            {:>6} {:>8} {:>11} {:>9} {:>13}",
                    s.get("job_id").and_then(Json::as_u64).unwrap_or(0),
                    s.get("op").and_then(Json::as_str).unwrap_or("?"),
                    s.get("running_ms").and_then(Json::as_u64).unwrap_or(0),
                    s.get("p95_ms").and_then(Json::as_u64).unwrap_or(0),
                    s.get("threshold_ms").and_then(Json::as_u64).unwrap_or(0),
                );
            }
        }
    }
}

fn fail(err: ServiceError) -> ! {
    eprintln!("ccheck-top: {err}");
    std::process::exit(1);
}

fn main() {
    let args = parse_args();
    let timeout = Duration::from_secs(10);
    let mut client = match (&args.addr, &args.addr_file) {
        (Some(addr), None) => ServiceClient::connect_with_retry(addr, timeout),
        (None, Some(path)) => ServiceClient::connect_via_addr_file(path, timeout),
        _ => unreachable!("validated in parse_args"),
    }
    .unwrap_or_else(|e| fail(e));

    // Frames redraw in place by default; TERM=dumb / piped output loses
    // nothing because every frame is self-contained.
    let color = !args.no_clear && std::env::var_os("NO_COLOR").is_none();
    let mut since = 0u64;
    let mut prev: Option<WatchSample> = None;
    let mut frames_left = if args.once { Some(1) } else { args.frames };
    loop {
        let (latest, samples) = match client.watch(since) {
            Ok(r) => r,
            Err(e) => fail(e),
        };
        since = latest;
        let Some(cur) = samples.last() else {
            // Deadline elapsed with no new sample (idle world with a long
            // sample interval) — poll again.
            continue;
        };
        let health = match client.health() {
            Ok(h) => h,
            Err(e) => fail(e),
        };
        if !args.no_clear {
            print!("\x1b[2J\x1b[H");
        }
        render(prev.as_ref(), cur, &health, color);
        prev = Some(cur.clone());
        if let Some(n) = &mut frames_left {
            *n -= 1;
            if *n == 0 {
                break;
            }
        }
    }
}

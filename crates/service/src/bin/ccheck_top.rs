//! `ccheck-top` — live terminal dashboard for a running service world.
//!
//! ```text
//! ccheck-top --addr-file /tmp/ccheck.addr
//! ccheck-top --addr 127.0.0.1:9400 --once      # one frame, for scripts/CI
//! ccheck-top --replay /tmp/ccheck.hist:10      # replay a history file at 10x
//! ```
//!
//! Long-polls the daemon's `watch` command (PE 0's periodic delta
//! snapshots) for throughput, queue depth, latency quantiles, and
//! per-tenant rates, and the collective-free `health` command for the
//! per-PE liveness table, straggler list, and SLO alert state. With
//! `--replay PATH[:speed]` the same render path is driven offline from
//! the sample records of a `--history` file instead of a live daemon.
//! Zero dependencies: plain ANSI escapes, no TUI library. Ctrl-C to
//! exit.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::time::Duration;

use ccheck_obs::history::{HistoryPayload, HistoryReader};
use ccheck_service::health::WatchSample;
use ccheck_service::json::Json;
use ccheck_service::slo::AlertEvent;
use ccheck_service::{ServiceClient, ServiceError};

/// Recent alert events kept visible under the dashboard.
const RECENT_ALERTS: usize = 5;

struct Args {
    addr: Option<String>,
    addr_file: Option<PathBuf>,
    replay: Option<(PathBuf, f64)>,
    once: bool,
    frames: Option<u64>,
    no_clear: bool,
}

fn usage(problem: &str) -> ! {
    eprintln!(
        "error: {problem}\n\
         \n\
         usage: ccheck-top (--addr HOST:PORT | --addr-file PATH | --replay PATH[:SPEED])\n\
         \u{20}                [--once] [--frames N] [--no-clear]\n\
         \n\
         --addr HOST:PORT      client socket of the service world's PE 0\n\
         --addr-file PATH      read the address from PATH (written by ccheck-serve)\n\
         --replay PATH[:SPEED] drive the dashboard from a --history file instead of\n\
         \u{20}                  a live daemon; SPEED is a wall-clock multiplier\n\
         \u{20}                  (default 1, 0 = as fast as possible)\n\
         --once                render a single frame and exit (scripts, CI)\n\
         --frames N            exit after N frames\n\
         --no-clear            append frames instead of redrawing in place"
    );
    std::process::exit(2);
}

/// Split `PATH[:SPEED]`. Only a trailing `:SPEED` that parses as a
/// non-negative number is treated as a speed, so paths containing `:`
/// keep working.
fn parse_replay(spec: &str) -> (PathBuf, f64) {
    if let Some((path, speed)) = spec.rsplit_once(':') {
        if let Ok(s) = speed.parse::<f64>() {
            if s.is_finite() && s >= 0.0 && !path.is_empty() {
                return (PathBuf::from(path), s);
            }
        }
    }
    (PathBuf::from(spec), 1.0)
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: None,
        addr_file: None,
        replay: None,
        once: false,
        frames: None,
        no_clear: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => match iter.next() {
                Some(a) => args.addr = Some(a),
                None => usage("--addr expects HOST:PORT"),
            },
            "--addr-file" => match iter.next() {
                Some(p) => args.addr_file = Some(PathBuf::from(p)),
                None => usage("--addr-file expects a path"),
            },
            "--replay" => match iter.next() {
                Some(spec) => args.replay = Some(parse_replay(&spec)),
                None => usage("--replay expects PATH[:SPEED]"),
            },
            "--once" => args.once = true,
            "--frames" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => args.frames = Some(n),
                _ => usage("--frames expects a positive integer"),
            },
            "--no-clear" => args.no_clear = true,
            other => usage(&format!("unknown option {other:?}")),
        }
    }
    let sources =
        args.addr.is_some() as u8 + args.addr_file.is_some() as u8 + args.replay.is_some() as u8;
    if sources != 1 {
        usage("exactly one of --addr / --addr-file / --replay is required");
    }
    args
}

/// jobs/s between two samples, from the monotone `jobs_done` counter.
fn rate(prev: &WatchSample, cur: &WatchSample) -> f64 {
    let dt_ms = cur.at_ms.saturating_sub(prev.at_ms);
    if dt_ms == 0 {
        return 0.0;
    }
    let done = cur.jobs_done.saturating_sub(prev.jobs_done);
    done as f64 * 1000.0 / dt_ms as f64
}

fn state_color(state: &str) -> &'static str {
    match state {
        "healthy" => "\x1b[32m", // green
        "suspect" => "\x1b[33m", // yellow
        _ => "\x1b[31m",         // red
    }
}

fn render(
    prev: Option<&WatchSample>,
    cur: &WatchSample,
    health: &Json,
    recent: &VecDeque<AlertEvent>,
    color: bool,
) {
    let paint = |code: &'static str| if color { code } else { "" };
    let reset = paint("\x1b[0m");
    let bold = paint("\x1b[1m");

    let jobs_per_s = prev.map(|p| rate(p, cur)).unwrap_or(0.0);
    let world = health.get("world").and_then(Json::as_u64).unwrap_or(0);
    let uptime_ms = health.get("uptime_ms").and_then(Json::as_u64).unwrap_or(0);
    let replay = health
        .get("replay")
        .and_then(Json::as_bool)
        .unwrap_or(false);
    let mode = if replay { "  [REPLAY]" } else { "" };
    println!(
        "{bold}ccheck-top{reset}{mode}  world={world}  up {:.1}s  sample #{} @ {} ms",
        uptime_ms as f64 / 1000.0,
        cur.seq,
        cur.at_ms
    );
    println!(
        "jobs: {:.1}/s  done={} failed={} refused={}  queue={} inflight={}  p50={} ms p95={} ms",
        jobs_per_s,
        cur.jobs_done,
        cur.jobs_failed,
        cur.jobs_refused,
        cur.queue_depth,
        cur.inflight,
        cur.p50_ms,
        cur.p95_ms
    );
    let (h, s, d) = (cur.healthy, cur.suspect, cur.dead);
    println!(
        "PEs:  {}{h} healthy{reset}  {}{s} suspect{reset}  {}{d} dead{reset}",
        paint("\x1b[32m"),
        if s > 0 { paint("\x1b[33m") } else { "" },
        if d > 0 { paint("\x1b[31m") } else { "" },
    );
    if cur.alerts > 0 {
        println!(
            "{}ALERTS: {} SLO objective(s) firing{reset}",
            paint("\x1b[31m"),
            cur.alerts
        );
    }
    if let (Some(pe), Some(skew)) = (
        health.get("lagging_pe").and_then(Json::as_u64),
        health.get("lagging_skew").and_then(Json::as_f64),
    ) {
        println!("lag:  PE {pe} is {skew:.2}x the mean execute time of its peers");
    }

    println!(
        "\n{:>5} {:>8} {:>9} {:>9} {:>9}",
        "PE", "state", "age ms", "inflight", "last seq"
    );
    if let Some(Json::Arr(pes)) = health.get("pes") {
        for pe in pes {
            let state = pe.get("state").and_then(Json::as_str).unwrap_or("?");
            let col = if color { state_color(state) } else { "" };
            let exited = pe
                .get("exited")
                .and_then(Json::as_str)
                .map(|r| format!("  ({r})"))
                .unwrap_or_default();
            println!(
                "{:>5} {col}{:>8}{reset} {:>9} {:>9} {:>9}{exited}",
                pe.get("rank").and_then(Json::as_u64).unwrap_or(0),
                state,
                pe.get("age_ms").and_then(Json::as_u64).unwrap_or(0),
                pe.get("inflight").and_then(Json::as_u64).unwrap_or(0),
                pe.get("last_admit_seq").and_then(Json::as_u64).unwrap_or(0),
            );
        }
    }

    if !cur.tenants.is_empty() {
        println!("\n{:>16} {:>8}", "tenant", "jobs");
        for (tenant, jobs) in &cur.tenants {
            let name = if tenant.is_empty() {
                "(default)"
            } else {
                tenant
            };
            println!("{name:>16} {jobs:>8}");
        }
    }

    // SLO table: present in `health` once the daemon runs with `--slo`.
    if let Some(Json::Arr(slos)) = health.get("slos") {
        if !slos.is_empty() {
            println!(
                "\n{:>16} {:>12} {:>9} {:>7} {:>7} {:>9}",
                "SLO", "kind", "window s", "burn", "budget", "breaches"
            );
            for slo in slos {
                let firing = slo.get("firing").and_then(Json::as_bool).unwrap_or(false);
                let col = if !color {
                    ""
                } else if firing {
                    "\x1b[31m"
                } else {
                    "\x1b[32m"
                };
                let burn = slo.get("burn_permille").and_then(Json::as_u64).unwrap_or(0);
                let budget = slo
                    .get("budget_remaining_permille")
                    .and_then(Json::as_u64)
                    .unwrap_or(0);
                println!(
                    "{col}{:>16} {:>12} {:>9} {:>6.2}x {:>6.1}% {:>9}{reset}",
                    slo.get("name").and_then(Json::as_str).unwrap_or("?"),
                    slo.get("kind").and_then(Json::as_str).unwrap_or("?"),
                    slo.get("window_ms").and_then(Json::as_u64).unwrap_or(0) / 1000,
                    burn as f64 / 1000.0,
                    budget as f64 / 10.0,
                    slo.get("breaches").and_then(Json::as_u64).unwrap_or(0),
                );
            }
        }
    }

    if !recent.is_empty() {
        println!("\nrecent alerts:");
        for ev in recent {
            let (word, col) = if ev.firing {
                ("FIRING  ", paint("\x1b[31m"))
            } else {
                ("resolved", paint("\x1b[32m"))
            };
            println!(
                "  {col}{word}{reset} {:>16} burn {:>5.2}x @ {} ms  {}",
                ev.slo,
                ev.burn_permille as f64 / 1000.0,
                ev.at_ms,
                ev.detail
            );
        }
    }

    if let Some(Json::Arr(stragglers)) = health.get("stragglers") {
        if !stragglers.is_empty() {
            println!(
                "\n{}stragglers:{reset} {:>6} {:>8} {:>11} {:>9} {:>13}",
                paint("\x1b[33m"),
                "job",
                "op",
                "running ms",
                "p95 ms",
                "threshold ms"
            );
            for s in stragglers {
                println!(
                    "            {:>6} {:>8} {:>11} {:>9} {:>13}",
                    s.get("job_id").and_then(Json::as_u64).unwrap_or(0),
                    s.get("op").and_then(Json::as_str).unwrap_or("?"),
                    s.get("running_ms").and_then(Json::as_u64).unwrap_or(0),
                    s.get("p95_ms").and_then(Json::as_u64).unwrap_or(0),
                    s.get("threshold_ms").and_then(Json::as_u64).unwrap_or(0),
                );
            }
        }
    }
}

fn fail(err: ServiceError) -> ! {
    eprintln!("ccheck-top: {err}");
    std::process::exit(1);
}

fn fail_replay(what: &str, err: impl std::fmt::Display) -> ! {
    eprintln!("ccheck-top: replay: {what}: {err}");
    std::process::exit(1);
}

/// Synthetic `health` document for replay frames, built from the sample
/// itself so `render` stays a single code path.
fn replay_health(cur: &WatchSample) -> Json {
    Json::obj([
        ("world", Json::from(cur.healthy + cur.suspect + cur.dead)),
        ("uptime_ms", Json::from(cur.at_ms)),
        ("alerts", Json::from(cur.alerts)),
        ("replay", Json::from(true)),
    ])
}

/// Drive the dashboard from the sample/alert records of a `--history`
/// file. Frames are paced by the recorded wall-clock deltas divided by
/// `speed` (capped at 5 s per gap); `speed == 0` renders flat out.
fn run_replay(path: &PathBuf, speed: f64, args: &Args) {
    let reader = HistoryReader::open(path).unwrap_or_else(|e| fail_replay("open", e));
    let color = !args.no_clear && std::env::var_os("NO_COLOR").is_none();
    let mut prev: Option<WatchSample> = None;
    let mut recent: VecDeque<AlertEvent> = VecDeque::new();
    let mut frames_left = if args.once { Some(1) } else { args.frames };
    let mut last_wall: Option<u64> = None;
    let mut rendered = 0u64;
    for record in reader {
        let record = record.unwrap_or_else(|e| fail_replay("read", e));
        match record.payload {
            HistoryPayload::Alert(bytes) => {
                let text =
                    std::str::from_utf8(&bytes).unwrap_or_else(|e| fail_replay("alert utf8", e));
                let json = ccheck_service::json::parse(text)
                    .unwrap_or_else(|e| fail_replay("alert json", e));
                let ev =
                    AlertEvent::from_json(&json).unwrap_or_else(|e| fail_replay("alert decode", e));
                if recent.len() == RECENT_ALERTS {
                    recent.pop_front();
                }
                recent.push_back(ev);
            }
            HistoryPayload::Sample(bytes) => {
                let text =
                    std::str::from_utf8(&bytes).unwrap_or_else(|e| fail_replay("sample utf8", e));
                let json = ccheck_service::json::parse(text)
                    .unwrap_or_else(|e| fail_replay("sample json", e));
                let cur = WatchSample::from_json(&json)
                    .unwrap_or_else(|e| fail_replay("sample decode", e));
                if let Some(last) = last_wall {
                    let dt_ms = record.wall_ms.saturating_sub(last);
                    if speed > 0.0 && dt_ms > 0 {
                        let paced = (dt_ms as f64 / speed).min(5_000.0);
                        std::thread::sleep(Duration::from_millis(paced as u64));
                    }
                }
                last_wall = Some(record.wall_ms);
                if !args.no_clear {
                    print!("\x1b[2J\x1b[H");
                }
                let health = replay_health(&cur);
                render(prev.as_ref(), &cur, &health, &recent, color);
                prev = Some(cur);
                rendered += 1;
                if let Some(n) = &mut frames_left {
                    *n -= 1;
                    if *n == 0 {
                        return;
                    }
                }
            }
            HistoryPayload::Metrics(_) => {}
        }
    }
    if rendered == 0 {
        eprintln!("ccheck-top: replay: no watch samples in {}", path.display());
        std::process::exit(1);
    }
}

fn main() {
    let args = parse_args();
    if let Some((path, speed)) = args.replay.clone() {
        run_replay(&path, speed, &args);
        return;
    }
    let timeout = Duration::from_secs(10);
    let mut client = match (&args.addr, &args.addr_file) {
        (Some(addr), None) => ServiceClient::connect_with_retry(addr, timeout),
        (None, Some(path)) => ServiceClient::connect_via_addr_file(path, timeout),
        _ => unreachable!("validated in parse_args"),
    }
    .unwrap_or_else(|e| fail(e));

    // Frames redraw in place by default; TERM=dumb / piped output loses
    // nothing because every frame is self-contained.
    let color = !args.no_clear && std::env::var_os("NO_COLOR").is_none();
    let mut since = 0u64;
    let mut prev: Option<WatchSample> = None;
    let mut recent: VecDeque<AlertEvent> = VecDeque::new();
    let mut frames_left = if args.once { Some(1) } else { args.frames };
    loop {
        let (latest, samples) = match client.watch(since) {
            Ok(r) => r,
            Err(e) => fail(e),
        };
        since = latest;
        let Some(cur) = samples.last() else {
            // Deadline elapsed with no new sample (idle world with a long
            // sample interval) — poll again.
            continue;
        };
        let health = match client.health() {
            Ok(h) => h,
            Err(e) => fail(e),
        };
        // Recent firing/resolved transitions, shown under the SLO table.
        // Worlds without `--slo` return an empty list.
        if let Ok((_, _, events)) = client.alerts() {
            recent = events.into_iter().collect();
            while recent.len() > RECENT_ALERTS {
                recent.pop_front();
            }
        }
        if !args.no_clear {
            print!("\x1b[2J\x1b[H");
        }
        render(prev.as_ref(), cur, &health, &recent, color);
        prev = Some(cur.clone());
        if let Some(n) = &mut frames_left {
            *n -= 1;
            if *n == 0 {
                break;
            }
        }
    }
}

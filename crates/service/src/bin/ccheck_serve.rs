//! `ccheck-serve` — the checking-service daemon.
//!
//! Runs the SPMD service loop on every PE of a world. Two launch modes:
//!
//! * **Multi-process** (production shape): one process per PE under the
//!   launcher —
//!   `ccheck-launch -p 4 -- ccheck-serve --transport tcp --addr-file F`
//! * **In-process** (development): `ccheck-serve --pes 4` runs all PEs
//!   as threads of this process.
//!
//! Rank 0 binds the client socket (`--listen`, default ephemeral) and
//! publishes the bound address via `--addr-file`. The daemon runs until
//! a client sends `{"cmd":"shutdown"}`, then drains, prints the service
//! communication summary, and exits 0.

use std::path::PathBuf;

use ccheck_net::{bootstrap, Backend};
use ccheck_service::{run_service, run_service_world, ServiceConfig, ServiceSummary};

struct Args {
    transport_tcp: bool,
    pes: usize,
    cfg: ServiceConfig,
}

fn usage(problem: &str) -> ! {
    eprintln!(
        "error: {problem}\n\
         \n\
         usage: ccheck-serve [--transport local|tcp] [--pes N]\n\
         \u{20}                   [--listen ADDR] [--addr-file PATH]\n\
         \u{20}                   [--max-inflight N] [--queue N]\n\
         \n\
         --transport local   all PEs as threads of this process (default)\n\
         --transport tcp     this process is one rank of a ccheck-launch world\n\
         --pes N             PE count for local mode (default 4)\n\
         --listen ADDR       client listener bind address (default 127.0.0.1:0)\n\
         --addr-file PATH    write the bound client address to PATH\n\
         --max-inflight N    concurrent jobs (default 4)\n\
         --queue N           submission queue capacity (default 64)"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        transport_tcp: matches!(std::env::var("CCHECK_TRANSPORT").as_deref(), Ok("tcp")),
        pes: 4,
        cfg: ServiceConfig::default(),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--transport" => match iter.next().as_deref() {
                Some("local") => args.transport_tcp = false,
                Some("tcp") => args.transport_tcp = true,
                other => usage(&format!("--transport expects local|tcp, got {other:?}")),
            },
            "--pes" | "-p" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => args.pes = v,
                _ => usage("--pes expects a positive integer"),
            },
            "--listen" => match iter.next() {
                Some(addr) => args.cfg.listen = addr,
                None => usage("--listen expects an address"),
            },
            "--addr-file" => match iter.next() {
                Some(path) => args.cfg.addr_file = Some(PathBuf::from(path)),
                None => usage("--addr-file expects a path"),
            },
            "--max-inflight" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => args.cfg.max_inflight = v,
                _ => usage("--max-inflight expects a positive integer"),
            },
            "--queue" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => args.cfg.queue_cap = v,
                _ => usage("--queue expects a positive integer"),
            },
            other => usage(&format!("unknown option {other:?}")),
        }
    }
    args
}

fn report(summary: &ServiceSummary) {
    println!(
        "ccheck-serve: clean shutdown after {} job(s)",
        summary.jobs_run
    );
    if !summary.receipts.is_empty() {
        println!(
            "\n{:>6} {:>8} {:>10} {:>12} {:>14} {:>14} {:>8}",
            "job", "op", "verdict", "elems", "total bytes", "bottleneck", "ms"
        );
        for r in &summary.receipts {
            let comm = r.comm.unwrap_or_default();
            println!(
                "{:>6} {:>8} {:>10} {:>12} {:>14} {:>14} {:>8}",
                r.job_id,
                r.op.name(),
                r.verdict.name(),
                r.elems,
                comm.total_bytes,
                comm.bottleneck_bytes,
                r.wall_ms
            );
        }
    }
    if let Some(stats) = &summary.stats {
        println!("\nService communication summary:\n{}", stats.render_table());
    }
}

fn main() {
    let args = parse_args();
    if args.transport_tcp {
        let comm = match bootstrap::init_from_env() {
            Ok(Some(comm)) => comm,
            Ok(None) => {
                eprintln!(
                    "error: --transport tcp but no bootstrap environment found.\n\
                     Start this binary under the launcher:\n\
                     \n\
                     \u{20}   ccheck-launch -p 4 -- ccheck-serve --transport tcp"
                );
                std::process::exit(2);
            }
            Err(e) => {
                eprintln!("error: TCP transport bootstrap failed: {e}");
                std::process::exit(1);
            }
        };
        let rank = comm.rank();
        let summary = run_service(comm, &args.cfg);
        if rank == 0 {
            report(&summary);
        }
    } else {
        let summaries = run_service_world(Backend::Local, args.pes, &args.cfg);
        report(&summaries[0]);
    }
}

//! `ccheck-serve` — the checking-service daemon.
//!
//! Runs the SPMD service loop on every PE of a world. Two launch modes:
//!
//! * **Multi-process** (production shape): one process per PE under the
//!   launcher —
//!   `ccheck-launch -p 4 -- ccheck-serve --transport tcp --addr-file F`
//! * **In-process** (development): `ccheck-serve --pes 4` runs all PEs
//!   as threads of this process.
//!
//! Rank 0 binds the client socket (`--listen`, default ephemeral) and
//! publishes the bound address via `--addr-file`. Which queued job a
//! freed slot runs is `--policy`'s call: `fifo` (default, PR-4
//! behavior), `priority` (strict priority with aging), or
//! `deadline-wfq` (EDF within weighted fair queueing with per-tenant
//! quotas and work stealing). The daemon runs until a client sends
//! `{"cmd":"shutdown"}`, then drains, prints the per-tenant /
//! per-verdict report and the service communication summary, and
//! exits 0.

use std::path::PathBuf;

use ccheck_net::{bootstrap, Backend};
use ccheck_service::{
    run_service, run_service_world, PolicyCfg, ServiceConfig, ServiceSummary, TenantAgg,
};

/// Receipt-table rows printed before the report switches to "… and N
/// more" (the aggregates above the table stay exact at any job count).
const RECEIPT_TABLE_CAP: usize = 50;

struct Args {
    transport_tcp: bool,
    pes: usize,
    cfg: ServiceConfig,
}

fn usage(problem: &str) -> ! {
    eprintln!(
        "error: {problem}\n\
         \n\
         usage: ccheck-serve [--transport local|tcp] [--pes N]\n\
         \u{20}                   [--listen ADDR] [--addr-file PATH]\n\
         \u{20}                   [--ledger PATH] [--history PATH] [--slo FILE]\n\
         \u{20}                   [--max-inflight N] [--queue N]\n\
         \u{20}                   [--policy fifo|priority|deadline-wfq]\n\
         \u{20}                   [--aging-ms MS] [--tenant-inflight N]\n\
         \u{20}                   [--tenant-queue-share PCT] [--no-steal]\n\
         \u{20}                   [--trace-out PATH]\n\
         \u{20}                   [--heartbeat-ms MS] [--suspect-ms MS] [--dead-ms MS]\n\
         \u{20}                   [--straggler-k K] [--straggler-min-ms MS]\n\
         \n\
         --transport local   all PEs as threads of this process (default)\n\
         --transport tcp     this process is one rank of a ccheck-launch world\n\
         --pes N             PE count for local mode (default 4)\n\
         --listen ADDR       client listener bind address (default 127.0.0.1:0)\n\
         --addr-file PATH    write the bound client address to PATH\n\
         --ledger PATH       durable receipt ledger (rank 0): hash-chained log,\n\
         \u{20}                   replayed on restart; resubmitted (tenant, job_id)\n\
         \u{20}                   pairs are answered without re-running\n\
         --history PATH      durable telemetry history (rank 0): watch samples,\n\
         \u{20}                   metrics snapshots, and SLO alerts appended on the\n\
         \u{20}                   heartbeat cadence with downsampling retention;\n\
         \u{20}                   replayed on restart to refold SLO burn-rate state\n\
         --slo FILE          declarative SLOs, one JSON object per line\n\
         \u{20}                   (latency_p95 | error_budget | availability);\n\
         \u{20}                   breaches emit durable alerts + warn logs and\n\
         \u{20}                   surface in health/watch/metrics responses\n\
         --max-inflight N    concurrent jobs (default 4)\n\
         --queue N           submission queue capacity (default 64)\n\
         --policy P          scheduling policy (default fifo = PR-4 behavior)\n\
         --aging-ms MS       priority policy: queue-wait worth one level (default 200)\n\
         --tenant-inflight N deadline-wfq: per-tenant inflight quota (default 2)\n\
         --tenant-queue-share PCT\n\
         \u{20}                   deadline-wfq: max queue share per tenant (default 50)\n\
         --no-steal          deadline-wfq: idle slots never exceed tenant quotas\n\
         --trace-out PATH    gather every PE's span buffer at shutdown and write\n\
         \u{20}                   a Chrome trace_event JSON file (rank 0); implies\n\
         \u{20}                   obs collection even without CCHECK_OBS\n\
         --heartbeat-ms MS   worker heartbeat send interval (default 100)\n\
         --suspect-ms MS     heartbeat age before a PE is Suspect (default 400)\n\
         --dead-ms MS        heartbeat age before a PE is Dead (default 1500)\n\
         --straggler-k K     flag jobs running past K x the op's p95 (default 4)\n\
         --straggler-min-ms MS\n\
         \u{20}                   floor for the straggler threshold (default 200)\n\
         \n\
         Structured logging honors CCHECK_LOG (e.g. `info,net=debug`) and\n\
         CCHECK_LOG_FORMAT=json; see docs/OBSERVABILITY.md"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        transport_tcp: matches!(std::env::var("CCHECK_TRANSPORT").as_deref(), Ok("tcp")),
        pes: 4,
        cfg: ServiceConfig::default(),
    };
    // Policy knobs are collected first, then assembled, so flag order
    // doesn't matter.
    let mut policy = "fifo".to_string();
    let mut aging_ms = 200u64;
    let mut tenant_inflight = 2usize;
    let mut tenant_queue_share = 50u32;
    let mut steal = true;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--transport" => match iter.next().as_deref() {
                Some("local") => args.transport_tcp = false,
                Some("tcp") => args.transport_tcp = true,
                other => usage(&format!("--transport expects local|tcp, got {other:?}")),
            },
            "--pes" | "-p" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => args.pes = v,
                _ => usage("--pes expects a positive integer"),
            },
            "--listen" => match iter.next() {
                Some(addr) => args.cfg.listen = addr,
                None => usage("--listen expects an address"),
            },
            "--addr-file" => match iter.next() {
                Some(path) => args.cfg.addr_file = Some(PathBuf::from(path)),
                None => usage("--addr-file expects a path"),
            },
            "--ledger" => match iter.next() {
                Some(path) => args.cfg.ledger_path = Some(PathBuf::from(path)),
                None => usage("--ledger expects a path"),
            },
            "--history" => match iter.next() {
                Some(path) => args.cfg.history_path = Some(PathBuf::from(path)),
                None => usage("--history expects a path"),
            },
            "--slo" => match iter.next() {
                Some(path) => args.cfg.slo_path = Some(PathBuf::from(path)),
                None => usage("--slo expects a path"),
            },
            "--max-inflight" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => args.cfg.max_inflight = v,
                _ => usage("--max-inflight expects a positive integer"),
            },
            "--queue" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => args.cfg.queue_cap = v,
                _ => usage("--queue expects a positive integer"),
            },
            "--policy" => match iter.next() {
                Some(p) if ["fifo", "priority", "deadline-wfq"].contains(&p.as_str()) => {
                    policy = p;
                }
                other => usage(&format!(
                    "--policy expects fifo|priority|deadline-wfq, got {other:?}"
                )),
            },
            "--aging-ms" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => aging_ms = v,
                _ => usage("--aging-ms expects a positive integer"),
            },
            "--tenant-inflight" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => tenant_inflight = v,
                _ => usage("--tenant-inflight expects a positive integer"),
            },
            "--tenant-queue-share" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) if (1..=100).contains(&v) => tenant_queue_share = v,
                _ => usage("--tenant-queue-share expects a percentage in 1..=100"),
            },
            "--no-steal" => steal = false,
            "--heartbeat-ms" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => args.cfg.health.heartbeat_interval_ms = v,
                _ => usage("--heartbeat-ms expects a positive integer"),
            },
            "--suspect-ms" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => args.cfg.health.suspect_after_ms = v,
                _ => usage("--suspect-ms expects a positive integer"),
            },
            "--dead-ms" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => args.cfg.health.dead_after_ms = v,
                _ => usage("--dead-ms expects a positive integer"),
            },
            "--straggler-k" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0.0 => args.cfg.health.straggler_k = v,
                _ => usage("--straggler-k expects a positive number"),
            },
            "--straggler-min-ms" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => args.cfg.health.straggler_min_ms = v,
                _ => usage("--straggler-min-ms expects a positive integer"),
            },
            "--trace-out" => match iter.next() {
                Some(path) => args.cfg.trace_out = Some(PathBuf::from(path)),
                None => usage("--trace-out expects a path"),
            },
            other => usage(&format!("unknown option {other:?}")),
        }
    }
    args.cfg.policy = match policy.as_str() {
        "fifo" => PolicyCfg::Fifo,
        "priority" => PolicyCfg::PriorityAging { aging_ms },
        "deadline-wfq" => PolicyCfg::DeadlineWfq {
            tenant_max_inflight: tenant_inflight,
            tenant_queue_share_pct: tenant_queue_share,
            steal,
            weights: Vec::new(),
        },
        _ => unreachable!("validated above"),
    };
    args
}

fn report(summary: &ServiceSummary) {
    println!(
        "ccheck-serve: clean shutdown after {} job(s) under the {} policy \
         ({} refused, {} stolen; {} bytes of job-scope traffic retired \
         into this rank's totals)",
        summary.jobs_run,
        summary.policy,
        summary.refused,
        summary.stolen,
        summary.retired_scope_bytes
    );
    let secs = summary.elapsed.as_secs_f64();
    println!(
        "elapsed: {secs:.2}s wall time ({:.1} jobs/s)",
        if secs > 0.0 {
            summary.jobs_run as f64 / secs
        } else {
            0.0
        }
    );

    // Aggregates first — they stay exact and readable at any job count,
    // unlike the per-job table below.
    let totals = summary
        .tenants
        .iter()
        .fold(TenantAgg::default(), |mut acc, (_, a)| {
            acc.jobs += a.jobs;
            acc.verified += a.verified;
            acc.retried += a.retried;
            acc.fellback += a.fellback;
            acc.rejected += a.rejected;
            acc.refused += a.refused;
            acc.total_bytes += a.total_bytes;
            acc.wall_ms += a.wall_ms;
            acc
        });
    println!(
        "verdicts: verified={} retried={} fellback={} rejected={} refused={}",
        totals.verified, totals.retried, totals.fellback, totals.rejected, totals.refused
    );
    if !summary.tenants.is_empty() {
        println!(
            "\n{:>16} {:>6} {:>9} {:>8} {:>9} {:>9} {:>8} {:>14} {:>10}",
            "tenant",
            "jobs",
            "verified",
            "retried",
            "fellback",
            "rejected",
            "refused",
            "total bytes",
            "avg ms"
        );
        for (tenant, a) in &summary.tenants {
            println!(
                "{:>16} {:>6} {:>9} {:>8} {:>9} {:>9} {:>8} {:>14} {:>10}",
                if tenant.is_empty() {
                    "(default)"
                } else {
                    tenant
                },
                a.jobs,
                a.verified,
                a.retried,
                a.fellback,
                a.rejected,
                a.refused,
                a.total_bytes,
                a.wall_ms.checked_div(a.jobs).unwrap_or(0),
            );
        }
    }

    if !summary.receipts.is_empty() {
        println!(
            "\n{:>6} {:>6} {:>12} {:>8} {:>10} {:>12} {:>14} {:>8}",
            "job", "seq", "tenant", "op", "verdict", "elems", "total bytes", "ms"
        );
        for r in summary.receipts.iter().take(RECEIPT_TABLE_CAP) {
            let comm = r.comm.unwrap_or_default();
            println!(
                "{:>6} {:>6} {:>12} {:>8} {:>10} {:>12} {:>14} {:>8}",
                r.job_id,
                r.admit_seq,
                r.tenant.as_deref().unwrap_or("(default)"),
                r.op.name(),
                r.verdict.name(),
                r.elems,
                comm.total_bytes,
                r.wall_ms
            );
        }
        if summary.receipts.len() > RECEIPT_TABLE_CAP {
            println!(
                "{:>6} … and {} more receipt(s); the aggregates above cover all jobs",
                "",
                summary.receipts.len() - RECEIPT_TABLE_CAP
            );
        }
    }
    if let Some(stats) = &summary.stats {
        println!("\nService communication summary:\n{}", stats.render_table());
    }
}

fn main() {
    let args = parse_args();
    // Honor CCHECK_OBS; a trace request is pointless without collection,
    // so --trace-out switches it on regardless.
    ccheck_obs::init_from_env();
    ccheck_obs::log::init_from_env();
    if args.cfg.trace_out.is_some() {
        ccheck_obs::set_enabled(true);
    }
    if args.transport_tcp {
        let comm = match bootstrap::init_from_env() {
            Ok(Some(comm)) => comm,
            Ok(None) => {
                eprintln!(
                    "error: --transport tcp but no bootstrap environment found.\n\
                     Start this binary under the launcher:\n\
                     \n\
                     \u{20}   ccheck-launch -p 4 -- ccheck-serve --transport tcp"
                );
                std::process::exit(2);
            }
            Err(e) => {
                eprintln!("error: TCP transport bootstrap failed: {e}");
                std::process::exit(1);
            }
        };
        let rank = comm.rank();
        let summary = run_service(comm, &args.cfg);
        if rank == 0 {
            report(&summary);
        }
    } else {
        let summaries = run_service_world(Backend::Local, args.pes, &args.cfg);
        report(&summaries[0]);
    }
}

//! The world health plane: per-PE liveness from heartbeats, straggler
//! detection from per-op wall-time history, and the time-series ring
//! behind the `watch` command.
//!
//! Everything here is a **pure state machine driven by an explicit
//! `now_ms` clock** — the same discipline as [`crate::sched`]'s
//! `SchedCore` — so the watchdog's transitions are unit-testable with
//! a simulated clock, no sleeps. The daemon supplies real time and the
//! real heartbeat traffic (see `daemon.rs`: senders on every PE,
//! per-peer collector threads on PE 0 over a dedicated comm scope).
//!
//! Design constraint worth stating: the `health` protocol command must
//! keep answering while a PE is stopped or dead, so **nothing in this
//! module ever participates in a collective**. Liveness is inferred
//! from one-directional heartbeat age on PE 0 alone; a stopped PE
//! simply stops beating, its age grows, and it walks
//! Healthy → Suspect → Dead without any cooperation.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use ccheck_net::wire::Wire;
use ccheck_obs::{HistogramSnapshot, MetricsSnapshot};

use crate::json::Json;

/// Health-plane tuning; all times in milliseconds.
#[derive(Debug, Clone)]
pub struct HealthCfg {
    /// How often each PE sends a heartbeat to PE 0.
    pub heartbeat_interval_ms: u64,
    /// Heartbeat age at which a PE is reported Suspect.
    pub suspect_after_ms: u64,
    /// Heartbeat age at which a PE is reported Dead.
    pub dead_after_ms: u64,
    /// A job is a straggler when it runs longer than `k × p95` of its
    /// op's completed-job wall-time distribution.
    pub straggler_k: f64,
    /// Straggler floor: never flag a job younger than this, whatever
    /// the histogram says (protects against microsecond-scale p95s).
    pub straggler_min_ms: u64,
}

impl Default for HealthCfg {
    fn default() -> Self {
        HealthCfg {
            heartbeat_interval_ms: 100,
            suspect_after_ms: 400,
            dead_after_ms: 1500,
            straggler_k: 4.0,
            straggler_min_ms: 200,
        }
    }
}

/// A PE's liveness, classified from heartbeat age.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Liveness {
    /// Beating within `suspect_after_ms`.
    Healthy,
    /// No beat for `suspect_after_ms`, but not yet given up on.
    Suspect,
    /// No beat for `dead_after_ms`, or the peer's connection is gone.
    Dead,
}

impl Liveness {
    /// Protocol name (`healthy`/`suspect`/`dead`).
    pub fn name(self) -> &'static str {
        match self {
            Liveness::Healthy => "healthy",
            Liveness::Suspect => "suspect",
            Liveness::Dead => "dead",
        }
    }

    /// Gauge encoding: 0 healthy, 1 suspect, 2 dead.
    pub fn gauge_value(self) -> i64 {
        match self {
            Liveness::Healthy => 0,
            Liveness::Suspect => 1,
            Liveness::Dead => 2,
        }
    }
}

/// One heartbeat, sent by every PE to PE 0 on the health scope. `bye`
/// marks the final beat of an orderly shutdown so the collector can
/// distinguish "left cleanly" from "vanished".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Heartbeat {
    /// Sender's rank.
    pub rank: u64,
    /// Sender's uptime, ms since its service loop started.
    pub uptime_ms: u64,
    /// Jobs currently executing on the sender.
    pub inflight: u64,
    /// Highest admission sequence number the sender has seen.
    pub last_admit_seq: u64,
    /// Final beat of an orderly shutdown.
    pub bye: bool,
}

impl Wire for Heartbeat {
    fn write(&self, buf: &mut Vec<u8>) {
        self.rank.write(buf);
        self.uptime_ms.write(buf);
        self.inflight.write(buf);
        self.last_admit_seq.write(buf);
        self.bye.write(buf);
    }

    fn read(input: &mut &[u8]) -> Option<Self> {
        Some(Heartbeat {
            rank: u64::read(input)?,
            uptime_ms: u64::read(input)?,
            inflight: u64::read(input)?,
            last_admit_seq: u64::read(input)?,
            bye: bool::read(input)?,
        })
    }

    fn wire_size(&self) -> usize {
        8 + 8 + 8 + 8 + 1
    }
}

/// One PE's row in a health report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeHealth {
    /// The PE.
    pub rank: usize,
    /// Classified liveness.
    pub state: Liveness,
    /// Heartbeat age at report time, ms.
    pub age_ms: u64,
    /// Uptime the PE last reported.
    pub uptime_ms: u64,
    /// Inflight jobs the PE last reported.
    pub inflight: u64,
    /// Highest admission seq the PE last reported.
    pub last_admit_seq: u64,
    /// Exit classification, when known (orderly `bye`, or the
    /// collector's disconnect reason — the launcher prints the same
    /// signal/code vocabulary on its side).
    pub exited: Option<String>,
}

impl PeHealth {
    /// Render as a protocol JSON object (`docs/PROTOCOL.md` §2.6).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("rank", Json::from(self.rank as u64)),
            ("state", Json::from(self.state.name())),
            ("age_ms", Json::from(self.age_ms)),
            ("uptime_ms", Json::from(self.uptime_ms)),
            ("inflight", Json::from(self.inflight)),
            ("last_admit_seq", Json::from(self.last_admit_seq)),
        ];
        if let Some(exited) = &self.exited {
            pairs.push(("exited", Json::from(exited.as_str())));
        }
        Json::obj(pairs)
    }
}

struct PeState {
    last_beat_ms: u64,
    uptime_ms: u64,
    inflight: u64,
    last_admit_seq: u64,
    exited: Option<String>,
}

/// PE 0's watchdog state: per-PE heartbeat bookkeeping and the
/// age-based Healthy/Suspect/Dead classification.
pub struct HealthTracker {
    cfg: HealthCfg,
    pes: Vec<PeState>,
}

impl HealthTracker {
    /// A tracker for `size` PEs; every PE starts Healthy with a
    /// synthetic beat at `now_ms` (the world just bootstrapped, which
    /// proves everyone was alive moments ago).
    pub fn new(cfg: HealthCfg, size: usize, now_ms: u64) -> Self {
        HealthTracker {
            cfg,
            pes: (0..size)
                .map(|_| PeState {
                    last_beat_ms: now_ms,
                    uptime_ms: 0,
                    inflight: 0,
                    last_admit_seq: 0,
                    exited: None,
                })
                .collect(),
        }
    }

    /// Record one heartbeat.
    pub fn beat(&mut self, hb: &Heartbeat, now_ms: u64) {
        let Some(pe) = self.pes.get_mut(hb.rank as usize) else {
            return;
        };
        pe.last_beat_ms = now_ms;
        pe.uptime_ms = hb.uptime_ms;
        pe.inflight = hb.inflight;
        pe.last_admit_seq = hb.last_admit_seq;
        if hb.bye {
            pe.exited = Some("clean shutdown".to_string());
        } else {
            // A live beat clears any earlier exit classification —
            // e.g. a SIGCONTed PE resuming after being written off.
            pe.exited = None;
        }
    }

    /// Record that a PE's connection is gone, with a classification
    /// string (the collector's disconnect reason). Does not overwrite
    /// an orderly `bye`.
    pub fn mark_exited(&mut self, rank: usize, reason: &str) {
        if let Some(pe) = self.pes.get_mut(rank) {
            if pe.exited.is_none() {
                pe.exited = Some(reason.to_string());
            }
        }
    }

    /// Heartbeat age of `rank` at `now_ms`.
    pub fn age_ms(&self, rank: usize, now_ms: u64) -> u64 {
        self.pes
            .get(rank)
            .map(|pe| now_ms.saturating_sub(pe.last_beat_ms))
            .unwrap_or(u64::MAX)
    }

    /// Classify one PE at `now_ms`.
    pub fn classify(&self, rank: usize, now_ms: u64) -> Liveness {
        let Some(pe) = self.pes.get(rank) else {
            return Liveness::Dead;
        };
        // A vanished or departed peer is Dead regardless of age — the
        // collector saw its connection close. (A clean `bye` also
        // lands here: after shutdown begins that is the truth.)
        if pe.exited.is_some() {
            return Liveness::Dead;
        }
        let age = now_ms.saturating_sub(pe.last_beat_ms);
        if age >= self.cfg.dead_after_ms {
            Liveness::Dead
        } else if age >= self.cfg.suspect_after_ms {
            Liveness::Suspect
        } else {
            Liveness::Healthy
        }
    }

    /// Full per-PE report at `now_ms`, rank order.
    pub fn report(&self, now_ms: u64) -> Vec<PeHealth> {
        (0..self.pes.len())
            .map(|rank| {
                let pe = &self.pes[rank];
                PeHealth {
                    rank,
                    state: self.classify(rank, now_ms),
                    age_ms: now_ms.saturating_sub(pe.last_beat_ms),
                    uptime_ms: pe.uptime_ms,
                    inflight: pe.inflight,
                    last_admit_seq: pe.last_admit_seq,
                    exited: pe.exited.clone(),
                }
            })
            .collect()
    }

    /// `(healthy, suspect, dead)` counts at `now_ms`.
    pub fn counts(&self, now_ms: u64) -> (u64, u64, u64) {
        let mut counts = (0, 0, 0);
        for rank in 0..self.pes.len() {
            match self.classify(rank, now_ms) {
                Liveness::Healthy => counts.0 += 1,
                Liveness::Suspect => counts.1 += 1,
                Liveness::Dead => counts.2 += 1,
            }
        }
        counts
    }

    /// Number of PEs tracked.
    pub fn size(&self) -> usize {
        self.pes.len()
    }

    /// The tracker's configuration.
    pub fn cfg(&self) -> &HealthCfg {
        &self.cfg
    }

    /// Export per-PE liveness and age gauges (`health.pe{rank}.state`,
    /// `health.pe{rank}.age_ms`) into the process metrics registry.
    /// Gated on the global obs switch like every other site.
    pub fn export_gauges(&self, now_ms: u64) {
        if !ccheck_obs::enabled() {
            return;
        }
        let registry = ccheck_obs::registry();
        for (rank, report) in self.report(now_ms).into_iter().enumerate() {
            registry
                .gauge(&format!("health.pe{rank}.state"))
                .set(report.state.gauge_value());
            registry
                .gauge(&format!("health.pe{rank}.age_ms"))
                .set(report.age_ms as i64);
        }
    }
}

/// A flagged straggler.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowJob {
    /// The job.
    pub job_id: u64,
    /// Operation name (`reduce`/`sort`/`zip`).
    pub op: String,
    /// How long it has been running, ms.
    pub running_ms: u64,
    /// The op's p95 wall time the threshold was derived from, ms.
    pub p95_ms: u64,
    /// The threshold it exceeded (`k × p95`, floored), ms.
    pub threshold_ms: u64,
}

struct InflightJob {
    op: &'static str,
    admitted_ms: u64,
    flagged: bool,
}

/// Straggler samples needed before an op's p95 is trusted.
const STRAGGLER_MIN_SAMPLES: u64 = 5;

/// PE 0's straggler watch: per-op wall-time history from completed
/// receipts, inflight admission times, and a `check` that flags any
/// job exceeding `k × p95` of its op's history — once per job.
pub struct StragglerWatch {
    k: f64,
    min_ms: u64,
    per_op: BTreeMap<&'static str, HistogramSnapshot>,
    inflight: BTreeMap<u64, InflightJob>,
    flagged_total: u64,
}

impl StragglerWatch {
    /// A watch with the given multiplier and floor (see [`HealthCfg`]).
    pub fn new(cfg: &HealthCfg) -> Self {
        StragglerWatch {
            k: cfg.straggler_k,
            min_ms: cfg.straggler_min_ms,
            per_op: BTreeMap::new(),
            inflight: BTreeMap::new(),
            flagged_total: 0,
        }
    }

    /// A job was admitted at `now_ms`.
    pub fn admitted(&mut self, job_id: u64, op: &'static str, now_ms: u64) {
        self.inflight.insert(
            job_id,
            InflightJob {
                op,
                admitted_ms: now_ms,
                flagged: false,
            },
        );
    }

    /// A job completed with the given wall time; its op's history
    /// learns the sample and the job stops being watched.
    pub fn completed(&mut self, job_id: u64, wall_ms: u64) {
        if let Some(job) = self.inflight.remove(&job_id) {
            self.per_op
                .entry(job.op)
                .or_default()
                // Histogram buckets are 1-indexed powers of two;
                // observe at least 1 so zero-ms jobs still count.
                .observe(wall_ms.max(1));
        }
    }

    /// The flagging threshold for `op`, once enough history exists.
    pub fn threshold_ms(&self, op: &str) -> Option<u64> {
        let hist = self.per_op.get(op)?;
        if hist.count() < STRAGGLER_MIN_SAMPLES {
            return None;
        }
        let p95 = hist.quantile(0.95);
        Some(((p95 as f64 * self.k) as u64).max(self.min_ms))
    }

    /// Scan inflight jobs at `now_ms`; every job past its op's
    /// threshold is returned **once** (subsequent checks skip it).
    pub fn check(&mut self, now_ms: u64) -> Vec<SlowJob> {
        let mut slow = Vec::new();
        for (job_id, job) in self.inflight.iter_mut() {
            if job.flagged {
                continue;
            }
            let Some(hist) = self.per_op.get(job.op) else {
                continue;
            };
            if hist.count() < STRAGGLER_MIN_SAMPLES {
                continue;
            }
            let p95 = hist.quantile(0.95);
            let threshold = ((p95 as f64 * self.k) as u64).max(self.min_ms);
            let running = now_ms.saturating_sub(job.admitted_ms);
            if running > threshold {
                job.flagged = true;
                self.flagged_total += 1;
                slow.push(SlowJob {
                    job_id: *job_id,
                    op: job.op.to_string(),
                    running_ms: running,
                    p95_ms: p95,
                    threshold_ms: threshold,
                });
            }
        }
        slow
    }

    /// Stragglers flagged since startup.
    pub fn flagged_total(&self) -> u64 {
        self.flagged_total
    }
}

/// Identify the lagging PE from per-PE metrics snapshots (the
/// `gather_metrics` per-rank vector): the rank whose cumulative
/// `exec.execute_us` is the largest, with its skew versus the mean of
/// the other ranks. `None` without at least two ranks of signal, or
/// when the snapshots share one registry (the local backend's threads
/// — every rank would report identical totals, so skew is meaningless).
pub fn lagging_pe(per_pe: &[MetricsSnapshot]) -> Option<(usize, f64)> {
    if per_pe.len() < 2 {
        return None;
    }
    if per_pe.windows(2).all(|w| w[0].source == w[1].source) {
        return None;
    }
    let sums: Vec<u64> = per_pe
        .iter()
        .map(|snap| {
            snap.histograms
                .get("exec.execute_us")
                .map(|h| h.sum)
                .unwrap_or(0)
        })
        .collect();
    let total: u64 = sums.iter().sum();
    if total == 0 {
        return None;
    }
    let (idx, &max) = sums
        .iter()
        .enumerate()
        .max_by_key(|(_, &s)| s)
        .expect("len >= 2");
    let mean_others = (total - max) / (sums.len() as u64 - 1);
    let skew = max as f64 / mean_others.max(1) as f64;
    Some((idx, skew))
}

/// One periodic delta snapshot of PE-0-local service state — the unit
/// the `watch` command streams and `ccheck-top` renders. Counters are
/// cumulative; consumers difference consecutive samples for rates.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchSample {
    /// Monotone sample number (1-based).
    pub seq: u64,
    /// Service-relative capture time, ms.
    pub at_ms: u64,
    /// PE-0 wall clock at capture, Unix epoch ms. `seq` stays the
    /// authoritative stream position (wall clocks can step); the wall
    /// stamp is what aligns samples with the durable history and the
    /// receipt ledger across restarts.
    pub wall_ms: u64,
    /// SLO alerts active (firing) right now.
    pub alerts: u64,
    /// Jobs completed since startup.
    pub jobs_done: u64,
    /// Verify-failure completions since startup (`FellBack` plus
    /// `Rejected` verdicts). Cumulative like `jobs_done`, so the SLO
    /// engine's error budget refolds from the sample stream alone.
    pub jobs_failed: u64,
    /// Jobs refused since startup.
    pub jobs_refused: u64,
    /// Queued jobs right now.
    pub queue_depth: u64,
    /// Executing jobs right now.
    pub inflight: u64,
    /// Liveness counts right now.
    pub healthy: u64,
    /// See `healthy`.
    pub suspect: u64,
    /// See `healthy`.
    pub dead: u64,
    /// p50 of completed-job wall time, ms (0 until the first receipt).
    pub p50_ms: u64,
    /// p95 of completed-job wall time, ms (0 until the first receipt).
    pub p95_ms: u64,
    /// Cumulative completed jobs per tenant (`""` = default tenant).
    pub tenants: Vec<(String, u64)>,
}

impl WatchSample {
    /// Render as a protocol JSON object (`docs/PROTOCOL.md` §2.7).
    pub fn to_json(&self) -> Json {
        let tenants: BTreeMap<String, Json> = self
            .tenants
            .iter()
            .map(|(t, n)| (t.clone(), Json::from(*n)))
            .collect();
        Json::obj([
            ("seq", Json::from(self.seq)),
            ("at_ms", Json::from(self.at_ms)),
            ("wall_ms", Json::from(self.wall_ms)),
            ("alerts", Json::from(self.alerts)),
            ("done", Json::from(self.jobs_done)),
            ("failed", Json::from(self.jobs_failed)),
            ("refused", Json::from(self.jobs_refused)),
            ("queue", Json::from(self.queue_depth)),
            ("inflight", Json::from(self.inflight)),
            ("healthy", Json::from(self.healthy)),
            ("suspect", Json::from(self.suspect)),
            ("dead", Json::from(self.dead)),
            ("p50_ms", Json::from(self.p50_ms)),
            ("p95_ms", Json::from(self.p95_ms)),
            ("tenants", Json::Obj(tenants)),
        ])
    }

    /// Parse a `watch` response sample (client side).
    pub fn from_json(v: &Json) -> Result<WatchSample, String> {
        let num = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("watch sample missing numeric {key:?}: {}", v.render()))
        };
        let mut tenants = Vec::new();
        if let Some(Json::Obj(map)) = v.get("tenants") {
            for (tenant, jobs) in map {
                tenants.push((
                    tenant.clone(),
                    jobs.as_u64()
                        .ok_or_else(|| format!("tenant {tenant:?} jobs not a number"))?,
                ));
            }
        }
        Ok(WatchSample {
            seq: num("seq")?,
            at_ms: num("at_ms")?,
            wall_ms: num("wall_ms")?,
            alerts: num("alerts")?,
            jobs_done: num("done")?,
            jobs_failed: num("failed")?,
            jobs_refused: num("refused")?,
            queue_depth: num("queue")?,
            inflight: num("inflight")?,
            healthy: num("healthy")?,
            suspect: num("suspect")?,
            dead: num("dead")?,
            p50_ms: num("p50_ms")?,
            p95_ms: num("p95_ms")?,
            tenants,
        })
    }
}

/// Bounded ring of [`WatchSample`]s on PE 0. `since(seq)` answers the
/// `watch` long-poll: every retained sample newer than `seq`.
pub struct SampleRing {
    cap: usize,
    next_seq: u64,
    samples: VecDeque<WatchSample>,
}

impl SampleRing {
    /// A ring retaining at most `cap` samples.
    pub fn new(cap: usize) -> Self {
        SampleRing {
            cap: cap.max(1),
            next_seq: 1,
            samples: VecDeque::new(),
        }
    }

    /// Stamp `sample` with the next sequence number and retain it,
    /// evicting the oldest past capacity. Returns the assigned seq.
    pub fn push(&mut self, mut sample: WatchSample) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        sample.seq = seq;
        if self.samples.len() == self.cap {
            self.samples.pop_front();
        }
        self.samples.push_back(sample);
        seq
    }

    /// Every retained sample with `seq > since`, oldest first.
    pub fn since(&self, since: u64) -> Vec<WatchSample> {
        self.samples
            .iter()
            .filter(|s| s.seq > since)
            .cloned()
            .collect()
    }

    /// The newest assigned seq (0 before the first push).
    pub fn latest_seq(&self) -> u64 {
        self.next_seq - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HealthCfg {
        HealthCfg {
            heartbeat_interval_ms: 100,
            suspect_after_ms: 400,
            dead_after_ms: 1500,
            straggler_k: 4.0,
            straggler_min_ms: 10,
        }
    }

    fn beat(rank: u64) -> Heartbeat {
        Heartbeat {
            rank,
            uptime_ms: 0,
            inflight: 0,
            last_admit_seq: 0,
            bye: false,
        }
    }

    #[test]
    fn heartbeat_wire_roundtrip() {
        let hb = Heartbeat {
            rank: 3,
            uptime_ms: 12345,
            inflight: 2,
            last_admit_seq: 99,
            bye: true,
        };
        let bytes = ccheck_net::wire::encode(&hb);
        assert_eq!(bytes.len(), hb.wire_size());
        assert_eq!(ccheck_net::wire::decode::<Heartbeat>(&bytes), Some(hb));
    }

    #[test]
    fn liveness_walks_healthy_suspect_dead_by_age() {
        let mut t = HealthTracker::new(cfg(), 2, 1000);
        assert_eq!(t.classify(1, 1000), Liveness::Healthy);
        assert_eq!(t.classify(1, 1399), Liveness::Healthy);
        assert_eq!(t.classify(1, 1400), Liveness::Suspect);
        assert_eq!(t.classify(1, 2499), Liveness::Suspect);
        assert_eq!(t.classify(1, 2500), Liveness::Dead);
        // A beat resurrects it — the SIGCONT path. (Rank 0 never beat
        // after the seed, so by now it has aged to Dead on its own.)
        t.beat(&beat(1), 2600);
        assert_eq!(t.classify(1, 2600), Liveness::Healthy);
        assert_eq!(t.counts(2600), (1, 0, 1));
        t.beat(&beat(0), 2600);
        assert_eq!(t.counts(2600), (2, 0, 0));
    }

    #[test]
    fn stopped_pe_transitions_within_configured_interval() {
        // The e2e contract, on the simulated clock: a PE that stops
        // beating at T is Suspect by T + suspect_after_ms and Dead by
        // T + dead_after_ms; the others stay Healthy throughout.
        let c = cfg();
        let mut t = HealthTracker::new(c.clone(), 4, 0);
        let stop_at = 10_000;
        for now in (0..=stop_at).step_by(100) {
            for rank in 0..4 {
                t.beat(&beat(rank), now);
            }
        }
        for now in ((stop_at + 100)..(stop_at + 3000)).step_by(100) {
            for rank in 0..3 {
                t.beat(&beat(rank), now);
            }
            let expect = if now - stop_at >= c.dead_after_ms {
                Liveness::Dead
            } else if now - stop_at >= c.suspect_after_ms {
                Liveness::Suspect
            } else {
                Liveness::Healthy
            };
            assert_eq!(t.classify(3, now), expect, "at {now}");
            assert_eq!(
                t.counts(now).0,
                if expect == Liveness::Healthy { 4 } else { 3 }
            );
        }
    }

    #[test]
    fn disconnect_is_dead_immediately_and_bye_is_clean() {
        let mut t = HealthTracker::new(cfg(), 3, 0);
        t.mark_exited(2, "killed by signal 9 (SIGKILL)");
        assert_eq!(t.classify(2, 1), Liveness::Dead);
        let report = t.report(1);
        assert_eq!(
            report[2].exited.as_deref(),
            Some("killed by signal 9 (SIGKILL)")
        );
        // An orderly bye also classifies Dead but reads differently.
        t.beat(
            &Heartbeat {
                rank: 1,
                uptime_ms: 50,
                inflight: 0,
                last_admit_seq: 7,
                bye: true,
            },
            2,
        );
        assert_eq!(t.classify(1, 2), Liveness::Dead);
        assert_eq!(t.report(2)[1].exited.as_deref(), Some("clean shutdown"));
        // mark_exited must not overwrite the bye.
        t.mark_exited(1, "peer disconnected");
        assert_eq!(t.report(2)[1].exited.as_deref(), Some("clean shutdown"));
    }

    #[test]
    fn report_carries_last_beat_payload() {
        let mut t = HealthTracker::new(cfg(), 2, 0);
        t.beat(
            &Heartbeat {
                rank: 1,
                uptime_ms: 777,
                inflight: 3,
                last_admit_seq: 41,
                bye: false,
            },
            100,
        );
        let report = t.report(150);
        assert_eq!(report[1].uptime_ms, 777);
        assert_eq!(report[1].inflight, 3);
        assert_eq!(report[1].last_admit_seq, 41);
        assert_eq!(report[1].age_ms, 50);
        let json = report[1].to_json().render();
        assert!(json.contains("\"state\":\"healthy\""), "{json}");
        assert!(json.contains("\"last_admit_seq\":41"), "{json}");
    }

    #[test]
    fn straggler_flags_once_after_threshold() {
        let mut w = StragglerWatch::new(&cfg());
        // Build history: five 100ms reduce jobs.
        for id in 1..=5 {
            w.admitted(id, "reduce", 0);
            w.completed(id, 100);
        }
        // p95 lands at the bucket midpoint of [64,127] = 96; k=4 →
        // threshold ≥ 10 (floor) and in the hundreds.
        let threshold = w.threshold_ms("reduce").expect("history is deep enough");
        assert!(threshold >= 100, "threshold {threshold}");
        w.admitted(100, "reduce", 1000);
        assert!(w.check(1000 + threshold).is_empty(), "not yet past it");
        let slow = w.check(1000 + threshold + 1);
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].job_id, 100);
        assert_eq!(slow[0].op, "reduce");
        assert_eq!(slow[0].threshold_ms, threshold);
        // Flagged once: later checks stay quiet.
        assert!(w.check(1000 + threshold + 50_000).is_empty());
        assert_eq!(w.flagged_total(), 1);
        // Completion unregisters it (and feeds the histogram).
        w.completed(100, threshold + 5);
        assert!(w.check(u64::MAX / 2).is_empty());
    }

    #[test]
    fn straggler_needs_history_and_respects_floor() {
        let c = HealthCfg {
            straggler_min_ms: 60_000,
            ..cfg()
        };
        let mut w = StragglerWatch::new(&c);
        w.admitted(1, "sort", 0);
        // No history at all: never flagged.
        assert!(w.check(10_000_000).is_empty());
        assert_eq!(w.threshold_ms("sort"), None);
        for id in 2..=6 {
            w.admitted(id, "sort", 0);
            w.completed(id, 1);
        }
        // History exists but the floor dominates: a 50s-old job stays
        // unflagged when the floor is 60s.
        assert_eq!(w.threshold_ms("sort"), Some(60_000));
        assert!(w.check(50_000).is_empty());
        assert_eq!(w.check(60_001).len(), 1);
    }

    #[test]
    fn lagging_pe_picks_the_skewed_rank() {
        let mut snaps: Vec<MetricsSnapshot> = (0..4)
            .map(|i| {
                let mut s = MetricsSnapshot {
                    source: 100 + i,
                    ..Default::default()
                };
                let mut h = HistogramSnapshot::default();
                h.observe(1000);
                s.histograms.insert("exec.execute_us".to_string(), h);
                s
            })
            .collect();
        // Rank 2 is 10× slower.
        let mut slow = HistogramSnapshot::default();
        slow.observe(10_000);
        snaps[2]
            .histograms
            .insert("exec.execute_us".to_string(), slow);
        let (idx, skew) = lagging_pe(&snaps).expect("clear skew");
        assert_eq!(idx, 2);
        assert!(skew > 5.0, "skew {skew}");
        // Shared-registry snapshots (all the same source) decline.
        for s in &mut snaps {
            s.source = 42;
        }
        assert_eq!(lagging_pe(&snaps), None);
    }

    #[test]
    fn sample_ring_is_bounded_and_since_filters() {
        let mut ring = SampleRing::new(3);
        assert_eq!(ring.latest_seq(), 0);
        let base = WatchSample {
            seq: 0,
            at_ms: 0,
            wall_ms: 1_754_000_000_000,
            alerts: 1,
            jobs_done: 0,
            jobs_failed: 0,
            jobs_refused: 0,
            queue_depth: 0,
            inflight: 0,
            healthy: 4,
            suspect: 0,
            dead: 0,
            p50_ms: 0,
            p95_ms: 0,
            tenants: vec![("team-a".to_string(), 2)],
        };
        for i in 0..5 {
            let seq = ring.push(WatchSample {
                at_ms: i * 100,
                ..base.clone()
            });
            assert_eq!(seq, i + 1);
        }
        // Capacity 3: seqs 3, 4, 5 survive.
        let all = ring.since(0);
        assert_eq!(all.iter().map(|s| s.seq).collect::<Vec<_>>(), vec![3, 4, 5]);
        assert_eq!(ring.since(4).len(), 1);
        assert_eq!(ring.since(5).len(), 0);
        assert_eq!(ring.latest_seq(), 5);
        // JSON roundtrip of a sample.
        let parsed = WatchSample::from_json(&all[0].to_json()).expect("roundtrip");
        assert_eq!(parsed, all[0]);
    }
}

//! Client side of the service protocol: a thin, blocking line-JSON
//! connection to a `ccheck-serve` world's PE 0.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::path::Path;
use std::time::{Duration, Instant};

use crate::job::{JobSpec, Receipt};
use crate::json::{self, Json};

/// Client-visible failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// Socket trouble.
    Io(String),
    /// The server answered, but not with this protocol.
    Protocol(String),
    /// The server refused the request (`{"ok":false,"error":…}`).
    Refused(String),
    /// The service is at capacity and supplied a retry hint
    /// (`{"ok":false,"error":…,"retry_after_ms":…}`) — back off for
    /// roughly `retry_after_ms` and resubmit.
    Busy {
        /// The refusal message.
        message: String,
        /// The scheduler's estimate of when capacity frees up.
        retry_after_ms: u64,
    },
}

impl ServiceError {
    /// The scheduler's suggested backoff, when the error carries one.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            ServiceError::Busy { retry_after_ms, .. } => Some(*retry_after_ms),
            _ => None,
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Io(e) => write!(f, "service connection error: {e}"),
            ServiceError::Protocol(e) => write!(f, "service protocol error: {e}"),
            ServiceError::Refused(e) => write!(f, "service refused: {e}"),
            ServiceError::Busy {
                message,
                retry_after_ms,
            } => write!(
                f,
                "service busy: {message} (retry after ~{retry_after_ms} ms)"
            ),
        }
    }
}

impl std::error::Error for ServiceError {}

/// One connection to a running service. Requests are serial per
/// connection; open several clients for concurrent submissions.
pub struct ServiceClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ServiceClient {
    /// Connect to a service's client socket.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<ServiceClient, ServiceError> {
        let stream =
            TcpStream::connect(addr).map_err(|e| ServiceError::Io(format!("connect: {e}")))?;
        stream.set_nodelay(true).ok();
        let writer = stream
            .try_clone()
            .map_err(|e| ServiceError::Io(format!("clone stream: {e}")))?;
        Ok(ServiceClient {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Connect, retrying until `timeout` — for scripts racing service
    /// startup.
    pub fn connect_with_retry(
        addr: &str,
        timeout: Duration,
    ) -> Result<ServiceClient, ServiceError> {
        let deadline = Instant::now() + timeout;
        loop {
            match Self::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// Read a service address from an `--addr-file`, waiting up to
    /// `timeout` for it to appear, then connect.
    pub fn connect_via_addr_file(
        path: &Path,
        timeout: Duration,
    ) -> Result<ServiceClient, ServiceError> {
        let deadline = Instant::now() + timeout;
        let addr = loop {
            match std::fs::read_to_string(path) {
                Ok(contents) if !contents.trim().is_empty() => break contents.trim().to_string(),
                _ if Instant::now() >= deadline => {
                    return Err(ServiceError::Io(format!(
                        "address file {} never appeared",
                        path.display()
                    )))
                }
                _ => std::thread::sleep(Duration::from_millis(20)),
            }
        };
        let remaining = deadline.saturating_duration_since(Instant::now()) + Duration::from_secs(1);
        Self::connect_with_retry(&addr, remaining)
    }

    /// One request/response round trip.
    fn request(&mut self, v: &Json) -> Result<Json, ServiceError> {
        let mut line = v.render();
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .map_err(|e| ServiceError::Io(format!("send: {e}")))?;
        let mut response = String::new();
        let n = self
            .reader
            .read_line(&mut response)
            .map_err(|e| ServiceError::Io(format!("recv: {e}")))?;
        if n == 0 {
            return Err(ServiceError::Io("server closed the connection".into()));
        }
        let parsed = json::parse(&response)
            .map_err(|e| ServiceError::Protocol(format!("{e}: {response:?}")))?;
        if parsed.get("ok").and_then(Json::as_bool) == Some(false) {
            let message = parsed
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unspecified")
                .to_string();
            // A retry hint upgrades the refusal to Busy: the scheduler
            // expects capacity, the client should back off and retry.
            return Err(match parsed.get("retry_after_ms").and_then(Json::as_u64) {
                Some(retry_after_ms) => ServiceError::Busy {
                    message,
                    retry_after_ms,
                },
                None => ServiceError::Refused(message),
            });
        }
        Ok(parsed)
    }

    /// Submit a job; returns its service-assigned id.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<u64, ServiceError> {
        let response = self.request(&Json::obj([
            ("cmd", Json::from("submit")),
            ("job", spec.to_json()),
        ]))?;
        response
            .get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| ServiceError::Protocol("submit response without id".into()))
    }

    /// Poll a job's status: `(state, receipt if done)`.
    pub fn poll(&mut self, id: u64) -> Result<(String, Option<Receipt>), ServiceError> {
        let response = self.request(&Json::obj([
            ("cmd", Json::from("poll")),
            ("id", Json::from(id)),
        ]))?;
        decode_status(&response)
    }

    /// Block until the job completes; returns its receipt. A job the
    /// scheduler refused while queued (missed deadline) comes back as
    /// [`ServiceError::Refused`] carrying the scheduler's retry hint.
    pub fn wait(&mut self, id: u64) -> Result<Receipt, ServiceError> {
        self.wait_timeout(id, None).map(|receipt| {
            receipt.expect("wait without a timeout always resolves to a final status")
        })
    }

    /// Like [`ServiceClient::wait`], but give up after `timeout`
    /// (server-side — no connection teardown needed): `Ok(None)` means
    /// the job was still pending when the timeout passed; poll or wait
    /// again later.
    pub fn wait_timeout(
        &mut self,
        id: u64,
        timeout: Option<Duration>,
    ) -> Result<Option<Receipt>, ServiceError> {
        let mut pairs = vec![("cmd", Json::from("wait")), ("id", Json::from(id))];
        if let Some(timeout) = timeout {
            pairs.push(("timeout_ms", Json::from(timeout.as_millis() as u64)));
        }
        let response = self.request(&Json::obj(pairs))?;
        if response.get("timed_out").and_then(Json::as_bool) == Some(true) {
            return Ok(None);
        }
        let (state, receipt) = decode_status(&response)?;
        if state == "refused" {
            return Err(ServiceError::Refused(
                response
                    .get("reason")
                    .and_then(Json::as_str)
                    .unwrap_or("job refused by the scheduler")
                    .to_string(),
            ));
        }
        receipt.map(Some).ok_or_else(|| {
            ServiceError::Protocol(format!("wait returned state {state:?} without a receipt"))
        })
    }

    /// Submit and wait in one call.
    pub fn run(&mut self, spec: &JobSpec) -> Result<Receipt, ServiceError> {
        let id = self.submit(spec)?;
        self.wait(id)
    }

    /// Ask the service to drain and shut down.
    pub fn shutdown(&mut self) -> Result<(), ServiceError> {
        self.request(&Json::obj([("cmd", Json::from("shutdown"))]))?;
        Ok(())
    }
}

fn decode_status(response: &Json) -> Result<(String, Option<Receipt>), ServiceError> {
    let state = response
        .get("status")
        .and_then(Json::as_str)
        .ok_or_else(|| ServiceError::Protocol("response without status".into()))?
        .to_string();
    let receipt = match response.get("receipt") {
        None => None,
        Some(r) => Some(Receipt::from_json(r).map_err(ServiceError::Protocol)?),
    };
    Ok((state, receipt))
}

//! Client side of the service protocol: a thin, blocking line-JSON
//! connection to a `ccheck-serve` world's PE 0.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::path::Path;
use std::time::{Duration, Instant};

use crate::health::WatchSample;
use crate::job::{JobSpec, Receipt};
use crate::json::{self, Json};
use crate::ledger::{chain_hash, GENESIS_HASH};

/// Client-visible failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// Socket trouble.
    Io(String),
    /// The server answered, but not with this protocol.
    Protocol(String),
    /// The server refused the request (`{"ok":false,"error":…}`).
    Refused(String),
    /// The service is at capacity and supplied a retry hint
    /// (`{"ok":false,"error":…,"retry_after_ms":…}`) — back off for
    /// roughly `retry_after_ms` and resubmit.
    Busy {
        /// The refusal message.
        message: String,
        /// The scheduler's estimate of when capacity frees up.
        retry_after_ms: u64,
    },
}

impl ServiceError {
    /// The scheduler's suggested backoff, when the error carries one.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            ServiceError::Busy { retry_after_ms, .. } => Some(*retry_after_ms),
            _ => None,
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Io(e) => write!(f, "service connection error: {e}"),
            ServiceError::Protocol(e) => write!(f, "service protocol error: {e}"),
            ServiceError::Refused(e) => write!(f, "service refused: {e}"),
            ServiceError::Busy {
                message,
                retry_after_ms,
            } => write!(
                f,
                "service busy: {message} (retry after ~{retry_after_ms} ms)"
            ),
        }
    }
}

impl std::error::Error for ServiceError {}

/// What the service answered to a submit: the assigned (or adopted) id,
/// the job's status at acknowledgement time, whether the submission was
/// answered from already-recorded work (`docs/PROTOCOL.md` §7), and —
/// for a deduplicated *completed* job — the stored receipt.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitAck {
    /// The job id (service-assigned, or the client's `job_id` verbatim).
    pub id: u64,
    /// `"queued"`, or the duplicate's current status.
    pub status: String,
    /// True when the service matched an existing `(tenant, job_id)`
    /// with the same spec fingerprint instead of enqueuing new work.
    pub deduped: bool,
    /// The stored receipt, when the duplicate already completed.
    pub receipt: Option<Receipt>,
}

/// One entry of a tenant's ledger chain, as reported by the `chain`
/// command (`docs/PROTOCOL.md` §6.3) — the hashes without the receipt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainLink {
    /// The ledgered job.
    pub job_id: u64,
    /// SHA-256 of the receipt's canonical bytes.
    pub content_hash: String,
    /// The tenant's chain head before this entry.
    pub prev_hash: String,
}

/// A tenant's full chain summary: every link in append order plus the
/// advertised head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantChain {
    /// The tenant key (`""` = the anonymous default tenant).
    pub tenant: String,
    /// The advertised chain head ([`GENESIS_HASH`] for an empty chain).
    pub head: String,
    /// Links in append order.
    pub links: Vec<ChainLink>,
}

impl TenantChain {
    /// Recompute the chain client-side: the first link must start at
    /// [`GENESIS_HASH`], each later link's `prev_hash` must equal the
    /// [`chain_hash`] of its predecessor, and folding [`chain_hash`]
    /// over every link must land exactly on the advertised head
    /// (`docs/PROTOCOL.md` §6.3).
    pub fn verify(&self) -> Result<(), String> {
        let mut head = GENESIS_HASH.to_string();
        for (i, link) in self.links.iter().enumerate() {
            if link.prev_hash != head {
                return Err(format!(
                    "link {i} (job {}): prev_hash {} does not match the running head {head}",
                    link.job_id, link.prev_hash
                ));
            }
            head = chain_hash(&link.prev_hash, &link.content_hash);
        }
        if head != self.head {
            return Err(format!(
                "advertised head {} does not match the recomputed head {head}",
                self.head
            ));
        }
        Ok(())
    }
}

/// One connection to a running service. Requests are serial per
/// connection; open several clients for concurrent submissions.
pub struct ServiceClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ServiceClient {
    /// Connect to a service's client socket.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<ServiceClient, ServiceError> {
        let stream =
            TcpStream::connect(addr).map_err(|e| ServiceError::Io(format!("connect: {e}")))?;
        stream.set_nodelay(true).ok();
        let writer = stream
            .try_clone()
            .map_err(|e| ServiceError::Io(format!("clone stream: {e}")))?;
        Ok(ServiceClient {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Connect, retrying until `timeout` — for scripts racing service
    /// startup.
    pub fn connect_with_retry(
        addr: &str,
        timeout: Duration,
    ) -> Result<ServiceClient, ServiceError> {
        let deadline = Instant::now() + timeout;
        loop {
            match Self::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// Read a service address from an `--addr-file`, waiting up to
    /// `timeout` for it to appear, then connect.
    pub fn connect_via_addr_file(
        path: &Path,
        timeout: Duration,
    ) -> Result<ServiceClient, ServiceError> {
        let deadline = Instant::now() + timeout;
        let addr = loop {
            match std::fs::read_to_string(path) {
                Ok(contents) if !contents.trim().is_empty() => break contents.trim().to_string(),
                _ if Instant::now() >= deadline => {
                    return Err(ServiceError::Io(format!(
                        "address file {} never appeared",
                        path.display()
                    )))
                }
                _ => std::thread::sleep(Duration::from_millis(20)),
            }
        };
        let remaining = deadline.saturating_duration_since(Instant::now()) + Duration::from_secs(1);
        Self::connect_with_retry(&addr, remaining)
    }

    /// One request/response round trip.
    fn request(&mut self, v: &Json) -> Result<Json, ServiceError> {
        let mut line = v.render();
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .map_err(|e| ServiceError::Io(format!("send: {e}")))?;
        let mut response = String::new();
        let n = self
            .reader
            .read_line(&mut response)
            .map_err(|e| ServiceError::Io(format!("recv: {e}")))?;
        if n == 0 {
            return Err(ServiceError::Io("server closed the connection".into()));
        }
        let parsed = json::parse(&response)
            .map_err(|e| ServiceError::Protocol(format!("{e}: {response:?}")))?;
        if parsed.get("ok").and_then(Json::as_bool) == Some(false) {
            let message = parsed
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unspecified")
                .to_string();
            // A retry hint upgrades the refusal to Busy: the scheduler
            // expects capacity, the client should back off and retry.
            return Err(match parsed.get("retry_after_ms").and_then(Json::as_u64) {
                Some(retry_after_ms) => ServiceError::Busy {
                    message,
                    retry_after_ms,
                },
                None => ServiceError::Refused(message),
            });
        }
        Ok(parsed)
    }

    /// Submit a job; returns its service-assigned id.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<u64, ServiceError> {
        self.submit_acked(spec).map(|ack| ack.id)
    }

    /// Submit a job and return the full acknowledgement — id, status,
    /// and the §7 dedupe outcome. With a client-supplied
    /// [`JobSpec::job_id`], a resubmission of already-recorded work
    /// comes back `deduped: true` (carrying the stored receipt when the
    /// original completed) instead of running again.
    pub fn submit_acked(&mut self, spec: &JobSpec) -> Result<SubmitAck, ServiceError> {
        let response = self.request(&Json::obj([
            ("cmd", Json::from("submit")),
            ("job", spec.to_json()),
        ]))?;
        let id = response
            .get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| ServiceError::Protocol("submit response without id".into()))?;
        let status = response
            .get("status")
            .and_then(Json::as_str)
            .ok_or_else(|| ServiceError::Protocol("submit response without status".into()))?
            .to_string();
        let receipt = match response.get("receipt") {
            None => None,
            Some(r) => Some(Receipt::from_json(r).map_err(ServiceError::Protocol)?),
        };
        Ok(SubmitAck {
            id,
            status,
            deduped: response.get("deduped").and_then(Json::as_bool) == Some(true),
            receipt,
        })
    }

    /// Fetch a tenant's ledger chain summary (`tenant: ""` = the
    /// anonymous default tenant). Fails with [`ServiceError::Refused`]
    /// when the service runs without a ledger.
    pub fn chain(&mut self, tenant: &str) -> Result<TenantChain, ServiceError> {
        let response = self.request(&Json::obj([
            ("cmd", Json::from("chain")),
            ("tenant", Json::from(tenant)),
        ]))?;
        let head = response
            .get("head")
            .and_then(Json::as_str)
            .ok_or_else(|| ServiceError::Protocol("chain response without head".into()))?
            .to_string();
        let raw_links = match response.get("links") {
            Some(Json::Arr(items)) => items.as_slice(),
            _ => {
                return Err(ServiceError::Protocol(
                    "chain response without links".into(),
                ))
            }
        };
        let mut links = Vec::with_capacity(raw_links.len());
        for item in raw_links {
            let field = |key: &str| {
                item.get(key)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| ServiceError::Protocol(format!("chain link without {key}")))
            };
            links.push(ChainLink {
                job_id: item
                    .get("job_id")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| ServiceError::Protocol("chain link without job_id".into()))?,
                content_hash: field("content_hash")?,
                prev_hash: field("prev_hash")?,
            });
        }
        Ok(TenantChain {
            tenant: tenant.to_string(),
            head,
            links,
        })
    }

    /// Verify a sealed receipt end-to-end, client-side
    /// (`docs/PROTOCOL.md` §6.2–§6.3): recompute its `content_hash`
    /// from the canonical bytes, fetch its tenant's chain, check the
    /// receipt's link appears there with exactly these hashes, and
    /// recompute the whole chain up to the advertised head. Returns the
    /// verified head hash — proof the service's ledger still commits to
    /// this receipt.
    ///
    /// ```no_run
    /// use ccheck_service::{Receipt, ServiceClient};
    ///
    /// let mut client = ServiceClient::connect("127.0.0.1:9999")?;
    /// let receipt = client.wait(1)?;
    /// let head = client.verify_receipt(&receipt)?;
    /// assert_eq!(head.len(), 64, "chain heads are hex SHA-256");
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn verify_receipt(&mut self, receipt: &Receipt) -> Result<String, ServiceError> {
        let verify = |ok: bool, what: String| {
            if ok {
                Ok(())
            } else {
                Err(ServiceError::Refused(format!(
                    "receipt verification failed: {what}"
                )))
            }
        };
        let stored = receipt.content_hash.as_deref().ok_or_else(|| {
            ServiceError::Refused("receipt verification failed: receipt is not sealed".into())
        })?;
        let recomputed = receipt.content_hash();
        verify(
            stored == recomputed,
            format!("content hash {stored} does not match canonical bytes ({recomputed})"),
        )?;
        let prev = receipt.prev_hash.as_deref().ok_or_else(|| {
            ServiceError::Refused("receipt verification failed: receipt has no prev_hash".into())
        })?;
        let chain = self.chain(receipt.tenant.as_deref().unwrap_or_default())?;
        chain
            .verify()
            .map_err(|e| ServiceError::Refused(format!("receipt verification failed: {e}")))?;
        let link = chain
            .links
            .iter()
            .find(|l| l.job_id == receipt.job_id)
            .ok_or_else(|| {
                ServiceError::Refused(format!(
                    "receipt verification failed: job {} is not in the tenant chain",
                    receipt.job_id
                ))
            })?;
        verify(
            link.content_hash == recomputed && link.prev_hash == prev,
            format!(
                "ledgered link for job {} disagrees with the receipt's hashes",
                receipt.job_id
            ),
        )?;
        Ok(chain.head)
    }

    /// Poll a job's status: `(state, receipt if done)`.
    pub fn poll(&mut self, id: u64) -> Result<(String, Option<Receipt>), ServiceError> {
        let response = self.request(&Json::obj([
            ("cmd", Json::from("poll")),
            ("id", Json::from(id)),
        ]))?;
        decode_status(&response)
    }

    /// Block until the job completes; returns its receipt. A job the
    /// scheduler refused while queued (missed deadline) comes back as
    /// [`ServiceError::Refused`] carrying the scheduler's retry hint.
    pub fn wait(&mut self, id: u64) -> Result<Receipt, ServiceError> {
        self.wait_timeout(id, None).map(|receipt| {
            receipt.expect("wait without a timeout always resolves to a final status")
        })
    }

    /// Like [`ServiceClient::wait`], but give up after `timeout`
    /// (server-side — no connection teardown needed): `Ok(None)` means
    /// the job was still pending when the timeout passed; poll or wait
    /// again later.
    pub fn wait_timeout(
        &mut self,
        id: u64,
        timeout: Option<Duration>,
    ) -> Result<Option<Receipt>, ServiceError> {
        let mut pairs = vec![("cmd", Json::from("wait")), ("id", Json::from(id))];
        if let Some(timeout) = timeout {
            pairs.push(("timeout_ms", Json::from(timeout.as_millis() as u64)));
        }
        let response = self.request(&Json::obj(pairs))?;
        if response.get("timed_out").and_then(Json::as_bool) == Some(true) {
            return Ok(None);
        }
        let (state, receipt) = decode_status(&response)?;
        if state == "refused" {
            return Err(ServiceError::Refused(
                response
                    .get("reason")
                    .and_then(Json::as_str)
                    .unwrap_or("job refused by the scheduler")
                    .to_string(),
            ));
        }
        receipt.map(Some).ok_or_else(|| {
            ServiceError::Protocol(format!("wait returned state {state:?} without a receipt"))
        })
    }

    /// Submit and wait in one call.
    pub fn run(&mut self, spec: &JobSpec) -> Result<Receipt, ServiceError> {
        let id = self.submit(spec)?;
        self.wait(id)
    }

    /// Fetch a live, world-merged metrics snapshot
    /// (`docs/PROTOCOL.md` §2.5): PE 0 gathers every rank's counters,
    /// gauges, and histograms over the control scope and merges them.
    /// The response always carries the transport's `world.comm.*`
    /// series; the obs-collected series (`net.*`, `sched.*`, `exec.*`,
    /// `ledger.*`) are present when the service runs with `CCHECK_OBS`
    /// enabled (`"enabled": true` in the response). The returned JSON
    /// also embeds a ready-to-scrape Prometheus text rendering under
    /// `"prometheus"` — see [`ServiceClient::metrics_prometheus`].
    pub fn metrics(&mut self) -> Result<Json, ServiceError> {
        self.request(&Json::obj([("cmd", Json::from("metrics"))]))
    }

    /// Like [`ServiceClient::metrics`], but return just the Prometheus
    /// text-format rendering — what `ccheck-submit --metrics` prints.
    pub fn metrics_prometheus(&mut self) -> Result<String, ServiceError> {
        let response = self.metrics()?;
        response
            .get("prometheus")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ServiceError::Protocol("metrics response without prometheus".into()))
    }

    /// Fetch the world's live health report (`docs/PROTOCOL.md` §2.6):
    /// per-PE Healthy/Suspect/Dead liveness from heartbeat ages, queue
    /// depth, inflight count, and any flagged stragglers. Answered from
    /// PE-0-local watchdog state — no collective — so it keeps working
    /// while a PE is stopped or dead.
    pub fn health(&mut self) -> Result<Json, ServiceError> {
        self.request(&Json::obj([("cmd", Json::from("health"))]))
    }

    /// Long-poll the service's time-series ring (`docs/PROTOCOL.md`
    /// §2.7): every [`WatchSample`] newer than `since`, plus the newest
    /// retained sequence number to pass back on the next call. An empty
    /// vector means the bounded server-side wait expired — just call
    /// again. This is the feed behind `ccheck-top`.
    pub fn watch(&mut self, since: u64) -> Result<(u64, Vec<WatchSample>), ServiceError> {
        let response = self.request(&Json::obj([
            ("cmd", Json::from("watch")),
            ("since", Json::from(since)),
        ]))?;
        let latest = response
            .get("latest")
            .and_then(Json::as_u64)
            .ok_or_else(|| ServiceError::Protocol("watch response without latest".into()))?;
        let raw = match response.get("samples") {
            Some(Json::Arr(items)) => items.as_slice(),
            _ => {
                return Err(ServiceError::Protocol(
                    "watch response without samples".into(),
                ))
            }
        };
        let mut samples = Vec::with_capacity(raw.len());
        for item in raw {
            samples.push(WatchSample::from_json(item).map_err(ServiceError::Protocol)?);
        }
        Ok((latest, samples))
    }

    /// Fetch one job's merged cross-PE timeline (`docs/PROTOCOL.md`
    /// §2.8): the daemon gathers every PE's trace ring and filters for
    /// the job's correlation prefix, returning its queue → admit →
    /// generate → execute → check → receipt lanes sorted by start time.
    /// Spans exist only while the service collects (`CCHECK_OBS=1`);
    /// check `"enabled"` in the response.
    pub fn timeline(&mut self, id: u64) -> Result<Json, ServiceError> {
        self.request(&Json::obj([
            ("cmd", Json::from("timeline")),
            ("id", Json::from(id)),
        ]))
    }

    /// Fetch the tail of the durable telemetry history
    /// (`docs/PROTOCOL.md` §2.9): up to `limit` records (newest
    /// retained) with `wall_ms >= since_ms`, optionally filtered to one
    /// kind (`"sample"` | `"alert"` | `"metrics"`). Fails with
    /// [`ServiceError::Refused`] when the service runs without
    /// `--history`.
    pub fn history(
        &mut self,
        since_ms: u64,
        limit: u64,
        kind: Option<&str>,
    ) -> Result<Json, ServiceError> {
        let mut pairs = vec![
            ("cmd", Json::from("history")),
            ("since_ms", Json::from(since_ms)),
            ("limit", Json::from(limit)),
        ];
        if let Some(kind) = kind {
            pairs.push(("kind", Json::from(kind)));
        }
        self.request(&Json::obj(pairs))
    }

    /// Fetch the SLO standing (`docs/PROTOCOL.md` §2.10): per-objective
    /// burn rates and remaining budget, the count currently firing, and
    /// the retained alert-transition ring. Answered from PE-0-local
    /// state like `health`. Returns
    /// `(active, statuses, recent transitions)`.
    pub fn alerts(
        &mut self,
    ) -> Result<(u64, Vec<crate::slo::SloStatus>, Vec<crate::slo::AlertEvent>), ServiceError> {
        let response = self.request(&Json::obj([("cmd", Json::from("alerts"))]))?;
        let active = response
            .get("active")
            .and_then(Json::as_u64)
            .ok_or_else(|| ServiceError::Protocol("alerts response without active".into()))?;
        let mut statuses = Vec::new();
        if let Some(Json::Arr(items)) = response.get("slos") {
            for item in items {
                let num = |key: &str| {
                    item.get(key)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| ServiceError::Protocol(format!("slo status without {key}")))
                };
                statuses.push(crate::slo::SloStatus {
                    name: item
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or_else(|| ServiceError::Protocol("slo status without name".into()))?
                        .to_string(),
                    kind: item
                        .get("kind")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    window_ms: num("window_ms")?,
                    burn_permille: num("burn_permille")?,
                    budget_remaining_permille: num("budget_remaining_permille")?,
                    firing: item.get("firing").and_then(Json::as_bool) == Some(true),
                    breaches: num("breaches")?,
                });
            }
        }
        let mut recent = Vec::new();
        if let Some(Json::Arr(items)) = response.get("recent") {
            for item in items {
                recent
                    .push(crate::slo::AlertEvent::from_json(item).map_err(ServiceError::Protocol)?);
            }
        }
        Ok((active, statuses, recent))
    }

    /// Ask the service to drain and shut down.
    pub fn shutdown(&mut self) -> Result<(), ServiceError> {
        self.request(&Json::obj([("cmd", Json::from("shutdown"))]))?;
        Ok(())
    }
}

fn decode_status(response: &Json) -> Result<(String, Option<Receipt>), ServiceError> {
    let state = response
        .get("status")
        .and_then(Json::as_str)
        .ok_or_else(|| ServiceError::Protocol("response without status".into()))?
        .to_string();
    let receipt = match response.get("receipt") {
        None => None,
        Some(r) => Some(Receipt::from_json(r).map_err(ServiceError::Protocol)?),
    };
    Ok((state, receipt))
}

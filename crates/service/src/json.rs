//! Minimal JSON for the line-delimited control protocol.
//!
//! The workspace builds fully offline (no serde); the client protocol
//! needs only a small, strict JSON subset: objects, arrays, strings,
//! integers/floats, booleans, null. Integers are kept as `i128` so every
//! `u64` job id / seed round-trips exactly (floats would lose precision
//! above 2⁵³).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer literal (no fraction/exponent), exact up to ±2¹²⁷.
    Int(i128),
    /// A number with fraction or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` so serialization order is deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// `self[key]` for objects; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// String content, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Unsigned integer content, if an in-range integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// Boolean content, if a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric content as f64 (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Serialize to a single-line JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // Debug formatting keeps whole values recognizably
                    // floats ("3.0") and round-trips exactly.
                    let _ = write!(out, "{f:?}");
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Int(v as i128)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse one JSON value, requiring the input to be fully consumed
/// (modulo surrounding whitespace).
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|e| format!("bad integer {text:?}: {e}"))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed by this
                            // protocol; reject them rather than mangle.
                            let c = char::from_u32(code).ok_or("bad \\u code point")?;
                            out.push(c);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-utf8 string".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_basic_values() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-17",
            "18446744073709551615",
            "[1,2,3]",
            "[]",
            "{}",
            r#"{"a":1,"b":[true,null],"c":"x"}"#,
            r#""he\"llo\n""#,
        ] {
            let v = parse(text).unwrap_or_else(|e| panic!("{text}: {e}"));
            let rendered = v.render();
            assert_eq!(parse(&rendered).unwrap(), v, "{text} -> {rendered}");
        }
    }

    #[test]
    fn u64_exactness() {
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        assert_eq!(Json::from(u64::MAX).render(), "18446744073709551615");
    }

    #[test]
    fn floats_parse_and_render() {
        let v = parse("[1.5,2e3,-0.25]").unwrap();
        let Json::Arr(items) = &v else { panic!() };
        assert_eq!(items[0].as_f64(), Some(1.5));
        assert_eq!(items[1].as_f64(), Some(2000.0));
        assert_eq!(items[2].as_f64(), Some(-0.25));
        // A whole-valued float stays a float token.
        let r = Json::Float(3.0).render();
        assert!(parse(&r).unwrap().as_f64() == Some(3.0), "{r}");
    }

    #[test]
    fn object_accessors() {
        let v = parse(r#"{"cmd":"submit","id":42,"ok":true}"#).unwrap();
        assert_eq!(v.get("cmd").and_then(Json::as_str), Some("submit"));
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(42));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let nasty = "line1\nline2\t\"quoted\" \\slash\\ unicode: ünïcødé \u{1}";
        let rendered = Json::Str(nasty.to_string()).render();
        assert_eq!(parse(&rendered).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn malformed_inputs_rejected() {
        for text in [
            "",
            "{",
            "[1,",
            "tru",
            r#"{"a""#,
            r#"{"a":}"#,
            "1 2",
            "[1,2]]",
            "\"unterminated",
            "nan",
        ] {
            assert!(parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn whitespace_tolerated() {
        let v = parse(" {\n\t\"a\" : [ 1 , 2 ] }\r\n").unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Json::Arr(vec![Json::Int(1), Json::Int(2)]))
        );
    }

    #[test]
    fn obj_builder_renders_sorted_keys() {
        let v = Json::obj([("zeta", Json::from(1u64)), ("alpha", Json::from(2u64))]);
        assert_eq!(v.render(), r#"{"alpha":2,"zeta":1}"#);
    }
}

//! The service daemon: one long-running SPMD loop per PE.
//!
//! Architecture (see the crate docs for the wire protocols):
//!
//! ```text
//!             clients (line-JSON over TCP, PE 0 only)
//!                │ submit / poll / wait / shutdown
//!        ┌───────▼────────┐
//!        │ listener thread │──▶ registry (job → status/receipt)
//!        └───────┬────────┘
//!                │ submit queue (bounded)
//!        ┌───────▼────────┐   control scope (broadcast/barrier)
//!  PE 0: │  daemon loop    │◀═══════════════════════════════▶ PE 1..p
//!        └───────┬────────┘
//!                │ Admit(job, slot)
//!        ┌───────▼────────┐
//!        │ worker threads  │  one per in-flight job, each on its own
//!        └────────────────┘  scoped communicator (CommMux)
//! ```
//!
//! **Determinism.** Only PE 0 makes scheduling decisions; every decision
//! is broadcast on the control scope, so all PEs admit the same jobs to
//! the same slots in the same order. Job execution itself interleaves
//! freely (worker threads over scoped communicators), which is safe
//! because scopes are tag-isolated and admission re-uses a slot's scope
//! only after a control-scope barrier proves the previous occupant is
//! globally finished.
//!
//! **Backpressure.** At most `max_inflight` jobs execute concurrently
//! (that many worker threads and tag scopes per PE); beyond that,
//! submissions queue up to `queue_cap`, and further submissions are
//! refused with a `busy` error — under the non-FIFO policies the
//! refusal carries the scheduler's retry-after hint, so the client
//! knows when capacity is expected to free up.
//!
//! **Scheduling.** Which queued job a freed slot runs is the
//! [`crate::sched`] subsystem's decision: PE 0 drives a
//! [`SchedCore`] (policy + tenant quotas + deadline expiry + adaptive
//! checker tuning) and broadcasts each pick; the default
//! [`crate::sched::PolicyCfg::Fifo`] reproduces the PR-4 loop exactly.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ccheck_net::{Backend, Comm, NetError, StatsSnapshot, Tag};
use ccheck_obs::{HistogramSnapshot, HistoryPayload, HistoryReader, HistoryWriter};

use crate::exec::{execute_job_traced, validate_fault, TraceCtx};
use crate::health::{
    HealthCfg, HealthTracker, Heartbeat, Liveness, PeHealth, SampleRing, SlowJob, StragglerWatch,
    WatchSample,
};
use crate::job::{CtlMsg, JobSpec, JobStatus, Receipt, Verdict};
use crate::json::{self, Json};
use crate::ledger::Ledger;
use crate::sched::{PolicyCfg, SchedCore};
use crate::slo::{AlertEvent, SloEngine};

/// The health plane's dedicated tag scope: the very top of the scope
/// space, which job slots (`1..=max_inflight`, with `max_inflight <
/// MAX_SCOPE` asserted) can never reach.
const HEALTH_SCOPE: u64 = ccheck_net::scope::MAX_SCOPE;

/// The one message tag on the health scope.
const HEARTBEAT_TAG: Tag = Tag(1);

/// Service configuration (identical on every PE; the listener fields
/// are only used by rank 0).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Client listener bind address (rank 0). `"127.0.0.1:0"` picks an
    /// ephemeral port; discover it via `addr_file` or `announce`.
    pub listen: String,
    /// If set, rank 0 writes the bound listener address to this file
    /// (atomically, via a temp file) once it is accepting connections.
    pub addr_file: Option<PathBuf>,
    /// If set, rank 0 sends the bound listener address here — the
    /// in-process discovery path for tests and benchmarks.
    pub announce: Option<mpsc::Sender<SocketAddr>>,
    /// Maximum concurrently executing jobs (= worker threads and tag
    /// scopes per PE). Bounded by the scope space; keep it small.
    pub max_inflight: usize,
    /// Maximum queued-but-not-admitted jobs before submissions are
    /// refused with `busy`.
    pub queue_cap: usize,
    /// Completed receipts retained for `poll`/`wait` (oldest evicted
    /// first) — bounds the registry of a long-lived service. Clients
    /// should collect receipts promptly; polling an evicted job returns
    /// an unknown-id error.
    pub receipt_cap: usize,
    /// Which scheduling policy decides slot assignment. The default
    /// [`PolicyCfg::Fifo`] is byte-identical to the PR-4 admission loop.
    pub policy: PolicyCfg,
    /// If set, rank 0 opens (or creates) the durable receipt ledger at
    /// this path: completed receipts are sealed into per-tenant hash
    /// chains and appended to the log, an existing log is replayed on
    /// startup (restoring fetchable receipts, tenant aggregates, tuner
    /// rungs, and the id/admission counters), and `(tenant, job_id)`
    /// resubmissions are answered from the ledger without re-running
    /// (`docs/PROTOCOL.md` §6–§7). `None` keeps receipts in memory
    /// only.
    pub ledger_path: Option<PathBuf>,
    /// If set (identically on every PE), the world gathers its trace
    /// buffers at shutdown and rank 0 writes a Chrome `trace_event`
    /// JSON file here (load via `chrome://tracing` or Perfetto). Spans
    /// are only recorded while `CCHECK_OBS` collection is enabled.
    pub trace_out: Option<PathBuf>,
    /// Health-plane tuning: heartbeat cadence, the Suspect/Dead age
    /// thresholds, and the straggler multiplier (identical on every
    /// PE; the watchdog itself runs on rank 0).
    pub health: HealthCfg,
    /// If set, rank 0 opens (or reopens past any torn tail) the durable
    /// telemetry history at this path and appends every watch sample on
    /// the heartbeat cadence, every world-merged metrics snapshot, and
    /// every SLO alert transition (`docs/OBSERVABILITY.md` §9). On
    /// startup the existing file is replayed to refold the SLO window
    /// state, so burn rates continue across restarts exactly as if the
    /// service had never died.
    pub history_path: Option<PathBuf>,
    /// If set, rank 0 loads declarative SLO specs from this line-JSON
    /// file ([`crate::slo::parse_specs`]) and evaluates them against
    /// the live sample stream, emitting durable alerts into the
    /// history (when configured), warn logs, and the
    /// `slo.budget_remaining.*` / `slo.breaches_total` metrics.
    pub slo_path: Option<PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            listen: "127.0.0.1:0".into(),
            addr_file: None,
            announce: None,
            max_inflight: 4,
            queue_cap: 64,
            receipt_cap: 4096,
            policy: PolicyCfg::Fifo,
            ledger_path: None,
            trace_out: None,
            health: HealthCfg::default(),
            history_path: None,
            slo_path: None,
        }
    }
}

/// Per-tenant outcome aggregates for the final report. Maintained
/// incrementally on completion, so they stay exact even after old
/// receipts are evicted under `receipt_cap`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantAgg {
    /// Completed jobs.
    pub jobs: u64,
    /// `Verified` receipts.
    pub verified: u64,
    /// `VerifiedAfterRetry` receipts.
    pub retried: u64,
    /// `FellBack` receipts.
    pub fellback: u64,
    /// `Rejected` receipts.
    pub rejected: u64,
    /// Queued jobs refused (missed deadlines).
    pub refused: u64,
    /// Sum of per-job total communication bytes.
    pub total_bytes: u64,
    /// Sum of per-job wall milliseconds.
    pub wall_ms: u64,
}

impl TenantAgg {
    fn absorb(&mut self, receipt: &Receipt) {
        self.jobs += 1;
        match receipt.verdict {
            Verdict::Verified => self.verified += 1,
            Verdict::VerifiedAfterRetry(_) => self.retried += 1,
            Verdict::FellBack => self.fellback += 1,
            Verdict::Rejected => self.rejected += 1,
        }
        self.total_bytes += receipt.comm.map_or(0, |c| c.total_bytes);
        self.wall_ms += receipt.wall_ms;
    }
}

/// What [`run_service`] reports after a clean shutdown.
#[derive(Debug, Clone)]
pub struct ServiceSummary {
    /// Jobs admitted and executed by this world.
    pub jobs_run: u64,
    /// Rank 0: the gathered whole-service per-PE communication totals
    /// (control plane plus every job). `None` on other ranks.
    pub stats: Option<StatsSnapshot>,
    /// Rank 0: every completed job's receipt, in job-id order (capped
    /// by `receipt_cap`; the aggregates below stay exact regardless).
    pub receipts: Vec<crate::job::Receipt>,
    /// Rank 0: per-tenant outcome breakdown, sorted by tenant (the
    /// anonymous default tenant reports as `""`).
    pub tenants: Vec<(String, TenantAgg)>,
    /// Rank 0: the scheduling policy that ran.
    pub policy: &'static str,
    /// Rank 0: queued jobs refused for missed deadlines.
    pub refused: u64,
    /// Rank 0: jobs admitted over their tenant's inflight quota by
    /// work stealing.
    pub stolen: u64,
    /// Payload bytes this rank's registry folded back when retiring
    /// finished job scopes (on the in-process backend all PEs share one
    /// registry, so rank 0 carries the whole world's figure).
    pub retired_scope_bytes: u64,
    /// Wall time from service start to clean shutdown on this rank —
    /// the denominator of the final report's jobs-per-second figure.
    pub elapsed: Duration,
}

type Registry = Arc<Mutex<HashMap<u64, JobStatus>>>;

/// One in-flight job's local state.
struct Slot {
    done: Arc<AtomicBool>,
    handle: JoinHandle<()>,
}

/// Shared state between PE 0's daemon loop and its listener threads.
struct Frontend {
    registry: Registry,
    /// The scheduler state machine: listener threads enqueue (or get
    /// refused) under this lock, the daemon loop picks, job workers
    /// feed completions back. Never held across another Frontend lock.
    sched: Mutex<SchedCore>,
    /// Service-clock epoch (all scheduler times are ms since this).
    start: Instant,
    next_id: AtomicU64,
    shutdown_requested: AtomicBool,
    /// Cleared by the daemon as the final fence before it broadcasts
    /// `Shutdown`: no submission that passed the `accepting` check can
    /// be lost (the daemon waits for `submitting` to reach zero and
    /// re-drains the queue before committing to shut down).
    accepting: AtomicBool,
    /// Number of submit handlers between the `accepting` check and the
    /// completed enqueue.
    submitting: AtomicUsize,
    stopping: AtomicBool,
    /// Finished (done or refused) job ids in finish order, for
    /// registry eviction.
    done_order: Mutex<VecDeque<u64>>,
    receipt_cap: usize,
    /// Per-tenant outcome aggregates (exact across receipt eviction).
    agg: Mutex<BTreeMap<String, TenantAgg>>,
    /// The durable receipt ledger, when configured. Lock ordering: the
    /// ledger mutex is always taken alone, never while holding another
    /// Frontend lock.
    ledger: Option<Mutex<Ledger>>,
    /// Live (queued or running) jobs' idempotency keys: job id →
    /// `(tenant key, spec fingerprint)`. Lets a duplicate submission of
    /// an in-flight `(tenant, job_id)` be acknowledged instead of
    /// re-enqueued, and a conflicting one be refused.
    pending: Mutex<HashMap<u64, (String, String)>>,
    /// Admission sequence allocator. Starts at the ledger's replayed
    /// maximum so a restarted world continues the dead world's
    /// numbering (each Admit broadcasts its sequence number).
    admit_seq: AtomicU64,
    /// Clients waiting on a `metrics` response: the listener parks a
    /// sender here, the daemon loop broadcasts [`CtlMsg::Metrics`],
    /// gathers the world snapshot, and answers every waiter at once.
    metrics_waiters: Mutex<Vec<mpsc::Sender<Json>>>,
    /// Clients waiting on a `timeline` response, keyed by job id: the
    /// daemon loop broadcasts [`CtlMsg::Trace`], gathers the world's
    /// trace rings, and answers every waiter for that job at once.
    trace_waiters: Mutex<Vec<(u64, mpsc::Sender<Json>)>>,
    /// World size (for the `health` report).
    world: usize,
    /// Health-plane tuning (the watch-sample cadence and thresholds
    /// echoed in the `health` response).
    health_cfg: HealthCfg,
    /// The PE-0 watchdog: per-PE heartbeat ages and Healthy/Suspect/
    /// Dead classification. Fed by the collector thread and rank 0's
    /// own self-beat; read lock-free of any collective by `health`.
    health: Mutex<HealthTracker>,
    /// Last classification logged per PE, so liveness transitions are
    /// logged once per change rather than once per tick.
    pe_states: Mutex<Vec<Liveness>>,
    /// The straggler watch: per-op wall-time history and inflight
    /// admission times.
    straggler: Mutex<StragglerWatch>,
    /// Currently-flagged stragglers that are still running (cleared on
    /// completion), for the `health` response.
    slow_live: Mutex<Vec<SlowJob>>,
    /// The `watch` command's time-series ring of periodic samples.
    samples: Mutex<SampleRing>,
    /// Service-clock ms of the last pushed watch sample.
    last_sample_ms: AtomicU64,
    /// Jobs currently executing on this rank (shared with the Admit
    /// arm and job workers; also what rank 0's self-beat reports).
    inflight: Arc<AtomicU64>,
    /// Jobs completed since startup (receipts recorded).
    jobs_done: AtomicU64,
    /// Wall-time distribution of completed jobs, for the watch
    /// samples' p50/p95.
    wall_hist: Mutex<HistogramSnapshot>,
    /// The most recent metrics-derived lagging-PE verdict, if any.
    lagging: Mutex<Option<(usize, f64)>>,
    /// The durable telemetry history, when configured. Lock ordering:
    /// like the ledger, taken alone — tick() builds the sample and
    /// evaluates SLOs first, then appends under this lock.
    history: Option<Mutex<HistoryWriter>>,
    /// The SLO evaluator (empty when no `--slo` file). Lock ordering:
    /// taken alone.
    slo: Mutex<SloEngine>,
    /// Objectives currently firing — read lock-free by sample building
    /// and the `health` response.
    alerts_active: AtomicU64,
    /// Wall-clock ms of the last persisted metrics snapshot (rank 0
    /// persists its local registry on a slower cadence than samples).
    last_metrics_wall_ms: AtomicU64,
}

impl Frontend {
    /// Milliseconds on the service clock.
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    /// Mark a finished job in the registry and evict the oldest
    /// finished entries beyond `receipt_cap` so the registry stays
    /// bounded over the service's lifetime.
    fn finish(&self, job_id: u64, status: JobStatus) {
        let mut registry = self.registry.lock().expect("registry poisoned");
        let mut done_order = self.done_order.lock().expect("done order poisoned");
        registry.insert(job_id, status);
        done_order.push_back(job_id);
        while done_order.len() > self.receipt_cap {
            let evicted = done_order.pop_front().expect("non-empty");
            registry.remove(&evicted);
        }
    }

    /// Record a completed job: seal it into the ledger first (the
    /// durable record is the authoritative one), then scheduler
    /// feedback (tenant accounting, adaptive tuner), aggregates, and
    /// finally the client-visible receipt.
    fn record_done(&self, job_id: u64, mut receipt: crate::job::Receipt) {
        // The §7 idempotency key is the *submitted* spec's fingerprint
        // (recorded at enqueue), not the broadcast spec's — an adaptive
        // job runs with tuner-resolved knobs, but resubmission dedupe
        // must match what the client sent.
        if let Some((_, fingerprint)) = self
            .pending
            .lock()
            .expect("pending poisoned")
            .remove(&job_id)
        {
            receipt.spec_fingerprint = Some(fingerprint);
        }
        if let Some(ledger) = &self.ledger {
            let mut ledger = ledger.lock().expect("ledger poisoned");
            match ledger.append(receipt.clone()) {
                Ok(sealed) => receipt = sealed,
                Err(e) => {
                    ccheck_obs::error!("service", "ledger append failed for job {job_id}: {e}")
                }
            }
        }
        self.sched
            .lock()
            .expect("scheduler poisoned")
            .complete(&receipt);
        // Health-plane bookkeeping: the wall time teaches the straggler
        // history, a flagged job stops being live, and the watch
        // samples' latency quantiles learn the completion.
        self.straggler
            .lock()
            .expect("straggler poisoned")
            .completed(job_id, receipt.wall_ms);
        self.slow_live
            .lock()
            .expect("slow live poisoned")
            .retain(|s| s.job_id != job_id);
        self.wall_hist
            .lock()
            .expect("wall hist poisoned")
            .observe(receipt.wall_ms.max(1));
        self.jobs_done.fetch_add(1, Ordering::Relaxed);
        {
            let mut agg = self.agg.lock().expect("aggregates poisoned");
            agg.entry(receipt.tenant.clone().unwrap_or_default())
                .or_default()
                .absorb(&receipt);
        }
        self.finish(job_id, JobStatus::Done(receipt));
    }

    /// Record a queued job the scheduler refused (deadline expiry).
    fn record_refused(&self, job_id: u64, tenant: &str, reason: String) {
        {
            let mut agg = self.agg.lock().expect("aggregates poisoned");
            agg.entry(tenant.to_string()).or_default().refused += 1;
        }
        self.pending
            .lock()
            .expect("pending poisoned")
            .remove(&job_id);
        self.finish(job_id, JobStatus::Refused(reason));
    }

    /// A job's client-visible status: the live registry first, then the
    /// ledger — replayed receipts stay fetchable across restarts and
    /// `receipt_cap` eviction (`docs/PROTOCOL.md` §6.4).
    fn status_of(&self, job_id: u64) -> Option<JobStatus> {
        if let Some(status) = self
            .registry
            .lock()
            .expect("registry poisoned")
            .get(&job_id)
        {
            return Some(status.clone());
        }
        let ledger = self.ledger.as_ref()?;
        let ledger = ledger.lock().expect("ledger poisoned");
        ledger.get(job_id).map(|r| JobStatus::Done(r.clone()))
    }

    /// One watchdog pass, run from every iteration of PE 0's scheduling
    /// loop: rank 0's self-beat, liveness-transition logging, gauge
    /// export, the straggler scan, and (on the heartbeat cadence) one
    /// `watch` sample pushed into the ring.
    fn tick(&self) {
        let now = self.now_ms();
        let self_beat = Heartbeat {
            rank: 0,
            uptime_ms: now,
            inflight: self.inflight.load(Ordering::Relaxed),
            last_admit_seq: self.admit_seq.load(Ordering::Relaxed),
            bye: false,
        };
        let (counts, report) = {
            let mut health = self.health.lock().expect("health poisoned");
            health.beat(&self_beat, now);
            health.export_gauges(now);
            (health.counts(now), health.report(now))
        };
        {
            let mut prev = self.pe_states.lock().expect("pe states poisoned");
            for pe in &report {
                if prev[pe.rank] != pe.state {
                    ccheck_obs::warn!(
                        "health",
                        "PE {} is now {} (heartbeat age {} ms{})",
                        pe.rank,
                        pe.state.name(),
                        pe.age_ms,
                        pe.exited
                            .as_deref()
                            .map(|r| format!(", {r}"))
                            .unwrap_or_default()
                    );
                    prev[pe.rank] = pe.state;
                }
            }
        }
        let slow = self
            .straggler
            .lock()
            .expect("straggler poisoned")
            .check(now);
        if !slow.is_empty() {
            for s in &slow {
                ccheck_obs::warn!(
                    "health",
                    "straggler: job {} ({}) running {} ms, threshold {} ms (op p95 {} ms)",
                    s.job_id,
                    s.op,
                    s.running_ms,
                    s.threshold_ms,
                    s.p95_ms
                );
                if ccheck_obs::enabled() {
                    ccheck_obs::registry().counter("health.stragglers").inc();
                    ccheck_obs::instant(&format!("straggler.job{}", s.job_id));
                }
            }
            self.slow_live
                .lock()
                .expect("slow live poisoned")
                .extend(slow);
        }
        // One watch sample per heartbeat interval (the tick itself runs
        // every loop iteration, ~1 ms).
        let interval = self.health_cfg.heartbeat_interval_ms.max(1);
        let last = self.last_sample_ms.load(Ordering::Acquire);
        if now >= last.saturating_add(interval)
            && self
                .last_sample_ms
                .compare_exchange(last, now, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        {
            let (queue_depth, refused) = {
                let sched = self.sched.lock().expect("scheduler poisoned");
                (sched.queue_len() as u64, sched.refused())
            };
            let (p50_ms, p95_ms) = {
                let hist = self.wall_hist.lock().expect("wall hist poisoned");
                (hist.quantile(0.5), hist.quantile(0.95))
            };
            let (tenants, jobs_failed) = {
                let agg = self.agg.lock().expect("aggregates poisoned");
                (
                    agg.iter().map(|(t, a)| (t.clone(), a.jobs)).collect(),
                    agg.values().map(|a| a.fellback + a.rejected).sum(),
                )
            };
            let mut sample = WatchSample {
                seq: 0, // stamped by the ring below
                at_ms: now,
                wall_ms: ccheck_obs::unix_ms(),
                alerts: self.alerts_active.load(Ordering::Relaxed),
                jobs_done: self.jobs_done.load(Ordering::Relaxed),
                jobs_failed,
                jobs_refused: refused,
                queue_depth,
                inflight: self.inflight.load(Ordering::Relaxed),
                healthy: counts.0,
                suspect: counts.1,
                dead: counts.2,
                p50_ms,
                p95_ms,
                tenants,
            };
            sample.seq = self
                .samples
                .lock()
                .expect("samples poisoned")
                .push(sample.clone());
            // SLO pass over the stamped sample: breach transitions get
            // warn logs here; gauges/counters update inside the engine.
            let events = {
                let mut slo = self.slo.lock().expect("slo poisoned");
                let events = slo.observe(&sample, true);
                self.alerts_active
                    .store(slo.active_count(), Ordering::Relaxed);
                events
            };
            for ev in &events {
                ccheck_obs::warn!(
                    "slo",
                    "{} {}: {} (burn {} permille)",
                    ev.slo,
                    if ev.firing { "FIRING" } else { "resolved" },
                    ev.detail,
                    ev.burn_permille
                );
            }
            self.persist_telemetry(&sample, &events);
        }
    }

    /// Append one tick's durable telemetry — the watch sample, any
    /// alert transitions, and (on a 10× slower cadence) rank 0's own
    /// metrics snapshot — then let the writer run its retention pass.
    /// No-op without `--history`.
    fn persist_telemetry(&self, sample: &WatchSample, events: &[AlertEvent]) {
        let Some(history) = &self.history else {
            return;
        };
        let mut history = history.lock().expect("history poisoned");
        let sample_json = sample.to_json().render();
        if let Err(e) = history.append_sample(sample.wall_ms, sample_json.as_bytes()) {
            ccheck_obs::error!("service", "history sample append failed: {e}");
        }
        for ev in events {
            if let Err(e) = history.append_alert(ev.at_ms, ev.to_json().render().as_bytes()) {
                ccheck_obs::error!("service", "history alert append failed: {e}");
            }
        }
        // Rank 0's local registry snapshot (the world-merged snapshot
        // additionally lands whenever a `metrics` gather runs).
        if ccheck_obs::enabled() {
            let cadence = self.health_cfg.heartbeat_interval_ms.max(1) * 10;
            let last = self.last_metrics_wall_ms.load(Ordering::Acquire);
            if sample.wall_ms >= last.saturating_add(cadence) {
                self.last_metrics_wall_ms
                    .store(sample.wall_ms, Ordering::Release);
                let snap = ccheck_obs::registry().snapshot();
                if let Err(e) = history.append_metrics(sample.wall_ms, &snap) {
                    ccheck_obs::error!("service", "history metrics append failed: {e}");
                }
            }
        }
        match history.maybe_compact(sample.wall_ms) {
            Ok(compacted) => {
                if compacted {
                    ccheck_obs::debug!("service", "history compacted ({:?})", history.path());
                }
            }
            Err(e) => ccheck_obs::error!("service", "history compaction failed: {e}"),
        }
    }
}

/// Run the service daemon on this communicator until a client requests
/// shutdown (and the queue has drained). SPMD: every PE of the world
/// calls this; rank 0 additionally serves the client socket.
pub fn run_service(comm: Comm, cfg: &ServiceConfig) -> ServiceSummary {
    assert!(cfg.max_inflight >= 1, "need at least one job slot");
    assert!(
        (cfg.max_inflight as u64) < ccheck_net::scope::MAX_SCOPE,
        "max_inflight exceeds the tag scope space"
    );
    let rank = comm.rank();
    let size = comm.size();
    let t_start = Instant::now();
    let mux = comm.into_mux();
    let mut ctl = mux.control();
    ccheck_obs::info!("service", "PE {rank}/{size}: service loop up");

    // Per-rank live counters, shared between the admission loop, job
    // workers, and this rank's heartbeat (rank 0's frontend holds the
    // same `inflight` for its self-beat and the `health` response).
    let inflight = Arc::new(AtomicU64::new(0));
    let last_seq = Arc::new(AtomicU64::new(0));

    // PE 0: client frontend.
    let mut frontend: Option<Arc<Frontend>> = None;
    let mut listener_handle: Option<JoinHandle<()>> = None;
    if rank == 0 {
        let mut sched = SchedCore::new(&cfg.policy, cfg.queue_cap, cfg.max_inflight);
        let mut agg: BTreeMap<String, TenantAgg> = BTreeMap::new();
        // Open and replay the ledger before accepting any client: the
        // restarted world must resume the dead one's adaptive-tuner
        // rungs, tenant aggregates, and id/admission numbering exactly
        // (`docs/PROTOCOL.md` §6.4).
        let ledger = cfg.ledger_path.as_ref().map(|path| {
            Ledger::open(path)
                .unwrap_or_else(|e| panic!("ccheck-serve: cannot open ledger {path:?}: {e}"))
        });
        let (mut next_id, mut admit_base) = (1, 0);
        // Watch samples publish *cumulative* completion counters, and
        // the SLO error-budget math differences them across its window.
        // Seeding `jobs_done` from the replayed ledger keeps the
        // counter monotone across a restart — otherwise the first live
        // sample would appear to un-complete every pre-crash job and
        // spuriously resolve a firing error-budget objective.
        let mut done_base = 0u64;
        if let Some(ledger) = &ledger {
            for receipt in ledger.entries() {
                let tenant = receipt.tenant.clone().unwrap_or_default();
                sched.replay_verdict(&tenant, receipt.verdict);
                agg.entry(tenant).or_default().absorb(receipt);
            }
            next_id = ledger.max_job_id() + 1;
            admit_base = ledger.max_admit_seq();
            done_base = ledger.len() as u64;
        }
        // SLO specs load before the history replay so the replay can
        // refold the declared objectives' window state.
        let mut slo_engine = SloEngine::new(match cfg.slo_path.as_ref() {
            None => Vec::new(),
            Some(path) => {
                let text = std::fs::read_to_string(path)
                    .unwrap_or_else(|e| panic!("ccheck-serve: cannot read SLO file {path:?}: {e}"));
                crate::slo::parse_specs(&text)
                    .unwrap_or_else(|e| panic!("ccheck-serve: bad SLO file {path:?}: {e}"))
            }
        });
        // Open the history past any torn tail, then replay it through
        // the SLO engine: samples refold the burn-rate windows
        // (silently — their transitions are already durable), alert
        // records refill the retained ring. After this, live
        // evaluation continues as if the restart never happened.
        let history = cfg.history_path.as_ref().map(|path| {
            let writer = HistoryWriter::open(path)
                .unwrap_or_else(|e| panic!("ccheck-serve: cannot open history {path:?}: {e}"));
            if writer.replayed() > 0 {
                let reader = HistoryReader::open(path).unwrap_or_else(|e| {
                    panic!("ccheck-serve: cannot replay history {path:?}: {e}")
                });
                let (mut samples, mut alerts) = (0u64, 0u64);
                for record in reader {
                    let Ok(record) = record else { break };
                    match &record.payload {
                        HistoryPayload::Sample(bytes) => {
                            if let Some(sample) = std::str::from_utf8(bytes)
                                .ok()
                                .and_then(|t| crate::json::parse(t).ok())
                                .and_then(|j| WatchSample::from_json(&j).ok())
                            {
                                slo_engine.observe(&sample, false);
                                samples += 1;
                            }
                        }
                        HistoryPayload::Alert(bytes) => {
                            if let Some(ev) = std::str::from_utf8(bytes)
                                .ok()
                                .and_then(|t| crate::json::parse(t).ok())
                                .and_then(|j| AlertEvent::from_json(&j).ok())
                            {
                                slo_engine.restore_event(ev);
                                alerts += 1;
                            }
                        }
                        HistoryPayload::Metrics(_) => {}
                    }
                }
                ccheck_obs::info!(
                    "service",
                    "history {path:?}: replayed {} records ({samples} samples, \
                     {alerts} alerts) into {} SLOs",
                    writer.replayed(),
                    slo_engine.len()
                );
            }
            writer
        });
        let alerts_active = slo_engine.active_count();
        let fe = Arc::new(Frontend {
            registry: Arc::new(Mutex::new(HashMap::new())),
            sched: Mutex::new(sched),
            start: Instant::now(),
            next_id: AtomicU64::new(next_id),
            shutdown_requested: AtomicBool::new(false),
            accepting: AtomicBool::new(true),
            submitting: AtomicUsize::new(0),
            stopping: AtomicBool::new(false),
            done_order: Mutex::new(VecDeque::new()),
            receipt_cap: cfg.receipt_cap,
            agg: Mutex::new(agg),
            ledger: ledger.map(Mutex::new),
            pending: Mutex::new(HashMap::new()),
            admit_seq: AtomicU64::new(admit_base),
            metrics_waiters: Mutex::new(Vec::new()),
            trace_waiters: Mutex::new(Vec::new()),
            world: size,
            health_cfg: cfg.health.clone(),
            health: Mutex::new(HealthTracker::new(cfg.health.clone(), size, 0)),
            pe_states: Mutex::new(vec![Liveness::Healthy; size]),
            straggler: Mutex::new(StragglerWatch::new(&cfg.health)),
            slow_live: Mutex::new(Vec::new()),
            samples: Mutex::new(SampleRing::new(1024)),
            last_sample_ms: AtomicU64::new(0),
            inflight: Arc::clone(&inflight),
            jobs_done: AtomicU64::new(done_base),
            wall_hist: Mutex::new(HistogramSnapshot::new()),
            lagging: Mutex::new(None),
            history: history.map(Mutex::new),
            slo: Mutex::new(slo_engine),
            alerts_active: AtomicU64::new(alerts_active),
            last_metrics_wall_ms: AtomicU64::new(0),
        });
        listener_handle = Some(spawn_listener(cfg, Arc::clone(&fe)));
        frontend = Some(fe);
    }

    // Health plane: heartbeats ride a dedicated comm scope so liveness
    // keeps flowing while the main loop blocks in a broadcast or a
    // collective. Non-zero ranks run a sender thread; rank 0 runs one
    // collector draining beats from *any* peer (a single stopped PE
    // must not starve the others' beats — that stall is the signal).
    let hb_stop = Arc::new(AtomicBool::new(false));
    let mut hb_handle: Option<JoinHandle<()>> = None;
    if size > 1 {
        let mut hb_comm = mux.scoped(HEALTH_SCOPE, "health");
        if rank == 0 {
            let fe = Arc::clone(frontend.as_ref().expect("rank 0 has a frontend"));
            hb_handle = Some(
                std::thread::Builder::new()
                    .name("ccheck-health-collect".into())
                    .spawn(move || {
                        let mut live = vec![true; size];
                        live[0] = false; // rank 0 self-beats directly
                        let mut remaining = size - 1;
                        while remaining > 0 {
                            match hb_comm.recv_any_or_disconnect::<Heartbeat>(HEARTBEAT_TAG) {
                                Ok((src, hb)) => {
                                    let now = fe.now_ms();
                                    fe.health.lock().expect("health poisoned").beat(&hb, now);
                                    if hb.bye && live[src] {
                                        live[src] = false;
                                        remaining -= 1;
                                    }
                                }
                                Err(NetError::Disconnected { peer }) => {
                                    if live[peer] {
                                        live[peer] = false;
                                        remaining -= 1;
                                        fe.health
                                            .lock()
                                            .expect("health poisoned")
                                            .mark_exited(peer, "connection lost");
                                        ccheck_obs::warn!(
                                            "health",
                                            "PE {peer}: heartbeat connection lost"
                                        );
                                    }
                                }
                                Err(NetError::Decode { from, .. }) => {
                                    ccheck_obs::warn!(
                                        "health",
                                        "malformed heartbeat from PE {from}"
                                    );
                                }
                                Err(_) => {
                                    // Whole-transport teardown (the local
                                    // backend reports this instead of
                                    // per-peer closes): every peer still
                                    // marked live is gone.
                                    let mut health = fe.health.lock().expect("health poisoned");
                                    for (peer, alive) in live.iter_mut().enumerate() {
                                        if *alive {
                                            *alive = false;
                                            health.mark_exited(peer, "transport torn down");
                                        }
                                    }
                                    remaining = 0;
                                }
                            }
                        }
                    })
                    .expect("spawn heartbeat collector"),
            );
        } else {
            let stop = Arc::clone(&hb_stop);
            let hb_inflight = Arc::clone(&inflight);
            let hb_last_seq = Arc::clone(&last_seq);
            let interval = cfg.health.heartbeat_interval_ms.max(1);
            let my_rank = rank as u64;
            hb_handle = Some(
                std::thread::Builder::new()
                    .name("ccheck-health-beat".into())
                    .spawn(move || {
                        let t0 = Instant::now();
                        loop {
                            let bye = stop.load(Ordering::Acquire);
                            hb_comm.send(
                                0,
                                HEARTBEAT_TAG,
                                &Heartbeat {
                                    rank: my_rank,
                                    uptime_ms: t0.elapsed().as_millis() as u64,
                                    inflight: hb_inflight.load(Ordering::Relaxed),
                                    last_admit_seq: hb_last_seq.load(Ordering::Relaxed),
                                    bye,
                                },
                            );
                            if bye {
                                break;
                            }
                            // Chunked sleep so shutdown never waits out a
                            // full heartbeat interval.
                            let mut slept = 0;
                            while slept < interval && !stop.load(Ordering::Acquire) {
                                let step = (interval - slept).min(20);
                                std::thread::sleep(Duration::from_millis(step));
                                slept += step;
                            }
                        }
                    })
                    .expect("spawn heartbeat sender"),
            );
        }
    }

    let mut slots: Vec<Option<Slot>> = Vec::new();
    slots.resize_with(cfg.max_inflight, || None);
    let mut jobs_run = 0u64;
    let retired_scope_bytes = Arc::new(AtomicU64::new(0));

    loop {
        // PE 0 decides the next control action; everyone learns it via
        // the broadcast (non-roots pass a placeholder).
        let decision = if let Some(fe) = &frontend {
            next_action(fe, &slots)
        } else {
            CtlMsg::Shutdown
        };
        let msg = ctl.broadcast(0, decision);
        match msg {
            CtlMsg::Admit {
                job_id,
                slot,
                seq,
                queue_wait_ms,
                spec,
            } => {
                let slot_idx = slot as usize;
                // Reclaim the slot's previous worker (PE 0 only admits
                // into slots whose job finished globally, so this join
                // does not block on communication).
                if let Some(old) = slots[slot_idx].take() {
                    let _ = old.handle.join();
                }
                // Quiescence point: after this barrier, *every* PE has
                // reclaimed the slot — its tag scope is safe to reuse.
                ctl.barrier();
                let job_comm = mux.scoped(slot as u64 + 1, &format!("job-{job_id}"));
                // The trace-correlation identity every span/event of
                // this job carries, on every PE.
                let trace_ctx = TraceCtx {
                    job_id,
                    tenant: spec.tenant.clone().unwrap_or_default(),
                    admit_seq: seq,
                };
                last_seq.store(seq, Ordering::Relaxed);
                inflight.fetch_add(1, Ordering::Relaxed);
                if let Some(fe) = &frontend {
                    fe.registry
                        .lock()
                        .expect("registry poisoned")
                        .insert(job_id, JobStatus::Running);
                    fe.straggler.lock().expect("straggler poisoned").admitted(
                        job_id,
                        spec.op.name(),
                        fe.now_ms(),
                    );
                    // Rank 0 lays the job's queue lane retroactively:
                    // the span ends now (admission) and started when
                    // the scheduler first saw the job.
                    if ccheck_obs::enabled() {
                        let now_us = ccheck_obs::now_us();
                        let wait_us = queue_wait_ms.saturating_mul(1000);
                        ccheck_obs::span_at(
                            &trace_ctx.span_name("queue"),
                            now_us.saturating_sub(wait_us),
                            wait_us.max(1),
                        );
                        ccheck_obs::instant(&trace_ctx.span_name("admit"));
                    }
                    ccheck_obs::debug!(
                        "service",
                        "admit job {job_id} (seq {seq}, slot {slot}, queued {queue_wait_ms} ms)"
                    );
                }
                let done = Arc::new(AtomicBool::new(false));
                let worker_done = Arc::clone(&done);
                let worker_frontend = frontend.clone();
                let worker_inflight = Arc::clone(&inflight);
                let root_stats = mux.stats();
                let worker_retired = Arc::clone(&retired_scope_bytes);
                jobs_run += 1;
                let handle = std::thread::Builder::new()
                    .name(format!("ccheck-job-{job_id}"))
                    .spawn(move || {
                        let mut comm = job_comm;
                        let mut receipt =
                            execute_job_traced(&mut comm, job_id, &spec, Some(&trace_ctx));
                        // The admission sequence travels in the Admit
                        // broadcast, so a restarted world continues the
                        // ledger's numbering on every PE.
                        receipt.admit_seq = seq;
                        // So does the scheduler's queue-wait measurement:
                        // every PE stamps the identical timing block the
                        // ledger will seal.
                        if let Some(timing) = receipt.timing.as_mut() {
                            timing.queue_wait_ms = queue_wait_ms;
                        }
                        // Deregister the scope before signaling done.
                        drop(comm);
                        worker_inflight.fetch_sub(1, Ordering::Relaxed);
                        // The receipt has captured the per-job volumes;
                        // retire the scope so a long-lived service keeps
                        // its stats registry bounded (totals preserved —
                        // the returned final snapshot feeds the rank's
                        // retired-traffic tally).
                        if let Some(snapshot) = root_stats.retire_scope(&format!("job-{job_id}")) {
                            worker_retired.fetch_add(snapshot.total_bytes(), Ordering::Relaxed);
                        }
                        if let Some(fe) = worker_frontend {
                            fe.record_done(job_id, receipt);
                        }
                        worker_done.store(true, Ordering::Release);
                    })
                    .expect("spawn job worker");
                slots[slot_idx] = Some(Slot { done, handle });
            }
            CtlMsg::Metrics => {
                // Two collectives, same order on every PE: the obs
                // registries, then the world's comm-stats totals (which
                // carry the unified transport series even when obs
                // collection is off).
                let gathered = ctl.gather_metrics();
                let stats = ctl.gather_stats();
                if let Some(fe) = &frontend {
                    let (mut world, per_pe) =
                        gathered.expect("rank 0 receives the gathered metrics");
                    if let Some(stats) = &stats {
                        world.merge(&stats.to_metrics("world.comm"));
                    }
                    // Straggler attribution: the per-rank snapshots
                    // expose per-PE execute-time skew — name the PE the
                    // world is waiting on.
                    let lag = crate::health::lagging_pe(&per_pe);
                    if let Some((pe, skew)) = lag {
                        if skew >= 1.5 {
                            ccheck_obs::info!(
                                "health",
                                "lagging PE {pe}: {skew:.2}x its peers' mean execute time"
                            );
                        }
                        if ccheck_obs::enabled() {
                            ccheck_obs::registry()
                                .gauge("health.lagging_pe")
                                .set(pe as i64);
                        }
                    }
                    *fe.lagging.lock().expect("lagging poisoned") = lag;
                    // The world-merged snapshot is the history's richest
                    // record — persist it whenever a gather runs.
                    if let Some(history) = &fe.history {
                        let mut history = history.lock().expect("history poisoned");
                        if let Err(e) = history.append_metrics(ccheck_obs::unix_ms(), &world) {
                            ccheck_obs::error!("service", "history metrics append failed: {e}");
                        }
                    }
                    let response = metrics_json(&world, per_pe.len(), lag);
                    let waiters = std::mem::take(
                        &mut *fe.metrics_waiters.lock().expect("metrics waiters poisoned"),
                    );
                    for waiter in waiters {
                        let _ = waiter.send(response.clone());
                    }
                }
            }
            CtlMsg::Trace { job_id } => {
                // Collective on every PE, like Metrics: drain the
                // world's trace rings to rank 0 and answer the parked
                // `timeline` clients for this job.
                let traces = ctl.gather_trace();
                if let Some(fe) = &frontend {
                    let response = timeline_json(job_id, traces.as_deref().unwrap_or(&[]));
                    let mut waiters = fe.trace_waiters.lock().expect("trace waiters poisoned");
                    let mut rest = Vec::new();
                    for (id, tx) in waiters.drain(..) {
                        if id == job_id {
                            let _ = tx.send(response.clone());
                        } else {
                            rest.push((id, tx));
                        }
                    }
                    *waiters = rest;
                }
            }
            CtlMsg::Shutdown => {
                for slot in slots.iter_mut().filter_map(Option::take) {
                    let _ = slot.handle.join();
                }
                break;
            }
        }
    }

    // Health plane teardown first: senders sign off with a final `bye`
    // beat, and the collector exits once every peer has said bye or
    // vanished — all before the control scope's final collectives, so
    // the health scope is quiet when the mux shuts down.
    hb_stop.store(true, Ordering::Release);
    if let Some(handle) = hb_handle {
        let _ = handle.join();
    }
    ccheck_obs::info!("service", "PE {rank}: draining after {jobs_run} jobs");

    // Global quiescence, then the final accounting and teardown.
    ctl.barrier();
    let stats = ctl.gather_stats();
    // Drain the world's trace buffers to rank 0 while the control scope
    // is still alive (collective, so it must be unconditional on every
    // PE whenever any PE writes a trace — cfg is identical world-wide).
    if cfg.trace_out.is_some() {
        let traces = ctl.gather_trace();
        if let (Some(path), Some(traces)) = (&cfg.trace_out, traces) {
            if let Err(e) = std::fs::write(path, ccheck_obs::export::chrome_trace_json(&traces)) {
                ccheck_obs::error!("service", "cannot write trace to {path:?}: {e}");
            }
        }
    }
    drop(ctl);
    mux.shutdown();
    if let Some(fe) = &frontend {
        fe.stopping.store(true, Ordering::Release);
        // Flush the fsync batches: a cleanly drained world leaves every
        // sealed receipt and every telemetry record durable.
        if let Some(ledger) = &fe.ledger {
            let _ = ledger.lock().expect("ledger poisoned").sync();
        }
        if let Some(history) = &fe.history {
            let _ = history.lock().expect("history poisoned").sync();
        }
    }
    if let Some(handle) = listener_handle {
        let _ = handle.join();
    }
    let mut receipts: Vec<crate::job::Receipt> = Vec::new();
    let mut tenants: Vec<(String, TenantAgg)> = Vec::new();
    let mut policy = "";
    let mut refused = 0;
    let mut stolen = 0;
    if let Some(fe) = &frontend {
        let registry = fe.registry.lock().expect("registry poisoned");
        receipts = registry
            .values()
            .filter_map(|status| match status {
                JobStatus::Done(receipt) => Some(receipt.clone()),
                _ => None,
            })
            .collect();
        drop(registry);
        tenants = fe
            .agg
            .lock()
            .expect("aggregates poisoned")
            .iter()
            .map(|(t, a)| (t.clone(), a.clone()))
            .collect();
        let sched = fe.sched.lock().expect("scheduler poisoned");
        policy = sched.policy_name();
        refused = sched.refused();
        stolen = sched.stolen();
    }
    receipts.sort_by_key(|r| r.job_id);
    ServiceSummary {
        jobs_run,
        stats,
        receipts,
        tenants,
        policy,
        refused,
        stolen,
        retired_scope_bytes: retired_scope_bytes.load(Ordering::Relaxed),
        elapsed: t_start.elapsed(),
    }
}

/// Render the merged world metrics for the `metrics` protocol response:
/// every counter and gauge by name, histogram summaries (count, sum,
/// p50/p99), plus the whole snapshot in Prometheus text exposition
/// format for scrapers that want it verbatim.
fn metrics_json(
    world: &ccheck_obs::MetricsSnapshot,
    sources: usize,
    lagging: Option<(usize, f64)>,
) -> Json {
    let counters: BTreeMap<String, Json> = world
        .counters
        .iter()
        .map(|(name, v)| (name.clone(), Json::from(*v)))
        .collect();
    let gauges: BTreeMap<String, Json> = world
        .gauges
        .iter()
        .map(|(name, v)| (name.clone(), Json::Int(*v as i128)))
        .collect();
    let histograms: BTreeMap<String, Json> = world
        .histograms
        .iter()
        .map(|(name, h)| {
            (
                name.clone(),
                Json::obj([
                    ("count", Json::from(h.count())),
                    ("sum", Json::from(h.sum)),
                    ("p50", Json::from(h.p50())),
                    ("p99", Json::from(h.quantile(0.99))),
                ]),
            )
        })
        .collect();
    let mut pairs = vec![
        ("ok", Json::Bool(true)),
        ("enabled", Json::Bool(ccheck_obs::enabled())),
        ("sources", Json::from(sources as u64)),
        ("counters", Json::Obj(counters)),
        ("gauges", Json::Obj(gauges)),
        ("histograms", Json::Obj(histograms)),
        (
            "prometheus",
            Json::Str(ccheck_obs::export::prometheus_text(world)),
        ),
    ];
    if let Some((pe, skew)) = lagging {
        pairs.push(("lagging_pe", Json::from(pe as u64)));
        pairs.push(("lagging_skew", Json::Float(skew)));
    }
    Json::obj(pairs)
}

/// Merge the world's gathered trace snapshots into one job's timeline:
/// every span and instant whose name carries the job's `job{id}.`
/// correlation prefix — the queue/admit lanes rank 0 lays plus the
/// generate/execute/check/receipt phase lanes every PE's worker emits —
/// sorted by start time. Timestamps are µs since each *process's* own
/// monotonic epoch: exactly comparable within a source, only
/// approximately across sources (`docs/PROTOCOL.md` §2.8).
fn timeline_json(job_id: u64, traces: &[ccheck_obs::TraceSnapshot]) -> Json {
    let prefix = TraceCtx::prefix(job_id);
    let mut events: Vec<(u64, Json)> = Vec::new();
    for snap in traces {
        for ev in &snap.events {
            let Some(rest) = ev.name.strip_prefix(prefix.as_str()) else {
                continue;
            };
            let phase = rest.split('@').next().unwrap_or(rest);
            events.push((
                ev.start_us,
                Json::obj([
                    ("source", Json::from(snap.source)),
                    ("thread", Json::from(ev.thread.as_str())),
                    ("name", Json::from(ev.name.as_str())),
                    ("phase", Json::from(phase)),
                    ("start_us", Json::from(ev.start_us)),
                    ("dur_us", Json::from(ev.dur_us)),
                    (
                        "kind",
                        Json::from(if ev.dur_us == 0 { "instant" } else { "span" }),
                    ),
                ]),
            ));
        }
    }
    events.sort_by_key(|(start, _)| *start);
    Json::obj([
        ("ok", Json::Bool(true)),
        ("id", Json::from(job_id)),
        ("enabled", Json::Bool(ccheck_obs::enabled())),
        (
            "events",
            Json::Arr(events.into_iter().map(|(_, e)| e).collect()),
        ),
    ])
}

/// PE 0's scheduling loop: block until there is something to broadcast.
/// Every decision is the [`SchedCore`]'s: deadline expiry first (jobs
/// refused while queued), then — if a slot is free — the policy's pick.
fn next_action(fe: &Arc<Frontend>, slots: &[Option<Slot>]) -> CtlMsg {
    loop {
        // The watchdog pass rides the scheduling loop: self-beat,
        // straggler scan, liveness-transition logs, watch samples.
        fe.tick();
        // Metrics requests preempt admissions: the gather is cheap, the
        // waiter is a live client connection, and admissions re-run on
        // the next loop iteration anyway.
        if !fe
            .metrics_waiters
            .lock()
            .expect("metrics waiters poisoned")
            .is_empty()
        {
            return CtlMsg::Metrics;
        }
        // Timeline requests preempt for the same reason.
        let trace_job = fe
            .trace_waiters
            .lock()
            .expect("trace waiters poisoned")
            .first()
            .map(|(id, _)| *id);
        if let Some(job_id) = trace_job {
            return CtlMsg::Trace { job_id };
        }
        let now = fe.now_ms();
        let free = slots.iter().position(|slot| match slot {
            None => true,
            Some(s) => s.done.load(Ordering::Acquire),
        });
        let (expired, admission, queue_empty) = {
            let mut sched = fe.sched.lock().expect("scheduler poisoned");
            let expired = sched.take_expired(now);
            let admission = match free {
                Some(_) => sched.pick(now),
                None => None,
            };
            (expired, admission, sched.queue_is_empty())
        };
        for (job_id, tenant, reason) in expired {
            fe.record_refused(job_id, &tenant, reason);
        }
        if let Some(admission) = admission {
            return CtlMsg::Admit {
                job_id: admission.job_id,
                slot: free.expect("picked only with a free slot") as u32,
                // 1-based, continuing past the ledger's replayed
                // maximum on a restarted world.
                seq: fe.admit_seq.fetch_add(1, Ordering::AcqRel) + 1,
                queue_wait_ms: admission.queue_wait_ms,
                spec: admission.spec,
            };
        }
        let drained = queue_empty
            && slots
                .iter()
                .all(|s| s.as_ref().is_none_or(|s| s.done.load(Ordering::Acquire)));
        if fe.shutdown_requested.load(Ordering::Acquire) && drained {
            // Fence against racing submissions: stop accepting, wait out
            // any handler already past its `accepting` check, then take
            // one final look at the queue. Anything that slipped in gets
            // run (it was acknowledged); only then commit to Shutdown.
            fe.accepting.store(false, Ordering::Release);
            while fe.submitting.load(Ordering::Acquire) > 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
            if fe
                .sched
                .lock()
                .expect("scheduler poisoned")
                .queue_is_empty()
            {
                return CtlMsg::Shutdown;
            }
            continue;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Bind the client listener, publish its address, and serve connections
/// until the daemon stops.
fn spawn_listener(cfg: &ServiceConfig, fe: Arc<Frontend>) -> JoinHandle<()> {
    let listener = TcpListener::bind(&cfg.listen)
        .unwrap_or_else(|e| panic!("ccheck-serve: cannot bind {}: {e}", cfg.listen));
    let addr = listener.local_addr().expect("listener address");
    if let Some(path) = &cfg.addr_file {
        // Write-then-rename so watchers never read a partial address.
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, format!("{addr}\n")).expect("write addr file");
        std::fs::rename(&tmp, path).expect("publish addr file");
    }
    if let Some(announce) = &cfg.announce {
        let _ = announce.send(addr);
    }
    listener
        .set_nonblocking(true)
        .expect("nonblocking listener");
    std::thread::Builder::new()
        .name("ccheck-serve-listener".into())
        .spawn(move || {
            let mut handlers: Vec<JoinHandle<()>> = Vec::new();
            while !fe.stopping.load(Ordering::Acquire) {
                // Reap closed connections so a long-lived service doesn't
                // accumulate one handle per one-shot client forever
                // (dropping a finished handle releases the thread).
                handlers.retain(|h| !h.is_finished());
                match listener.accept() {
                    Ok((stream, _)) => {
                        let fe = Arc::clone(&fe);
                        handlers.push(
                            std::thread::Builder::new()
                                .name("ccheck-serve-client".into())
                                .spawn(move || serve_connection(stream, &fe))
                                .expect("spawn client handler"),
                        );
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
            for handler in handlers {
                let _ = handler.join();
            }
        })
        .expect("spawn listener thread")
}

fn respond(stream: &mut TcpStream, v: &Json) -> std::io::Result<()> {
    let mut line = v.render();
    line.push('\n');
    stream.write_all(line.as_bytes())
}

fn error_json(message: impl Into<String>) -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        ("error", Json::Str(message.into())),
    ])
}

/// One client connection: line-delimited JSON requests, one response
/// line per request, in order.
fn serve_connection(stream: TcpStream, fe: &Arc<Frontend>) {
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .ok();
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    // Raw bytes, not read_line: the read timeout exists only to poll
    // `stopping`, and a timeout mid-line must leave the partial request
    // in the buffer. read_line would *discard* consumed bytes when a
    // timeout lands inside a multi-byte UTF-8 character (its validity
    // guard truncates on error); read_until keeps every byte, and UTF-8
    // is validated once per complete line.
    let mut buf: Vec<u8> = Vec::new();
    loop {
        match reader.read_until(b'\n', &mut buf) {
            Ok(0) => return, // client closed
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if fe.stopping.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        let line = String::from_utf8_lossy(&buf);
        let response = if line.trim().is_empty() {
            None
        } else {
            Some(match json::parse(&line) {
                Err(e) => error_json(format!("bad request: {e}")),
                Ok(request) => handle_request(&request, fe),
            })
        };
        buf.clear();
        if let Some(response) = response {
            if respond(&mut writer, &response).is_err() {
                return;
            }
        }
    }
}

fn status_json(id: u64, status: &JobStatus) -> Json {
    let mut pairs = vec![
        ("ok", Json::Bool(true)),
        ("id", Json::from(id)),
        ("status", Json::from(status.name())),
    ];
    match status {
        JobStatus::Done(receipt) => pairs.push(("receipt", receipt.to_json())),
        JobStatus::Refused(reason) => pairs.push(("reason", Json::Str(reason.clone()))),
        _ => {}
    }
    Json::obj(pairs)
}

/// A successful submit acknowledgement; dedupe hits additionally carry
/// `deduped: true` and (when already complete) the stored receipt.
fn submit_ack(id: u64, status: &str, deduped: bool, receipt: Option<&Receipt>) -> Json {
    let mut pairs = vec![
        ("ok", Json::Bool(true)),
        ("id", Json::from(id)),
        ("status", Json::from(status)),
    ];
    if deduped {
        pairs.push(("deduped", Json::Bool(true)));
    }
    if let Some(receipt) = receipt {
        pairs.push(("receipt", receipt.to_json()));
    }
    Json::obj(pairs)
}

/// The submit path, including the `docs/PROTOCOL.md` §7 idempotency
/// rules for client-supplied job ids: an already-ledgered (or
/// already-completed) `(tenant, job_id)` with the same spec fingerprint
/// is answered from the stored receipt with zero re-execution; a live
/// duplicate is acknowledged at its current status; any id reuse with a
/// *different* spec is a conflict.
fn handle_submit(fe: &Arc<Frontend>, spec: JobSpec) -> Json {
    if !fe.accepting.load(Ordering::Acquire) {
        return error_json("service is shutting down");
    }
    let tenant_key = spec.tenant.clone().unwrap_or_default();
    let fingerprint = spec.fingerprint();

    let id = match spec.job_id {
        None => fe.next_id.fetch_add(1, Ordering::AcqRel),
        Some(requested) => {
            // Ledgered already? Serve the §7 dedupe (or conflict) from
            // the durable record.
            if let Some(ledger) = &fe.ledger {
                let ledger = ledger.lock().expect("ledger poisoned");
                if let Some(stored) = ledger.get_tenant_job(&tenant_key, requested) {
                    if stored.spec_fingerprint.as_deref() == Some(fingerprint.as_str()) {
                        return submit_ack(requested, "done", true, Some(stored));
                    }
                    return error_json(format!(
                        "job_id {requested} is already ledgered for this tenant \
                         with a different spec"
                    ));
                }
                if ledger.get(requested).is_some() {
                    return error_json(format!(
                        "job_id {requested} is already ledgered under another tenant"
                    ));
                }
            }
            // Claim the id against concurrent submissions: the pending
            // map is the single arbiter of live ids.
            {
                let mut pending = fe.pending.lock().expect("pending poisoned");
                if let Some((live_tenant, live_fp)) = pending.get(&requested) {
                    if *live_tenant == tenant_key && *live_fp == fingerprint {
                        let status = fe.status_of(requested).map_or("queued", |s| s.name());
                        return submit_ack(requested, status, true, None);
                    }
                    return error_json(format!("job_id {requested} is already in use"));
                }
                // A finished (no longer pending) id may still be in the
                // registry: dedupe completed work, refuse other reuse.
                match fe
                    .registry
                    .lock()
                    .expect("registry poisoned")
                    .get(&requested)
                {
                    Some(JobStatus::Done(stored)) => {
                        if stored.spec_fingerprint.as_deref() == Some(fingerprint.as_str()) {
                            let stored = stored.clone();
                            return submit_ack(requested, "done", true, Some(&stored));
                        }
                        return error_json(format!(
                            "job_id {requested} already completed with a different spec"
                        ));
                    }
                    Some(_) => {
                        return error_json(format!(
                            "job_id {requested} is already in use (resubmit under a new id)"
                        ));
                    }
                    None => {}
                }
                pending.insert(requested, (tenant_key.clone(), fingerprint.clone()));
            }
            // Keep service-assigned ids above every adopted one.
            fe.next_id.fetch_max(requested + 1, Ordering::AcqRel);
            requested
        }
    };
    if spec.job_id.is_none() {
        fe.pending
            .lock()
            .expect("pending poisoned")
            .insert(id, (tenant_key, fingerprint));
    }
    // Mark the job queued *before* the scheduler can hand it to a
    // worker, so a completed status never gets clobbered by a stale
    // "queued".
    fe.registry
        .lock()
        .expect("registry poisoned")
        .insert(id, JobStatus::Queued);
    let enqueue = fe
        .sched
        .lock()
        .expect("scheduler poisoned")
        .try_enqueue(fe.now_ms(), id, spec);
    if let Err(refusal) = enqueue {
        fe.registry.lock().expect("registry poisoned").remove(&id);
        fe.pending.lock().expect("pending poisoned").remove(&id);
        let mut pairs = vec![
            ("ok", Json::Bool(false)),
            ("error", Json::Str(refusal.message)),
        ];
        if let Some(hint) = refusal.retry_after_ms {
            pairs.push(("retry_after_ms", Json::from(hint)));
        }
        return Json::obj(pairs);
    }
    submit_ack(id, "queued", false, None)
}

fn handle_request(request: &Json, fe: &Arc<Frontend>) -> Json {
    match request.get("cmd").and_then(Json::as_str) {
        Some("submit") => {
            let spec = match request.get("job") {
                Some(job) => match JobSpec::from_json(job) {
                    Ok(spec) => spec,
                    Err(e) => return error_json(format!("bad job spec: {e}")),
                },
                None => return error_json("submit requires a job object"),
            };
            if let Err(e) = spec.validate().and_then(|()| validate_fault(&spec)) {
                return error_json(format!("bad job spec: {e}"));
            }
            // Enter the submission window *before* checking `accepting`:
            // the daemon's shutdown fence clears `accepting` and then
            // waits for `submitting` to drain, so a submit that passes
            // this check is guaranteed to be seen by the final queue
            // drain — an acknowledged job is never dropped.
            fe.submitting.fetch_add(1, Ordering::AcqRel);
            let response = handle_submit(fe, spec);
            fe.submitting.fetch_sub(1, Ordering::AcqRel);
            response
        }
        Some("poll") => match request.get("id").and_then(Json::as_u64) {
            None => error_json("poll requires an id"),
            // `status_of` falls back to the ledger, so replayed receipts
            // stay pollable after a restart (and across `receipt_cap`
            // eviction).
            Some(id) => match fe.status_of(id) {
                None => error_json(format!("unknown job id {id}")),
                Some(status) => status_json(id, &status),
            },
        },
        Some("wait") => match request.get("id").and_then(Json::as_u64) {
            None => error_json("wait requires an id"),
            Some(id) => {
                // Optional client-chosen bound; after it passes, answer
                // with the job's current (non-final) status and a
                // `timed_out` marker instead of blocking forever.
                let deadline = request
                    .get("timeout_ms")
                    .and_then(Json::as_u64)
                    .map(|ms| Instant::now() + Duration::from_millis(ms));
                loop {
                    match fe.status_of(id) {
                        None => break error_json(format!("unknown job id {id}")),
                        Some(status @ (JobStatus::Done(_) | JobStatus::Refused(_))) => {
                            break status_json(id, &status)
                        }
                        Some(status) => {
                            if deadline.is_some_and(|d| Instant::now() >= d) {
                                break Json::obj([
                                    ("ok", Json::Bool(true)),
                                    ("id", Json::from(id)),
                                    ("status", Json::from(status.name())),
                                    ("timed_out", Json::Bool(true)),
                                ]);
                            }
                        }
                    }
                    if fe.stopping.load(Ordering::Acquire) {
                        break error_json("service shut down before the job completed");
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
        },
        Some("chain") => {
            // A tenant's ledger chain links, oldest first — everything a
            // client needs to audit the chain without the receipts
            // themselves (`docs/PROTOCOL.md` §6.3).
            let tenant = request
                .get("tenant")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string();
            match &fe.ledger {
                None => error_json("service has no ledger (started without --ledger)"),
                Some(ledger) => {
                    let ledger = ledger.lock().expect("ledger poisoned");
                    let links: Vec<Json> = ledger
                        .chain(&tenant)
                        .into_iter()
                        .map(|r| {
                            Json::obj([
                                ("job_id", Json::from(r.job_id)),
                                (
                                    "content_hash",
                                    Json::Str(r.content_hash.clone().unwrap_or_default()),
                                ),
                                (
                                    "prev_hash",
                                    Json::Str(r.prev_hash.clone().unwrap_or_default()),
                                ),
                            ])
                        })
                        .collect();
                    Json::obj([
                        ("ok", Json::Bool(true)),
                        ("tenant", Json::Str(tenant.clone())),
                        ("head", Json::Str(ledger.head(&tenant))),
                        ("links", Json::Arr(links)),
                    ])
                }
            }
        }
        Some("metrics") => {
            // Park until the daemon loop's next decision point: it
            // broadcasts a Metrics collective, merges the world
            // snapshot, and answers through this channel. Bounded wait:
            // a shutting-down daemon may never run another decision.
            let (tx, rx) = mpsc::channel();
            fe.metrics_waiters
                .lock()
                .expect("metrics waiters poisoned")
                .push(tx);
            match rx.recv_timeout(Duration::from_secs(30)) {
                Ok(response) => response,
                Err(_) => error_json("metrics gather timed out (service draining?)"),
            }
        }
        Some("health") => {
            // Answered from PE-0-local watchdog state only — no
            // collective — so it keeps working while a PE is stopped
            // or dead (`docs/PROTOCOL.md` §2.6).
            let now = fe.now_ms();
            let (report, counts) = {
                let health = fe.health.lock().expect("health poisoned");
                (health.report(now), health.counts(now))
            };
            let queue_depth = fe.sched.lock().expect("scheduler poisoned").queue_len() as u64;
            let stragglers: Vec<Json> = fe
                .slow_live
                .lock()
                .expect("slow live poisoned")
                .iter()
                .map(|s| {
                    Json::obj([
                        ("job_id", Json::from(s.job_id)),
                        ("op", Json::from(s.op.as_str())),
                        ("running_ms", Json::from(s.running_ms)),
                        ("p95_ms", Json::from(s.p95_ms)),
                        ("threshold_ms", Json::from(s.threshold_ms)),
                    ])
                })
                .collect();
            let mut pairs = vec![
                ("ok", Json::Bool(true)),
                ("world", Json::from(fe.world as u64)),
                ("uptime_ms", Json::from(now)),
                ("queue_depth", Json::from(queue_depth)),
                ("inflight", Json::from(fe.inflight.load(Ordering::Relaxed))),
                (
                    "last_admit_seq",
                    Json::from(fe.admit_seq.load(Ordering::Relaxed)),
                ),
                ("healthy", Json::from(counts.0)),
                ("suspect", Json::from(counts.1)),
                ("dead", Json::from(counts.2)),
                (
                    "suspect_after_ms",
                    Json::from(fe.health_cfg.suspect_after_ms),
                ),
                ("dead_after_ms", Json::from(fe.health_cfg.dead_after_ms)),
                (
                    "pes",
                    Json::Arr(report.iter().map(PeHealth::to_json).collect()),
                ),
                ("stragglers", Json::Arr(stragglers)),
                (
                    "alerts",
                    Json::from(fe.alerts_active.load(Ordering::Relaxed)),
                ),
                (
                    "slos",
                    Json::Arr(
                        fe.slo
                            .lock()
                            .expect("slo poisoned")
                            .statuses()
                            .iter()
                            .map(crate::slo::SloStatus::to_json)
                            .collect(),
                    ),
                ),
            ];
            if let Some((pe, skew)) = *fe.lagging.lock().expect("lagging poisoned") {
                pairs.push(("lagging_pe", Json::from(pe as u64)));
                pairs.push(("lagging_skew", Json::Float(skew)));
            }
            Json::obj(pairs)
        }
        Some("watch") => {
            // Long-poll the sample ring: answer as soon as a sample
            // newer than `since` exists, or empty after a bounded wait
            // (the dashboard just re-polls).
            let since = request.get("since").and_then(Json::as_u64).unwrap_or(0);
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                let (samples, latest) = {
                    let ring = fe.samples.lock().expect("samples poisoned");
                    (ring.since(since), ring.latest_seq())
                };
                if !samples.is_empty() || Instant::now() >= deadline {
                    break Json::obj([
                        ("ok", Json::Bool(true)),
                        ("latest", Json::from(latest)),
                        (
                            "samples",
                            Json::Arr(samples.iter().map(WatchSample::to_json).collect()),
                        ),
                    ]);
                }
                if fe.stopping.load(Ordering::Acquire) {
                    break error_json("service shut down");
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        Some("timeline") => match request.get("id").and_then(Json::as_u64) {
            None => error_json("timeline requires an id"),
            Some(id) => {
                // Like `metrics`: park until the daemon loop broadcasts
                // the Trace collective and answers with the merged
                // per-job timeline.
                let (tx, rx) = mpsc::channel();
                fe.trace_waiters
                    .lock()
                    .expect("trace waiters poisoned")
                    .push((id, tx));
                match rx.recv_timeout(Duration::from_secs(30)) {
                    Ok(response) => response,
                    Err(_) => error_json("trace gather timed out (service draining?)"),
                }
            }
        },
        Some("alerts") => {
            // PE-0-local like `health`: the SLO engine's standing and
            // its retained transition ring (`docs/PROTOCOL.md` §2.10).
            let slo = fe.slo.lock().expect("slo poisoned");
            Json::obj([
                ("ok", Json::Bool(true)),
                ("active", Json::from(slo.active_count())),
                (
                    "slos",
                    Json::Arr(
                        slo.statuses()
                            .iter()
                            .map(crate::slo::SloStatus::to_json)
                            .collect(),
                    ),
                ),
                (
                    "recent",
                    Json::Arr(slo.recent().map(AlertEvent::to_json).collect()),
                ),
            ])
        }
        Some("history") => match &fe.history {
            // Stream the durable telemetry tail back to the client
            // (`docs/PROTOCOL.md` §2.9). Metrics snapshots return as
            // size summaries — the full series lives in the file for
            // `ccheck-report`.
            None => error_json("service has no history (started without --history)"),
            Some(history) => {
                let since_ms = request.get("since_ms").and_then(Json::as_u64).unwrap_or(0);
                let limit = request
                    .get("limit")
                    .and_then(Json::as_u64)
                    .unwrap_or(32)
                    .clamp(1, 512) as usize;
                let kind_filter = request
                    .get("kind")
                    .and_then(Json::as_str)
                    .map(str::to_string);
                // Flush the append batch so the scan sees every record,
                // then scan without the lock (appends past this point
                // land beyond the tail we return).
                let path = {
                    let mut history = history.lock().expect("history poisoned");
                    let _ = history.sync();
                    history.path().to_path_buf()
                };
                match HistoryReader::open(&path) {
                    Err(e) => error_json(format!("cannot read history: {e}")),
                    Ok(reader) => {
                        let mut total = 0u64;
                        let mut entries: VecDeque<Json> = VecDeque::new();
                        for record in reader {
                            let Ok(record) = record else { break };
                            total += 1;
                            if record.wall_ms < since_ms {
                                continue;
                            }
                            let (kind, data) = match &record.payload {
                                HistoryPayload::Metrics(snap) => (
                                    "metrics",
                                    Json::obj([
                                        ("counters", Json::from(snap.counters.len() as u64)),
                                        ("gauges", Json::from(snap.gauges.len() as u64)),
                                        ("histograms", Json::from(snap.histograms.len() as u64)),
                                    ]),
                                ),
                                HistoryPayload::Sample(bytes) => {
                                    match std::str::from_utf8(bytes)
                                        .ok()
                                        .and_then(|t| json::parse(t).ok())
                                    {
                                        Some(v) => ("sample", v),
                                        None => continue,
                                    }
                                }
                                HistoryPayload::Alert(bytes) => {
                                    match std::str::from_utf8(bytes)
                                        .ok()
                                        .and_then(|t| json::parse(t).ok())
                                    {
                                        Some(v) => ("alert", v),
                                        None => continue,
                                    }
                                }
                            };
                            if kind_filter.as_deref().is_some_and(|f| f != kind) {
                                continue;
                            }
                            entries.push_back(Json::obj([
                                ("data", data),
                                ("kind", Json::from(kind)),
                                ("res", Json::from(record.res.name())),
                                ("wall_ms", Json::from(record.wall_ms)),
                            ]));
                            if entries.len() > limit {
                                entries.pop_front();
                            }
                        }
                        Json::obj([
                            ("ok", Json::Bool(true)),
                            ("total", Json::from(total)),
                            ("entries", Json::Arr(entries.into_iter().collect())),
                        ])
                    }
                }
            }
        },
        Some("shutdown") => {
            fe.shutdown_requested.store(true, Ordering::Release);
            Json::obj([("ok", Json::Bool(true)), ("status", Json::from("draining"))])
        }
        other => error_json(format!(
            "unknown cmd {other:?} (submit|poll|wait|chain|metrics|health|watch|timeline|\
             history|alerts|shutdown)"
        )),
    }
}

/// Convenience for tests, benchmarks, and the `--transport local` mode
/// of `ccheck-serve`: run a whole `p`-PE service world in this process
/// (one thread per PE) on the chosen backend, returning the per-rank
/// summaries. Blocks until a client drives the service to shutdown.
/// (Reuses the owned-communicator harness from `ccheck_net::testing`,
/// which is exactly this spawn/join scaffold.)
pub fn run_service_world(backend: Backend, p: usize, cfg: &ServiceConfig) -> Vec<ServiceSummary> {
    ccheck_net::testing::run_owned_with_stats_on(backend, p, |comm| run_service(comm, cfg)).0
}

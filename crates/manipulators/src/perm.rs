//! Manipulators for the permutation/sort checker (Table 6 of the paper).
//!
//! Applied to a plain element sequence *before sorting* "in order to test
//! the permutation checker and not the trivial sortedness check" (§7.2).
//! `apply` returns whether the multiset of elements actually changed.

use crate::{bounded, splitmix64};

/// The manipulators of Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PermManipulator {
    /// Flip a random bit in a random element.
    Bitflip,
    /// Increment some element's value.
    Increment,
    /// Set some element to a random value.
    Randomize,
    /// Reset some element to the default value (0).
    Reset,
    /// Set some element equal to a different one.
    SetEqual,
}

impl PermManipulator {
    /// The five manipulators evaluated in Fig. 5.
    pub fn all() -> Vec<PermManipulator> {
        vec![
            PermManipulator::Bitflip,
            PermManipulator::Increment,
            PermManipulator::Randomize,
            PermManipulator::Reset,
            PermManipulator::SetEqual,
        ]
    }

    /// The paper's name for this manipulator.
    pub fn label(&self) -> &'static str {
        match self {
            PermManipulator::Bitflip => "Bitflip",
            PermManipulator::Increment => "Increment",
            PermManipulator::Randomize => "Randomize",
            PermManipulator::Reset => "Reset",
            PermManipulator::SetEqual => "SetEqual",
        }
    }

    /// Apply to `data`, deterministically under `seed`. Returns whether
    /// the multiset changed (e.g. `Reset` on an element that is already
    /// 0 is a no-op and reports `false`).
    pub fn apply(&self, data: &mut [u64], seed: u64) -> bool {
        if data.is_empty() {
            return false;
        }
        let n = data.len() as u64;
        let idx = bounded(seed, 1, n) as usize;
        match self {
            PermManipulator::Bitflip => {
                let bit = bounded(seed, 2, 64);
                data[idx] ^= 1u64 << bit;
                true
            }
            PermManipulator::Increment => {
                data[idx] = data[idx].wrapping_add(1);
                true
            }
            PermManipulator::Randomize => {
                let new = splitmix64(seed ^ 0x5241_4E44);
                let changed = data[idx] != new;
                data[idx] = new;
                changed
            }
            PermManipulator::Reset => {
                let changed = data[idx] != 0;
                data[idx] = 0;
                changed
            }
            PermManipulator::SetEqual => {
                let mut other = bounded(seed, 3, n) as usize;
                if other == idx {
                    other = (other + 1) % n as usize;
                }
                if other == idx {
                    return false; // n == 1
                }
                let changed = data[idx] != data[other];
                data[idx] = data[other];
                changed
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Vec<u64> {
        (0..500u64)
            .map(|i| i.wrapping_mul(0x9E3779B9) % 100_000_000)
            .collect()
    }

    fn multiset(data: &[u64]) -> Vec<u64> {
        let mut v = data.to_vec();
        v.sort_unstable();
        v
    }

    #[test]
    fn deterministic_under_seed() {
        for manip in PermManipulator::all() {
            let mut a = dataset();
            let mut b = dataset();
            assert_eq!(manip.apply(&mut a, 42), manip.apply(&mut b, 42));
            assert_eq!(a, b, "{manip:?}");
        }
    }

    #[test]
    fn change_flag_matches_multiset_change() {
        let clean = multiset(&dataset());
        for manip in PermManipulator::all() {
            for seed in 0..200 {
                let mut data = dataset();
                let changed = manip.apply(&mut data, seed);
                let now = multiset(&data);
                if changed {
                    assert_ne!(now, clean, "{manip:?} seed={seed}");
                } else {
                    assert_eq!(now, clean, "{manip:?} seed={seed}");
                }
            }
        }
    }

    #[test]
    fn exactly_one_element_modified() {
        for manip in PermManipulator::all() {
            let orig = dataset();
            let mut data = dataset();
            manip.apply(&mut data, 9);
            let diffs = (0..data.len()).filter(|&i| data[i] != orig[i]).count();
            assert!(diffs <= 1, "{manip:?} changed {diffs} elements");
        }
    }

    #[test]
    fn increment_is_off_by_one() {
        let orig = dataset();
        let mut data = dataset();
        PermManipulator::Increment.apply(&mut data, 5);
        let i = (0..data.len()).find(|&i| data[i] != orig[i]).unwrap();
        assert_eq!(data[i], orig[i].wrapping_add(1));
    }

    #[test]
    fn set_equal_duplicates_existing_value() {
        let orig = dataset();
        let mut data = dataset();
        if PermManipulator::SetEqual.apply(&mut data, 17) {
            let i = (0..data.len()).find(|&i| data[i] != orig[i]).unwrap();
            assert!(orig.contains(&data[i]));
        }
    }

    #[test]
    fn reset_on_zero_is_noop() {
        let mut data = vec![0u64; 8];
        assert!(!PermManipulator::Reset.apply(&mut data, 3));
    }

    #[test]
    fn empty_data_is_noop() {
        for manip in PermManipulator::all() {
            let mut data: Vec<u64> = Vec::new();
            assert!(!manip.apply(&mut data, 1), "{manip:?}");
        }
    }

    #[test]
    fn labels_match_paper() {
        let labels: Vec<&str> = PermManipulator::all().iter().map(|m| m.label()).collect();
        assert_eq!(
            labels,
            vec!["Bitflip", "Increment", "Randomize", "Reset", "SetEqual"]
        );
    }
}

//! Manipulators for sort and merge *outputs*.
//!
//! The perm-family manipulators ([`crate::PermManipulator`]) damage the
//! sequence *before* sorting, to exercise the permutation fingerprint in
//! isolation. These manipulators instead damage the asserted **sorted
//! output** — the fault model of a buggy sort/merge implementation or a
//! corrupted exchange. A sorted-output checker has two independent
//! lines of defense (Theorem 7 / Corollary 13): the local+boundary
//! sortedness test and the permutation fingerprint; each variant here
//! targets one of them.
//!
//! `apply` returns whether the output is no longer the sorted
//! permutation of the input, i.e. whether the *order* or the *multiset*
//! actually changed.

use crate::{bounded, splitmix64};

/// Faults against a sorted output sequence (applies equally to merge
/// outputs, which share the checker).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortManipulator {
    /// Swap two adjacent elements — multiset intact, order broken
    /// (caught by the sortedness test, invisible to the fingerprint).
    SwapAdjacent,
    /// Overwrite an element with its successor's value — sortedness
    /// intact, multiset broken (caught *only* by the permutation
    /// fingerprint; the trivial sortedness check accepts it).
    DupNeighbor,
    /// Flip a random bit of a random element — may break either
    /// property, the generic soft-error model.
    Bitflip,
    /// Overwrite a random element with a random value.
    Randomize,
}

impl SortManipulator {
    /// All sorted-output manipulators.
    pub fn all() -> Vec<SortManipulator> {
        vec![
            SortManipulator::SwapAdjacent,
            SortManipulator::DupNeighbor,
            SortManipulator::Bitflip,
            SortManipulator::Randomize,
        ]
    }

    /// Display name.
    pub fn label(&self) -> &'static str {
        match self {
            SortManipulator::SwapAdjacent => "SwapAdjacent",
            SortManipulator::DupNeighbor => "DupNeighbor",
            SortManipulator::Bitflip => "Bitflip",
            SortManipulator::Randomize => "Randomize",
        }
    }

    /// Apply to `data` (a locally sorted shard), deterministically under
    /// `seed`. Returns whether order or multiset actually changed.
    pub fn apply(&self, data: &mut [u64], seed: u64) -> bool {
        if data.is_empty() {
            return false;
        }
        let n = data.len() as u64;
        match self {
            SortManipulator::SwapAdjacent => {
                if data.len() < 2 {
                    return false;
                }
                let idx = bounded(seed, 1, n - 1) as usize;
                let changed = data[idx] != data[idx + 1];
                data.swap(idx, idx + 1);
                changed
            }
            SortManipulator::DupNeighbor => {
                if data.len() < 2 {
                    return false;
                }
                let idx = bounded(seed, 1, n - 1) as usize;
                let changed = data[idx] != data[idx + 1];
                data[idx] = data[idx + 1];
                changed
            }
            SortManipulator::Bitflip => {
                let idx = bounded(seed, 1, n) as usize;
                let bit = bounded(seed, 2, 64);
                data[idx] ^= 1u64 << bit;
                true
            }
            SortManipulator::Randomize => {
                let idx = bounded(seed, 1, n) as usize;
                let new = splitmix64(seed ^ 0x534F_5254);
                let changed = data[idx] != new;
                data[idx] = new;
                changed
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_dataset() -> Vec<u64> {
        let mut v: Vec<u64> = (0..400u64)
            .map(|i| i.wrapping_mul(0x9E3779B9) % 100_000)
            .collect();
        v.sort_unstable();
        v
    }

    fn multiset(data: &[u64]) -> Vec<u64> {
        let mut v = data.to_vec();
        v.sort_unstable();
        v
    }

    #[test]
    fn deterministic_under_seed() {
        for manip in SortManipulator::all() {
            let mut a = sorted_dataset();
            let mut b = sorted_dataset();
            assert_eq!(manip.apply(&mut a, 23), manip.apply(&mut b, 23));
            assert_eq!(a, b, "{manip:?}");
        }
    }

    #[test]
    fn change_flag_matches_semantic_change() {
        let clean = sorted_dataset();
        for manip in SortManipulator::all() {
            for seed in 0..200 {
                let mut data = sorted_dataset();
                let changed = manip.apply(&mut data, seed);
                // Semantic change = no longer the sorted permutation of
                // the input = differs from the (unique) sorted sequence.
                assert_eq!(data != clean, changed, "{manip:?} seed={seed}");
            }
        }
    }

    #[test]
    fn swap_adjacent_keeps_multiset_breaks_order() {
        let clean = sorted_dataset();
        let mut data = sorted_dataset();
        // Find a seed whose swap touches two distinct values.
        let mut seed = 0;
        while !SortManipulator::SwapAdjacent.apply(&mut data, seed) {
            data = sorted_dataset();
            seed += 1;
        }
        assert_eq!(multiset(&data), clean);
        assert!(!data.windows(2).all(|w| w[0] <= w[1]), "order must break");
    }

    #[test]
    fn dup_neighbor_keeps_order_breaks_multiset() {
        let clean = sorted_dataset();
        let mut data = sorted_dataset();
        let mut seed = 0;
        while !SortManipulator::DupNeighbor.apply(&mut data, seed) {
            data = sorted_dataset();
            seed += 1;
        }
        assert!(data.windows(2).all(|w| w[0] <= w[1]), "must stay sorted");
        assert_ne!(multiset(&data), clean, "multiset must change");
    }

    #[test]
    fn tiny_and_empty_inputs_are_safe() {
        for manip in SortManipulator::all() {
            let mut empty: Vec<u64> = Vec::new();
            assert!(!manip.apply(&mut empty, 1), "{manip:?} on empty");
            let mut one = vec![7u64];
            // Single-element shards: the pairwise variants are no-ops.
            let changed = manip.apply(&mut one, 1);
            match manip {
                SortManipulator::SwapAdjacent | SortManipulator::DupNeighbor => {
                    assert!(!changed, "{manip:?} on singleton")
                }
                _ => assert!(changed, "{manip:?} on singleton"),
            }
        }
    }

    #[test]
    fn labels_are_stable() {
        let labels: Vec<&str> = SortManipulator::all().iter().map(|m| m.label()).collect();
        assert_eq!(
            labels,
            vec!["SwapAdjacent", "DupNeighbor", "Bitflip", "Randomize"]
        );
    }
}

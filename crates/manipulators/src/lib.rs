//! # ccheck-manip — deterministic fault injectors ("manipulators")
//!
//! §7 of the paper: "To test the efficacy of our checkers, we implemented
//! manipulators that purposefully interfere with the computation and
//! deliberately introduce faults. \[…\] our manipulators focus on
//! \[subtle\] changes in the data."
//!
//! Two families exactly as in the paper, plus two more covering the
//! remaining checked operations (used by the `ccheck-service`
//! fault-injection tests):
//!
//! * [`sum`] — Table 4, applied to (key, value) pairs of an aggregation:
//!   `Bitflip`, `RandKey`, `SwitchValues`, `IncKey`, `IncDec(n)`,
//! * [`perm`] — Table 6, applied to plain element sequences before
//!   sorting: `Bitflip`, `Increment`, `Randomize`, `Reset`, `SetEqual`,
//! * [`sort`] — applied to sorted (or merged) *outputs*: `SwapAdjacent`,
//!   `DupNeighbor`, `Bitflip`, `Randomize` — each targeting one of the
//!   sort checker's two lines of defense (sortedness vs. fingerprint),
//! * [`zip`] — applied to zipped outputs: `Bitflip`, `SwapComponents`,
//!   `SwapPairs`, `Randomize` — order- and lane-damage the Zip
//!   checker's position-sensitive fingerprint must catch.
//!
//! All manipulators are deterministic under a seed so experiments are
//! reproducible, and they report whether they actually changed the data
//! (a manipulation can be a no-op, e.g. a bitflip on a key that leaves
//! the aggregate equivalent — experiments must not count those trials).

pub mod perm;
pub mod sort;
pub mod sum;
pub mod zip;

pub use perm::PermManipulator;
pub use sort::SortManipulator;
pub use sum::SumManipulator;
pub use zip::ZipManipulator;

/// Splitmix64 — the seed-expansion mix used by all manipulators.
#[inline]
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draw a value in `0..bound` from the seed stream (bound > 0).
#[inline]
pub(crate) fn bounded(seed: u64, stream: u64, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    splitmix64(seed ^ stream.wrapping_mul(0xA076_1D64_78BD_642F)) % bound
}

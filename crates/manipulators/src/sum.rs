//! Manipulators for the sum-aggregation checker (Table 4 of the paper).
//!
//! Each manipulator mutates a (key, value)-pair dataset in place. They
//! are applied to the checker's view of the data (input or asserted
//! output), emulating a faulty aggregation. `apply` returns `true` iff
//! the dataset's *aggregate semantics* actually changed — trials where
//! the manipulation is a semantic no-op must be excluded from
//! detection-rate statistics.

use crate::{bounded, splitmix64};

/// The manipulators of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SumManipulator {
    /// Flip a random bit in a random element (key or value word).
    Bitflip,
    /// Randomize the key of a random element.
    RandKey,
    /// Switch the values of two random elements.
    SwitchValues,
    /// Increment the key of a random element.
    IncKey,
    /// Act on `2n` elements with distinct keys: increment the keys of
    /// `n` elements and decrement those of `n` others.
    IncDec(usize),
}

impl SumManipulator {
    /// The five manipulators evaluated in Fig. 3.
    pub fn all() -> Vec<SumManipulator> {
        vec![
            SumManipulator::Bitflip,
            SumManipulator::RandKey,
            SumManipulator::SwitchValues,
            SumManipulator::IncKey,
            SumManipulator::IncDec(1),
            SumManipulator::IncDec(2),
        ]
    }

    /// The paper's name for this manipulator.
    pub fn label(&self) -> String {
        match self {
            SumManipulator::Bitflip => "Bitflip".into(),
            SumManipulator::RandKey => "RandKey".into(),
            SumManipulator::SwitchValues => "SwitchValues".into(),
            SumManipulator::IncKey => "IncKey".into(),
            SumManipulator::IncDec(n) => format!("IncDec{n}"),
        }
    }

    /// Apply to `data`, deterministically under `seed`. Returns whether
    /// the manipulation actually changed the aggregation result — the
    /// exact per-key delta of the touched elements is computed, so a
    /// semantically invisible mutation (e.g. `IncDec` shifting two
    /// equal-valued elements onto each other's keys) reports `false`.
    pub fn apply(&self, data: &mut [(u64, u64)], seed: u64) -> bool {
        if data.is_empty() {
            return false;
        }
        let n = data.len() as u64;
        // Record the touched indices and their prior contents; compute
        // the exact aggregate delta afterwards.
        let mut touched: Vec<(usize, (u64, u64))> = Vec::new();
        let touch = |data: &[(u64, u64)], t: &mut Vec<(usize, (u64, u64))>, idx: usize| {
            t.push((idx, data[idx]));
        };
        match self {
            SumManipulator::Bitflip => {
                let idx = bounded(seed, 1, n) as usize;
                let bit = bounded(seed, 2, 128);
                touch(data, &mut touched, idx);
                if bit < 64 {
                    data[idx].0 ^= 1u64 << bit;
                } else {
                    data[idx].1 ^= 1u64 << (bit - 64);
                }
            }
            SumManipulator::RandKey => {
                let idx = bounded(seed, 1, n) as usize;
                touch(data, &mut touched, idx);
                data[idx].0 = splitmix64(seed ^ 0x4B_4559);
            }
            SumManipulator::SwitchValues => {
                let a = bounded(seed, 1, n) as usize;
                let mut b = bounded(seed, 2, n) as usize;
                if a == b {
                    b = (b + 1) % n as usize;
                }
                if a == b {
                    return false; // n == 1: nothing to switch
                }
                touch(data, &mut touched, a);
                touch(data, &mut touched, b);
                let (va, vb) = (data[a].1, data[b].1);
                data[a].1 = vb;
                data[b].1 = va;
            }
            SumManipulator::IncKey => {
                let idx = bounded(seed, 1, n) as usize;
                touch(data, &mut touched, idx);
                data[idx].0 = data[idx].0.wrapping_add(1);
            }
            SumManipulator::IncDec(count) => {
                // Pick 2·count elements with pairwise distinct keys;
                // increment the keys of the first count, decrement the
                // rest. Scan from a random start to find distinct keys.
                let needed = 2 * count;
                let mut chosen: Vec<usize> = Vec::with_capacity(needed);
                let mut seen = std::collections::HashSet::new();
                let start = bounded(seed, 1, n) as usize;
                for off in 0..data.len() {
                    let idx = (start + off) % data.len();
                    if seen.insert(data[idx].0) {
                        chosen.push(idx);
                        if chosen.len() == needed {
                            break;
                        }
                    }
                }
                if chosen.len() < needed {
                    return false; // not enough distinct keys
                }
                for (j, &idx) in chosen.iter().enumerate() {
                    touch(data, &mut touched, idx);
                    if j < *count {
                        data[idx].0 = data[idx].0.wrapping_add(1);
                    } else {
                        data[idx].0 = data[idx].0.wrapping_sub(1);
                    }
                }
            }
        }
        // Exact semantic-change test: per-key wrapping delta over the
        // touched elements (removal of the old pair, insertion of the new).
        let mut delta: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for &(idx, (old_k, old_v)) in &touched {
            let e = delta.entry(old_k).or_insert(0);
            *e = e.wrapping_sub(old_v);
            let (new_k, new_v) = data[idx];
            let e = delta.entry(new_k).or_insert(0);
            *e = e.wrapping_add(new_v);
        }
        delta.values().any(|&d| d != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn dataset() -> Vec<(u64, u64)> {
        (0..200u64).map(|i| (i % 23 + 100, i + 1)).collect()
    }

    fn aggregate(data: &[(u64, u64)]) -> HashMap<u64, u64> {
        let mut m = HashMap::new();
        for &(k, v) in data {
            *m.entry(k).or_insert(0u64) = m.get(&k).copied().unwrap_or(0).wrapping_add(v);
        }
        m
    }

    #[test]
    fn deterministic_under_seed() {
        for manip in SumManipulator::all() {
            let mut a = dataset();
            let mut b = dataset();
            let ra = manip.apply(&mut a, 12345);
            let rb = manip.apply(&mut b, 12345);
            assert_eq!(a, b, "{manip:?}");
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn different_seeds_hit_different_places() {
        for manip in SumManipulator::all() {
            let mut a = dataset();
            let mut b = dataset();
            manip.apply(&mut a, 1);
            manip.apply(&mut b, 2);
            assert_ne!(a, b, "{manip:?} ignored the seed");
        }
    }

    #[test]
    fn reported_change_matches_aggregate_change() {
        // Whenever apply() returns true, the aggregate must differ from
        // the clean aggregate; when false, it must be identical.
        let clean_agg = aggregate(&dataset());
        for manip in SumManipulator::all() {
            for seed in 0..100 {
                let mut data = dataset();
                let changed = manip.apply(&mut data, seed);
                let now = aggregate(&data);
                if changed {
                    assert_ne!(now, clean_agg, "{manip:?} seed={seed} claimed change");
                } else {
                    assert_eq!(now, clean_agg, "{manip:?} seed={seed} claimed no-op");
                }
            }
        }
    }

    #[test]
    fn bitflip_changes_exactly_one_word_bit() {
        let mut data = dataset();
        let orig = dataset();
        SumManipulator::Bitflip.apply(&mut data, 7);
        let diffs: Vec<usize> = (0..data.len()).filter(|&i| data[i] != orig[i]).collect();
        assert_eq!(diffs.len(), 1);
        let i = diffs[0];
        let key_diff = (data[i].0 ^ orig[i].0).count_ones();
        let val_diff = (data[i].1 ^ orig[i].1).count_ones();
        assert_eq!(key_diff + val_diff, 1);
    }

    #[test]
    fn switch_values_preserves_value_multiset() {
        let mut data = dataset();
        let mut before: Vec<u64> = data.iter().map(|&(_, v)| v).collect();
        SumManipulator::SwitchValues.apply(&mut data, 3);
        let mut after: Vec<u64> = data.iter().map(|&(_, v)| v).collect();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
    }

    #[test]
    fn incdec_touches_2n_distinct_keys() {
        for n in [1usize, 2, 3] {
            let orig = dataset();
            let mut data = dataset();
            assert!(SumManipulator::IncDec(n).apply(&mut data, 11));
            let touched: Vec<usize> = (0..data.len()).filter(|&i| data[i] != orig[i]).collect();
            assert_eq!(touched.len(), 2 * n, "n={n}");
            let incremented = touched
                .iter()
                .filter(|&&i| data[i].0 == orig[i].0.wrapping_add(1))
                .count();
            let decremented = touched
                .iter()
                .filter(|&&i| data[i].0 == orig[i].0.wrapping_sub(1))
                .count();
            assert_eq!((incremented, decremented), (n, n), "n={n}");
            // Original keys pairwise distinct.
            let keys: std::collections::HashSet<u64> = touched.iter().map(|&i| orig[i].0).collect();
            assert_eq!(keys.len(), 2 * n);
        }
    }

    #[test]
    fn incdec_gives_up_without_enough_keys() {
        let mut data = vec![(1u64, 5u64), (1, 6)]; // one distinct key
        assert!(!SumManipulator::IncDec(1).apply(&mut data, 1));
        assert_eq!(data, vec![(1, 5), (1, 6)]);
    }

    #[test]
    fn incdec_cancellation_reported_as_noop() {
        // Adjacent keys with equal values: incrementing key 10 and
        // decrementing key 11 swaps the two unit contributions — the
        // aggregate is unchanged and apply() must say so (the wordcount
        // workload of Fig. 3 has all-1 values, making this case real).
        let mut hit_noop = false;
        for seed in 0..200 {
            let mut data = vec![(10u64, 1u64), (11, 1)];
            let changed = SumManipulator::IncDec(1).apply(&mut data, seed);
            let mut agg: Vec<(u64, u64)> = data.clone();
            agg.sort_unstable();
            if agg == vec![(10, 1), (11, 1)] {
                assert!(!changed, "seed {seed}: no-op misreported as change");
                hit_noop = true;
            }
        }
        assert!(hit_noop, "expected at least one cancellation case");
    }

    #[test]
    fn empty_data_is_noop() {
        for manip in SumManipulator::all() {
            let mut data: Vec<(u64, u64)> = Vec::new();
            assert!(!manip.apply(&mut data, 1), "{manip:?}");
        }
    }

    #[test]
    fn labels_match_paper() {
        let labels: Vec<String> = SumManipulator::all().iter().map(|m| m.label()).collect();
        assert_eq!(
            labels,
            vec![
                "Bitflip",
                "RandKey",
                "SwitchValues",
                "IncKey",
                "IncDec1",
                "IncDec2"
            ]
        );
    }
}

//! Manipulators for the Zip checker (§6.4 of the paper).
//!
//! Applied to the asserted *zipped output* `⟨(aᵢ, bᵢ)⟩`: the Zip checker
//! fingerprints each component lane against its input sequence with a
//! position-sensitive hash, so the interesting faults are the ones a
//! plain multiset fingerprint would miss — swapped components, swapped
//! positions, and single-bit damage. `apply` returns whether either
//! lane's *sequence* actually changed (a manipulation can be a no-op,
//! e.g. swapping two equal pairs).

use crate::{bounded, splitmix64};

/// Faults against a zipped output sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZipManipulator {
    /// Flip a random bit in a random component of a random pair.
    Bitflip,
    /// Swap the two components of a random pair (`(a, b)` → `(b, a)`).
    SwapComponents,
    /// Swap two random pairs — order damage that preserves the pair
    /// multiset, invisible to any order-insensitive check.
    SwapPairs,
    /// Overwrite one component with a random value.
    Randomize,
}

impl ZipManipulator {
    /// All zip manipulators.
    pub fn all() -> Vec<ZipManipulator> {
        vec![
            ZipManipulator::Bitflip,
            ZipManipulator::SwapComponents,
            ZipManipulator::SwapPairs,
            ZipManipulator::Randomize,
        ]
    }

    /// Display name.
    pub fn label(&self) -> &'static str {
        match self {
            ZipManipulator::Bitflip => "Bitflip",
            ZipManipulator::SwapComponents => "SwapComponents",
            ZipManipulator::SwapPairs => "SwapPairs",
            ZipManipulator::Randomize => "Randomize",
        }
    }

    /// Apply to `data`, deterministically under `seed`. Returns whether
    /// the (position-sensitive) content of either lane changed.
    pub fn apply(&self, data: &mut [(u64, u64)], seed: u64) -> bool {
        if data.is_empty() {
            return false;
        }
        let n = data.len() as u64;
        let idx = bounded(seed, 1, n) as usize;
        match self {
            ZipManipulator::Bitflip => {
                let bit = bounded(seed, 2, 128);
                if bit < 64 {
                    data[idx].0 ^= 1u64 << bit;
                } else {
                    data[idx].1 ^= 1u64 << (bit - 64);
                }
                true
            }
            ZipManipulator::SwapComponents => {
                let (a, b) = data[idx];
                data[idx] = (b, a);
                a != b
            }
            ZipManipulator::SwapPairs => {
                let mut other = bounded(seed, 3, n) as usize;
                if other == idx {
                    other = (other + 1) % n as usize;
                }
                if other == idx {
                    return false; // n == 1
                }
                let changed = data[idx] != data[other];
                data.swap(idx, other);
                changed
            }
            ZipManipulator::Randomize => {
                let new = splitmix64(seed ^ 0x5A49_5052);
                let lane = bounded(seed, 4, 2);
                let slot = if lane == 0 {
                    &mut data[idx].0
                } else {
                    &mut data[idx].1
                };
                let changed = *slot != new;
                *slot = new;
                changed
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Vec<(u64, u64)> {
        (0..300u64)
            .map(|i| (i.wrapping_mul(0x9E3779B9) % 10_000, 1000 + i))
            .collect()
    }

    #[test]
    fn deterministic_under_seed() {
        for manip in ZipManipulator::all() {
            let mut a = dataset();
            let mut b = dataset();
            assert_eq!(manip.apply(&mut a, 17), manip.apply(&mut b, 17));
            assert_eq!(a, b, "{manip:?}");
        }
    }

    #[test]
    fn change_flag_matches_sequence_change() {
        let clean = dataset();
        for manip in ZipManipulator::all() {
            for seed in 0..200 {
                let mut data = dataset();
                let changed = manip.apply(&mut data, seed);
                assert_eq!(data != clean, changed, "{manip:?} seed={seed}");
            }
        }
    }

    #[test]
    fn swap_pairs_preserves_pair_multiset() {
        let mut data = dataset();
        let mut before = data.clone();
        ZipManipulator::SwapPairs.apply(&mut data, 5);
        let mut after = data.clone();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
    }

    #[test]
    fn swap_components_touches_one_pair() {
        let orig = dataset();
        let mut data = dataset();
        ZipManipulator::SwapComponents.apply(&mut data, 7);
        let diffs: Vec<usize> = (0..data.len()).filter(|&i| data[i] != orig[i]).collect();
        assert_eq!(diffs.len(), 1);
        let i = diffs[0];
        assert_eq!(data[i], (orig[i].1, orig[i].0));
    }

    #[test]
    fn swap_equal_pairs_is_noop() {
        let mut hit = false;
        for seed in 0..300 {
            let mut data = vec![(1u64, 2u64); 4];
            let changed = ZipManipulator::SwapPairs.apply(&mut data, seed);
            assert!(!changed, "seed {seed}: swapping equal pairs is a no-op");
            hit = true;
        }
        assert!(hit);
    }

    #[test]
    fn empty_data_is_noop() {
        for manip in ZipManipulator::all() {
            let mut data: Vec<(u64, u64)> = Vec::new();
            assert!(!manip.apply(&mut data, 1), "{manip:?}");
        }
    }

    #[test]
    fn labels_are_stable() {
        let labels: Vec<&str> = ZipManipulator::all().iter().map(|m| m.label()).collect();
        assert_eq!(
            labels,
            vec!["Bitflip", "SwapComponents", "SwapPairs", "Randomize"]
        );
    }
}

//! Median aggregation checking (§6.3: Algorithm 2, Theorem 10).
//!
//! An element `m` is the median of a set of **unique** values iff the
//! number of elements smaller than `m` equals the number larger (using
//! the mean-of-two-middles convention for even counts). The checker maps
//! every input element to `−1` (below its key's asserted median), `+1`
//! (above), or `0` (equal) and verifies with the **sum-aggregation
//! checker** that every key's total is zero — inheriting the
//! `O(T_check-sum)` bound of Theorem 1.
//!
//! For duplicated values, Theorem 10 requires tie-breaking information
//! as a certificate. [`MedianTieCert`] carries, per key, how many
//! elements *equal* to the median the tie-breaking scheme places below
//! and above the cut; the checker then verifies
//! `#below + eq_below = #above + eq_above` and
//! `#equal = eq_below + eq_above + eq_at` probabilistically. As in the
//! paper, the certificate pins down *which occurrence* of the median
//! value has the middle rank; the checker verifies the assertion is
//! consistent with that tie-breaking.

use ccheck_net::Comm;

use crate::config::SumCheckConfig;
use crate::integrity::replicated_consistent;
use crate::sum::SumChecker;

/// Tie-breaking certificate entry for one key (only needed when values
/// repeat; all-zeros for unique values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MedianTieCert {
    /// Elements equal to the median placed below the cut.
    pub eq_below: u64,
    /// Elements equal to the median placed above the cut.
    pub eq_above: u64,
    /// 1 if the median itself is an element at the cut (odd count), else 0.
    pub eq_at: u64,
}

/// Check a median aggregation with unique per-key values (Algorithm 2,
/// exactly as in the paper: elements below the asserted median map to
/// −1, above to +1, and the per-key totals must all be zero).
///
/// * `input` — this PE's share of (key, value) pairs.
/// * `asserted` — the full asserted medians `(key, median)`, sorted by
///   key, **replicated at every PE** (Theorem 10's requirement).
///
/// Probabilistic with failure ≤ `cfg.failure_bound()`; one-sided.
pub fn check_median_unique(
    comm: &mut Comm,
    input: &[(u64, u64)],
    asserted: &[(u64, f64)],
    cfg: SumCheckConfig,
    seed: u64,
) -> bool {
    check_median_impl(comm, input, asserted, None, cfg, seed)
}

/// Check a median aggregation with a tie-breaking certificate
/// (Theorem 10, non-unique values).
///
/// `certs[i]` belongs to `asserted[i]`. Both are replicated at all PEs.
pub fn check_median_with_cert(
    comm: &mut Comm,
    input: &[(u64, u64)],
    asserted: &[(u64, f64)],
    certs: &[MedianTieCert],
    cfg: SumCheckConfig,
    seed: u64,
) -> bool {
    check_median_impl(comm, input, asserted, Some(certs), cfg, seed)
}

fn check_median_impl(
    comm: &mut Comm,
    input: &[(u64, u64)],
    asserted: &[(u64, f64)],
    certs: Option<&[MedianTieCert]>,
    cfg: SumCheckConfig,
    seed: u64,
) -> bool {
    /// Wire form of the replicated (medians, certificates) payload.
    type Replicated = (Vec<(u64, u64)>, Vec<(u64, u64, u64)>);
    // Replicated data must be consistent across PEs (§2).
    let encodable: Replicated = (
        asserted.iter().map(|&(k, m)| (k, m.to_bits())).collect(),
        certs
            .map(|cs| {
                cs.iter()
                    .map(|c| (c.eq_below, c.eq_above, c.eq_at))
                    .collect()
            })
            .unwrap_or_default(),
    );
    let replicas_ok = replicated_consistent(comm, &encodable, seed ^ 0x6D65_6469_616E);

    let mut local_ok = certs
        .is_none_or(|cs| asserted.len() == cs.len() && cs.iter().all(|c| c.eq_at <= 1))
        && asserted.windows(2).all(|w| w[0].0 < w[1].0);

    // Map elements to the two signed streams of Algorithm 2 (extended
    // with the equality stream for tie-breaking).
    let mut balance: Vec<(u64, i64)> = Vec::with_capacity(input.len());
    let mut equals: Vec<(u64, i64)> = Vec::new();
    if local_ok {
        for &(k, v) in input {
            match asserted.binary_search_by_key(&k, |&(ak, _)| ak) {
                Err(_) => {
                    // A key with input elements but no asserted median.
                    local_ok = false;
                    break;
                }
                Ok(i) => {
                    let m = asserted[i].1;
                    let vf = v as f64;
                    if vf < m {
                        balance.push((k, -1));
                    } else if vf > m {
                        balance.push((k, 1));
                    } else {
                        equals.push((k, 1));
                    }
                }
            }
        }
    }
    let local_ok = comm.all_agree(local_ok);
    if !local_ok {
        return false;
    }

    match certs {
        None => {
            // Algorithm 2 verbatim: per-key ±1 balance must be zero.
            // Elements equal to the median (the middle element itself for
            // odd counts) contribute nothing.
            let balance_checker = SumChecker::new(cfg, seed ^ 0xBA1A);
            let ok_balance = balance_checker.check_distributed_signed(comm, &balance, &[]);
            replicas_ok && ok_balance
        }
        Some(cs) => {
            // Target sums derived from the certificate (identical on every
            // PE; fed to the checker only from PE 0 so the replicas are not
            // counted p times).
            type SignedPairs = Vec<(u64, i64)>;
            let (balance_target, equals_target): (SignedPairs, SignedPairs) = if comm.rank() == 0 {
                (
                    asserted
                        .iter()
                        .zip(cs)
                        .map(|(&(k, _), c)| (k, c.eq_below as i64 - c.eq_above as i64))
                        .collect(),
                    asserted
                        .iter()
                        .zip(cs)
                        .map(|(&(k, _), c)| (k, (c.eq_below + c.eq_above + c.eq_at) as i64))
                        .collect(),
                )
            } else {
                (Vec::new(), Vec::new())
            };

            // Two sum checks with independent seeds: the per-key balance
            // (#above − #below = eq_below − eq_above ⟺
            //  #below + eq_below = #above + eq_above, i.e. the two sides
            // of the cut balance once the certificate places the ties)
            // and the equality count (#equal = eq_below + eq_above + eq_at).
            let balance_checker = SumChecker::new(cfg, seed ^ 0xBA1A);
            let ok_balance =
                balance_checker.check_distributed_signed(comm, &balance, &balance_target);
            let equals_checker = SumChecker::new(cfg, seed ^ 0xE9A1);
            let ok_equals = equals_checker.check_distributed_signed(comm, &equals, &equals_target);
            replicas_ok && ok_balance && ok_equals
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccheck_hashing::HasherKind;
    use ccheck_net::run;
    use std::collections::HashMap;

    fn cfg() -> SumCheckConfig {
        SumCheckConfig::new(6, 16, 9, HasherKind::Tab64)
    }

    /// Sequential median per the paper's definition.
    fn true_medians(all: &[(u64, u64)]) -> Vec<(u64, f64)> {
        let mut by_key: HashMap<u64, Vec<u64>> = HashMap::new();
        for &(k, v) in all {
            by_key.entry(k).or_default().push(v);
        }
        let mut out: Vec<(u64, f64)> = by_key
            .into_iter()
            .map(|(k, mut vs)| {
                vs.sort_unstable();
                let n = vs.len();
                let m = if n % 2 == 1 {
                    vs[n / 2] as f64
                } else {
                    (vs[n / 2 - 1] as f64 + vs[n / 2] as f64) / 2.0
                };
                (k, m)
            })
            .collect();
        out.sort_by_key(|&(k, _)| k);
        out
    }

    /// Unique-valued per-PE inputs: global values are a permutation.
    fn unique_inputs(p: usize) -> Vec<Vec<(u64, u64)>> {
        (0..p as u64)
            .map(|rank| {
                (0..60)
                    .map(|i| {
                        let g = rank * 60 + i;
                        (g % 5, g.wrapping_mul(0x9E3779B9) % 100_000) // effectively unique
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn accepts_correct_medians_unique() {
        for p in [1, 2, 4] {
            let inputs = unique_inputs(p);
            let all: Vec<(u64, u64)> = inputs.iter().flatten().copied().collect();
            let medians = true_medians(&all);
            let verdicts = run(p, |comm| {
                check_median_unique(comm, &inputs[comm.rank()], &medians, cfg(), 17)
            });
            assert!(verdicts.iter().all(|&v| v), "p={p}");
        }
    }

    #[test]
    fn rejects_shifted_median() {
        let inputs = unique_inputs(3);
        let all: Vec<(u64, u64)> = inputs.iter().flatten().copied().collect();
        let mut medians = true_medians(&all);
        // A large shift flips the sign of many elements — must be caught.
        medians[2].1 += 1e8;
        let mut rejections = 0;
        for seed in 0..30 {
            let verdicts = run(3, |comm| {
                check_median_unique(comm, &inputs[comm.rank()], &medians, cfg(), seed)
            });
            if verdicts.iter().all(|&v| !v) {
                rejections += 1;
            }
        }
        assert!(rejections >= 29, "only {rejections}/30 rejected");
    }

    #[test]
    fn even_count_gap_values_accepted_by_design() {
        // Algorithm 2 verifies the *balance* property: for an even count
        // any value strictly between the two middle elements balances
        // #below and #above, so the checker accepts it — the checker
        // certifies a valid split point, exactly as in the paper.
        let verdicts = run(1, |comm| {
            let input: Vec<(u64, u64)> = vec![(1, 10), (1, 20), (1, 30), (1, 40)];
            // True median is 25.0; 22.0 lies in the middle gap.
            check_median_unique(comm, &input, &[(1, 22.0)], cfg(), 4)
        });
        assert!(verdicts.iter().all(|&v| v));
    }

    #[test]
    fn rejects_median_of_wrong_element() {
        // Assert the value *next to* the median — balance breaks by 2.
        let inputs = unique_inputs(2);
        let all: Vec<(u64, u64)> = inputs.iter().flatten().copied().collect();
        let mut by_key: HashMap<u64, Vec<u64>> = HashMap::new();
        for &(k, v) in &all {
            by_key.entry(k).or_default().push(v);
        }
        let mut medians: Vec<(u64, f64)> = by_key
            .into_iter()
            .map(|(k, mut vs)| {
                vs.sort_unstable();
                // Deliberately pick rank n/2 + 1 instead of the median.
                (k, vs[(vs.len() / 2 + 1).min(vs.len() - 1)] as f64)
            })
            .collect();
        medians.sort_by_key(|&(k, _)| k);
        let verdicts = run(2, |comm| {
            check_median_unique(comm, &inputs[comm.rank()], &medians, cfg(), 3)
        });
        assert!(verdicts.iter().all(|&v| !v));
    }

    #[test]
    fn rejects_forgotten_key() {
        let inputs = unique_inputs(2);
        let all: Vec<(u64, u64)> = inputs.iter().flatten().copied().collect();
        let mut medians = true_medians(&all);
        medians.remove(1);
        let verdicts = run(2, |comm| {
            check_median_unique(comm, &inputs[comm.rank()], &medians, cfg(), 3)
        });
        assert!(verdicts.iter().all(|&v| !v));
    }

    #[test]
    fn duplicates_with_certificate() {
        // Key 1: values [3, 5, 5, 5, 9] → median 5 (odd, the middle 5).
        // Tie-breaking: one 5 below the cut, one above, one at the cut.
        let input: Vec<(u64, u64)> = vec![(1, 3), (1, 5), (1, 5), (1, 5), (1, 9)];
        let asserted = vec![(1u64, 5.0f64)];
        let certs = vec![MedianTieCert {
            eq_below: 1,
            eq_above: 1,
            eq_at: 1,
        }];
        let verdicts = run(2, |comm| {
            let local: Vec<(u64, u64)> =
                input.iter().copied().skip(comm.rank()).step_by(2).collect();
            check_median_with_cert(comm, &local, &asserted, &certs, cfg(), 5)
        });
        assert!(verdicts.iter().all(|&v| v));
    }

    #[test]
    fn duplicates_wrong_median_rejected_despite_certificate() {
        // Values [3, 5, 5, 5, 9]: asserting median 3 cannot be saved by
        // any consistent certificate claiming 3 equals at the cut.
        let input: Vec<(u64, u64)> = vec![(1, 3), (1, 5), (1, 5), (1, 5), (1, 9)];
        let asserted = vec![(1u64, 3.0f64)];
        // Cheating cert: claims the one "3" sits at the cut with two
        // below — but only one element equals 3, so the equality-count
        // stream disagrees.
        let certs = vec![MedianTieCert {
            eq_below: 2,
            eq_above: 0,
            eq_at: 1,
        }];
        let verdicts = run(2, |comm| {
            let local: Vec<(u64, u64)> =
                input.iter().copied().skip(comm.rank()).step_by(2).collect();
            check_median_with_cert(comm, &local, &asserted, &certs, cfg(), 5)
        });
        assert!(verdicts.iter().all(|&v| !v));
    }

    #[test]
    fn rejects_inconsistent_replicas() {
        let inputs = unique_inputs(2);
        let all: Vec<(u64, u64)> = inputs.iter().flatten().copied().collect();
        let medians = true_medians(&all);
        let verdicts = run(2, |comm| {
            let mut mine = medians.clone();
            if comm.rank() == 1 {
                mine[0].1 += 1.0;
            }
            check_median_unique(comm, &inputs[comm.rank()], &mine, cfg(), 3)
        });
        assert!(verdicts.iter().all(|&v| !v));
    }

    #[test]
    fn even_count_mean_of_middles() {
        // Key 1: [10, 20, 30, 40] → median 25.0, no element equals it.
        let verdicts = run(2, |comm| {
            let local: Vec<(u64, u64)> = if comm.rank() == 0 {
                vec![(1, 10), (1, 30)]
            } else {
                vec![(1, 20), (1, 40)]
            };
            check_median_unique(comm, &local, &[(1, 25.0)], cfg(), 8)
        });
        assert!(verdicts.iter().all(|&v| v));
        // And 20.0 (an element, but rank 2 of 4) must be rejected.
        let verdicts = run(2, |comm| {
            let local: Vec<(u64, u64)> = if comm.rank() == 0 {
                vec![(1, 10), (1, 30)]
            } else {
                vec![(1, 20), (1, 40)]
            };
            check_median_unique(comm, &local, &[(1, 20.0)], cfg(), 8)
        });
        assert!(verdicts.iter().all(|&v| !v));
    }
}

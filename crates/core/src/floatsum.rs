//! Floating-point sum aggregation checking — the paper's future-work
//! question, answered for the practical case.
//!
//! "It would also be interesting to know whether the sum aggregation
//! checker can be adapted for other data types such as floating point
//! numbers without suffering from numerical instability issues such as
//! catastrophic cancellation." (§ Future Work)
//!
//! The obstruction is not the checker but the *operation*: f64 addition
//! is non-associative, so a distributed float sum is order-dependent and
//! "the correct result" is not even well-defined — no checker can have
//! one-sided error against an ambiguous ground truth. The practical
//! resolution implemented here: make the aggregation **exact** by
//! summing on a fixed-point grid (values scaled to integer "ticks"),
//! which restores associativity/commutativity and lets Theorem 1 apply
//! verbatim to the tick integers. Quantization error is bounded and
//! incurred once per input element (≤ 2⁻ᶠʳᵃᶜ⁻¹ each, no cancellation
//! amplification), which is exactly how production systems make money
//! amounts and metrics aggregation reproducible.

use ccheck_net::Comm;

use crate::config::SumCheckConfig;
use crate::sum::SumChecker;

/// Fixed-point codec: `frac_bits` fractional bits on a signed 64-bit
/// grid, giving a dynamic range of ±2^(63−frac).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedPoint {
    /// Fractional bits (grid resolution 2^−frac_bits).
    pub frac_bits: u32,
}

impl FixedPoint {
    /// Create a codec; `frac_bits ≤ 52` (beyond f64 mantissa precision
    /// the extra bits are meaningless).
    pub fn new(frac_bits: u32) -> Self {
        assert!(
            frac_bits <= 52,
            "more than 52 fractional bits is meaningless for f64"
        );
        Self { frac_bits }
    }

    /// Scale factor 2^frac_bits.
    pub fn scale(&self) -> f64 {
        (1u64 << self.frac_bits) as f64
    }

    /// Quantize a float to grid ticks (round-to-nearest). Returns `None`
    /// for NaN/∞ or values outside the representable range.
    pub fn encode(&self, x: f64) -> Option<i64> {
        if !x.is_finite() {
            return None;
        }
        let scaled = (x * self.scale()).round();
        if scaled >= -(2f64.powi(62)) && scaled <= 2f64.powi(62) {
            Some(scaled as i64)
        } else {
            None
        }
    }

    /// Ticks back to float.
    pub fn decode(&self, ticks: i64) -> f64 {
        ticks as f64 / self.scale()
    }

    /// Worst-case absolute quantization error per element.
    pub fn max_error_per_element(&self) -> f64 {
        0.5 / self.scale()
    }
}

/// Checker for fixed-point float sum aggregation.
///
/// The *operation under test* must aggregate on the same grid (sum the
/// encoded ticks — see [`aggregate_ticks`] for the reference), making
/// the computation exact and order-independent; the checker then has
/// genuine one-sided error exactly as in Theorem 1.
#[derive(Debug, Clone)]
pub struct FloatSumChecker {
    codec: FixedPoint,
    inner: SumChecker,
}

impl FloatSumChecker {
    /// Build from a sum-checker configuration, a codec, and the shared
    /// seed.
    pub fn new(cfg: SumCheckConfig, codec: FixedPoint, seed: u64) -> Self {
        Self {
            codec,
            inner: SumChecker::new(cfg, seed),
        }
    }

    /// The codec in use.
    pub fn codec(&self) -> FixedPoint {
        self.codec
    }

    fn encode_pairs(&self, pairs: &[(u64, f64)]) -> Option<Vec<(u64, i64)>> {
        pairs
            .iter()
            .map(|&(k, v)| self.codec.encode(v).map(|t| (k, t)))
            .collect()
    }

    /// Distributed check: `input` float pairs vs `asserted` per-key float
    /// sums (disjoint shards, as for [`SumChecker`]). Rejects outright if
    /// any value fails to encode (NaN/∞/overflow) or an asserted sum is
    /// not on the grid. Every PE returns the same verdict.
    pub fn check_distributed(
        &self,
        comm: &mut Comm,
        input: &[(u64, f64)],
        asserted: &[(u64, f64)],
    ) -> bool {
        let encoded = (self.encode_pairs(input), self.encode_pairs(asserted));
        let (encodable_in, encodable_out) = (encoded.0.is_some(), encoded.1.is_some());
        if !comm.all_agree(encodable_in && encodable_out) {
            return false;
        }
        let t_in = encoded.0.expect("checked");
        let t_out = encoded.1.expect("checked");
        self.inner.check_distributed_signed(comm, &t_in, &t_out)
    }

    /// Purely local check (p = 1 semantics).
    pub fn check_local(&self, input: &[(u64, f64)], asserted: &[(u64, f64)]) -> bool {
        let (Some(t_in), Some(t_out)) = (self.encode_pairs(input), self.encode_pairs(asserted))
        else {
            return false;
        };
        let mut a = self.inner.new_table();
        let mut b = self.inner.new_table();
        self.inner.condense_signed(&t_in, &mut a);
        self.inner.condense_signed(&t_out, &mut b);
        self.inner.finalize(&mut a);
        self.inner.finalize(&mut b);
        a == b
    }
}

/// Reference fixed-point aggregation for the operation side: sums each
/// key's encoded ticks exactly, returning per-key float sums on the grid.
/// Returns `None` if any value fails to encode.
pub fn aggregate_ticks(codec: FixedPoint, pairs: &[(u64, f64)]) -> Option<Vec<(u64, f64)>> {
    let mut sums: std::collections::HashMap<u64, i64> = std::collections::HashMap::new();
    for &(k, v) in pairs {
        let t = codec.encode(v)?;
        *sums.entry(k).or_insert(0) += t;
    }
    let mut out: Vec<(u64, f64)> = sums
        .into_iter()
        .map(|(k, t)| (k, codec.decode(t)))
        .collect();
    out.sort_by_key(|&(k, _)| k);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccheck_hashing::HasherKind;
    use ccheck_net::run;

    fn cfg() -> SumCheckConfig {
        SumCheckConfig::new(6, 16, 9, HasherKind::Tab64)
    }

    fn codec() -> FixedPoint {
        FixedPoint::new(20) // ~1e-6 resolution
    }

    fn workload() -> Vec<(u64, f64)> {
        (0..400u64)
            .map(|i| (i % 13, (i as f64) * 0.03125 - 3.5)) // exact on the grid
            .collect()
    }

    #[test]
    fn encode_decode_roundtrip_on_grid() {
        let c = codec();
        for x in [-1000.0, -0.5, 0.0, 0.25, 3.0e9] {
            let t = c.encode(x).unwrap();
            assert_eq!(c.decode(t), x, "{x} is on the 2^-20 grid");
        }
    }

    #[test]
    fn encode_quantizes_off_grid() {
        let c = FixedPoint::new(4); // 1/16 resolution
        let t = c.encode(0.3).unwrap(); // nearest tick: 5/16 = 0.3125
        assert_eq!(c.decode(t), 0.3125);
        assert!((c.decode(t) - 0.3).abs() <= c.max_error_per_element() + 1e-12);
    }

    #[test]
    fn encode_rejects_non_finite_and_overflow() {
        let c = codec();
        assert_eq!(c.encode(f64::NAN), None);
        assert_eq!(c.encode(f64::INFINITY), None);
        assert_eq!(c.encode(1e300), None);
    }

    #[test]
    fn accepts_correct_fixed_point_aggregation() {
        let input = workload();
        let asserted = aggregate_ticks(codec(), &input).unwrap();
        for seed in 0..20 {
            let checker = FloatSumChecker::new(cfg(), codec(), seed);
            assert!(checker.check_local(&input, &asserted), "seed {seed}");
        }
    }

    #[test]
    fn detects_single_tick_corruption() {
        // The smallest representable error — one grid tick on one key.
        let input = workload();
        let mut bad = aggregate_ticks(codec(), &input).unwrap();
        bad[3].1 += codec().max_error_per_element() * 2.0; // exactly 1 tick
        let checker = FloatSumChecker::new(cfg(), codec(), 5);
        assert!(!checker.check_local(&input, &bad));
    }

    #[test]
    fn detects_catastrophic_cancellation_error() {
        // The motivating instability: a+b−a computed naively in f64 loses
        // b's low bits; on the tick grid it cannot.
        let c = FixedPoint::new(20);
        let input: Vec<(u64, f64)> = vec![(1, 1.0e9), (1, 0.25), (1, -1.0e9)];
        let exact = aggregate_ticks(c, &input).unwrap();
        assert_eq!(exact, vec![(1, 0.25)]);
        // A faulty implementation that summed in f32 would report 0.0.
        let checker = FloatSumChecker::new(cfg(), c, 9);
        assert!(checker.check_local(&input, &exact));
        assert!(!checker.check_local(&input, &[(1, 0.0)]));
    }

    #[test]
    fn rejects_nan_input_consistently() {
        let verdicts = run(2, |comm| {
            let input: Vec<(u64, f64)> = if comm.rank() == 0 {
                vec![(1, f64::NAN)]
            } else {
                vec![(1, 2.0)]
            };
            let checker = FloatSumChecker::new(cfg(), codec(), 1);
            checker.check_distributed(comm, &input, &[])
        });
        assert!(verdicts.iter().all(|&v| !v));
        // All PEs agree even though only PE 0 saw the NaN.
        assert!(verdicts.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn distributed_check_end_to_end() {
        for corrupt in [false, true] {
            let verdicts = run(4, |comm| {
                let rank = comm.rank() as u64;
                let input: Vec<(u64, f64)> = (0..100u64)
                    .map(|i| ((rank * 100 + i) % 11, (i as f64) * 0.5 - 20.0))
                    .collect();
                let all: Vec<(u64, f64)> = (0..4u64)
                    .flat_map(|r| {
                        (0..100u64).map(move |i| ((r * 100 + i) % 11, (i as f64) * 0.5 - 20.0))
                    })
                    .collect();
                let full = aggregate_ticks(codec(), &all).unwrap();
                let mut shard: Vec<(u64, f64)> = if comm.rank() == 0 { full } else { Vec::new() };
                if corrupt && comm.rank() == 0 {
                    shard[5].1 += 1.0 / 1024.0;
                }
                let checker = FloatSumChecker::new(cfg(), codec(), 21);
                checker.check_distributed(comm, &input, &shard)
            });
            assert!(verdicts.iter().all(|&v| v != corrupt), "corrupt={corrupt}");
        }
    }

    #[test]
    fn negative_sums_handled() {
        let input: Vec<(u64, f64)> = vec![(1, -5.5), (1, -4.5), (2, 3.0)];
        let asserted = aggregate_ticks(codec(), &input).unwrap();
        assert_eq!(asserted, vec![(1, -10.0), (2, 3.0)]);
        let checker = FloatSumChecker::new(cfg(), codec(), 2);
        assert!(checker.check_local(&input, &asserted));
    }

    #[test]
    #[should_panic(expected = "52 fractional bits")]
    fn excessive_precision_rejected() {
        let _ = FixedPoint::new(53);
    }
}

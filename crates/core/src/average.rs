//! Average aggregation checking (§6.1, Corollary 8).
//!
//! With the per-key element counts available as a (distributed)
//! certificate, the asserted averages are convertible back into sums by
//! undoing the final division: `sum_k = avg_k · count_k`. The sum checker
//! then verifies the reconstructed sums against the input, and — to
//! prevent a compensating mis-scaling of averages and counts ("double
//! the averages and halve the counts") — the count checker verifies the
//! certificate against the input mapped to `(key, 1)` pairs. Both checks
//! run as the (value, count)-pair aggregation of §6.1; the combined
//! failure probability is at most `2·δ_sum`.

use ccheck_net::Comm;

use crate::config::SumCheckConfig;
use crate::sum::SumChecker;

/// Check an average aggregation.
///
/// * `input` — this PE's share of (key, value) pairs.
/// * `asserted_averages` — this PE's shard of `(key, average)` (any
///   distribution).
/// * `counts_certificate` — this PE's shard of `(key, count)`, aligned
///   index-by-index with `asserted_averages` ("both values available at
///   the same PE for any key", §6.1).
///
/// Values are integers (as in the paper's experiments); an average is
/// accepted if `avg·count` is within 0.25 of an integer. The
/// reconstruction is reliable while per-key sums stay below ≈ 2⁵⁰
/// (f64 rounding of `sum/count · count` stays ≪ 0.25 there); beyond
/// that, supply sums directly instead of averages. Adapting the checker
/// to genuine floating-point aggregation without cancellation issues is
/// open — the paper lists it as future work.
pub fn check_average(
    comm: &mut Comm,
    input: &[(u64, u64)],
    asserted_averages: &[(u64, f64)],
    counts_certificate: &[(u64, u64)],
    cfg: SumCheckConfig,
    seed: u64,
) -> bool {
    // Local reconstruction: sums from averages × counts.
    let mut local_ok = asserted_averages.len() == counts_certificate.len();
    let mut reconstructed: Vec<(u64, u64)> = Vec::with_capacity(asserted_averages.len());
    if local_ok {
        for (&(k, avg), &(k2, count)) in asserted_averages.iter().zip(counts_certificate) {
            if k != k2 || count == 0 {
                local_ok = false;
                break;
            }
            let sum = avg * count as f64;
            let rounded = sum.round();
            if (sum - rounded).abs() > 0.25 || rounded < 0.0 || rounded > u64::MAX as f64 {
                local_ok = false; // not an integer sum — cannot be correct
                break;
            }
            reconstructed.push((k, rounded as u64));
        }
    }
    let local_ok = comm.all_agree(local_ok);
    if !local_ok {
        return false;
    }

    // Sum check: input values vs reconstructed sums.
    let sum_checker = SumChecker::new(cfg, seed ^ 0x5753);
    let ok_sums = sum_checker.check_distributed(comm, input, &reconstructed);

    // Count check: every element counts once vs the certificate.
    let ones: Vec<(u64, u64)> = input.iter().map(|&(k, _)| (k, 1)).collect();
    let count_checker = SumChecker::new(cfg, seed ^ 0x434E);
    let ok_counts = count_checker.check_distributed(comm, &ones, counts_certificate);

    ok_sums && ok_counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccheck_hashing::HasherKind;
    use ccheck_net::run;
    use std::collections::HashMap;

    fn cfg() -> SumCheckConfig {
        SumCheckConfig::new(6, 16, 9, HasherKind::Tab64)
    }

    /// Per-PE inputs plus the correct (averages, counts) shards
    /// (round-robin distributed).
    type Instance = (
        Vec<Vec<(u64, u64)>>,
        Vec<Vec<(u64, f64)>>,
        Vec<Vec<(u64, u64)>>,
    );

    fn make_instance(p: usize) -> Instance {
        let inputs: Vec<Vec<(u64, u64)>> = (0..p as u64)
            .map(|rank| (0..50).map(|i| (i % 9, rank * 50 + i + 1)).collect())
            .collect();
        let mut sums: HashMap<u64, (u64, u64)> = HashMap::new();
        for input in &inputs {
            for &(k, v) in input {
                let e = sums.entry(k).or_insert((0, 0));
                e.0 += v;
                e.1 += 1;
            }
        }
        let mut keys: Vec<u64> = sums.keys().copied().collect();
        keys.sort_unstable();
        let mut avg_shards = vec![Vec::new(); p];
        let mut count_shards = vec![Vec::new(); p];
        for (i, k) in keys.iter().enumerate() {
            let (s, c) = sums[k];
            avg_shards[i % p].push((*k, s as f64 / c as f64));
            count_shards[i % p].push((*k, c));
        }
        (inputs, avg_shards, count_shards)
    }

    #[test]
    fn accepts_correct_averages() {
        for p in [1, 2, 4] {
            let (inputs, avgs, counts) = make_instance(p);
            let verdicts = run(p, |comm| {
                let r = comm.rank();
                check_average(comm, &inputs[r], &avgs[r], &counts[r], cfg(), 7)
            });
            assert!(verdicts.iter().all(|&v| v), "p={p}");
        }
    }

    #[test]
    fn rejects_wrong_average() {
        let (inputs, avgs, counts) = make_instance(3);
        let verdicts = run(3, |comm| {
            let r = comm.rank();
            let mut my_avgs = avgs[r].clone();
            if r == 1 && !my_avgs.is_empty() {
                // Perturb while keeping avg·count integral: add 1/count.
                let c = counts[r][0].1 as f64;
                my_avgs[0].1 += 1.0 / c;
            }
            check_average(comm, &inputs[r], &my_avgs, &counts[r], cfg(), 7)
        });
        assert!(verdicts.iter().all(|&v| !v));
    }

    #[test]
    fn rejects_compensating_scaling() {
        // Double averages, halve counts: reconstructed sums unchanged —
        // only the count check catches this (§6.1's motivating attack).
        let (inputs, avgs, counts) = make_instance(2);
        let verdicts = run(2, |comm| {
            let r = comm.rank();
            let mut my_avgs = avgs[r].clone();
            let mut my_counts = counts[r].clone();
            for ((_, a), (_, c)) in my_avgs.iter_mut().zip(my_counts.iter_mut()) {
                if *c % 2 == 0 {
                    *a *= 2.0;
                    *c /= 2;
                }
            }
            check_average(comm, &inputs[r], &my_avgs, &my_counts, cfg(), 7)
        });
        assert!(verdicts.iter().all(|&v| !v));
    }

    #[test]
    fn rejects_non_integral_reconstruction() {
        let verdicts = run(1, |comm| {
            // One key: values 1, 2 → avg 1.5, count 2. Assert avg 1.7.
            check_average(comm, &[(1, 1), (1, 2)], &[(1, 1.7)], &[(1, 2)], cfg(), 3)
        });
        assert!(verdicts.iter().all(|&v| !v));
    }

    #[test]
    fn rejects_zero_count() {
        let verdicts = run(1, |comm| {
            check_average(comm, &[(1, 5)], &[(1, 5.0)], &[(1, 0)], cfg(), 3)
        });
        assert!(verdicts.iter().all(|&v| !v));
    }

    #[test]
    fn rejects_misaligned_shards() {
        let verdicts = run(1, |comm| {
            check_average(comm, &[(1, 5)], &[(1, 5.0)], &[(2, 1)], cfg(), 3)
        });
        assert!(verdicts.iter().all(|&v| !v));
    }

    #[test]
    fn fractional_averages_handled() {
        // avg = 7/3: not representable exactly, but avg·count rounds back
        // to the integer sum within tolerance.
        let verdicts = run(1, |comm| {
            let input = [(1u64, 2u64), (1, 2), (1, 3)];
            check_average(comm, &input, &[(1, 7.0 / 3.0)], &[(1, 3)], cfg(), 3)
        });
        assert!(verdicts.iter().all(|&v| v));
    }

    #[test]
    fn empty_instance_accepted() {
        let verdicts = run(2, |comm| check_average(comm, &[], &[], &[], cfg(), 3));
        assert!(verdicts.iter().all(|&v| v));
    }
}

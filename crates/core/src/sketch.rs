//! The streaming sketch core every checker is built on.
//!
//! All of the paper's checkers share one structure: each PE folds its
//! local elements into a **constant-size commutative summary** (a
//! hash-sum table, a fingerprint, a field product) and only the summary
//! is communicated. That makes them *mergeable one-pass sketches* in the
//! sense of the annotated-data-streams literature (Chakrabarti et al.):
//! verification state is updatable element-at-a-time and mergeable
//! across arbitrary splits of the input.
//!
//! [`Sketch`] captures that contract. Every implementation guarantees
//! **chunking invariance**: for any partition of a multiset of items
//! into chunks, folding each chunk into a fresh sketch and merging the
//! sketches yields a [`Sketch::finalize`] digest bit-identical to
//! feeding all items into one sketch — and therefore to the digest the
//! slice-based `check_local`/`check_distributed` drivers compute. Input
//! size `n` never appears in the sketch's memory footprint, so checking
//! works out-of-core: stream the data through in chunks of any size.
//!
//! Implementations:
//!
//! | Sketch | Checker | State |
//! |---|---|---|
//! | [`crate::sum::SumSketch`] | [`crate::SumChecker`] | `its × d` bucket sums in ℤ/rᵢℤ |
//! | [`crate::xorsum::XorSketch`] | [`crate::XorChecker`] | `its × d` bucket xors |
//! | [`crate::permutation::PermSketch`] | [`crate::PermChecker`] | per-iteration hash sum / poly product |
//! | [`crate::zip::ZipSketch`] | [`crate::ZipChecker`] | per-iteration inner-product fingerprint |
//!
//! ```
//! use ccheck::sketch::Sketch;
//! use ccheck::{SumCheckConfig, SumChecker};
//! use ccheck_hashing::HasherKind;
//!
//! let checker = SumChecker::new(SumCheckConfig::new(4, 8, 5, HasherKind::Tab64), 42);
//!
//! // Stream the input through in two chunks instead of one slice...
//! let mut first = checker.sketch();
//! first.update((1, 10));
//! first.update((2, 5));
//! let mut second = checker.sketch();
//! second.update((1, 7));
//!
//! // ...merge, and the digest is identical to the one-shot fold.
//! let mut one_shot = checker.sketch();
//! one_shot.update_iter([(1u64, 10u64), (2, 5), (1, 7)]);
//! first.merge(second);
//! assert_eq!(first.finalize(), one_shot.finalize());
//! ```

/// A mergeable one-pass summary of a stream of items.
///
/// Implementations are created by their checker (e.g.
/// [`crate::SumChecker::sketch`]) so that every sketch of one checker
/// instance shares the same hash functions and moduli; merging sketches
/// from *different* checker instances is a programming error and
/// panics.
pub trait Sketch: Sized {
    /// Element type folded into the sketch.
    type Item;

    /// The finalized, canonical summary. Two digests compare equal iff
    /// the checker would accept the two streams as equivalent.
    type Digest: PartialEq + Clone + std::fmt::Debug;

    /// Fold one item into the sketch. O(its) time, no allocation.
    fn update(&mut self, item: Self::Item);

    /// Absorb another sketch of the same checker instance.
    ///
    /// Merging is commutative and associative, so any chunking of the
    /// input — across threads, PEs, or time — produces the same digest.
    fn merge(&mut self, other: Self);

    /// Reduce to the canonical digest (e.g. take residues mod rᵢ).
    fn finalize(self) -> Self::Digest;

    /// Fold every item of an iterator (the streaming `condense`).
    fn update_iter<I: IntoIterator<Item = Self::Item>>(&mut self, items: I) {
        for item in items {
            self.update(item);
        }
    }
}

/// Fold `items` through a fresh sketch per `chunk`-sized batch, merging
/// as it goes — the reference driver for chunked execution, and the
/// harness the chunking-invariance tests exercise.
///
/// `make` is called once per chunk to obtain an empty sketch (all calls
/// must come from the same checker instance). With `chunk == usize::MAX`
/// this degenerates to a single one-shot fold; an empty stream yields
/// the empty sketch's digest.
///
/// # Panics
/// Panics if `chunk == 0`.
pub fn digest_chunked<S: Sketch, I>(make: impl Fn() -> S, items: I, chunk: usize) -> S::Digest
where
    I: IntoIterator<Item = S::Item>,
{
    assert!(chunk > 0, "chunk size must be positive");
    let mut acc: Option<S> = None;
    let mut current = make();
    let mut filled = 0usize;
    for item in items {
        current.update(item);
        filled += 1;
        if filled == chunk {
            match &mut acc {
                Some(a) => a.merge(std::mem::replace(&mut current, make())),
                None => acc = Some(std::mem::replace(&mut current, make())),
            }
            filled = 0;
        }
    }
    match acc {
        Some(mut a) => {
            if filled > 0 {
                a.merge(current);
            }
            a.finalize()
        }
        None => current.finalize(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy sketch (sum of items) to test the generic driver.
    struct Adder(u64);
    impl Sketch for Adder {
        type Item = u64;
        type Digest = u64;
        fn update(&mut self, item: u64) {
            self.0 = self.0.wrapping_add(item);
        }
        fn merge(&mut self, other: Self) {
            self.0 = self.0.wrapping_add(other.0);
        }
        fn finalize(self) -> u64 {
            self.0
        }
    }

    #[test]
    fn digest_chunked_matches_one_shot() {
        let items: Vec<u64> = (0..100).collect();
        let one_shot = digest_chunked(|| Adder(0), items.iter().copied(), usize::MAX);
        for chunk in [1, 2, 3, 7, 50, 99, 100, 1000] {
            assert_eq!(
                digest_chunked(|| Adder(0), items.iter().copied(), chunk),
                one_shot,
                "chunk={chunk}"
            );
        }
    }

    #[test]
    fn digest_chunked_empty_stream_is_empty_sketch_digest() {
        let empty = digest_chunked(|| Adder(0), std::iter::empty(), 4);
        assert_eq!(empty, Adder(0).finalize());
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn digest_chunked_rejects_zero_chunk() {
        let _ = digest_chunked(|| Adder(0), [1u64], 0);
    }
}

//! Permutation checking (§5 of the paper: Lemma 4, Lemma 5, Theorem 6).
//!
//! Three interchangeable methods verify that two distributed sequences
//! are permutations of each other:
//!
//! * [`PermMethod::HashSum`] — Wegman–Carter style: compare
//!   `Σ h(eᵢ)` with `Σ h(oᵢ)` (Lemma 4). We implement the fix for the
//!   paper's open TODO about duplicate elements: hash values are
//!   accumulated **exactly** (truncated to `H` bits, summed in 128-bit
//!   integers with no intermediate modulus), so the failure analysis
//!   `h(e)·(k−k′) = x` applies and the bound `1/H` holds for multisets,
//! * [`PermMethod::PolyField`] — Lipton's polynomial identity check
//!   (Lemma 5): compare `Π(z−eᵢ)` with `Π(z−oᵢ)` in 𝔽_{2⁶¹−1} at a
//!   random point `z`; needs no random hash function, failure ≤ n/(r−n),
//! * [`PermMethod::PolyGf64`] — the same check in GF(2⁶⁴) with carry-less
//!   multiplication (the SIMD-friendly variant §5 suggests).
//!
//! All methods run `iterations` independent instances and accept only if
//! every instance accepts; the global length equality is verified first
//! (a degenerate mismatch no fingerprint is guaranteed to catch).

use ccheck_hashing::field::Mersenne61;
use ccheck_hashing::gf64::gf_mul;
use ccheck_hashing::{Hasher, HasherKind, Mt19937_64};
use ccheck_net::Comm;

use crate::sketch::Sketch;

/// Fingerprinting method for permutation checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PermMethod {
    /// Hash-sum comparison (Lemma 4) with `H = 2^log_h`.
    HashSum {
        /// Hash function family.
        hasher: HasherKind,
        /// Number of hash bits used (`log₂ H`); 1..=32.
        log_h: u32,
    },
    /// Polynomial identity in 𝔽_{2⁶¹−1} (Lemma 5). Elements must be
    /// `< 2⁶¹ − 1`.
    PolyField,
    /// Polynomial identity in GF(2⁶⁴) via carry-less multiplication.
    PolyGf64,
}

/// Configuration: method plus independent repetitions (Theorem 6 boosts
/// the success probability to `1 − δ` with `log 1/δ` instances).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PermCheckConfig {
    /// Fingerprinting method.
    pub method: PermMethod,
    /// Independent repetitions; overall failure ≤ (per-instance)^iterations.
    pub iterations: usize,
}

impl PermCheckConfig {
    /// Hash-sum config matching the paper's Fig. 5 axis labels
    /// (`CRC⟨log H⟩` / `Tab⟨log H⟩`).
    pub fn hash_sum(hasher: HasherKind, log_h: u32) -> Self {
        assert!((1..=32).contains(&log_h), "log_h must be in 1..=32");
        Self {
            method: PermMethod::HashSum { hasher, log_h },
            iterations: 1,
        }
    }

    /// Upper bound on the failure probability of one instance, for `n`
    /// elements per side.
    pub fn single_instance_failure_bound(&self, n: u64) -> f64 {
        match self.method {
            PermMethod::HashSum { log_h, .. } => (0.5f64).powi(log_h as i32),
            // Lemma 5: ≤ n / r for a degree-n polynomial.
            PermMethod::PolyField => n as f64 / Mersenne61::P as f64,
            PermMethod::PolyGf64 => n as f64 / 2f64.powi(64),
        }
    }

    /// Overall failure bound after all iterations.
    pub fn failure_bound(&self, n: u64) -> f64 {
        self.single_instance_failure_bound(n)
            .powi(self.iterations as i32)
    }
}

/// A seeded permutation checker.
#[derive(Debug, Clone)]
pub struct PermChecker {
    cfg: PermCheckConfig,
    seed: u64,
}

impl PermChecker {
    /// Create a checker; in SPMD use, all PEs must pass the same
    /// `(config, seed)`.
    pub fn new(cfg: PermCheckConfig, seed: u64) -> Self {
        assert!(cfg.iterations >= 1);
        Self { cfg, seed }
    }

    /// The configuration.
    pub fn config(&self) -> &PermCheckConfig {
        &self.cfg
    }

    /// Per-instance derived seed.
    fn instance_seed(&self, iter: usize) -> u64 {
        self.seed ^ (iter as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x7065_726D
    }

    /// The random evaluation point `z` of the polynomial methods
    /// (identical on every PE since it derives from the shared seed).
    fn eval_point(&self, iter: usize) -> u64 {
        let mut rng = Mt19937_64::new(self.instance_seed(iter));
        rng.next()
    }

    /// The prepared per-iteration instance (seeded hasher or evaluation
    /// point) every fingerprint fold runs over.
    fn instance(&self, iter: usize) -> PermInstance {
        match self.cfg.method {
            PermMethod::HashSum { hasher, log_h } => PermInstance::HashSum {
                h: Hasher::new(hasher, self.instance_seed(iter)),
                mask: if log_h == 64 {
                    u64::MAX
                } else {
                    (1u64 << log_h) - 1
                },
            },
            PermMethod::PolyField => PermInstance::PolyField {
                z: Mersenne61::from_u64(self.eval_point(iter)),
            },
            PermMethod::PolyGf64 => PermInstance::PolyGf64 {
                z: self.eval_point(iter) | 1, // nonzero
            },
        }
    }

    /// A fresh, empty streaming sketch for this checker (see
    /// [`crate::sketch::Sketch`]): all iterations' fingerprints advance
    /// in one pass over the data.
    pub fn sketch(&self) -> PermSketch<'_> {
        let instances: Vec<PermInstance> =
            (0..self.cfg.iterations).map(|i| self.instance(i)).collect();
        let accs = instances.iter().map(PermInstance::identity).collect();
        PermSketch {
            checker: self,
            instances,
            accs,
            count: 0,
        }
    }

    /// Distributed permutation check: is the multiset `output` a
    /// permutation of the multiset `input`? Both sides are distributed
    /// arbitrarily; every PE returns the same verdict.
    pub fn check(&self, comm: &mut Comm, input: &[u64], output: &[u64]) -> bool {
        self.check_concat(comm, &[input], output)
    }

    /// Check that `output` is a permutation of the concatenation of
    /// several input sequences (the Union checker's shape, Corollary 12).
    pub fn check_concat(&self, comm: &mut Comm, inputs: &[&[u64]], output: &[u64]) -> bool {
        let mut in_sk = self.sketch();
        for s in inputs {
            in_sk.update_iter(s.iter().copied());
        }
        let mut out_sk = self.sketch();
        out_sk.update_iter(output.iter().copied());
        self.check_distributed_sketches(comm, in_sk, out_sk)
    }

    /// Streaming form of [`PermChecker::check`]: both sides consumed
    /// element-at-a-time, O(iterations) memory per PE.
    pub fn check_stream<I, J>(&self, comm: &mut Comm, input: I, output: J) -> bool
    where
        I: IntoIterator<Item = u64>,
        J: IntoIterator<Item = u64>,
    {
        let mut in_sk = self.sketch();
        in_sk.update_iter(input);
        let mut out_sk = self.sketch();
        out_sk.update_iter(output);
        self.check_distributed_sketches(comm, in_sk, out_sk)
    }

    /// Distributed check over pre-folded sketches — the collective
    /// driver of every permutation check: one length allreduce, then one
    /// fingerprint-pair allreduce per iteration (byte-identical to the
    /// historical slice-based implementation).
    ///
    /// # Panics
    /// Panics if either sketch belongs to a different checker instance.
    pub fn check_distributed_sketches(
        &self,
        comm: &mut Comm,
        input: PermSketch<'_>,
        output: PermSketch<'_>,
    ) -> bool {
        assert!(
            std::ptr::eq(input.checker, self) && std::ptr::eq(output.checker, self),
            "sketches must come from this checker instance"
        );
        // Global length equality first (a degenerate mismatch no
        // fingerprint is guaranteed to catch).
        let (tot_in, tot_out) =
            comm.allreduce((input.count, output.count), |a, b| (a.0 + b.0, a.1 + b.1));
        if tot_in != tot_out {
            return false;
        }
        let mut ok = true;
        for iter in 0..self.cfg.iterations {
            ok &= match self.cfg.method {
                PermMethod::HashSum { .. } => {
                    let (gi, go) = comm.allreduce((input.accs[iter], output.accs[iter]), |a, b| {
                        (a.0.wrapping_add(b.0), a.1.wrapping_add(b.1))
                    });
                    gi == go
                }
                PermMethod::PolyField => {
                    let pair = (input.accs[iter] as u64, output.accs[iter] as u64);
                    let (gi, go) = comm.allreduce(pair, |a, b| {
                        (Mersenne61::mul(a.0, b.0), Mersenne61::mul(a.1, b.1))
                    });
                    gi == go
                }
                PermMethod::PolyGf64 => {
                    let pair = (input.accs[iter] as u64, output.accs[iter] as u64);
                    let (gi, go) =
                        comm.allreduce(pair, |a, b| (gf_mul(a.0, b.0), gf_mul(a.1, b.1)));
                    gi == go
                }
            };
        }
        ok
    }

    /// Local fingerprint of one instance over `data` (the per-PE work of
    /// the distributed protocol; exposed for the §7.2 overhead
    /// benchmarks). Additive methods return the exact sum; polynomial
    /// methods the zero-extended product.
    pub fn local_fingerprint(&self, iter: usize, data: &[u64]) -> u128 {
        let inst = self.instance(iter);
        let mut acc = inst.identity();
        for &x in data {
            acc = inst.fold(acc, x);
        }
        acc
    }

    /// Purely local check (p = 1 semantics) for tests and benchmarks.
    pub fn check_local(&self, input: &[u64], output: &[u64]) -> bool {
        self.check_local_stream(input.iter().copied(), output.iter().copied())
    }

    /// Streaming form of [`PermChecker::check_local`].
    pub fn check_local_stream<I, J>(&self, input: I, output: J) -> bool
    where
        I: IntoIterator<Item = u64>,
        J: IntoIterator<Item = u64>,
    {
        let mut in_sk = self.sketch();
        in_sk.update_iter(input);
        let mut out_sk = self.sketch();
        out_sk.update_iter(output);
        in_sk.finalize() == out_sk.finalize()
    }

    /// Chunked form of [`PermChecker::check_local`]: both sides folded
    /// in `chunk`-sized batches and merged; the verdict is identical for
    /// every chunk size.
    pub fn check_local_chunked(&self, input: &[u64], output: &[u64], chunk: usize) -> bool {
        let digest = |side: &[u64]| {
            crate::sketch::digest_chunked(|| self.sketch(), side.iter().copied(), chunk)
        };
        digest(input) == digest(output)
    }
}

/// One prepared fingerprint instance: the seeded hash function or the
/// fixed evaluation point of the polynomial methods.
enum PermInstance {
    /// Additive Wegman–Carter fingerprint (Lemma 4).
    HashSum { h: Hasher, mask: u64 },
    /// `Π (z − eᵢ)` in 𝔽_{2⁶¹−1} (Lemma 5). Elements are canonicalized
    /// into the field; the documented aliasing caveat for values
    /// ≥ 2⁶¹ − 1 applies.
    PolyField { z: u64 },
    /// `Π (z ⊕ eᵢ)` in GF(2⁶⁴) with carry-less multiplication.
    PolyGf64 { z: u64 },
}

impl PermInstance {
    /// The fold's neutral element (0 for sums, 1 for products).
    fn identity(&self) -> u128 {
        match self {
            PermInstance::HashSum { .. } => 0,
            PermInstance::PolyField { .. } | PermInstance::PolyGf64 { .. } => 1,
        }
    }

    /// Fold one element into an accumulator. Hash sums accumulate
    /// exactly in 128 bits (no intermediate modulus — the multiset fix);
    /// products stay in the low 64 bits.
    #[inline]
    fn fold(&self, acc: u128, x: u64) -> u128 {
        match *self {
            PermInstance::HashSum { ref h, mask } => acc + u128::from(h.hash(x) & mask),
            PermInstance::PolyField { z } => u128::from(Mersenne61::mul(
                acc as u64,
                Mersenne61::sub(z, Mersenne61::from_u64(x)),
            )),
            PermInstance::PolyGf64 { z } => u128::from(gf_mul(acc as u64, z ^ x)),
        }
    }

    /// Combine two partial accumulators (sketch merge).
    #[inline]
    fn combine(&self, a: u128, b: u128) -> u128 {
        match self {
            PermInstance::HashSum { .. } => a.wrapping_add(b),
            PermInstance::PolyField { .. } => u128::from(Mersenne61::mul(a as u64, b as u64)),
            PermInstance::PolyGf64 { .. } => u128::from(gf_mul(a as u64, b as u64)),
        }
    }
}

/// Streaming sketch of the permutation checker: element count plus one
/// fingerprint accumulator per iteration, all advanced in a single pass.
/// Obtained from [`PermChecker::sketch`].
pub struct PermSketch<'a> {
    checker: &'a PermChecker,
    instances: Vec<PermInstance>,
    accs: Vec<u128>,
    count: u64,
}

impl PermSketch<'_> {
    /// Number of elements folded in so far.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl Sketch for PermSketch<'_> {
    type Item = u64;
    /// `(element count, per-iteration fingerprints)`.
    type Digest = (u64, Vec<u128>);

    fn update(&mut self, item: u64) {
        for (acc, inst) in self.accs.iter_mut().zip(&self.instances) {
            *acc = inst.fold(*acc, item);
        }
        self.count += 1;
    }

    fn merge(&mut self, other: Self) {
        assert!(
            std::ptr::eq(self.checker, other.checker),
            "cannot merge sketches of different checker instances"
        );
        for ((acc, &badd), inst) in self.accs.iter_mut().zip(&other.accs).zip(&self.instances) {
            *acc = inst.combine(*acc, badd);
        }
        self.count += other.count;
    }

    fn finalize(self) -> (u64, Vec<u128>) {
        (self.count, self.accs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccheck_net::run;

    fn all_methods() -> Vec<PermCheckConfig> {
        vec![
            PermCheckConfig::hash_sum(HasherKind::Tab64, 32),
            PermCheckConfig::hash_sum(HasherKind::Crc32c, 16),
            PermCheckConfig {
                method: PermMethod::PolyField,
                iterations: 1,
            },
            PermCheckConfig {
                method: PermMethod::PolyGf64,
                iterations: 1,
            },
        ]
    }

    fn shuffled(data: &[u64]) -> Vec<u64> {
        // Deterministic shuffle: reverse + rotate.
        let mut v: Vec<u64> = data.iter().rev().copied().collect();
        v.rotate_left(data.len() / 3);
        v
    }

    #[test]
    fn accepts_true_permutations() {
        let data: Vec<u64> = (0..1000u64)
            .map(|i| i.wrapping_mul(0x9E3779B9) % 100_000)
            .collect();
        let perm = shuffled(&data);
        for cfg in all_methods() {
            for seed in 0..10 {
                let checker = PermChecker::new(cfg, seed);
                assert!(checker.check_local(&data, &perm), "{cfg:?} seed={seed}");
            }
        }
    }

    #[test]
    fn accepts_permutations_with_duplicates() {
        // The paper's TODO case: repeated elements.
        let data: Vec<u64> = (0..500u64).map(|i| i % 7).collect();
        let perm = shuffled(&data);
        for cfg in all_methods() {
            let checker = PermChecker::new(cfg, 99);
            assert!(checker.check_local(&data, &perm), "{cfg:?}");
        }
    }

    #[test]
    fn rejects_single_element_change() {
        let data: Vec<u64> = (0..1000u64).collect();
        for cfg in all_methods() {
            let mut detected = 0;
            let trials = 60;
            for seed in 0..trials {
                let checker = PermChecker::new(cfg, seed);
                let mut bad = shuffled(&data);
                bad[123] += 1;
                if !checker.check_local(&data, &bad) {
                    detected += 1;
                }
            }
            // All methods here have failure prob ≤ 2^-16.
            assert_eq!(detected, trials, "{cfg:?}");
        }
    }

    #[test]
    fn rejects_duplicate_multiplicity_change() {
        // E has element 5 three times, O only twice (plus a 6) — exactly
        // the multiset case the naive mod-H argument misses.
        let input = vec![5u64, 5, 5, 1, 2];
        let output = vec![5u64, 5, 6, 1, 2];
        for cfg in all_methods() {
            let checker = PermChecker::new(cfg, 4);
            assert!(!checker.check_local(&input, &output), "{cfg:?}");
        }
    }

    #[test]
    fn rejects_length_mismatch() {
        let data: Vec<u64> = (0..100).collect();
        let shorter: Vec<u64> = (0..99).collect();
        for cfg in all_methods() {
            let checker = PermChecker::new(cfg, 1);
            assert!(!checker.check_local(&data, &shorter), "{cfg:?}");
        }
    }

    #[test]
    fn low_h_misses_with_plausible_rate() {
        // With H = 2 (one hash bit) a random corruption escapes ≈ half
        // the time — the Fig. 5 leftmost column.
        let cfg = PermCheckConfig::hash_sum(HasherKind::Tab32, 1);
        let data: Vec<u64> = (0..200u64).collect();
        let mut accepted_bad = 0;
        let trials = 600;
        for seed in 0..trials {
            let checker = PermChecker::new(cfg, seed);
            let mut bad = data.clone();
            bad[50] = 1_000_000 + seed; // randomize an element
            if checker.check_local(&data, &bad) {
                accepted_bad += 1;
            }
        }
        let rate = accepted_bad as f64 / trials as f64;
        assert!((0.4..0.6).contains(&rate), "false-accept rate {rate} ≉ 0.5");
    }

    #[test]
    fn iterations_boost_detection() {
        let single = PermCheckConfig::hash_sum(HasherKind::Tab32, 1);
        let boosted = PermCheckConfig {
            iterations: 8,
            ..single
        };
        let data: Vec<u64> = (0..200u64).collect();
        let mut acc_single = 0;
        let mut acc_boosted = 0;
        for seed in 0..300 {
            let mut bad = data.clone();
            bad[3] = 777_777 + seed;
            if PermChecker::new(single, seed).check_local(&data, &bad) {
                acc_single += 1;
            }
            if PermChecker::new(boosted, seed).check_local(&data, &bad) {
                acc_boosted += 1;
            }
        }
        assert!(
            acc_boosted * 10 < acc_single,
            "{acc_boosted} vs {acc_single}"
        );
    }

    #[test]
    fn distributed_agrees_with_local() {
        let cfg = PermCheckConfig::hash_sum(HasherKind::Tab64, 32);
        for corrupt in [false, true] {
            let verdicts = run(4, |comm| {
                let rank = comm.rank() as u64;
                let input: Vec<u64> = (0..250).map(|i| rank * 250 + i).collect();
                // Output = global input redistributed: PE r gets elements
                // congruent r mod 4, reversed.
                let mut output: Vec<u64> = (0..1000u64).filter(|x| x % 4 == rank).rev().collect();
                if corrupt && rank == 3 {
                    output[7] ^= 0x40;
                }
                let checker = PermChecker::new(cfg, 31337);
                checker.check(comm, &input, &output)
            });
            assert!(verdicts.iter().all(|&v| v != corrupt), "corrupt={corrupt}");
        }
    }

    #[test]
    fn distributed_poly_methods() {
        for method in [PermMethod::PolyField, PermMethod::PolyGf64] {
            let cfg = PermCheckConfig {
                method,
                iterations: 1,
            };
            let verdicts = run(3, |comm| {
                let rank = comm.rank() as u64;
                let input: Vec<u64> = (0..100).map(|i| rank * 100 + i).collect();
                let output: Vec<u64> = (0..300u64).filter(|x| x % 3 == rank).collect();
                let checker = PermChecker::new(cfg, 5);
                checker.check(comm, &input, &output)
            });
            assert!(verdicts.iter().all(|&v| v), "{method:?}");
        }
    }

    #[test]
    fn concat_union_shape() {
        let cfg = PermCheckConfig::hash_sum(HasherKind::Tab64, 32);
        let verdicts = run(2, |comm| {
            let rank = comm.rank() as u64;
            let s1: Vec<u64> = (0..50).map(|i| rank * 50 + i).collect();
            let s2: Vec<u64> = (0..30).map(|i| 1000 + rank * 30 + i).collect();
            // Union output redistributed: everything on PE 0.
            let output: Vec<u64> = if rank == 0 {
                (0..100u64).chain(1000..1060).collect()
            } else {
                Vec::new()
            };
            let checker = PermChecker::new(cfg, 8);
            checker.check_concat(comm, &[&s1, &s2], &output)
        });
        assert!(verdicts.iter().all(|&v| v));
    }

    #[test]
    fn communication_volume_constant_in_n() {
        use ccheck_net::router::run_with_stats;
        let volume = |n: u64| {
            let (_, snap) = run_with_stats(4, |comm| {
                let input: Vec<u64> = (0..n).collect();
                let output: Vec<u64> = (0..n).rev().collect();
                let checker = PermChecker::new(PermCheckConfig::hash_sum(HasherKind::Tab64, 32), 2);
                checker.check(comm, &input, &output)
            });
            snap.total_bytes()
        };
        assert_eq!(volume(10), volume(10_000));
    }

    #[test]
    fn poly_field_canonicalizes_oversized_elements() {
        let cfg = PermCheckConfig {
            method: PermMethod::PolyField,
            iterations: 1,
        };
        let checker = PermChecker::new(cfg, 1);
        // Never rejects a correct result, even outside the universe bound.
        assert!(checker.check_local(&[u64::MAX, 5], &[5, u64::MAX]));
        // A high-bit flip (the faulty-data case) is still detected:
        // 2^63 mod (2^61 − 1) = 4 ≠ 0.
        assert!(!checker.check_local(&[1u64, 5], &[1 ^ (1 << 63), 5]));
        // The documented blind spot: values aliasing mod 2^61 − 1.
        let p = ccheck_hashing::field::MERSENNE61;
        assert!(checker.check_local(&[3u64], &[3 + p]));
    }
}

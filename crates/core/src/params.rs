//! Numeric parameter optimization for the sum checker (Table 2 of the
//! paper).
//!
//! Real interconnects have an effective minimum message size `b`: sending
//! fewer than `b` bits is not measurably faster. The right objective is
//! therefore to **minimize the number of iterations** subject to the
//! constraint that the minireduction result fits the message budget:
//! `d·⌈log₂ 2r̂⌉·its ≤ b` (§4). Among configurations with the minimal
//! iteration count, [`optimize`] picks the one with the smallest achieved
//! failure probability `(1/r̂ + 1/d)^its` — reproducing the paper's
//! numerically determined optima.

/// An optimal `(d, r̂, #its)` choice for a message budget and target δ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimalConfig {
    /// Message budget in bits (the `b` column).
    pub budget_bits: u64,
    /// Target failure probability.
    pub target_delta: f64,
    /// Bucket count `d`.
    pub buckets: usize,
    /// `log₂ r̂`.
    pub log2_rhat: u32,
    /// Iteration count.
    pub iterations: usize,
    /// Achieved failure probability `(1/r̂ + 1/d)^its` (≤ target).
    pub achieved_delta: f64,
    /// Bits actually used: `d·(log₂r̂ + 1)·its`.
    pub bits_used: u64,
}

/// Failure bound `(2^−m + 1/d)^its`.
pub fn achieved_delta(iterations: usize, buckets: usize, log2_rhat: u32) -> f64 {
    let p1 = (0.5f64).powi(log2_rhat as i32) + 1.0 / buckets as f64;
    p1.powi(iterations as i32)
}

/// Find the configuration minimizing iterations (then δ) under the
/// message budget, per §4's optimization rule. Returns `None` if no
/// configuration within `b` bits reaches the target δ (only possible for
/// tiny budgets and extreme δ).
pub fn optimize(budget_bits: u64, target_delta: f64) -> Option<OptimalConfig> {
    assert!(
        budget_bits >= 8,
        "budget below a single byte is meaningless"
    );
    assert!(
        target_delta > 0.0 && target_delta < 1.0,
        "δ must be in (0, 1)"
    );
    // Iteration counts are tried in increasing order; the first feasible
    // count wins (the paper's primary objective), and within it the best
    // achieved δ is selected.
    for its in 1..=4096usize {
        let mut best: Option<OptimalConfig> = None;
        // m ranges over modulus exponents; beyond 62 a bucket would not
        // fit a machine word.
        for m in 1..=62u32 {
            let bits_per_bucket = u64::from(m) + 1;
            let d_max = budget_bits / (bits_per_bucket * its as u64);
            if d_max < 2 {
                continue; // budget exhausted for this m
            }
            // For fixed (m, its), δ improves monotonically with d, so only
            // the largest feasible d matters.
            let d = d_max as usize;
            let delta = achieved_delta(its, d, m);
            if delta <= target_delta {
                let candidate = OptimalConfig {
                    budget_bits,
                    target_delta,
                    buckets: d,
                    log2_rhat: m,
                    iterations: its,
                    achieved_delta: delta,
                    bits_used: d as u64 * bits_per_bucket * its as u64,
                };
                let better = best.map(|b| delta < b.achieved_delta).unwrap_or(true);
                if better {
                    best = Some(candidate);
                }
            }
        }
        if best.is_some() {
            return best;
        }
    }
    None
}

/// The `(b, δ)` rows of Table 2, for the experiment harness.
pub fn table2_rows() -> Vec<(u64, f64)> {
    vec![
        (1024, 1e-4),
        (1024, 1e-6),
        (1024, 1e-8),
        (1024, 1e-10),
        (1024, 1e-20),
        (4096, 1e-6),
        (4096, 1e-10),
        (4096, 1e-20),
        (16384, 1e-7),
        (16384, 1e-10),
        (16384, 1e-20),
        (16384, 1e-30),
        (65536, 1e-10),
        (65536, 1e-20),
        (65536, 1e-30),
        (65536, 1e-40),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 2 of the paper: (b, δ) → (d, log₂r̂, #its, achieved δ).
    /// The optimizer must reproduce every row.
    #[test]
    fn reproduces_table2() {
        // (b, δ, d, log2_rhat, its, achieved)
        let expected: Vec<(u64, f64, usize, u32, usize, f64)> = vec![
            (1024, 1e-4, 37, 8, 3, 3.0e-5),
            (1024, 1e-6, 25, 7, 5, 2.5e-7),
            (1024, 1e-8, 18, 7, 7, 4.1e-9),
            (1024, 1e-10, 14, 6, 10, 2.5e-11),
            (1024, 1e-20, 6, 4, 32, 3.3e-21),
            (4096, 1e-6, 124, 10, 3, 7.4e-7),
            (4096, 1e-10, 68, 9, 6, 2.1e-11),
            (4096, 1e-20, 32, 8, 14, 4.4e-21),
            (16384, 1e-7, 420, 12, 3, 1.8e-8),
            (16384, 1e-10, 273, 11, 5, 1.2e-12),
            (16384, 1e-20, 148, 10, 10, 7.6e-22),
            (16384, 1e-30, 93, 10, 16, 1.3e-31),
            (65536, 1e-10, 1170, 13, 4, 9.1e-13),
            (65536, 1e-20, 630, 12, 8, 1.3e-22),
            (65536, 1e-30, 420, 12, 12, 1.1e-31),
            (65536, 1e-40, 321, 11, 17, 2.9e-42),
        ];
        for (b, delta, d, m, its, achieved) in expected {
            let opt = optimize(b, delta).expect("feasible");
            assert_eq!(
                (opt.iterations, opt.buckets, opt.log2_rhat),
                (its, d, m),
                "b={b} δ={delta}: got {}×{} m{} (δ={:.2e})",
                opt.iterations,
                opt.buckets,
                opt.log2_rhat,
                opt.achieved_delta
            );
            let ratio = opt.achieved_delta / achieved;
            assert!(
                (0.8..1.25).contains(&ratio),
                "b={b} δ={delta}: achieved {:.3e} vs paper {achieved:.1e}",
                opt.achieved_delta
            );
        }
    }

    #[test]
    fn achieved_delta_always_within_target() {
        for (b, delta) in table2_rows() {
            let opt = optimize(b, delta).unwrap();
            assert!(opt.achieved_delta <= delta);
            assert!(opt.bits_used <= b);
        }
    }

    #[test]
    fn more_budget_never_hurts() {
        let small = optimize(1024, 1e-10).unwrap();
        let large = optimize(65536, 1e-10).unwrap();
        assert!(large.iterations <= small.iterations);
    }

    #[test]
    fn tiny_budget_may_be_infeasible_or_slow() {
        // 8 bits: the minimum-volume configuration of §4 (d=2, m=3) needs
        // log_{1.6} δ⁻¹ iterations of 8 bits each — with b=8 that means
        // one bucket set per message... one-iteration configs can't reach
        // 1e-20, so optimize returns a high iteration count or None.
        if let Some(opt) = optimize(8, 0.5) {
            assert!(opt.achieved_delta <= 0.5);
        }
    }

    #[test]
    fn achieved_delta_formula() {
        // (1/32 + 1/8)^4 = 0.15625^4
        let d = achieved_delta(4, 8, 5);
        assert!((d - 0.15625f64.powi(4)).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "δ must be in")]
    fn invalid_delta_rejected() {
        let _ = optimize(1024, 1.5);
    }
}

//! Sort checking (§5, Theorem 7) and the derived Merge checker
//! (§6.5.2, Corollary 13).
//!
//! A sequence is a sorted version of another iff it is (a) a permutation
//! of it, (b) locally sorted on every PE, and (c) ordered across PE
//! boundaries. The permutation part is probabilistic (Theorem 6); parts
//! (b) and (c) are deterministic.

use ccheck_net::Comm;

use crate::permutation::PermChecker;

/// Is this PE's share ascending?
fn locally_sorted(data: &[u64]) -> bool {
    data.windows(2).all(|w| w[0] <= w[1])
}

/// Deterministic cross-PE boundary check: every PE's maximum must not
/// exceed any later PE's minimum.
///
/// The paper exchanges boundaries with direct neighbors (O(1) volume);
/// we gather the per-PE `(min, max)` summaries instead (O(p) volume,
/// still independent of n) because it handles empty PEs without a chain
/// of forwarding rounds. Every PE returns the same verdict.
pub fn check_boundaries(comm: &mut Comm, data: &[u64]) -> bool {
    let summary: Option<(u64, u64)> = if data.is_empty() {
        None
    } else {
        Some((data[0], data[data.len() - 1]))
    };
    let all: Vec<Option<(u64, u64)>> = comm.allgather(summary);
    let mut prev_max: Option<u64> = None;
    for (min, max) in all.into_iter().flatten() {
        if let Some(pm) = prev_max {
            if min < pm {
                return false;
            }
        }
        prev_max = Some(max);
    }
    true
}

/// Distributed sort check (Theorem 7): `output` must be a globally
/// sorted permutation of `input`. Every PE returns the same verdict.
///
/// One-sided error: correct results are always accepted; an unsorted or
/// non-permutation output is accepted with probability at most the
/// permutation checker's failure bound.
pub fn check_sorted(comm: &mut Comm, input: &[u64], output: &[u64], perm: &PermChecker) -> bool {
    let is_perm = perm.check(comm, input, output);
    let local_ok = locally_sorted(output);
    let boundaries_ok = check_boundaries(comm, output);
    comm.all_agree(local_ok) && boundaries_ok && is_perm
}

/// Merge checker (Corollary 13): `output` must be a globally sorted
/// permutation of the concatenation of `s1` and `s2`.
pub fn check_merge(
    comm: &mut Comm,
    s1: &[u64],
    s2: &[u64],
    output: &[u64],
    perm: &PermChecker,
) -> bool {
    let is_perm = perm.check_concat(comm, &[s1, s2], output);
    let local_ok = locally_sorted(output);
    let boundaries_ok = check_boundaries(comm, output);
    comm.all_agree(local_ok) && boundaries_ok && is_perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::permutation::PermCheckConfig;
    use ccheck_hashing::HasherKind;
    use ccheck_net::run;

    fn perm_cfg() -> PermCheckConfig {
        PermCheckConfig::hash_sum(HasherKind::Tab64, 32)
    }

    #[test]
    fn accepts_correctly_sorted() {
        let verdicts = run(4, |comm| {
            let rank = comm.rank() as u64;
            // Input: interleaved; output: contiguous sorted blocks.
            let input: Vec<u64> = (0..250u64).map(|i| i * 4 + rank).collect();
            let output: Vec<u64> = (rank * 250..(rank + 1) * 250).collect();
            let perm = PermChecker::new(perm_cfg(), 7);
            check_sorted(comm, &input, &output, &perm)
        });
        assert!(verdicts.iter().all(|&v| v));
    }

    #[test]
    fn rejects_locally_unsorted() {
        let verdicts = run(2, |comm| {
            let rank = comm.rank() as u64;
            let input: Vec<u64> = (rank * 100..(rank + 1) * 100).collect();
            let mut output = input.clone();
            if rank == 1 {
                output.swap(10, 20);
            }
            let perm = PermChecker::new(perm_cfg(), 7);
            check_sorted(comm, &input, &output, &perm)
        });
        assert!(verdicts.iter().all(|&v| !v));
    }

    #[test]
    fn rejects_boundary_violation() {
        let verdicts = run(2, |comm| {
            let rank = comm.rank() as u64;
            // Each PE locally sorted, but PE 0 holds larger values.
            let input: Vec<u64> = (rank * 100..(rank + 1) * 100).collect();
            let output: Vec<u64> = ((1 - rank) * 100..(2 - rank) * 100).collect();
            let perm = PermChecker::new(perm_cfg(), 7);
            check_sorted(comm, &input, &output, &perm)
        });
        assert!(verdicts.iter().all(|&v| !v));
    }

    #[test]
    fn rejects_sorted_but_not_permutation() {
        let verdicts = run(2, |comm| {
            let rank = comm.rank() as u64;
            let input: Vec<u64> = (rank * 100..(rank + 1) * 100).collect();
            // Sorted output with one value replaced.
            let mut output = input.clone();
            if rank == 0 {
                output[50] = 51; // duplicate instead of 50 — still sorted
            }
            let perm = PermChecker::new(perm_cfg(), 7);
            check_sorted(comm, &input, &output, &perm)
        });
        assert!(verdicts.iter().all(|&v| !v));
    }

    #[test]
    fn accepts_with_empty_pes() {
        let verdicts = run(4, |comm| {
            let rank = comm.rank() as u64;
            let input: Vec<u64> = if rank == 0 {
                (0..100).collect()
            } else {
                vec![]
            };
            // All data ends up on PE 3 after "sorting".
            let output: Vec<u64> = if rank == 3 {
                (0..100).collect()
            } else {
                vec![]
            };
            let perm = PermChecker::new(perm_cfg(), 7);
            check_sorted(comm, &input, &output, &perm)
        });
        assert!(verdicts.iter().all(|&v| v));
    }

    #[test]
    fn boundary_check_with_interleaved_empties() {
        let verdicts = run(5, |comm| {
            let rank = comm.rank();
            // PEs 1 and 3 empty; 0 < 2 < 4 ranges ascending → OK.
            let data: Vec<u64> = match rank {
                0 => (0..10).collect(),
                2 => (10..20).collect(),
                4 => (20..30).collect(),
                _ => vec![],
            };
            check_boundaries(comm, &data)
        });
        assert!(verdicts.iter().all(|&v| v));

        let verdicts = run(5, |comm| {
            let rank = comm.rank();
            // Violation between PE 0 and PE 4 with empties in between.
            let data: Vec<u64> = match rank {
                0 => (100..110).collect(),
                4 => (0..10).collect(),
                _ => vec![],
            };
            check_boundaries(comm, &data)
        });
        assert!(verdicts.iter().all(|&v| !v));
    }

    #[test]
    fn boundary_equal_values_allowed() {
        let verdicts = run(3, |comm| {
            // All PEs hold the same value — ties across boundaries are
            // legal in a sorted sequence.
            check_boundaries(comm, &[7u64, 7, 7])
        });
        assert!(verdicts.iter().all(|&v| v));
    }

    #[test]
    fn merge_checker_accepts_and_rejects() {
        for corrupt in [false, true] {
            let verdicts = run(2, |comm| {
                let rank = comm.rank() as u64;
                // s1 = evens, s2 = odds, both globally sorted.
                let s1: Vec<u64> = (0..100u64).map(|i| 2 * (rank * 100 + i)).collect();
                let s2: Vec<u64> = (0..100u64).map(|i| 2 * (rank * 100 + i) + 1).collect();
                // Correct merge: contiguous ranges.
                let mut output: Vec<u64> = (rank * 200..(rank + 1) * 200).collect();
                if corrupt && rank == 1 {
                    output[5] += 1; // breaks the permutation property
                }
                let perm = PermChecker::new(perm_cfg(), 3);
                check_merge(comm, &s1, &s2, &output, &perm)
            });
            assert!(verdicts.iter().all(|&v| v != corrupt), "corrupt={corrupt}");
        }
    }
}

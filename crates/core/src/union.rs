//! Union checking (§6.5.1, Corollary 12): `S` is the multiset union of
//! `S₁` and `S₂` iff `S` is a permutation of their concatenation — a
//! direct application of the permutation checker iterating over two
//! input sets.

use ccheck_net::Comm;

use crate::permutation::PermChecker;

/// Check `output = S₁ ⊎ S₂` (multiset union). All three sequences are
/// distributed arbitrarily; every PE returns the same verdict.
pub fn check_union(
    comm: &mut Comm,
    s1: &[u64],
    s2: &[u64],
    output: &[u64],
    perm: &PermChecker,
) -> bool {
    perm.check_concat(comm, &[s1, s2], output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::permutation::PermCheckConfig;
    use ccheck_hashing::HasherKind;
    use ccheck_net::run;

    fn checker() -> PermChecker {
        PermChecker::new(PermCheckConfig::hash_sum(HasherKind::Tab64, 32), 21)
    }

    #[test]
    fn accepts_correct_union() {
        let verdicts = run(3, |comm| {
            let rank = comm.rank() as u64;
            let s1: Vec<u64> = (0..40).map(|i| rank * 40 + i).collect();
            let s2: Vec<u64> = (0..20).map(|i| 500 + rank * 20 + i).collect();
            // Union redistributed arbitrarily: rank r takes every 3rd.
            let output: Vec<u64> = (0..120u64)
                .chain(500..560)
                .filter(|x| x % 3 == rank)
                .collect();
            check_union(comm, &s1, &s2, &output, &checker())
        });
        assert!(verdicts.iter().all(|&v| v));
    }

    #[test]
    fn rejects_dropped_element() {
        let verdicts = run(2, |comm| {
            let rank = comm.rank() as u64;
            let s1: Vec<u64> = (0..40).map(|i| rank * 40 + i).collect();
            let s2: Vec<u64> = (0..20).map(|i| 500 + rank * 20 + i).collect();
            let mut output: Vec<u64> = if rank == 0 {
                (0..80u64).chain(500..540).collect()
            } else {
                Vec::new()
            };
            if rank == 0 {
                output.pop(); // lose one element
            }
            check_union(comm, &s1, &s2, &output, &checker())
        });
        assert!(verdicts.iter().all(|&v| !v));
    }

    #[test]
    fn rejects_element_moved_between_multiplicities() {
        let verdicts = run(1, |comm| {
            // s1 = {1,1,2}, s2 = {3}; output {1,2,2,3} — same length,
            // multiplicities shifted.
            check_union(comm, &[1, 1, 2], &[3], &[1, 2, 2, 3], &checker())
        });
        assert!(verdicts.iter().all(|&v| !v));
    }

    #[test]
    fn union_with_empty_side() {
        let verdicts = run(2, |comm| {
            let rank = comm.rank() as u64;
            let s1: Vec<u64> = (0..10).map(|i| rank * 10 + i).collect();
            let output: Vec<u64> = (0..20u64).filter(|x| x % 2 == rank).collect();
            check_union(comm, &s1, &[], &output, &checker())
        });
        assert!(verdicts.iter().all(|&v| v));
    }
}

//! Result integrity (§2 of the paper).
//!
//! "When the output of an operation or a certificate is provided at all
//! PEs rather than in distributed form, we need to ensure that all PEs
//! received the same output or certificate. This can be achieved by
//! hashing the data in question with a random hash function, and
//! comparing the hash values of all other PEs."
//!
//! [`replicated_consistent`] does exactly that: PE 0 broadcasts its
//! fingerprint, every PE compares, and an AND-all-reduce gathers the
//! verdict — `O(k + α·log p)` as in the paper.

use ccheck_net::wire::Wire;
use ccheck_net::Comm;

/// Seeded streaming fingerprint of a byte slice (64-bit polynomial
/// accumulation over 𝔽-less mixing; collision probability ≈ 2⁻⁶⁴ for
/// random seeds).
pub fn fingerprint_bytes(seed: u64, data: &[u8]) -> u64 {
    let mut acc = seed ^ 0x1505_1505_1505_1505;
    for chunk in data.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        acc = (acc ^ u64::from_le_bytes(word)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        acc ^= acc >> 29;
    }
    // Finalization: length-dependent tail avoids extension ambiguity.
    acc ^= (data.len() as u64).wrapping_mul(0x2545_F491_4F6C_DD1D);
    acc ^ (acc >> 32)
}

/// Verify that a replicated value is bitwise identical on every PE.
/// Every PE returns the same verdict.
pub fn replicated_consistent<T: Wire>(comm: &mut Comm, value: &T, seed: u64) -> bool {
    let bytes = ccheck_net::wire::encode(value);
    let local_fp = fingerprint_bytes(seed, &bytes);
    let root_fp = comm.broadcast(0, local_fp);
    comm.all_agree(root_fp == local_fp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccheck_net::run;

    #[test]
    fn fingerprint_deterministic_and_seeded() {
        let data = b"hello integrity";
        assert_eq!(fingerprint_bytes(1, data), fingerprint_bytes(1, data));
        assert_ne!(fingerprint_bytes(1, data), fingerprint_bytes(2, data));
    }

    #[test]
    fn fingerprint_sensitive_to_every_byte() {
        let base: Vec<u8> = (0..=255).collect();
        let fp = fingerprint_bytes(7, &base);
        for i in 0..base.len() {
            let mut tweaked = base.clone();
            tweaked[i] ^= 1;
            assert_ne!(fp, fingerprint_bytes(7, &tweaked), "byte {i}");
        }
    }

    #[test]
    fn fingerprint_length_sensitive() {
        // Zero-padding must not collide with truncation.
        assert_ne!(
            fingerprint_bytes(3, &[1, 2, 3]),
            fingerprint_bytes(3, &[1, 2, 3, 0])
        );
        assert_ne!(fingerprint_bytes(3, &[]), fingerprint_bytes(3, &[0]));
    }

    #[test]
    fn consistent_replicas_accepted() {
        let verdicts = run(4, |comm| {
            let replicated: Vec<(u64, u64)> = (0..100).map(|i| (i, i * i)).collect();
            replicated_consistent(comm, &replicated, 99)
        });
        assert!(verdicts.iter().all(|&v| v));
    }

    #[test]
    fn diverging_replica_detected() {
        let verdicts = run(4, |comm| {
            let mut replicated: Vec<(u64, u64)> = (0..100).map(|i| (i, i * i)).collect();
            if comm.rank() == 2 {
                replicated[50].1 += 1; // PE 2's copy is corrupt
            }
            replicated_consistent(comm, &replicated, 99)
        });
        assert!(verdicts.iter().all(|&v| !v), "{verdicts:?}");
    }

    #[test]
    fn divergence_at_root_detected() {
        // If PE 0 itself holds the bad copy, all others disagree with it.
        let verdicts = run(3, |comm| {
            let value: u64 = if comm.rank() == 0 { 1 } else { 2 };
            replicated_consistent(comm, &value, 5)
        });
        assert!(verdicts.iter().all(|&v| !v));
    }

    #[test]
    fn single_pe_trivially_consistent() {
        let verdicts = run(1, |comm| replicated_consistent(comm, &42u64, 1));
        assert_eq!(verdicts, vec![true]);
    }
}

//! XOR aggregation checking — the second worked instance of Theorem 1.
//!
//! §4: "the checker works not only for sum aggregation, but also other
//! operations on integers that fulfill certain properties. We require
//! that the reduce operator ⊕ be associative, commutative, and satisfy
//! x ⊕ y ≠ x for all y ≠ 0. Examples include count aggregation … and
//! exclusive or (xor)."
//!
//! For ⊕ = xor the construction simplifies: values never grow, so no
//! modulus is needed and the per-iteration failure bound loses its
//! `1/r̂` term — a single iteration fails with probability at most
//! `1/d` (only the bucket-collision mode of Lemma 2 remains).

use ccheck_hashing::{HasherKind, PartitionedHash};
use ccheck_net::Comm;

use crate::sketch::Sketch;

/// Configuration of the xor-aggregation checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorCheckConfig {
    /// Number of independent iterations.
    pub iterations: usize,
    /// Buckets per iteration (power of two recommended).
    pub buckets: usize,
    /// Hash family mapping keys to buckets.
    pub hasher: HasherKind,
}

impl XorCheckConfig {
    /// Create a validated configuration.
    pub fn new(iterations: usize, buckets: usize, hasher: HasherKind) -> Self {
        assert!(iterations >= 1 && buckets >= 2);
        Self {
            iterations,
            buckets,
            hasher,
        }
    }

    /// Failure bound `(1/d)^its` (no modulus term).
    pub fn failure_bound(&self) -> f64 {
        (1.0 / self.buckets as f64).powi(self.iterations as i32)
    }
}

/// Checker for `SELECT key, XOR_AGG(value) GROUP BY key`.
#[derive(Debug, Clone)]
pub struct XorChecker {
    cfg: XorCheckConfig,
    hash: PartitionedHash,
    mask_pow2: Option<u64>,
    bits: u32,
}

impl XorChecker {
    /// Instantiate from a configuration and a shared seed.
    pub fn new(cfg: XorCheckConfig, seed: u64) -> Self {
        let d = cfg.buckets as u64;
        let needed_bits = 64 - (d - 1).leading_zeros();
        let width = cfg.hasher.output_bits();
        let (bits, mask_pow2) = if d.is_power_of_two() {
            (needed_bits.max(1), Some(d - 1))
        } else {
            ((needed_bits + 12).min(width), None)
        };
        let hash = PartitionedHash::new(cfg.hasher, seed, cfg.iterations, bits);
        Self {
            cfg,
            hash,
            mask_pow2,
            bits,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &XorCheckConfig {
        &self.cfg
    }

    #[inline]
    fn bucket(&self, hv: u64) -> usize {
        match self.mask_pow2 {
            Some(mask) => (hv & mask) as usize,
            None => ((hv * self.cfg.buckets as u64) >> self.bits) as usize,
        }
    }

    /// A fresh, empty streaming sketch for this checker (see
    /// [`crate::sketch::Sketch`]). Xor is its own inverse and merge, so
    /// this is the simplest sketch in the family: the digest is the raw
    /// table.
    pub fn sketch(&self) -> XorSketch<'_> {
        XorSketch {
            checker: self,
            table: vec![0u64; self.cfg.iterations * self.cfg.buckets],
            idx_scratch: vec![0u64; self.cfg.iterations],
        }
    }

    /// Condense pairs into an `iterations × buckets` xor table.
    pub fn condense(&self, pairs: &[(u64, u64)], table: &mut [u64]) {
        let d = self.cfg.buckets;
        assert_eq!(table.len(), self.cfg.iterations * d);
        let mut idx = vec![0u64; self.cfg.iterations];
        for &(key, value) in pairs {
            self.fold_into(table, &mut idx, key, value);
        }
    }

    /// The per-item bucket loop shared by `condense` and [`XorSketch`].
    #[inline]
    fn fold_into(&self, table: &mut [u64], idx_scratch: &mut [u64], key: u64, value: u64) {
        self.hash.hash_all(key, idx_scratch);
        for (segment, &hv) in table
            .chunks_exact_mut(self.cfg.buckets)
            .zip(idx_scratch.iter())
        {
            segment[self.bucket(hv)] ^= value;
        }
    }

    /// Purely local check (p = 1).
    pub fn check_local(&self, input: &[(u64, u64)], asserted: &[(u64, u64)]) -> bool {
        self.check_local_stream(input.iter().copied(), asserted.iter().copied())
    }

    /// Streaming form of [`XorChecker::check_local`]: consumes both
    /// streams element-at-a-time in O(its · d) memory.
    pub fn check_local_stream<I, J>(&self, input: I, asserted: J) -> bool
    where
        I: IntoIterator<Item = (u64, u64)>,
        J: IntoIterator<Item = (u64, u64)>,
    {
        let mut t_in = self.sketch();
        t_in.update_iter(input);
        let mut t_out = self.sketch();
        t_out.update_iter(asserted);
        t_in.finalize() == t_out.finalize()
    }

    /// Distributed check: condensed tables of input and asserted output
    /// travel in one xor tree reduction; verdict broadcast to all PEs.
    pub fn check_distributed(
        &self,
        comm: &mut Comm,
        input: &[(u64, u64)],
        asserted: &[(u64, u64)],
    ) -> bool {
        self.check_distributed_stream(comm, input.iter().copied(), asserted.iter().copied())
    }

    /// Streaming form of [`XorChecker::check_distributed`]; communication
    /// is byte-identical to the slice-based path.
    pub fn check_distributed_stream<I, J>(&self, comm: &mut Comm, input: I, asserted: J) -> bool
    where
        I: IntoIterator<Item = (u64, u64)>,
        J: IntoIterator<Item = (u64, u64)>,
    {
        let mut t_in = self.sketch();
        t_in.update_iter(input);
        let mut t_out = self.sketch();
        t_out.update_iter(asserted);
        self.check_distributed_sketches(comm, t_in, t_out)
    }

    /// Distributed check over pre-folded sketches (the collective
    /// driver: one xor tree reduction plus a verdict broadcast).
    ///
    /// # Panics
    /// Panics if either sketch belongs to a different checker instance.
    pub fn check_distributed_sketches(
        &self,
        comm: &mut Comm,
        input: XorSketch<'_>,
        asserted: XorSketch<'_>,
    ) -> bool {
        assert!(
            std::ptr::eq(input.checker, self) && std::ptr::eq(asserted.checker, self),
            "sketches must come from this checker instance"
        );
        let len = self.cfg.iterations * self.cfg.buckets;
        let mut both = input.finalize();
        both.extend(asserted.finalize());
        let reduced = comm.reduce(0, both, |a, b| {
            a.iter().zip(&b).map(|(x, y)| x ^ y).collect()
        });
        let verdict = reduced.map(|t| t[..len] == t[len..]).unwrap_or(false);
        comm.broadcast(0, verdict)
    }
}

/// Streaming sketch of the xor-aggregation checker: the `its × d` xor
/// table. Obtained from [`XorChecker::sketch`].
#[derive(Clone)]
pub struct XorSketch<'a> {
    checker: &'a XorChecker,
    table: Vec<u64>,
    idx_scratch: Vec<u64>,
}

impl Sketch for XorSketch<'_> {
    type Item = (u64, u64);
    /// The xor table itself — xor needs no canonicalization.
    type Digest = Vec<u64>;

    fn update(&mut self, (key, value): (u64, u64)) {
        self.checker
            .fold_into(&mut self.table, &mut self.idx_scratch, key, value);
    }

    fn merge(&mut self, other: Self) {
        assert!(
            std::ptr::eq(self.checker, other.checker),
            "cannot merge sketches of different checker instances"
        );
        for (slot, &add) in self.table.iter_mut().zip(&other.table) {
            *slot ^= add;
        }
    }

    fn finalize(self) -> Vec<u64> {
        self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccheck_net::run;
    use std::collections::HashMap;

    fn xor_aggregate(input: &[(u64, u64)]) -> Vec<(u64, u64)> {
        let mut m: HashMap<u64, u64> = HashMap::new();
        for &(k, v) in input {
            *m.entry(k).or_insert(0) ^= v;
        }
        let mut out: Vec<(u64, u64)> = m.into_iter().collect();
        out.sort_unstable();
        out
    }

    fn cfg() -> XorCheckConfig {
        XorCheckConfig::new(4, 16, HasherKind::Tab64)
    }

    #[test]
    fn accepts_correct_xor_aggregation() {
        let input: Vec<(u64, u64)> = (0..500u64).map(|i| (i % 31, i * 0x9E37 + 1)).collect();
        let output = xor_aggregate(&input);
        for seed in 0..20 {
            assert!(XorChecker::new(cfg(), seed).check_local(&input, &output));
        }
    }

    #[test]
    fn detects_value_corruption() {
        let input: Vec<(u64, u64)> = (0..500u64).map(|i| (i % 31, i * 0x9E37 + 1)).collect();
        let mut bad = xor_aggregate(&input);
        bad[5].1 ^= 0x100;
        let missed = (0..100)
            .filter(|&seed| XorChecker::new(cfg(), seed).check_local(&input, &bad))
            .count();
        assert_eq!(missed, 0, "δ = 16^-4 ≈ 1.5e-5: no misses in 100 trials");
    }

    #[test]
    fn detects_forgotten_key() {
        let input: Vec<(u64, u64)> = (0..100u64).map(|i| (i % 7, i | 1)).collect();
        let mut bad = xor_aggregate(&input);
        bad.remove(2);
        assert!(!XorChecker::new(cfg(), 3).check_local(&input, &bad));
    }

    #[test]
    fn zero_values_invisible_by_design() {
        // x ⊕ 0 = x: exactly the neutral-element caveat of Theorem 1.
        let input: Vec<(u64, u64)> = vec![(1, 5), (2, 9)];
        let mut output = xor_aggregate(&input);
        output.push((777, 0));
        assert!(XorChecker::new(cfg(), 1).check_local(&input, &output));
    }

    #[test]
    fn failure_bound_formula() {
        let c = XorCheckConfig::new(3, 8, HasherKind::Crc32c);
        assert!((c.failure_bound() - (1.0f64 / 512.0)).abs() < 1e-12);
    }

    #[test]
    fn weak_config_misses_at_predicted_rate() {
        // d = 2, 1 iteration: swapping the values of two keys goes
        // unnoticed iff both keys share a bucket — probability 1/2.
        let input: Vec<(u64, u64)> = (0..100u64).map(|i| (i, i * 3 + 1)).collect();
        let output = xor_aggregate(&input);
        let weak = XorCheckConfig::new(1, 2, HasherKind::Tab64);
        let mut accepted = 0u64;
        let trials = 400;
        for seed in 0..trials {
            let mut bad = output.clone();
            let (a, b) = (bad[10].1, bad[20].1);
            bad[10].1 = b;
            bad[20].1 = a;
            if XorChecker::new(weak, seed).check_local(&input, &bad) {
                accepted += 1;
            }
        }
        let rate = accepted as f64 / trials as f64;
        assert!((0.38..0.62).contains(&rate), "rate {rate} ≉ 0.5");
    }

    #[test]
    fn distributed_check_and_detection() {
        for corrupt in [false, true] {
            let verdicts = run(4, |comm| {
                let rank = comm.rank() as u64;
                let input: Vec<(u64, u64)> = (0..200u64)
                    .map(|i| ((rank * 200 + i) % 23, i | 1))
                    .collect();
                let all: Vec<(u64, u64)> = (0..4u64)
                    .flat_map(|r| (0..200u64).map(move |i| ((r * 200 + i) % 23, i | 1)))
                    .collect();
                let full = xor_aggregate(&all);
                let mut shard: Vec<(u64, u64)> =
                    full.iter().copied().skip(comm.rank()).step_by(4).collect();
                if corrupt && comm.rank() == 1 && !shard.is_empty() {
                    shard[0].1 ^= 0x8000;
                }
                XorChecker::new(cfg(), 9).check_distributed(comm, &input, &shard)
            });
            assert!(verdicts.iter().all(|&v| v != corrupt), "corrupt={corrupt}");
        }
    }

    #[test]
    fn sketch_chunking_invariance() {
        let input: Vec<(u64, u64)> = (0..400u64).map(|i| (i % 29, i * 0x9E37 + 1)).collect();
        let checker = XorChecker::new(cfg(), 6);
        let mut one_shot = vec![0u64; 4 * 16];
        checker.condense(&input, &mut one_shot);
        for chunk in [1usize, 7, 64, 399, 400, 5000] {
            let digest =
                crate::sketch::digest_chunked(|| checker.sketch(), input.iter().copied(), chunk);
            assert_eq!(digest, one_shot, "chunk={chunk}");
        }
    }

    #[test]
    fn streaming_check_matches_slice_path() {
        let input: Vec<(u64, u64)> = (0..300u64).map(|i| (i % 19, i | 1)).collect();
        let output = xor_aggregate(&input);
        let checker = XorChecker::new(cfg(), 2);
        assert!(checker.check_local_stream(input.iter().copied(), output.iter().copied()));
        let mut bad = output.clone();
        bad[0].1 ^= 2;
        assert!(!checker.check_local_stream(input.iter().copied(), bad.iter().copied()));
    }

    #[test]
    fn non_power_of_two_buckets() {
        let c = XorCheckConfig::new(3, 37, HasherKind::Tab64);
        let input: Vec<(u64, u64)> = (0..300u64).map(|i| (i % 41, i | 1)).collect();
        let output = xor_aggregate(&input);
        let checker = XorChecker::new(c, 5);
        assert!(checker.check_local(&input, &output));
        let mut bad = output.clone();
        bad[0].1 ^= 1;
        assert!(!checker.check_local(&input, &bad));
    }
}

//! The sum-aggregation checker (§4 of the paper: Algorithm 1, Theorem 1,
//! Lemmata 2–3).
//!
//! To check `SELECT key, SUM(value) GROUP BY key`, the checker applies a
//! naïve sum reduction to a *condensed* version of both the operation's
//! input and its asserted output: a random hash function maps the
//! unbounded key space onto `d` buckets, and per-bucket sums are kept in
//! the residue ring ℤ/rℤ for a random modulus `r ∈ (r̂, 2r̂]`. If the
//! aggregation was correct, both condensed tables agree for *every* hash
//! function and modulus; if it was wrong, they disagree with probability
//! at least `1 − (1/r̂ + 1/d)` per iteration (Lemma 2).
//!
//! Engineering details from §7.1, reproduced here:
//!
//! * all iterations share **one** hash evaluation whose bits are
//!   partitioned into per-iteration bucket indices
//!   ([`ccheck_hashing::PartitionedHash`]),
//! * bucket accumulators are 64-bit and added **without** modulo; the
//!   expensive reduction runs only when an addition would overflow
//!   (detected via `overflowing_add`),
//! * the input-side and output-side tables of all iterations travel in a
//!   **single** reduction message, so the whole check costs one tree
//!   reduction plus one broadcast: `O((n/p + β·d·w·its) + α·log p)`.

use ccheck_hashing::field::addmod;
use ccheck_hashing::{Mt19937_64, PartitionedHash};
use ccheck_net::Comm;

use crate::config::SumCheckConfig;
use crate::sketch::Sketch;

/// How bucket indices are derived from the partitioned hash value.
#[derive(Debug, Clone, Copy)]
enum BucketMap {
    /// `d` is a power of two: mask the low bits — zero bias.
    Pow2 { mask: u64 },
    /// General `d`: fast-range map `(v · d) >> bits` over a wider group;
    /// bias ≤ d/2^bits (kept ≤ 2^−12 by construction).
    FastRange { d: u64, bits: u32 },
}

impl BucketMap {
    #[inline]
    fn map(&self, v: u64) -> usize {
        match *self {
            BucketMap::Pow2 { mask } => (v & mask) as usize,
            BucketMap::FastRange { d, bits } => ((v * d) >> bits) as usize,
        }
    }
}

/// A configured instance of the sum-aggregation checker.
///
/// Construction fixes the random hash function and the per-iteration
/// moduli from `seed`; in an SPMD run every PE must construct the checker
/// with the same `(config, seed)` so their condensed tables are
/// compatible.
#[derive(Debug, Clone)]
pub struct SumChecker {
    cfg: SumCheckConfig,
    hash: PartitionedHash,
    /// Modulus of each iteration, drawn uniformly from `(r̂, 2r̂]`.
    moduli: Vec<u64>,
    bucket_map: BucketMap,
}

impl SumChecker {
    /// Instantiate from a configuration and a shared seed.
    pub fn new(cfg: SumCheckConfig, seed: u64) -> Self {
        let d = cfg.buckets as u64;
        let needed_bits = 64 - (d - 1).leading_zeros(); // ⌈log₂ d⌉
        let width = cfg.hasher.output_bits();
        let (bits, bucket_map) = if d.is_power_of_two() {
            (needed_bits.max(1), BucketMap::Pow2 { mask: d - 1 })
        } else {
            // Widen the group so the fast-range bias stays ≤ 2^−12.
            let bits = (needed_bits + 12).min(width);
            (bits, BucketMap::FastRange { d, bits })
        };
        let hash = PartitionedHash::new(cfg.hasher, seed, cfg.iterations, bits);
        // Moduli from an MT19937-64 stream over the same seed (domain-
        // separated) — identical on every PE.
        let mut rng = Mt19937_64::new(seed ^ 0x6D6F_6475_6C75_7321);
        let rhat = cfg.rhat();
        let moduli = (0..cfg.iterations)
            .map(|_| rhat + 1 + rng.next() % rhat)
            .collect();
        Self {
            cfg,
            hash,
            moduli,
            bucket_map,
        }
    }

    /// The configuration this checker was built with.
    pub fn config(&self) -> &SumCheckConfig {
        &self.cfg
    }

    /// The per-iteration moduli (each in `(r̂, 2r̂]`).
    pub fn moduli(&self) -> &[u64] {
        &self.moduli
    }

    /// Length of one condensed table: `iterations · buckets` u64 slots.
    pub fn table_len(&self) -> usize {
        self.cfg.iterations * self.cfg.buckets
    }

    /// A fresh zeroed condensed table.
    pub fn new_table(&self) -> Vec<u64> {
        vec![0u64; self.table_len()]
    }

    /// Add one already-reduced residue (`< r_i`) into a bucket with lazy
    /// overflow handling (§7.1's jump-on-overflow trick).
    #[inline]
    fn bucket_add(slot: &mut u64, add: u64, r: u64) {
        let (sum, overflow) = slot.overflowing_add(add);
        *slot = if overflow {
            // Rare path: reduce both operands, then add in ℤ/rℤ.
            addmod(*slot % r, add % r, r)
        } else {
            sum
        };
    }

    /// The shared bucket loop of every condense variant (the one place
    /// the `cRed` inner loop lives): hash `key` once, then add a
    /// per-iteration residue into each iteration's bucket. `residue_for`
    /// maps the iteration's modulus to the value to add — the identity
    /// for unsigned values, the positive-residue embedding for signed
    /// ones.
    #[inline]
    fn fold_into(
        &self,
        table: &mut [u64],
        idx_scratch: &mut [u64],
        key: u64,
        residue_for: impl Fn(u64) -> u64,
    ) {
        self.hash.hash_all(key, idx_scratch);
        // Iterate per-iteration table segments in lockstep with the
        // hash groups and moduli: one bounds check per segment.
        for ((segment, &hv), &r) in table
            .chunks_exact_mut(self.cfg.buckets)
            .zip(idx_scratch.iter())
            .zip(&self.moduli)
        {
            Self::bucket_add(&mut segment[self.bucket_map.map(hv)], residue_for(r), r);
        }
    }

    /// The positive residue (`< r`) representing signed `value` in ℤ/rℤ.
    #[inline]
    fn signed_residue(value: i64, r: u64) -> u64 {
        if value >= 0 {
            value as u64
        } else {
            let neg = (value.unsigned_abs()) % r;
            if neg == 0 {
                0
            } else {
                r - neg
            }
        }
    }

    /// A fresh, empty streaming sketch for this checker (see
    /// [`crate::sketch::Sketch`]). Feed items with `update`, combine
    /// partial sketches with `merge`; the finalized digest is identical
    /// for every chunking of the same multiset.
    pub fn sketch(&self) -> SumSketch<'_> {
        SumSketch {
            checker: self,
            table: self.new_table(),
            idx_scratch: vec![0u64; self.cfg.iterations],
        }
    }

    /// Condense unsigned (key, value) pairs into `table` (the `cRed` of
    /// Algorithm 1, all iterations at once). `table` must come from
    /// [`SumChecker::new_table`] or a previous `condense` call; values
    /// accumulate.
    pub fn condense(&self, pairs: &[(u64, u64)], table: &mut [u64]) {
        assert_eq!(table.len(), self.table_len());
        let mut idx_scratch = vec![0u64; self.cfg.iterations];
        for &(key, value) in pairs {
            self.fold_into(table, &mut idx_scratch, key, |_| value);
        }
    }

    /// Condense signed (key, value) pairs — used by the median checker,
    /// where elements map to ±1 (§6.3). Negative values enter as their
    /// positive residue `r − (−v mod r)`.
    pub fn condense_signed(&self, pairs: &[(u64, i64)], table: &mut [u64]) {
        assert_eq!(table.len(), self.table_len());
        let mut idx_scratch = vec![0u64; self.cfg.iterations];
        for &(key, value) in pairs {
            self.fold_into(table, &mut idx_scratch, key, |r| {
                Self::signed_residue(value, r)
            });
        }
    }

    /// Reduce every bucket to its canonical residue (`< r_i`). Must be
    /// called before tables are compared or communicated.
    pub fn finalize(&self, table: &mut [u64]) {
        let d = self.cfg.buckets;
        for (i, &r) in self.moduli.iter().enumerate() {
            for slot in &mut table[i * d..(i + 1) * d] {
                *slot %= r;
            }
        }
    }

    /// Element-wise combine of two finalized tables in ℤ/r_iℤ.
    pub fn combine(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        assert_eq!(a.len(), b.len());
        let d = self.cfg.buckets;
        a.iter()
            .zip(b)
            .enumerate()
            .map(|(idx, (&x, &y))| {
                let r = self.moduli[(idx / d) % self.cfg.iterations];
                addmod(x % r, y % r, r)
            })
            .collect()
    }

    /// Purely local check (p = 1): condense input and asserted output,
    /// compare. Exposed for unit tests and the overhead benchmarks.
    pub fn check_local(&self, input: &[(u64, u64)], asserted: &[(u64, u64)]) -> bool {
        self.check_local_stream(input.iter().copied(), asserted.iter().copied())
    }

    /// Streaming form of [`SumChecker::check_local`]: consumes the input
    /// and asserted-output streams element-at-a-time, so `n` never needs
    /// to be materialized — memory stays O(its · d).
    pub fn check_local_stream<I, J>(&self, input: I, asserted: J) -> bool
    where
        I: IntoIterator<Item = (u64, u64)>,
        J: IntoIterator<Item = (u64, u64)>,
    {
        let mut t_in = self.sketch();
        t_in.update_iter(input);
        let mut t_out = self.sketch();
        t_out.update_iter(asserted);
        t_in.finalize() == t_out.finalize()
    }

    /// Chunked form of [`SumChecker::check_local`]: folds each side in
    /// `chunk`-sized batches through fresh sketches and merges them —
    /// the digest (and verdict) is identical for every chunk size.
    pub fn check_local_chunked(
        &self,
        input: &[(u64, u64)],
        asserted: &[(u64, u64)],
        chunk: usize,
    ) -> bool {
        let digest = |side: &[(u64, u64)]| {
            crate::sketch::digest_chunked(|| self.sketch(), side.iter().copied(), chunk)
        };
        digest(input) == digest(asserted)
    }

    /// Distributed check of a sum aggregation (Algorithm 1).
    ///
    /// `input` is this PE's share of the operation's input; `asserted` is
    /// this PE's share of the asserted output (any distribution, but the
    /// shards must be **disjoint**: each key's aggregate appears exactly
    /// once globally — a replicated output would be double-counted; use
    /// an empty shard on all but one PE for replicated results). Both
    /// condensed tables travel in one tree reduction; the verdict is
    /// broadcast so **every** PE returns the same boolean.
    ///
    /// One-sided error: a correct result is always accepted; an incorrect
    /// one is (erroneously) accepted with probability at most
    /// [`SumCheckConfig::failure_bound`].
    pub fn check_distributed(
        &self,
        comm: &mut Comm,
        input: &[(u64, u64)],
        asserted: &[(u64, u64)],
    ) -> bool {
        self.check_distributed_stream(comm, input.iter().copied(), asserted.iter().copied())
    }

    /// Streaming form of [`SumChecker::check_distributed`]: each PE folds
    /// its input and asserted-output streams into constant-size sketches,
    /// then the digests travel in the usual single tree reduction. The
    /// communication volume is byte-identical to the slice-based path —
    /// only the local memory drops from O(n/p) to O(its · d).
    pub fn check_distributed_stream<I, J>(&self, comm: &mut Comm, input: I, asserted: J) -> bool
    where
        I: IntoIterator<Item = (u64, u64)>,
        J: IntoIterator<Item = (u64, u64)>,
    {
        let mut t_in = self.sketch();
        t_in.update_iter(input);
        let mut t_out = self.sketch();
        t_out.update_iter(asserted);
        self.check_distributed_sketches(comm, t_in, t_out)
    }

    /// Distributed check over pre-folded sketches — the driver behind
    /// every distributed sum check. Use this directly when the two
    /// streams were folded incrementally (e.g. chunk-merged across
    /// threads) before the collective phase.
    ///
    /// # Panics
    /// Panics if either sketch belongs to a different checker instance.
    pub fn check_distributed_sketches(
        &self,
        comm: &mut Comm,
        input: SumSketch<'_>,
        asserted: SumSketch<'_>,
    ) -> bool {
        assert!(
            std::ptr::eq(input.checker, self) && std::ptr::eq(asserted.checker, self),
            "sketches must come from this checker instance"
        );
        let mut both = input.finalize();
        both.extend(asserted.finalize());
        self.reduce_and_compare(comm, both)
    }

    /// Count-aggregation check (the "Count Agg." row of Table 1):
    /// conceptually sum aggregation "where the value of every element is
    /// mapped to 1" (§4). `input_keys` is this PE's share of input keys;
    /// `asserted_counts` the asserted per-key counts.
    pub fn check_count_distributed(
        &self,
        comm: &mut Comm,
        input_keys: &[u64],
        asserted_counts: &[(u64, u64)],
    ) -> bool {
        self.check_distributed_stream(
            comm,
            input_keys.iter().map(|&k| (k, 1)),
            asserted_counts.iter().copied(),
        )
    }

    /// Signed-value variant of [`SumChecker::check_distributed`] (median
    /// checker backend). An empty `asserted` means "all sums are zero".
    pub fn check_distributed_signed(
        &self,
        comm: &mut Comm,
        input: &[(u64, i64)],
        asserted: &[(u64, i64)],
    ) -> bool {
        let mut t_in = self.sketch();
        let mut t_out = self.sketch();
        for &pair in input {
            t_in.update_signed(pair);
        }
        for &pair in asserted {
            t_out.update_signed(pair);
        }
        self.check_distributed_sketches(comm, t_in, t_out)
    }

    /// Reduce concatenated (input ‖ output) tables to PE 0, compare
    /// halves there, broadcast the verdict.
    fn reduce_and_compare(&self, comm: &mut Comm, both: Vec<u64>) -> bool {
        let d = self.cfg.buckets;
        let its = self.cfg.iterations;
        let moduli = &self.moduli;
        let reduced = comm.reduce(0, both, |a, b| {
            a.iter()
                .zip(&b)
                .enumerate()
                .map(|(idx, (&x, &y))| {
                    let r = moduli[(idx / d) % its];
                    addmod(x, y, r)
                })
                .collect()
        });
        let verdict_at_root = reduced
            .map(|t| {
                let (t_in, t_out) = t.split_at(self.table_len());
                t_in == t_out
            })
            .unwrap_or(false);
        comm.broadcast(0, verdict_at_root)
    }
}

/// Streaming sketch of the sum-aggregation checker: the `its × d`
/// condensed table, fed one pair at a time. Obtained from
/// [`SumChecker::sketch`]; see [`crate::sketch`] for the contract.
///
/// Memory is O(its · d) regardless of how many items are folded in, and
/// any chunking of the input yields a bit-identical
/// [`Sketch::finalize`] digest.
#[derive(Clone)]
pub struct SumSketch<'a> {
    checker: &'a SumChecker,
    table: Vec<u64>,
    idx_scratch: Vec<u64>,
}

impl SumSketch<'_> {
    /// Fold a signed pair (the median checker's ±1 streams): the value
    /// enters as its positive residue in each iteration's ℤ/rᵢℤ.
    pub fn update_signed(&mut self, (key, value): (u64, i64)) {
        self.checker
            .fold_into(&mut self.table, &mut self.idx_scratch, key, |r| {
                SumChecker::signed_residue(value, r)
            });
    }

    /// The raw (unfinalized) condensed table — bucket sums with lazy
    /// modulo reduction, as communicated nowhere; finalize before
    /// comparing.
    pub fn table(&self) -> &[u64] {
        &self.table
    }
}

impl Sketch for SumSketch<'_> {
    type Item = (u64, u64);
    /// The finalized condensed table: canonical residues `< rᵢ`.
    type Digest = Vec<u64>;

    fn update(&mut self, (key, value): (u64, u64)) {
        self.checker
            .fold_into(&mut self.table, &mut self.idx_scratch, key, |_| value);
    }

    fn merge(&mut self, other: Self) {
        assert!(
            std::ptr::eq(self.checker, other.checker),
            "cannot merge sketches of different checker instances"
        );
        let d = self.checker.cfg.buckets;
        for ((i, slot), &add) in self.table.iter_mut().enumerate().zip(&other.table) {
            let r = self.checker.moduli[i / d];
            SumChecker::bucket_add(slot, add, r);
        }
    }

    fn finalize(self) -> Vec<u64> {
        let mut table = self.table;
        self.checker.finalize(&mut table);
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccheck_hashing::HasherKind;
    use ccheck_net::run;
    use std::collections::HashMap;

    fn cfg(its: usize, d: usize, m: u32) -> SumCheckConfig {
        SumCheckConfig::new(its, d, m, HasherKind::Tab64)
    }

    fn aggregate(input: &[(u64, u64)]) -> Vec<(u64, u64)> {
        let mut map: HashMap<u64, u64> = HashMap::new();
        for &(k, v) in input {
            *map.entry(k).or_insert(0) = map.get(&k).copied().unwrap_or(0).wrapping_add(v);
        }
        let mut out: Vec<(u64, u64)> = map.into_iter().collect();
        out.sort_unstable();
        out
    }

    fn example_input(n: u64) -> Vec<(u64, u64)> {
        (0..n).map(|i| (i % 37, i * 13 + 1)).collect()
    }

    #[test]
    fn accepts_correct_result_always() {
        // One-sided error: across many seeds, a correct result must
        // never be rejected.
        let input = example_input(500);
        let output = aggregate(&input);
        for seed in 0..50 {
            let checker = SumChecker::new(cfg(4, 8, 5), seed);
            assert!(checker.check_local(&input, &output), "seed {seed}");
        }
    }

    #[test]
    fn rejects_single_value_corruption_with_high_probability() {
        let input = example_input(500);
        let output = aggregate(&input);
        let mut rejected = 0;
        let trials = 200;
        for seed in 0..trials {
            let checker = SumChecker::new(cfg(4, 8, 5), seed);
            let mut bad = output.clone();
            bad[7].1 += 1;
            if !checker.check_local(&input, &bad) {
                rejected += 1;
            }
        }
        // δ = (1/32 + 1/8)^4 ≈ 6e-4; in 200 trials expect ≈ 0 accepts.
        assert!(rejected >= trials - 2, "rejected only {rejected}/{trials}");
    }

    #[test]
    fn rejects_missing_key() {
        let input = example_input(500);
        let output = aggregate(&input);
        let checker = SumChecker::new(cfg(4, 8, 5), 42);
        let mut bad = output.clone();
        bad.remove(3); // "forget" a key entirely
        assert!(!checker.check_local(&input, &bad));
    }

    #[test]
    fn rejects_extra_key() {
        let input = example_input(500);
        let mut bad = aggregate(&input);
        bad.push((999_999, 1));
        let checker = SumChecker::new(cfg(4, 8, 5), 42);
        assert!(!checker.check_local(&input, &bad));
    }

    #[test]
    fn zero_value_insertion_is_invisible() {
        // x ⊕ 0 = x: adding a neutral element cannot be detected (and is
        // not an error for sum aggregation semantics).
        let input = example_input(100);
        let mut output = aggregate(&input);
        output.push((123_456, 0));
        let checker = SumChecker::new(cfg(4, 8, 5), 1);
        assert!(checker.check_local(&input, &output));
    }

    #[test]
    fn empty_input_empty_output_accepted() {
        let checker = SumChecker::new(cfg(2, 4, 5), 9);
        assert!(checker.check_local(&[], &[]));
    }

    #[test]
    fn single_iteration_two_buckets_sometimes_misses() {
        // With d=2, r̂ large: swap-keys manipulation escapes whenever both
        // keys hash to the same bucket (prob ≈ 1/2). Statistically check
        // the failure rate is in the right ballpark, confirming the
        // checker is no stronger than theory predicts (sanity against
        // accidentally comparing raw data).
        let input: Vec<(u64, u64)> = (0..100).map(|i| (i, 10 + i)).collect();
        let output = aggregate(&input);
        let mut accepted_bad = 0;
        let trials = 400;
        for seed in 0..trials {
            let checker = SumChecker::new(cfg(1, 2, 20), seed);
            let mut bad = output.clone();
            // Swap the values of two keys (IncDec-like, modulus-immune).
            let (v5, v9) = (bad[5].1, bad[9].1);
            bad[5].1 = v9;
            bad[9].1 = v5;
            if checker.check_local(&input, &bad) {
                accepted_bad += 1;
            }
        }
        let rate = accepted_bad as f64 / trials as f64;
        assert!(
            (0.35..0.65).contains(&rate),
            "false-accept rate {rate} should be ≈ 1/2 for d=2"
        );
    }

    #[test]
    fn overflow_lazy_modulo_correct() {
        // Values near u64::MAX force the overflow path; the result must
        // equal a naive residue computation.
        let c = cfg(2, 4, 5);
        let checker = SumChecker::new(c, 3);
        let input: Vec<(u64, u64)> = (0..64).map(|i| (i % 4, u64::MAX - i)).collect();
        let mut table = checker.new_table();
        checker.condense(&input, &mut table);
        checker.finalize(&mut table);
        // Naive recomputation in u128.
        let mut expected = vec![0u128; checker.table_len()];
        let mut idx = vec![0u64; 2];
        for &(k, v) in &input {
            checker.hash.hash_all(k, &mut idx);
            for i in 0..2 {
                let bucket = checker.bucket_map.map(idx[i]);
                let r = checker.moduli[i] as u128;
                let slot = &mut expected[i * 4 + bucket];
                *slot = (*slot + v as u128) % r;
            }
        }
        let expected: Vec<u64> = expected.into_iter().map(|x| x as u64).collect();
        assert_eq!(table, expected);
    }

    #[test]
    fn signed_condense_matches_integer_semantics() {
        // +1/−1 per key must cancel exactly.
        let checker = SumChecker::new(cfg(3, 8, 6), 11);
        let pairs: Vec<(u64, i64)> = (0..50)
            .flat_map(|k| [(k, 1i64), (k, 1), (k, -1), (k, -1)])
            .collect();
        let mut table = checker.new_table();
        checker.condense_signed(&pairs, &mut table);
        checker.finalize(&mut table);
        assert!(table.iter().all(|&x| x == 0), "non-zero residue: {table:?}");
    }

    #[test]
    fn signed_detects_imbalance() {
        let checker = SumChecker::new(cfg(4, 8, 6), 11);
        let pairs: Vec<(u64, i64)> = vec![(1, 1), (1, 1), (1, -1)]; // sum = 1
        let mut table = checker.new_table();
        checker.condense_signed(&pairs, &mut table);
        checker.finalize(&mut table);
        assert!(table.iter().any(|&x| x != 0));
    }

    #[test]
    fn non_power_of_two_buckets() {
        // d = 37 (a Table 2 optimum) exercises the fast-range path.
        let c = SumCheckConfig::new(3, 37, 8, HasherKind::Tab64);
        let checker = SumChecker::new(c, 5);
        let input = example_input(1000);
        let output = aggregate(&input);
        assert!(checker.check_local(&input, &output));
        let mut bad = output.clone();
        bad[0].1 ^= 0x10;
        assert!(!checker.check_local(&input, &bad));
    }

    #[test]
    fn moduli_in_half_open_interval() {
        for m in [3u32, 5, 15, 31] {
            let c = cfg(16, 4, m);
            let checker = SumChecker::new(c, 77);
            let rhat = 1u64 << m;
            for &r in checker.moduli() {
                assert!(r > rhat && r <= 2 * rhat, "m={m}: r={r}");
            }
        }
    }

    #[test]
    fn distributed_matches_local_semantics() {
        // 4 PEs, each holding a share of input and output; the
        // distributed verdict must equal the local all-data verdict.
        for corrupt in [false, true] {
            let verdicts = run(4, |comm| {
                let rank = comm.rank() as u64;
                let input: Vec<(u64, u64)> = (0..250u64)
                    .map(|i| ((rank * 250 + i) % 37, i + 1))
                    .collect();
                // Correct global aggregation computed redundantly per PE
                // (cheap here; it is the checker under test, not the op).
                let all_input: Vec<(u64, u64)> = (0..4u64)
                    .flat_map(|r| (0..250u64).map(move |i| ((r * 250 + i) % 37, i + 1)))
                    .collect();
                let full = aggregate(&all_input);
                // Distribute output shards round-robin.
                let mut shard: Vec<(u64, u64)> =
                    full.iter().copied().skip(comm.rank()).step_by(4).collect();
                if corrupt && comm.rank() == 2 && !shard.is_empty() {
                    shard[0].1 += 5;
                }
                let checker = SumChecker::new(cfg(6, 16, 9), 1234);
                checker.check_distributed(comm, &input, &shard)
            });
            assert!(
                verdicts.iter().all(|&v| v != corrupt),
                "corrupt={corrupt}: {verdicts:?}"
            );
            // All PEs agree on the verdict.
            assert!(verdicts.windows(2).all(|w| w[0] == w[1]));
        }
    }

    #[test]
    fn distributed_signed_zero_target() {
        let verdicts = run(3, |comm| {
            let rank = comm.rank() as u64;
            // Balanced ±1 pairs across PEs: (k, +1) on this PE, (k, −1)
            // on the next — global per-key sums are all zero.
            let pairs: Vec<(u64, i64)> = (0..60)
                .map(|i| (i, if (i + rank).is_multiple_of(3) { 1 } else { 0 }))
                .collect();
            let neg: Vec<(u64, i64)> = pairs.iter().map(|&(k, v)| (k, -v)).collect();
            let all: Vec<(u64, i64)> = pairs.into_iter().chain(neg).collect();
            let checker = SumChecker::new(cfg(4, 8, 6), 5);
            checker.check_distributed_signed(comm, &all, &[])
        });
        assert!(verdicts.iter().all(|&v| v));
    }

    #[test]
    fn communication_volume_is_config_bound_not_input_bound() {
        use ccheck_net::router::run_with_stats;
        // The checker's traffic must depend on (its × d), not on n.
        let volume_for_n = |n: u64| {
            let (_, snap) = run_with_stats(4, |comm| {
                let input: Vec<(u64, u64)> = (0..n).map(|i| (i % 17, i)).collect();
                let output = aggregate(&input); // everyone checks vs full output on PE 0
                let shard = if comm.rank() == 0 { output } else { Vec::new() };
                let checker = SumChecker::new(cfg(4, 16, 7), 9);
                checker.check_distributed(comm, &input, &shard)
            });
            snap.total_bytes()
        };
        let small = volume_for_n(100);
        let large = volume_for_n(10_000);
        assert_eq!(small, large, "checker volume must be independent of n");
    }

    #[test]
    fn count_aggregation_convenience() {
        let verdicts = run(3, |comm| {
            let rank = comm.rank() as u64;
            let keys: Vec<u64> = (0..90).map(|i| (rank * 90 + i) % 7).collect();
            // Correct global counts: 270 elements over 7 keys.
            let mut counts = [0u64; 7];
            for r in 0..3u64 {
                for i in 0..90 {
                    counts[((r * 90 + i) % 7) as usize] += 1;
                }
            }
            let asserted: Vec<(u64, u64)> = if comm.rank() == 0 {
                counts
                    .iter()
                    .enumerate()
                    .map(|(k, &c)| (k as u64, c))
                    .collect()
            } else {
                Vec::new()
            };
            let checker = SumChecker::new(cfg(4, 16, 9), 3);
            let ok = checker.check_count_distributed(comm, &keys, &asserted);
            // Off-by-one count must be rejected.
            let mut bad = asserted.clone();
            if comm.rank() == 0 {
                bad[2].1 += 1;
            }
            let caught = !checker.check_count_distributed(comm, &keys, &bad);
            ok && caught
        });
        assert!(verdicts.iter().all(|&v| v));
    }

    #[test]
    fn replicated_output_shards_are_rejected() {
        // The documented contract: output shards must be disjoint. A
        // result replicated on every PE is double-counted and rejected
        // (feeding it from a single PE is the correct usage).
        let verdicts = run(2, |comm| {
            let input: Vec<(u64, u64)> = (0..100).map(|i| (i % 9, i + 1)).collect();
            let all_input: Vec<(u64, u64)> = (0..2)
                .flat_map(|_| (0..100u64).map(|i| (i % 9, i + 1)))
                .collect();
            let full = aggregate(&all_input);
            let checker = SumChecker::new(cfg(4, 16, 9), 8);
            // Wrong: every PE feeds the whole output.
            let wrong = checker.check_distributed(comm, &input, &full);
            // Right: only PE 0 feeds it.
            let shard = if comm.rank() == 0 { full } else { Vec::new() };
            let right = checker.check_distributed(comm, &input, &shard);
            (wrong, right)
        });
        assert!(verdicts.iter().all(|&(w, r)| !w && r));
    }

    #[test]
    fn sketch_chunking_invariance() {
        // Any chunking of the input folds to the same finalized digest
        // as the one-shot condense path.
        let input = example_input(777);
        let checker = SumChecker::new(cfg(4, 37, 7), 21); // fast-range path too
        let mut one_shot = checker.new_table();
        checker.condense(&input, &mut one_shot);
        checker.finalize(&mut one_shot);
        for chunk in [1usize, 3, 10, 100, 776, 777, 10_000] {
            let digest =
                crate::sketch::digest_chunked(|| checker.sketch(), input.iter().copied(), chunk);
            assert_eq!(digest, one_shot, "chunk={chunk}");
        }
    }

    #[test]
    fn sketch_merge_handles_overflow_buckets() {
        // Values near u64::MAX in both halves force the merge's lazy
        // modulo path; the digest must match the one-shot fold.
        let checker = SumChecker::new(cfg(2, 4, 5), 3);
        let input: Vec<(u64, u64)> = (0..64).map(|i| (i % 4, u64::MAX - i)).collect();
        let mut whole = checker.sketch();
        whole.update_iter(input.iter().copied());
        let mut left = checker.sketch();
        left.update_iter(input[..32].iter().copied());
        let mut right = checker.sketch();
        right.update_iter(input[32..].iter().copied());
        left.merge(right);
        assert_eq!(left.finalize(), whole.finalize());
    }

    #[test]
    fn streaming_local_check_matches_slice_path() {
        let input = example_input(500);
        let output = aggregate(&input);
        let checker = SumChecker::new(cfg(4, 8, 5), 7);
        assert!(checker.check_local_stream(input.iter().copied(), output.iter().copied()));
        assert!(checker.check_local_chunked(&input, &output, 13));
        let mut bad = output.clone();
        bad[1].1 += 3;
        assert!(!checker.check_local_stream(input.iter().copied(), bad.iter().copied()));
        assert!(!checker.check_local_chunked(&input, &bad, 13));
    }

    #[test]
    fn streaming_distributed_volume_identical_to_slice_path() {
        use ccheck_net::router::run_with_stats;
        // The sketch path must not move a single extra byte.
        let run_variant = |streaming: bool| {
            run_with_stats(4, move |comm| {
                let rank = comm.rank() as u64;
                let input: Vec<(u64, u64)> = (0..300u64).map(|i| ((rank + i) % 23, i)).collect();
                let all: Vec<(u64, u64)> = (0..4u64)
                    .flat_map(|r| (0..300u64).map(move |i| ((r + i) % 23, i)))
                    .collect();
                let full = aggregate(&all);
                let shard = if comm.rank() == 0 { full } else { Vec::new() };
                let checker = SumChecker::new(cfg(4, 16, 7), 9);
                if streaming {
                    checker.check_distributed_stream(
                        comm,
                        input.iter().copied(),
                        shard.iter().copied(),
                    )
                } else {
                    checker.check_distributed(comm, &input, &shard)
                }
            })
        };
        let (slice_verdicts, slice_stats) = run_variant(false);
        let (stream_verdicts, stream_stats) = run_variant(true);
        assert_eq!(slice_verdicts, stream_verdicts);
        assert!(slice_verdicts.iter().all(|&v| v));
        assert_eq!(slice_stats.per_pe(), stream_stats.per_pe());
    }

    #[test]
    fn scales_to_many_pes() {
        // p = 32 smoke test: tree reduction depth 5, verdict uniform.
        let verdicts = run(32, |comm| {
            let rank = comm.rank() as u64;
            let input: Vec<(u64, u64)> = (0..50).map(|i| ((rank * 50 + i) % 13, i + 1)).collect();
            let all: Vec<(u64, u64)> = (0..32u64)
                .flat_map(|r| (0..50u64).map(move |i| ((r * 50 + i) % 13, i + 1)))
                .collect();
            let full = aggregate(&all);
            let shard = if comm.rank() == 0 { full } else { Vec::new() };
            let checker = SumChecker::new(cfg(4, 16, 9), 17);
            checker.check_distributed(comm, &input, &shard)
        });
        assert_eq!(verdicts.len(), 32);
        assert!(verdicts.iter().all(|&v| v));
    }
}

//! Minimum/maximum aggregation checking (§6.2, Theorem 9).
//!
//! Min/max cannot use the sum checker (`min(a,b) = a` for `b ≥ a`
//! violates the ⊕ requirement), and checking that every asserted minimum
//! *occurs* in the input seems to require Ω(k) communication without
//! help. The paper's remedy: the asserted output **and** a certificate
//! naming, for every key, the PE that holds the minimum must be
//! replicated at all PEs. Then:
//!
//! * (a) no PE may hold an element smaller than its key's asserted
//!   minimum — checked locally against the replicated output,
//! * (b) the PE named by the certificate must actually hold an element
//!   equal to the asserted minimum — checked locally by that PE,
//! * every input key must appear in the asserted output (a "forgotten"
//!   key is detected by the PE holding its elements),
//! * the replicas themselves must be consistent (§2 result integrity).
//!
//! This checker is **deterministic**: it never errs (Theorem 9).

use ccheck_net::Comm;

use crate::integrity::replicated_consistent;

/// Which extremum an [`check_extrema`] call verifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Extremum {
    /// Per-key minimum.
    Min,
    /// Per-key maximum.
    Max,
}

/// Check a min/max aggregation (Theorem 9).
///
/// * `input` — this PE's share of the operation's input.
/// * `asserted` — the **full** asserted output `(key, optimum)`, sorted
///   by key, replicated at every PE.
/// * `locations` — the certificate: `(key, rank)` sorted by key, also
///   replicated; `rank` claims to hold an element equal to the optimum.
///
/// Deterministic and exact; every PE returns the same verdict.
pub fn check_extrema(
    comm: &mut Comm,
    which: Extremum,
    input: &[(u64, u64)],
    asserted: &[(u64, u64)],
    locations: &[(u64, u64)],
) -> bool {
    // Replicas must agree everywhere (result integrity, §2). The seed is
    // arbitrary but shared; integrity failure probability is ~2^-64.
    let replicas_ok = replicated_consistent(
        comm,
        &(asserted.to_vec(), locations.to_vec()),
        0x6D69_6E6D_6178,
    );

    let mut local_ok = true;

    // The certificate must cover exactly the asserted key set, ordered.
    if asserted.len() != locations.len()
        || asserted
            .iter()
            .zip(locations)
            .any(|(&(ka, _), &(kl, _))| ka != kl)
        || !asserted.windows(2).all(|w| w[0].0 < w[1].0)
    {
        local_ok = false;
    }
    // Certificate ranks must be valid PE ids.
    if locations
        .iter()
        .any(|&(_, rank)| rank >= comm.size() as u64)
    {
        local_ok = false;
    }

    if local_ok {
        let lookup = |key: u64| -> Option<u64> {
            asserted
                .binary_search_by_key(&key, |&(k, _)| k)
                .ok()
                .map(|i| asserted[i].1)
        };
        // (a) + key coverage: every local element's key must be asserted
        // and must not beat the asserted optimum.
        for &(k, v) in input {
            match lookup(k) {
                None => {
                    local_ok = false; // operation "forgot" this key
                    break;
                }
                Some(opt) => {
                    let beats = match which {
                        Extremum::Min => v < opt,
                        Extremum::Max => v > opt,
                    };
                    if beats {
                        local_ok = false;
                        break;
                    }
                }
            }
        }
    }

    if local_ok {
        // (b) witness check: for certificate entries naming this PE, an
        // element equal to the optimum must exist locally.
        let my_rank = comm.rank() as u64;
        let mine: Vec<(u64, u64)> = locations
            .iter()
            .filter(|&&(_, rank)| rank == my_rank)
            .map(|&(k, _)| {
                let opt = asserted[asserted
                    .binary_search_by_key(&k, |&(ak, _)| ak)
                    .expect("cert keys = asserted keys")]
                .1;
                (k, opt)
            })
            .collect();
        if !mine.is_empty() {
            let local_set: std::collections::HashSet<(u64, u64)> = input.iter().copied().collect();
            if mine.iter().any(|pair| !local_set.contains(pair)) {
                local_ok = false;
            }
        }
    }

    comm.all_agree(local_ok) && replicas_ok
}

/// Certificate-free min/max check with `O(n/p + β·k + α·log p)` cost —
/// the bitvector alternative §6.2 sketches before introducing the
/// location certificate:
///
/// "it is easy to verify in time O(n/p + βk + α log p) using a bitwise
/// or reduction on a bitvector of size k specifying which keys' minima
/// are present locally, and testing whether each bit is set in the
/// result."
///
/// Trades Θ(k) communication (linear in the *output*, still sublinear in
/// the input) for needing no certificate. Deterministic; requires only
/// the asserted output replicated at all PEs.
pub fn check_extrema_bitvector(
    comm: &mut Comm,
    which: Extremum,
    input: &[(u64, u64)],
    asserted: &[(u64, u64)],
) -> bool {
    let replicas_ok = replicated_consistent(comm, &asserted.to_vec(), 0x6269_7476_6563);
    let sorted_ok = asserted.windows(2).all(|w| w[0].0 < w[1].0);

    // Property (a) + key coverage, locally.
    let mut local_ok = sorted_ok;
    let k = asserted.len();
    let mut witness_bits = vec![0u64; k.div_ceil(64)];
    if local_ok {
        for &(key, v) in input {
            match asserted.binary_search_by_key(&key, |&(ak, _)| ak) {
                Err(_) => {
                    local_ok = false;
                    break;
                }
                Ok(i) => {
                    let opt = asserted[i].1;
                    let beats = match which {
                        Extremum::Min => v < opt,
                        Extremum::Max => v > opt,
                    };
                    if beats {
                        local_ok = false;
                        break;
                    }
                    if v == opt {
                        // Property (b) witness: this PE holds the optimum.
                        witness_bits[i / 64] |= 1 << (i % 64);
                    }
                }
            }
        }
    }
    // Property (b) globally: OR-reduce the witness bitvector; every
    // asserted optimum must be witnessed by some PE.
    let merged = comm.allreduce(witness_bits, |mut a, b| {
        for (x, y) in a.iter_mut().zip(b) {
            *x |= y;
        }
        a
    });
    let all_witnessed = (0..k).all(|i| merged[i / 64] & (1 << (i % 64)) != 0);
    comm.all_agree(local_ok) && all_witnessed && replicas_ok
}

/// Convenience wrapper for minimum aggregation.
pub fn check_min(
    comm: &mut Comm,
    input: &[(u64, u64)],
    asserted: &[(u64, u64)],
    locations: &[(u64, u64)],
) -> bool {
    check_extrema(comm, Extremum::Min, input, asserted, locations)
}

/// Convenience wrapper for maximum aggregation.
pub fn check_max(
    comm: &mut Comm,
    input: &[(u64, u64)],
    asserted: &[(u64, u64)],
    locations: &[(u64, u64)],
) -> bool {
    check_extrema(comm, Extremum::Max, input, asserted, locations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccheck_net::run;
    use std::collections::HashMap;

    /// Per-PE inputs plus correct (asserted, locations) for min.
    type Instance = (Vec<Vec<(u64, u64)>>, Vec<(u64, u64)>, Vec<(u64, u64)>);

    fn make_instance(p: usize) -> Instance {
        let mut inputs: Vec<Vec<(u64, u64)>> = Vec::new();
        for rank in 0..p as u64 {
            inputs.push(
                (0..40)
                    .map(|i| (i % 8, 100 + (rank * 37 + i * 13) % 50))
                    .collect(),
            );
        }
        let mut best: HashMap<u64, (u64, u64)> = HashMap::new();
        for (rank, input) in inputs.iter().enumerate() {
            for &(k, v) in input {
                best.entry(k)
                    .and_modify(|(bv, br)| {
                        if v < *bv {
                            *bv = v;
                            *br = rank as u64;
                        }
                    })
                    .or_insert((v, rank as u64));
            }
        }
        let mut asserted: Vec<(u64, u64)> = best.iter().map(|(&k, &(v, _))| (k, v)).collect();
        let mut locations: Vec<(u64, u64)> = best.iter().map(|(&k, &(_, r))| (k, r)).collect();
        asserted.sort_unstable();
        locations.sort_unstable();
        (inputs, asserted, locations)
    }

    #[test]
    fn accepts_correct_minima() {
        for p in [1, 2, 4] {
            let (inputs, asserted, locations) = make_instance(p);
            let verdicts = run(p, |comm| {
                check_min(comm, &inputs[comm.rank()], &asserted, &locations)
            });
            assert!(verdicts.iter().all(|&v| v), "p={p}");
        }
    }

    #[test]
    fn rejects_minimum_too_large() {
        // Asserted min raised by one: some PE holds a smaller element.
        let (inputs, mut asserted, locations) = make_instance(3);
        asserted[2].1 += 1;
        let verdicts = run(3, |comm| {
            check_min(comm, &inputs[comm.rank()], &asserted, &locations)
        });
        assert!(verdicts.iter().all(|&v| !v));
    }

    #[test]
    fn rejects_minimum_too_small() {
        // Asserted min lowered: no element equals it → witness fails.
        let (inputs, mut asserted, locations) = make_instance(3);
        asserted[2].1 -= 1;
        let verdicts = run(3, |comm| {
            check_min(comm, &inputs[comm.rank()], &asserted, &locations)
        });
        assert!(verdicts.iter().all(|&v| !v));
    }

    #[test]
    fn rejects_forgotten_key() {
        let (inputs, mut asserted, mut locations) = make_instance(3);
        asserted.remove(0);
        locations.remove(0);
        let verdicts = run(3, |comm| {
            check_min(comm, &inputs[comm.rank()], &asserted, &locations)
        });
        assert!(verdicts.iter().all(|&v| !v));
    }

    #[test]
    fn rejects_wrong_location_certificate() {
        let (inputs, asserted, locations) = make_instance(3);
        // Point every certificate entry at a PE that does NOT hold the
        // minimum (rotate ranks by 1 — with 3 PEs and our data, at least
        // one entry must break).
        let bad_locations: Vec<(u64, u64)> =
            locations.iter().map(|&(k, r)| (k, (r + 1) % 3)).collect();
        let verdicts = run(3, |comm| {
            check_min(comm, &inputs[comm.rank()], &asserted, &bad_locations)
        });
        assert!(verdicts.iter().all(|&v| !v));
    }

    #[test]
    fn rejects_inconsistent_replicas() {
        let (inputs, asserted, locations) = make_instance(2);
        let verdicts = run(2, |comm| {
            let mut my_asserted = asserted.clone();
            if comm.rank() == 1 {
                my_asserted[0].1 += 7; // PE 1 received a corrupt replica
            }
            check_min(comm, &inputs[comm.rank()], &my_asserted, &locations)
        });
        assert!(verdicts.iter().all(|&v| !v));
    }

    #[test]
    fn rejects_certificate_key_mismatch() {
        let (inputs, asserted, mut locations) = make_instance(2);
        locations[0].0 = 999; // cert names a key not in the output
        let verdicts = run(2, |comm| {
            check_min(comm, &inputs[comm.rank()], &asserted, &locations)
        });
        assert!(verdicts.iter().all(|&v| !v));
    }

    #[test]
    fn rejects_out_of_range_rank() {
        let (inputs, asserted, mut locations) = make_instance(2);
        locations[0].1 = 17;
        let verdicts = run(2, |comm| {
            check_min(comm, &inputs[comm.rank()], &asserted, &locations)
        });
        assert!(verdicts.iter().all(|&v| !v));
    }

    #[test]
    fn max_variant_works() {
        let (inputs, _, _) = make_instance(3);
        // Build max result.
        let mut best: HashMap<u64, (u64, u64)> = HashMap::new();
        for (rank, input) in inputs.iter().enumerate() {
            for &(k, v) in input {
                best.entry(k)
                    .and_modify(|(bv, br)| {
                        if v > *bv {
                            *bv = v;
                            *br = rank as u64;
                        }
                    })
                    .or_insert((v, rank as u64));
            }
        }
        let mut asserted: Vec<(u64, u64)> = best.iter().map(|(&k, &(v, _))| (k, v)).collect();
        let mut locations: Vec<(u64, u64)> = best.iter().map(|(&k, &(_, r))| (k, r)).collect();
        asserted.sort_unstable();
        locations.sort_unstable();
        let verdicts = run(3, |comm| {
            check_max(comm, &inputs[comm.rank()], &asserted, &locations)
        });
        assert!(verdicts.iter().all(|&v| v));
        // And a corrupted max is caught.
        let mut bad = asserted.clone();
        bad[1].1 += 1;
        let verdicts = run(3, |comm| {
            check_max(comm, &inputs[comm.rank()], &bad, &locations)
        });
        assert!(verdicts.iter().all(|&v| !v));
    }

    #[test]
    fn empty_input_empty_assertion_accepted() {
        let verdicts = run(2, |comm| check_min(comm, &[], &[], &[]));
        assert!(verdicts.iter().all(|&v| v));
    }

    #[test]
    fn bitvector_variant_accepts_correct_minima() {
        for p in [1, 2, 4] {
            let (inputs, asserted, _) = make_instance(p);
            let verdicts = run(p, |comm| {
                check_extrema_bitvector(comm, Extremum::Min, &inputs[comm.rank()], &asserted)
            });
            assert!(verdicts.iter().all(|&v| v), "p={p}");
        }
    }

    #[test]
    fn bitvector_variant_rejects_wrong_minima() {
        let (inputs, asserted, _) = make_instance(3);
        // Too large: some PE holds a smaller element.
        let mut bad = asserted.clone();
        bad[1].1 += 1;
        let verdicts = run(3, |comm| {
            check_extrema_bitvector(comm, Extremum::Min, &inputs[comm.rank()], &bad)
        });
        assert!(verdicts.iter().all(|&v| !v));
        // Too small: no witness anywhere — the OR-reduced bit stays 0.
        let mut bad = asserted.clone();
        bad[1].1 -= 1;
        let verdicts = run(3, |comm| {
            check_extrema_bitvector(comm, Extremum::Min, &inputs[comm.rank()], &bad)
        });
        assert!(verdicts.iter().all(|&v| !v));
    }

    #[test]
    fn bitvector_variant_rejects_forgotten_key() {
        let (inputs, asserted, _) = make_instance(2);
        let mut bad = asserted.clone();
        bad.remove(0);
        let verdicts = run(2, |comm| {
            check_extrema_bitvector(comm, Extremum::Min, &inputs[comm.rank()], &bad)
        });
        assert!(verdicts.iter().all(|&v| !v));
    }

    #[test]
    fn bitvector_max_variant() {
        let (inputs, _, _) = make_instance(2);
        let mut best: HashMap<u64, u64> = HashMap::new();
        for input in &inputs {
            for &(k, v) in input {
                best.entry(k).and_modify(|b| *b = v.max(*b)).or_insert(v);
            }
        }
        let mut asserted: Vec<(u64, u64)> = best.into_iter().collect();
        asserted.sort_unstable();
        let verdicts = run(2, |comm| {
            check_extrema_bitvector(comm, Extremum::Max, &inputs[comm.rank()], &asserted)
        });
        assert!(verdicts.iter().all(|&v| v));
    }

    #[test]
    fn bitvector_volume_linear_in_keys_not_input() {
        use ccheck_net::router::run_with_stats;
        // Volume tracks k (output keys), not n (input size).
        let volume = |n: u64, k: u64| {
            let (_, snap) = run_with_stats(2, |comm| {
                let input: Vec<(u64, u64)> = (0..n).map(|i| (i % k, 100 + (i / k) % 50)).collect();
                let mut best: HashMap<u64, u64> = HashMap::new();
                for &(key, v) in &input {
                    best.entry(key).and_modify(|b| *b = v.min(*b)).or_insert(v);
                }
                let mut asserted: Vec<(u64, u64)> = best.into_iter().collect();
                asserted.sort_unstable();
                assert!(check_extrema_bitvector(
                    comm,
                    Extremum::Min,
                    &input,
                    &asserted
                ));
            });
            snap.total_bytes()
        };
        assert_eq!(volume(1_000, 64), volume(8_000, 64));
        assert!(volume(8_000, 2048) > volume(8_000, 64));
    }
}

//! Zip checking (§6.4, Theorem 11).
//!
//! Zip must preserve the *order* of both sequences, so a multiset
//! fingerprint is not enough: the checker needs a hash that is sensitive
//! to positions yet computable on distributed data regardless of the
//! split. Following the paper, we use the inner product of the sequence
//! with a pseudo-random sequence `R = ⟨h′(1), h′(2), …⟩`: since `h′`
//! is evaluated on *global* indices, each PE computes its partial sum
//! locally ("computed on the fly and without communication") after one
//! prefix-sum establishes its global offset.
//!
//! The fingerprint lives in 𝔽_{2⁶¹−1}: `F(S) = Σᵢ h′(i)·h(xᵢ) mod p`,
//! combined across PEs by field addition. Two sequences agreeing on the
//! fingerprint of every iteration differ with probability ≤ `(1/H)^its`.

use ccheck_hashing::field::Mersenne61;
use ccheck_hashing::{Hasher, HasherKind};
use ccheck_net::Comm;

/// Configuration of the Zip checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZipCheckConfig {
    /// Hash family for element values.
    pub hasher: HasherKind,
    /// Independent repetitions.
    pub iterations: usize,
}

impl Default for ZipCheckConfig {
    fn default() -> Self {
        Self {
            hasher: HasherKind::Tab64,
            iterations: 2,
        }
    }
}

/// A seeded Zip checker.
#[derive(Debug, Clone)]
pub struct ZipChecker {
    cfg: ZipCheckConfig,
    seed: u64,
}

impl ZipChecker {
    /// Create a checker; all PEs must pass the same `(config, seed)`.
    pub fn new(cfg: ZipCheckConfig, seed: u64) -> Self {
        assert!(cfg.iterations >= 1);
        Self { cfg, seed }
    }

    /// Position-sensitive fingerprint of a sequence slice whose first
    /// element has global index `start`.
    fn fingerprint<F: Fn(usize) -> u64>(&self, iter: usize, start: u64, len: usize, at: F) -> u64 {
        let h = Hasher::new(self.cfg.hasher, self.seed ^ (iter as u64) << 32 ^ 0x7A69);
        let h_pos = Hasher::new(
            self.cfg.hasher,
            self.seed ^ (iter as u64) << 32 ^ 0x7069_7073,
        );
        let mut acc = 0u64;
        for i in 0..len {
            let pos_hash = Mersenne61::from_u64(h_pos.hash(start + i as u64));
            let val_hash = Mersenne61::from_u64(h.hash(at(i)));
            acc = Mersenne61::add(acc, Mersenne61::mul(pos_hash, val_hash));
        }
        acc
    }

    /// Distributed Zip check: `zipped` must pair `s1[i]` with `s2[i]`
    /// for every global index `i`, preserving both orders. The three
    /// sequences may have three different distributions. Every PE
    /// returns the same verdict.
    pub fn check(&self, comm: &mut Comm, s1: &[u64], s2: &[u64], zipped: &[(u64, u64)]) -> bool {
        let (s1_start, n1) = comm.exclusive_prefix_sum(s1.len() as u64);
        let (s2_start, n2) = comm.exclusive_prefix_sum(s2.len() as u64);
        let (z_start, nz) = comm.exclusive_prefix_sum(zipped.len() as u64);
        if n1 != n2 || n1 != nz {
            return false;
        }
        let mut ok = true;
        for iter in 0..self.cfg.iterations {
            // First component stream vs s1.
            let f1 = self.fingerprint(2 * iter, s1_start, s1.len(), |i| s1[i]);
            let fz1 = self.fingerprint(2 * iter, z_start, zipped.len(), |i| zipped[i].0);
            // Second component stream vs s2 (independent hash instance).
            let f2 = self.fingerprint(2 * iter + 1, s2_start, s2.len(), |i| s2[i]);
            let fz2 = self.fingerprint(2 * iter + 1, z_start, zipped.len(), |i| zipped[i].1);
            let (g1, gz1, g2, gz2) = comm.allreduce((f1, fz1, f2, fz2), |a, b| {
                (
                    Mersenne61::add(a.0, b.0),
                    Mersenne61::add(a.1, b.1),
                    Mersenne61::add(a.2, b.2),
                    Mersenne61::add(a.3, b.3),
                )
            });
            ok &= g1 == gz1 && g2 == gz2;
        }
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccheck_net::run;

    fn chunk(v: &[u64], rank: usize, p: usize) -> Vec<u64> {
        let base = v.len() / p;
        let extra = v.len() % p;
        let start = rank * base + rank.min(extra);
        let len = base + usize::from(rank < extra);
        v[start..start + len].to_vec()
    }

    /// Distribute zipped pairs with a *different* (skewed) distribution
    /// than the inputs, preserving the global rank-concatenation order.
    fn chunk_pairs(v: &[(u64, u64)], rank: usize, p: usize) -> Vec<(u64, u64)> {
        // PE 0 takes a double share, the last PE the remainder.
        let n = v.len();
        let base = n / (p + 1);
        let bounds: Vec<usize> = (0..=p)
            .map(|r| {
                if r == 0 {
                    0
                } else {
                    (2 * base + (r - 1) * base).min(n)
                }
            })
            .map(|b| {
                if p == 1 {
                    if b == 0 {
                        0
                    } else {
                        n
                    }
                } else {
                    b
                }
            })
            .collect();
        let start = bounds[rank];
        let end = if rank + 1 == p { n } else { bounds[rank + 1] };
        v[start..end].to_vec()
    }

    #[test]
    fn accepts_correct_zip() {
        let n = 400usize;
        let s1: Vec<u64> = (0..n as u64).map(|i| i * 3).collect();
        let s2: Vec<u64> = (0..n as u64).map(|i| 10_000 + i).collect();
        let zipped: Vec<(u64, u64)> = s1.iter().copied().zip(s2.iter().copied()).collect();
        for p in [1, 2, 4] {
            let verdicts = run(p, |comm| {
                let checker = ZipChecker::new(ZipCheckConfig::default(), 11);
                checker.check(
                    comm,
                    &chunk(&s1, comm.rank(), p),
                    &chunk(&s2, comm.rank(), p),
                    &chunk_pairs(&zipped, comm.rank(), p),
                )
            });
            assert!(verdicts.iter().all(|&v| v), "p={p}");
        }
    }

    #[test]
    fn rejects_swapped_adjacent_pairs() {
        // Same multiset, wrong order — the case a permutation check
        // cannot catch but Zip's position-sensitive hash must.
        let n = 100usize;
        let s1: Vec<u64> = (0..n as u64).collect();
        let s2: Vec<u64> = (0..n as u64).map(|i| 1000 + i).collect();
        let mut zipped: Vec<(u64, u64)> = s1.iter().copied().zip(s2.iter().copied()).collect();
        zipped.swap(10, 11);
        let verdicts = run(2, |comm| {
            let checker = ZipChecker::new(ZipCheckConfig::default(), 3);
            checker.check(
                comm,
                &chunk(&s1, comm.rank(), 2),
                &chunk(&s2, comm.rank(), 2),
                &chunk_pairs(&zipped, comm.rank(), 2),
            )
        });
        assert!(verdicts.iter().all(|&v| !v));
    }

    #[test]
    fn rejects_misaligned_pairing() {
        // Pair s1[i] with s2[i+1]: both component multisets survive in
        // order individually... s2 column shifts — fingerprint of second
        // component must differ.
        let n = 50usize;
        let s1: Vec<u64> = (0..n as u64).collect();
        let s2: Vec<u64> = (0..n as u64).map(|i| 1000 + i).collect();
        let zipped: Vec<(u64, u64)> = (0..n).map(|i| (s1[i], s2[(i + 1) % n])).collect();
        let verdicts = run(2, |comm| {
            let checker = ZipChecker::new(ZipCheckConfig::default(), 5);
            checker.check(
                comm,
                &chunk(&s1, comm.rank(), 2),
                &chunk(&s2, comm.rank(), 2),
                &chunk_pairs(&zipped, comm.rank(), 2),
            )
        });
        assert!(verdicts.iter().all(|&v| !v));
    }

    #[test]
    fn rejects_length_mismatch() {
        let verdicts = run(2, |comm| {
            let rank = comm.rank() as u64;
            let s1: Vec<u64> = (0..50).map(|i| rank * 50 + i).collect();
            let s2: Vec<u64> = (0..50).map(|i| rank * 50 + i).collect();
            // Zipped output lost an element on PE 1.
            let zipped: Vec<(u64, u64)> = (0..if rank == 0 { 50 } else { 49 })
                .map(|i| {
                    let g = rank * 50 + i;
                    (g, g)
                })
                .collect();
            let checker = ZipChecker::new(ZipCheckConfig::default(), 1);
            checker.check(comm, &s1, &s2, &zipped)
        });
        assert!(verdicts.iter().all(|&v| !v));
    }

    #[test]
    fn accepts_empty_sequences() {
        let verdicts = run(3, |comm| {
            let checker = ZipChecker::new(ZipCheckConfig::default(), 9);
            checker.check(comm, &[], &[], &[])
        });
        assert!(verdicts.iter().all(|&v| v));
    }
}

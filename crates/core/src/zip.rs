//! Zip checking (§6.4, Theorem 11).
//!
//! Zip must preserve the *order* of both sequences, so a multiset
//! fingerprint is not enough: the checker needs a hash that is sensitive
//! to positions yet computable on distributed data regardless of the
//! split. Following the paper, we use the inner product of the sequence
//! with a pseudo-random sequence `R = ⟨h′(1), h′(2), …⟩`: since `h′`
//! is evaluated on *global* indices, each PE computes its partial sum
//! locally ("computed on the fly and without communication") after one
//! prefix-sum establishes its global offset.
//!
//! The fingerprint lives in 𝔽_{2⁶¹−1}: `F(S) = Σᵢ h′(i)·h(xᵢ) mod p`,
//! combined across PEs by field addition. Two sequences agreeing on the
//! fingerprint of every iteration differ with probability ≤ `(1/H)^its`.

use ccheck_hashing::field::Mersenne61;
use ccheck_hashing::{Hasher, HasherKind};
use ccheck_net::Comm;

use crate::sketch::Sketch;

/// Configuration of the Zip checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZipCheckConfig {
    /// Hash family for element values.
    pub hasher: HasherKind,
    /// Independent repetitions.
    pub iterations: usize,
}

impl Default for ZipCheckConfig {
    fn default() -> Self {
        Self {
            hasher: HasherKind::Tab64,
            iterations: 2,
        }
    }
}

/// A seeded Zip checker.
#[derive(Debug, Clone)]
pub struct ZipChecker {
    cfg: ZipCheckConfig,
    seed: u64,
}

impl ZipChecker {
    /// Create a checker; all PEs must pass the same `(config, seed)`.
    pub fn new(cfg: ZipCheckConfig, seed: u64) -> Self {
        assert!(cfg.iterations >= 1);
        Self { cfg, seed }
    }

    /// The two hash instances of one (iteration, lane) fingerprint.
    /// Lane 0 covers the first components (vs `s1`), lane 1 the second
    /// (vs `s2`); instance index `2·iter + lane` matches the historical
    /// per-slice implementation bit for bit.
    fn hashers(&self, iter: usize, lane: usize) -> (Hasher, Hasher) {
        let instance = (2 * iter + lane) as u64;
        let h_val = Hasher::new(self.cfg.hasher, self.seed ^ instance << 32 ^ 0x7A69);
        let h_pos = Hasher::new(self.cfg.hasher, self.seed ^ instance << 32 ^ 0x7069_7073);
        (h_val, h_pos)
    }

    /// A fresh streaming sketch fingerprinting one component lane
    /// (`lane` 0 or 1) of a sequence whose next element has **global**
    /// index `start`. See [`crate::sketch::Sketch`]; merging requires the
    /// other sketch to continue exactly where this one stopped, because
    /// the fingerprint is position-sensitive.
    pub fn sketch(&self, lane: usize, start: u64) -> ZipSketch<'_> {
        assert!(lane < 2, "zip sequences have two component lanes");
        let (pairs, accs) = (0..self.cfg.iterations)
            .map(|iter| (self.hashers(iter, lane), 0u64))
            .unzip();
        ZipSketch {
            checker: self,
            hashers: pairs,
            accs,
            start,
            next: start,
        }
    }

    /// A pair sketch covering both lanes of an already-zipped stream of
    /// `(first, second)` pairs starting at global index `start`.
    pub fn sketch_pairs(&self, start: u64) -> ZipPairSketch<'_> {
        ZipPairSketch {
            first: self.sketch(0, start),
            second: self.sketch(1, start),
        }
    }

    /// Distributed Zip check: `zipped` must pair `s1[i]` with `s2[i]`
    /// for every global index `i`, preserving both orders. The three
    /// sequences may have three different distributions. Every PE
    /// returns the same verdict.
    pub fn check(&self, comm: &mut Comm, s1: &[u64], s2: &[u64], zipped: &[(u64, u64)]) -> bool {
        self.check_stream(
            comm,
            (s1.len() as u64, s1.iter().copied()),
            (s2.len() as u64, s2.iter().copied()),
            (zipped.len() as u64, zipped.iter().copied()),
        )
    }

    /// Streaming form of [`ZipChecker::check`]: each sequence arrives as
    /// `(local_len, stream)` — the length is needed *before* the stream
    /// is consumed because the position-sensitive hash must know this
    /// PE's global offset (one prefix sum), which is exactly why a
    /// slice-free API must declare it. Memory is O(iterations) per PE;
    /// communication is byte-identical to the slice path.
    ///
    /// # Panics
    /// Panics if a stream yields a different number of elements than
    /// declared — that is a corrupt SPMD program, not checkable data.
    pub fn check_stream<I, J, Z>(
        &self,
        comm: &mut Comm,
        s1: (u64, I),
        s2: (u64, J),
        zipped: (u64, Z),
    ) -> bool
    where
        I: IntoIterator<Item = u64>,
        J: IntoIterator<Item = u64>,
        Z: IntoIterator<Item = (u64, u64)>,
    {
        let (s1_start, n1) = comm.exclusive_prefix_sum(s1.0);
        let (s2_start, n2) = comm.exclusive_prefix_sum(s2.0);
        let (z_start, nz) = comm.exclusive_prefix_sum(zipped.0);
        if n1 != n2 || n1 != nz {
            return false;
        }
        let mut f1 = self.sketch(0, s1_start);
        f1.update_iter(s1.1);
        let mut f2 = self.sketch(1, s2_start);
        f2.update_iter(s2.1);
        let mut fz = self.sketch_pairs(z_start);
        fz.update_iter(zipped.1);
        assert_eq!(f1.count(), s1.0, "s1 stream shorter/longer than declared");
        assert_eq!(f2.count(), s2.0, "s2 stream shorter/longer than declared");
        assert_eq!(
            fz.first.count(),
            zipped.0,
            "zipped stream shorter/longer than declared"
        );
        let mut ok = true;
        for iter in 0..self.cfg.iterations {
            let (g1, gz1, g2, gz2) = comm.allreduce(
                (
                    f1.accs[iter],
                    fz.first.accs[iter],
                    f2.accs[iter],
                    fz.second.accs[iter],
                ),
                |a, b| {
                    (
                        Mersenne61::add(a.0, b.0),
                        Mersenne61::add(a.1, b.1),
                        Mersenne61::add(a.2, b.2),
                        Mersenne61::add(a.3, b.3),
                    )
                },
            );
            ok &= g1 == gz1 && g2 == gz2;
        }
        ok
    }
}

/// Streaming sketch of one component lane of the Zip checker: the
/// inner-product fingerprint `Σ h′(i)·h(xᵢ)` in 𝔽_{2⁶¹−1}, advanced
/// element-at-a-time with an internal global-index cursor. Obtained
/// from [`ZipChecker::sketch`].
pub struct ZipSketch<'a> {
    checker: &'a ZipChecker,
    /// One `(value hasher, position hasher)` pair per iteration.
    hashers: Vec<(Hasher, Hasher)>,
    accs: Vec<u64>,
    start: u64,
    next: u64,
}

impl ZipSketch<'_> {
    /// Number of elements folded in so far.
    pub fn count(&self) -> u64 {
        self.next - self.start
    }

    /// The global index the next [`Sketch::update`] will fingerprint.
    pub fn next_index(&self) -> u64 {
        self.next
    }
}

impl Sketch for ZipSketch<'_> {
    type Item = u64;
    /// `(start index, element count, per-iteration fingerprints)`.
    type Digest = (u64, u64, Vec<u64>);

    fn update(&mut self, item: u64) {
        for ((h_val, h_pos), acc) in self.hashers.iter().zip(&mut self.accs) {
            let pos_hash = Mersenne61::from_u64(h_pos.hash(self.next));
            let val_hash = Mersenne61::from_u64(h_val.hash(item));
            *acc = Mersenne61::add(*acc, Mersenne61::mul(pos_hash, val_hash));
        }
        self.next += 1;
    }

    /// Absorb the sketch of the **immediately following** index range:
    /// position-sensitivity makes merging of non-adjacent chunks
    /// meaningless, so adjacency is enforced.
    ///
    /// # Panics
    /// Panics if `other` does not start at this sketch's next index or
    /// belongs to a different checker instance.
    fn merge(&mut self, other: Self) {
        assert!(
            std::ptr::eq(self.checker, other.checker),
            "cannot merge sketches of different checker instances"
        );
        assert_eq!(
            other.start, self.next,
            "zip sketches merge only over adjacent index ranges"
        );
        for (acc, &badd) in self.accs.iter_mut().zip(&other.accs) {
            *acc = Mersenne61::add(*acc, badd);
        }
        self.next = other.next;
    }

    fn finalize(self) -> (u64, u64, Vec<u64>) {
        (self.start, self.next - self.start, self.accs)
    }
}

/// Both lanes of an already-zipped `(first, second)` stream, advanced in
/// lockstep. Obtained from [`ZipChecker::sketch_pairs`].
pub struct ZipPairSketch<'a> {
    first: ZipSketch<'a>,
    second: ZipSketch<'a>,
}

impl Sketch for ZipPairSketch<'_> {
    type Item = (u64, u64);
    /// The two lanes' digests.
    type Digest = ((u64, u64, Vec<u64>), (u64, u64, Vec<u64>));

    fn update(&mut self, (a, b): (u64, u64)) {
        self.first.update(a);
        self.second.update(b);
    }

    fn merge(&mut self, other: Self) {
        self.first.merge(other.first);
        self.second.merge(other.second);
    }

    fn finalize(self) -> Self::Digest {
        (self.first.finalize(), self.second.finalize())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccheck_net::run;

    fn chunk(v: &[u64], rank: usize, p: usize) -> Vec<u64> {
        let base = v.len() / p;
        let extra = v.len() % p;
        let start = rank * base + rank.min(extra);
        let len = base + usize::from(rank < extra);
        v[start..start + len].to_vec()
    }

    /// Distribute zipped pairs with a *different* (skewed) distribution
    /// than the inputs, preserving the global rank-concatenation order.
    fn chunk_pairs(v: &[(u64, u64)], rank: usize, p: usize) -> Vec<(u64, u64)> {
        // PE 0 takes a double share, the last PE the remainder.
        let n = v.len();
        let base = n / (p + 1);
        let bounds: Vec<usize> = (0..=p)
            .map(|r| {
                if r == 0 {
                    0
                } else {
                    (2 * base + (r - 1) * base).min(n)
                }
            })
            .map(|b| {
                if p == 1 {
                    if b == 0 {
                        0
                    } else {
                        n
                    }
                } else {
                    b
                }
            })
            .collect();
        let start = bounds[rank];
        let end = if rank + 1 == p { n } else { bounds[rank + 1] };
        v[start..end].to_vec()
    }

    #[test]
    fn accepts_correct_zip() {
        let n = 400usize;
        let s1: Vec<u64> = (0..n as u64).map(|i| i * 3).collect();
        let s2: Vec<u64> = (0..n as u64).map(|i| 10_000 + i).collect();
        let zipped: Vec<(u64, u64)> = s1.iter().copied().zip(s2.iter().copied()).collect();
        for p in [1, 2, 4] {
            let verdicts = run(p, |comm| {
                let checker = ZipChecker::new(ZipCheckConfig::default(), 11);
                checker.check(
                    comm,
                    &chunk(&s1, comm.rank(), p),
                    &chunk(&s2, comm.rank(), p),
                    &chunk_pairs(&zipped, comm.rank(), p),
                )
            });
            assert!(verdicts.iter().all(|&v| v), "p={p}");
        }
    }

    #[test]
    fn rejects_swapped_adjacent_pairs() {
        // Same multiset, wrong order — the case a permutation check
        // cannot catch but Zip's position-sensitive hash must.
        let n = 100usize;
        let s1: Vec<u64> = (0..n as u64).collect();
        let s2: Vec<u64> = (0..n as u64).map(|i| 1000 + i).collect();
        let mut zipped: Vec<(u64, u64)> = s1.iter().copied().zip(s2.iter().copied()).collect();
        zipped.swap(10, 11);
        let verdicts = run(2, |comm| {
            let checker = ZipChecker::new(ZipCheckConfig::default(), 3);
            checker.check(
                comm,
                &chunk(&s1, comm.rank(), 2),
                &chunk(&s2, comm.rank(), 2),
                &chunk_pairs(&zipped, comm.rank(), 2),
            )
        });
        assert!(verdicts.iter().all(|&v| !v));
    }

    #[test]
    fn rejects_misaligned_pairing() {
        // Pair s1[i] with s2[i+1]: both component multisets survive in
        // order individually... s2 column shifts — fingerprint of second
        // component must differ.
        let n = 50usize;
        let s1: Vec<u64> = (0..n as u64).collect();
        let s2: Vec<u64> = (0..n as u64).map(|i| 1000 + i).collect();
        let zipped: Vec<(u64, u64)> = (0..n).map(|i| (s1[i], s2[(i + 1) % n])).collect();
        let verdicts = run(2, |comm| {
            let checker = ZipChecker::new(ZipCheckConfig::default(), 5);
            checker.check(
                comm,
                &chunk(&s1, comm.rank(), 2),
                &chunk(&s2, comm.rank(), 2),
                &chunk_pairs(&zipped, comm.rank(), 2),
            )
        });
        assert!(verdicts.iter().all(|&v| !v));
    }

    #[test]
    fn rejects_length_mismatch() {
        let verdicts = run(2, |comm| {
            let rank = comm.rank() as u64;
            let s1: Vec<u64> = (0..50).map(|i| rank * 50 + i).collect();
            let s2: Vec<u64> = (0..50).map(|i| rank * 50 + i).collect();
            // Zipped output lost an element on PE 1.
            let zipped: Vec<(u64, u64)> = (0..if rank == 0 { 50 } else { 49 })
                .map(|i| {
                    let g = rank * 50 + i;
                    (g, g)
                })
                .collect();
            let checker = ZipChecker::new(ZipCheckConfig::default(), 1);
            checker.check(comm, &s1, &s2, &zipped)
        });
        assert!(verdicts.iter().all(|&v| !v));
    }

    #[test]
    fn sketch_chunking_invariance() {
        // Adjacent chunk sketches merge to the one-shot digest.
        let checker = ZipChecker::new(ZipCheckConfig::default(), 77);
        let data: Vec<u64> = (0..200u64).map(|i| i * 31 + 5).collect();
        let mut one_shot = checker.sketch(0, 40);
        one_shot.update_iter(data.iter().copied());
        let expected = one_shot.finalize();
        for chunk in [1usize, 3, 50, 199, 200, 999] {
            let mut acc = checker.sketch(0, 40);
            for batch in data.chunks(chunk) {
                let mut s = checker.sketch(0, acc.next_index());
                s.update_iter(batch.iter().copied());
                acc.merge(s);
            }
            assert_eq!(acc.finalize(), expected, "chunk={chunk}");
        }
    }

    #[test]
    #[should_panic(expected = "adjacent index ranges")]
    fn sketch_rejects_non_adjacent_merge() {
        let checker = ZipChecker::new(ZipCheckConfig::default(), 1);
        let mut a = checker.sketch(0, 0);
        a.update(9);
        let b = checker.sketch(0, 5); // gap: indices 1..5 missing
        a.merge(b);
    }

    #[test]
    fn streaming_check_matches_slice_path() {
        let n = 120usize;
        let s1: Vec<u64> = (0..n as u64).map(|i| i * 3).collect();
        let s2: Vec<u64> = (0..n as u64).map(|i| 7_000 + i).collect();
        let zipped: Vec<(u64, u64)> = s1.iter().copied().zip(s2.iter().copied()).collect();
        for corrupt in [false, true] {
            let verdicts = run(3, |comm| {
                let mut z = chunk_pairs(&zipped, comm.rank(), 3);
                if corrupt && comm.rank() == 0 && !z.is_empty() {
                    z[0].1 ^= 1;
                }
                let a = chunk(&s1, comm.rank(), 3);
                let b = chunk(&s2, comm.rank(), 3);
                let checker = ZipChecker::new(ZipCheckConfig::default(), 11);
                let slice = checker.check(comm, &a, &b, &z);
                let stream = checker.check_stream(
                    comm,
                    (a.len() as u64, a.iter().copied()),
                    (b.len() as u64, b.iter().copied()),
                    (z.len() as u64, z.iter().copied()),
                );
                (slice, stream)
            });
            assert!(
                verdicts.iter().all(|&(s, t)| s == t && s != corrupt),
                "corrupt={corrupt}: {verdicts:?}"
            );
        }
    }

    #[test]
    fn accepts_empty_sequences() {
        let verdicts = run(3, |comm| {
            let checker = ZipChecker::new(ZipCheckConfig::default(), 9);
            checker.check(comm, &[], &[], &[])
        });
        assert!(verdicts.iter().all(|&v| v));
    }
}

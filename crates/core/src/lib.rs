//! # ccheck — communication-efficient checking of big-data operations
//!
//! A Rust implementation of the probabilistic result checkers from
//! **Hübschle-Schneider & Sanders, "Communication Efficient Checking of
//! Big Data Operations" (2018)**. The checkers verify the output of
//! distributed data-processing operations (sum/average/median/minimum
//! aggregation, sorting, permutation, union, merge, zip, and the
//! redistribution phases of GroupBy and Join) while communicating
//! **sublinearly** in the input size — no PE sends or receives more than
//! a configuration-dependent constant, regardless of `n`.
//!
//! All checkers have one-sided error: a correct result is never
//! rejected; an incorrect result is accepted with probability at most a
//! user-chosen `δ` (Table 1 of the paper).
//!
//! ## Module map (paper section → module)
//!
//! | Paper | Module | Checker |
//! |---|---|---|
//! | §4 Thm 1 | [`sum`] | [`SumChecker`] — sum/count aggregation |
//! | §4 Table 2 | [`params`] | optimal (d, r̂, #its) for a message budget |
//! | §5 Thm 6 | [`permutation`] | [`PermChecker`] — hash-sum & polynomial |
//! | §5 Thm 7 | [`sort`] | [`check_sorted`] |
//! | §6.1 Cor 8 | [`average`] | [`check_average`] (count certificate) |
//! | §6.2 Thm 9 | [`minmax`] | [`check_min`] / [`check_max`] (location certificate) |
//! | §6.3 Thm 10 | [`median`] | [`check_median_unique`] / tie certificates |
//! | §6.4 Thm 11 | [`zip`] | [`ZipChecker`] |
//! | §6.5.1 Cor 12 | [`union`] | [`check_union`] |
//! | §6.5.2 Cor 13 | [`sort`] | [`check_merge`] |
//! | §6.5.3 Cor 14 | [`redistribution`] | [`check_groupby_redistribution`] |
//! | §6.5.4 Cor 15 | [`redistribution`] | [`check_join_redistribution`] |
//! | §2 | [`integrity`] | [`replicated_consistent`] |
//! | (streaming core) | [`sketch`] | [`Sketch`] — `update`/`merge`/`finalize` behind every checker |
//!
//! ## Quickstart
//!
//! ```
//! use ccheck::{SumChecker, SumCheckConfig};
//! use ccheck_hashing::HasherKind;
//!
//! // Configure: 4 iterations × 8 buckets, moduli in (2^5, 2^6], CRC-32C —
//! // the paper's "4×8 CRC m5" with failure probability ≈ 6·10⁻⁴.
//! let cfg = SumCheckConfig::new(4, 8, 5, HasherKind::Crc32c);
//! let checker = SumChecker::new(cfg, /*seed=*/ 42);
//!
//! // The operation under test: SELECT key, SUM(value) GROUP BY key.
//! let input = vec![(1u64, 10u64), (2, 5), (1, 7), (2, 1)];
//! let correct = vec![(1u64, 17u64), (2, 6)];
//! let faulty = vec![(1u64, 18u64), (2, 6)];
//!
//! assert!(checker.check_local(&input, &correct)); // never rejects correct
//! assert!(!checker.check_local(&input, &faulty)); // detects w.p. ≥ 1 − δ
//! ```
//!
//! Distributed use is identical but calls `check_distributed(comm, …)`
//! inside a [`ccheck_net::run`] SPMD region; see the repository examples.
//!
//! ## Streaming (out-of-core) checking
//!
//! Every checker is a mergeable one-pass [`Sketch`] underneath: instead
//! of handing it slices, feed elements with [`Sketch::update`], combine
//! per-chunk sketches with [`Sketch::merge`], and compare
//! [`Sketch::finalize`] digests — memory stays constant no matter how
//! large `n` grows, and any chunking produces bit-identical digests:
//!
//! ```
//! use ccheck::sketch::Sketch;
//! use ccheck::{SumChecker, SumCheckConfig};
//! use ccheck_hashing::HasherKind;
//!
//! let checker = SumChecker::new(SumCheckConfig::new(4, 8, 5, HasherKind::Crc32c), 42);
//!
//! // The same check as above, element-at-a-time: no input slice, no
//! // asserted-output slice, just two O(its·d) sketches.
//! let mut input = checker.sketch();
//! for pair in [(1u64, 10u64), (2, 5), (1, 7), (2, 1)] {
//!     input.update(pair); // stream from disk / generator / network
//! }
//! let mut asserted = checker.sketch();
//! asserted.update_iter([(1u64, 17u64), (2, 6)]);
//! assert_eq!(input.finalize(), asserted.finalize());
//!
//! // Chunked folding merges to the identical digest.
//! let mut a = checker.sketch();
//! a.update_iter([(1u64, 10u64), (2, 5)]);
//! let mut b = checker.sketch();
//! b.update_iter([(1u64, 7u64), (2, 1)]);
//! a.merge(b);
//! let mut whole = checker.sketch();
//! whole.update_iter([(1u64, 10u64), (2, 5), (1, 7), (2, 1)]);
//! assert_eq!(a.finalize(), whole.finalize());
//! ```

pub mod average;
pub mod config;
pub mod floatsum;
pub mod integrity;
pub mod median;
pub mod minmax;
pub mod params;
pub mod permutation;
pub mod redistribution;
pub mod sketch;
pub mod sort;
pub mod sum;
pub mod union;
pub mod xorsum;
pub mod zip;

pub use average::check_average;
pub use config::SumCheckConfig;
pub use floatsum::{aggregate_ticks, FixedPoint, FloatSumChecker};
pub use integrity::replicated_consistent;
pub use median::{check_median_unique, check_median_with_cert, MedianTieCert};
pub use minmax::{check_extrema, check_extrema_bitvector, check_max, check_min, Extremum};
pub use params::{optimize, OptimalConfig};
pub use permutation::{PermCheckConfig, PermChecker, PermMethod, PermSketch};
pub use redistribution::{
    check_groupby_redistribution, check_join_redistribution, check_range_redistribution,
};
pub use sketch::Sketch;
pub use sort::{check_merge, check_sorted};
pub use sum::{SumChecker, SumSketch};
pub use union::check_union;
pub use xorsum::{XorCheckConfig, XorChecker, XorSketch};
pub use zip::{ZipCheckConfig, ZipChecker, ZipPairSketch, ZipSketch};
